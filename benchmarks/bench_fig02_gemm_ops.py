"""Bench: regenerate Fig. 2 (FP-INT GeMM operation share)."""

from repro.experiments import fig2_gemm_ops


def test_fig2_gemm_ops(run_once):
    result = run_once(fig2_gemm_ops.run)
    # Paper claim: FP-INT GeMMs are >90% of ops below 4K context...
    for model, shares in result.shares.items():
        assert shares[1024] > 0.9, model
        assert shares[2048] > 0.9, model
    # ...and remain significant at 16K.
    assert all(shares[16384] > 0.4 for shares in result.shares.values())
