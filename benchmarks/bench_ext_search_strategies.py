"""Bench: search strategies vs Algorithm 1 (Sec. III-D efficiency claims)."""

from repro.experiments import ext_search_strategies


def test_ext_search_strategies(run_once):
    result = run_once(ext_search_strategies.run)
    adaptive = result.outcomes["adaptive (Alg. 1)"]
    brute = result.outcomes["brute-force"]
    # The paper's claim: near-optimal quality within a ~32-pass budget,
    # against a >10,000-combination space.
    assert adaptive.feasible
    assert adaptive.evaluations <= 32
    assert adaptive.best_bops <= 1.15 * brute.best_bops
    # Layer-wise methods pay the dimensionality: an order of magnitude
    # more calibration passes than the module-wise search.
    assert result.layerwise.evaluations > 10 * adaptive.evaluations


def test_ext_search_strategies_real_landscape(run_once):
    result = run_once(ext_search_strategies.run_real)
    adaptive = result.outcomes["adaptive (Alg. 1)"]
    greedy = result.outcomes["greedy-descent"]
    random = result.outcomes["random"]
    # On real calibration evaluations: Algorithm 1 stays within its
    # 32-pass budget and is at least as good as the greedy walk...
    assert adaptive.feasible
    assert adaptive.evaluations <= 32
    assert adaptive.best_bops <= greedy.best_bops
    # ...while greedy pays noticeably more calibration passes and a
    # same-budget random search lands on a worse point.
    assert greedy.evaluations > 1.5 * adaptive.evaluations
    if random.feasible:
        assert random.best_bops >= adaptive.best_bops
