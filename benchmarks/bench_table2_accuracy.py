"""Bench: regenerate Table II (accuracy/BOPs across schemes).

This is the heavyweight accuracy benchmark: 9 models x 3 datasets x 6
schemes, including two adaptive searches per (model, dataset).  First
run also trains the model zoo.
"""

from repro.experiments import table2_accuracy


def test_table2_accuracy(run_once):
    result = run_once(table2_accuracy.run)
    for dataset, models in result.cells.items():
        for model, cells in models.items():
            key = (dataset, model)
            # FIGNA tracks the weight-only reference closely.
            assert abs(cells["figna"].drop_percent) < 1.0, key
            # VS-Quant without retraining collapses hardest (tens of
            # percent on paper-scale models; the scaled-down twins are
            # less brittle but the ordering is unambiguous).
            assert cells["vs-quant"].drop_percent <= cells["figna"].drop_percent, key
            assert cells["vs-quant"].drop_percent < -0.3, key
            # Anda's savings beat FIGNA's 1.23x at both tolerances.
            assert cells["anda-0.1%"].bops_saving > 1.23, key
            assert cells["anda-1%"].bops_saving >= cells["anda-0.1%"].bops_saving, key
            # The loose tolerance keeps accuracy in a sane band on
            # held-out data (the paper notes slight exceedances are
            # expected: calibration != validation).
            assert cells["anda-1%"].drop_percent > -5.0, key
