"""Bench: regenerate Table III (Anda area/power breakdown)."""

import pytest

from repro.experiments import table3_breakdown
from repro.experiments.table3_breakdown import PAPER_TABLE3, PAPER_TOTAL


def test_table3_breakdown(run_once):
    result = run_once(table3_breakdown.run)
    breakdown = result.breakdown
    assert breakdown.total_area_mm2 == pytest.approx(PAPER_TOTAL[0], rel=0.05)
    assert breakdown.total_power_mw == pytest.approx(PAPER_TOTAL[1], rel=0.05)
    # Anchored components match closely; structural ones within 2.5x.
    for name, (paper_area, paper_power) in PAPER_TABLE3.items():
        comp = breakdown.component(name)
        assert comp.area_mm2 == pytest.approx(paper_area, rel=0.8), name
        assert comp.power_mw == pytest.approx(paper_power, rel=0.8, abs=0.05), name
    # Headline shape: SRAM dominates area, MXU dominates power.
    assert breakdown.area_share("Activation Buffer") > 0.3
    assert breakdown.power_share("MXU") > 0.5
