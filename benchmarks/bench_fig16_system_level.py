"""Bench: regenerate Fig. 16 (system-level speedup/area/energy).

Paper geomeans to compare against: Anda 2.14x/2.49x speedup,
3.47x/4.03x area efficiency, 3.07x/3.16x energy efficiency at
0.1%/1% loss.
"""

from repro.experiments import fig16_system_level


def test_fig16_system_level(run_once):
    result = run_once(fig16_system_level.run)
    speed_01 = result.geomean("Anda (0.1%)", "speedup")
    speed_1 = result.geomean("Anda (1%)", "speedup")
    # Shape: looser tolerance is faster; both beat every baseline.
    assert speed_1 >= speed_01 > result.geomean("FIGNA-M11", "speedup") * 0.95
    assert 1.6 < speed_01 < 3.2
    assert 1.8 < speed_1 < 3.5
    # Energy efficiency: Anda clearly above the best FIGNA variant.
    energy_1 = result.geomean("Anda (1%)", "energy_efficiency")
    assert energy_1 > result.geomean("FIGNA-M8", "energy_efficiency") * 1.3
    assert 2.4 < energy_1 < 4.0
    # Area efficiency: Anda above FIGNA (bit-parallel full-mantissa).
    area_1 = result.geomean("Anda (1%)", "area_efficiency")
    assert area_1 > result.geomean("FIGNA", "area_efficiency")
    assert 2.8 < area_1 < 5.0
    # Fixed baselines sit at 1.0x speedup by construction (Sec. V-A).
    assert abs(result.geomean("FIGNA", "speedup") - 1.0) < 0.01
