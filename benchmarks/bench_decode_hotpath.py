"""Decode hot-path microbenchmark: amortized KV storage vs the O(L) path.

Measures what one batched decode step costs as context grows, isolating
the Python-side KV re-materialization the serving loop used to pay:

* **reference** storage — per-append ``np.concatenate`` plus a full
  float16 -> float32 re-dequantization of the whole history every
  layer, every step (``ReferenceKVCache`` / ``gather_reference``, the
  exact pre-optimization implementations);
* **optimized** storage — preallocated capacity-doubling buffers with
  memoized incremental dequant views (unpaged), and the vectorized
  fancy-index gather into persistent per-sequence scratch (paged).

Each ``{fp16, anda} x {unpaged, paged}`` cell prefills ``--batch``
requests to a context length, then times ``forward_decode_batch`` steps
on both storages and checks their logits are **bitwise identical** —
the speedup is pure allocation/copy savings, never a numerics change.
Per-step ``kv_copy_bytes`` / ``kv_dequant_bytes`` (from
``repro.llm.attention.HOT_PATH_STATS``) are recorded alongside latency:
the reference bytes grow with context, the optimized bytes stay flat.

Results land in ``BENCH_decode_hotpath.json``;
``benchmarks/check_bench_regression.py --decode-hotpath`` gates the
speedups against ``benchmarks/baselines/decode_hotpath.json`` in CI so
future PRs cannot silently reintroduce O(history) work per step.

Usage::

    python benchmarks/bench_decode_hotpath.py                 # full sweep
    python benchmarks/bench_decode_hotpath.py --smoke         # CI-sized run
    python benchmarks/bench_decode_hotpath.py --seq-lens 128,512
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.llm.attention import HOT_PATH_STATS, ReferenceKVCache  # noqa: E402
from repro.llm.config import tiny_test_config  # noqa: E402
from repro.llm.kv_quant import make_cache_factory, make_kv_codec  # noqa: E402
from repro.llm.transformer import CausalLM, build_model  # noqa: E402
from repro.serve.kvpool.paged import PagedKVCache  # noqa: E402
from repro.serve.kvpool.pool import DEFAULT_BLOCK_SIZE, KVPool  # noqa: E402

#: Decode batch the acceptance criterion is stated at.
DEFAULT_BATCH = 8
#: Anda KV mantissa length (the serving default).
MANTISSA_BITS = 8
#: Context lengths before the timed decode window.
SEQ_LENS_DEFAULT = (128, 512)
SEQ_LENS_SMOKE = (512,)
#: Timed decode steps (after warmup).
STEPS_DEFAULT = 16
STEPS_SMOKE = 8
WARMUP_STEPS = 2


class _ReferencePagedKVCache(PagedKVCache):
    """Paged cache whose reads use the pre-optimization block-loop gather."""

    __slots__ = ()

    def view(self) -> tuple[np.ndarray, np.ndarray]:
        return self._sequence.gather_reference(self._layer, self._length)


def build_bench_model() -> CausalLM:
    """A small LLaMA-style model with headroom for long contexts.

    ``d_model=128`` with 2 heads gives ``head_dim=64`` — the Anda
    group size and the hardware word the rest of the stack models —
    so the anda codec runs its unpadded fast path, as it would on a
    real serving geometry.
    """
    config = replace(
        tiny_test_config(family="llama", d_model=128, n_layers=2, seed=7),
        max_seq_len=1024,
    )
    return build_model(config)


def build_request_caches(
    model: CausalLM,
    kv_mode: str,
    paged: bool,
    reference: bool,
    prompts: np.ndarray,
    decode_steps: int,
) -> list[list]:
    """Per-request per-layer caches, prefilled with each request's prompt."""
    batch, seq_len = prompts.shape
    if paged:
        blocks_per_request = -(-(seq_len + decode_steps) // DEFAULT_BLOCK_SIZE) + 1
        pool = KVPool(
            model.config,
            num_blocks=batch * blocks_per_request + 2,
            codec=make_kv_codec(kv_mode, MANTISSA_BITS),
            enable_prefix_cache=False,
        )
        sequences = [pool.create_sequence(prompt) for prompt in prompts]
        if reference:
            for sequence in sequences:
                sequence.caches = [
                    _ReferencePagedKVCache(sequence, layer)
                    for layer in range(pool.n_layers)
                ]
        all_caches = [sequence.caches for sequence in sequences]
    elif reference:
        codec = make_kv_codec(kv_mode, MANTISSA_BITS)
        all_caches = [
            [ReferenceKVCache(codec=codec) for _ in model.blocks] for _ in prompts
        ]
    else:
        factory = make_cache_factory(model, kv_mode, MANTISSA_BITS)
        all_caches = [factory() for _ in prompts]
    for prompt, caches in zip(prompts, all_caches):
        model.forward_step(prompt.reshape(1, -1), caches)
    return all_caches


def run_decode(
    model: CausalLM, all_caches: list[list], token_rows: list[np.ndarray]
) -> tuple[list[np.ndarray], float, tuple[int, int]]:
    """Run scripted decode steps; time and meter the post-warmup window."""
    logits_per_step: list[np.ndarray] = []
    elapsed = 0.0
    copy0 = dequant0 = 0
    for step, tokens in enumerate(token_rows):
        if step == WARMUP_STEPS:
            copy0, dequant0 = HOT_PATH_STATS.snapshot()
            started = time.perf_counter()
        logits = model.forward_decode_batch(tokens, all_caches)
        if step >= WARMUP_STEPS:
            elapsed = time.perf_counter() - started
        logits_per_step.append(logits)
    copy1, dequant1 = HOT_PATH_STATS.snapshot()
    return logits_per_step, elapsed, (copy1 - copy0, dequant1 - dequant0)


def bench_cell(
    model: CausalLM,
    kv_mode: str,
    paged: bool,
    seq_len: int,
    batch: int,
    steps: int,
    repeats: int = 1,
) -> dict:
    """Reference-vs-optimized comparison for one (kv, storage, seq) cell.

    Each variant's timed window runs ``repeats`` times from freshly
    prefilled caches and keeps the *minimum* elapsed time — the
    standard microbenchmark defence against scheduler noise, which
    matters because CI gates the reference/optimized ratio.  Decoding
    is deterministic, so parity is checked on every repeat.
    """
    rng = np.random.default_rng(11 * seq_len + (17 if paged else 0))
    vocab = model.config.vocab_size
    prompts = rng.integers(0, vocab, size=(batch, seq_len))
    total_steps = WARMUP_STEPS + steps
    token_rows = [rng.integers(0, vocab, size=(batch, 1)) for _ in range(total_steps)]

    outputs = {}
    for label, reference in (("reference", True), ("optimized", False)):
        best = None
        for _ in range(repeats):
            all_caches = build_request_caches(
                model, kv_mode, paged, reference, prompts, total_steps
            )
            logits, seconds, counters = run_decode(model, all_caches, token_rows)
            if best is not None and not all(
                np.array_equal(a, b) for a, b in zip(best[0], logits)
            ):
                raise AssertionError(f"{label} decode is not deterministic")
            if best is None or seconds < best[1]:
                best = (logits, seconds, counters)
        outputs[label] = best

    ref_logits, ref_seconds, (ref_copy, ref_dequant) = outputs["reference"]
    opt_logits, opt_seconds, (opt_copy, opt_dequant) = outputs["optimized"]
    # Bit equality, not == (which would let -0.0 / +0.0 slip through).
    parity = all(
        ref.tobytes() == opt.tobytes() for ref, opt in zip(ref_logits, opt_logits)
    )
    return {
        "kv_mode": kv_mode,
        "paged": paged,
        "seq_len": seq_len,
        "batch_size": batch,
        "decode_steps": steps,
        "ms_per_step_reference": ref_seconds / steps * 1e3,
        "ms_per_step_optimized": opt_seconds / steps * 1e3,
        "speedup": ref_seconds / opt_seconds if opt_seconds > 0 else float("inf"),
        "reference_kv_copy_bytes_per_step": ref_copy / steps,
        "optimized_kv_copy_bytes_per_step": opt_copy / steps,
        "reference_kv_dequant_bytes_per_step": ref_dequant / steps,
        "optimized_kv_dequant_bytes_per_step": opt_dequant / steps,
        "parity": bool(parity),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--batch", type=int, default=DEFAULT_BATCH, help="decode batch size"
    )
    parser.add_argument(
        "--seq-lens",
        type=str,
        default=None,
        help="comma-separated context lengths (default 128,512; 512 with --smoke)",
    )
    parser.add_argument(
        "--steps", type=int, default=None, help="timed decode steps per cell"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repeats per variant; minimum elapsed is kept "
        "(default 3, 5 with --smoke: CI runners are noisy and the "
        "gated ratio rides on the minima)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_decode_hotpath.json"),
        help="result JSON path",
    )
    args = parser.parse_args(argv)
    if args.seq_lens is not None:
        seq_lens = tuple(int(part) for part in args.seq_lens.split(","))
    else:
        seq_lens = SEQ_LENS_SMOKE if args.smoke else SEQ_LENS_DEFAULT
    steps = args.steps or (STEPS_SMOKE if args.smoke else STEPS_DEFAULT)
    repeats = args.repeats or (5 if args.smoke else 3)

    model = build_bench_model()
    results = []
    for seq_len in seq_lens:
        for kv_mode in ("fp16", "anda"):
            for paged in (False, True):
                row = bench_cell(
                    model, kv_mode, paged, seq_len, args.batch, steps, repeats
                )
                results.append(row)
                storage = "paged" if paged else "unpaged"
                print(
                    f"seq={seq_len:4d} kv={kv_mode:5s} {storage:7s}: "
                    f"ref {row['ms_per_step_reference']:8.2f} ms/step -> "
                    f"opt {row['ms_per_step_optimized']:8.2f} ms/step "
                    f"({row['speedup']:.2f}x, parity={row['parity']})"
                )
                if not row["parity"]:
                    print("FAIL decode logits diverged from the reference storage")
                    return 1

    payload = {
        "benchmark": "decode_hotpath",
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "smoke": args.smoke,
        "batch_size": args.batch,
        "mantissa_bits": MANTISSA_BITS,
        "results": results,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
