"""Decode hot-path microbenchmark: amortized KV storage vs the O(L) path.

Measures what one batched decode step costs as context grows, isolating
the Python-side KV re-materialization the serving loop used to pay:

* **reference** storage — per-append ``np.concatenate`` plus a full
  float16 -> float32 re-dequantization of the whole history every
  layer, every step (``ReferenceKVCache`` / ``gather_reference``, the
  exact pre-optimization implementations);
* **optimized** storage — preallocated capacity-doubling buffers with
  memoized incremental dequant views (unpaged), and the vectorized
  fancy-index gather into persistent per-sequence scratch (paged).

Each ``{fp16, anda} x {unpaged, paged}`` cell prefills ``--batch``
requests to a context length, then times ``forward_decode_batch`` steps
on both storages and checks their logits are **bitwise identical** —
the speedup is pure allocation/copy savings, never a numerics change.
Per-step ``kv_copy_bytes`` / ``kv_dequant_bytes`` (from
``repro.llm.attention.HOT_PATH_STATS``) are recorded alongside latency:
the reference bytes grow with context, the optimized bytes stay flat.

A second, scaled-up scenario measures **grouped batched attention**
(``--grouped-batch 32`` requests at ``--grouped-seq 2048`` context):
per-request decode vs ``BucketedAttention`` dispatch on the same
optimized storage.  The gated quantity is structural, not a wall-clock
ratio: attention pipeline launches per step drop from
``layers x batch`` to ``layers x buckets`` (``ATTENTION_STATS``
deltas), with the two variants' logits again bitwise identical.

Results land in ``BENCH_decode_hotpath.json``;
``benchmarks/check_bench_regression.py --decode-hotpath`` gates the
speedups and dispatch counts against
``benchmarks/baselines/decode_hotpath.json`` in CI so future PRs
cannot silently reintroduce O(history) copies — or O(batch) attention
dispatches — per step.

Usage::

    python benchmarks/bench_decode_hotpath.py                 # full sweep
    python benchmarks/bench_decode_hotpath.py --smoke         # CI-sized run
    python benchmarks/bench_decode_hotpath.py --seq-lens 128,512
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.anda import (  # noqa: E402
    fake_quantize_batch,
    fake_quantize_batch_reference,
)
from repro.llm.attention import (  # noqa: E402
    ATTENTION_STATS,
    HOT_PATH_STATS,
    AttentionDispatchStats,
    BucketedAttention,
    KVHotPathStats,
    ReferenceKVCache,
    stats_scope,
)
from repro.llm.config import tiny_test_config  # noqa: E402
from repro.llm.kv_quant import make_cache_factory, make_kv_codec  # noqa: E402
from repro.llm.transformer import CausalLM, build_model  # noqa: E402
from repro.serve.kvpool.paged import PagedKVCache  # noqa: E402
from repro.serve.kvpool.pool import DEFAULT_BLOCK_SIZE, KVPool  # noqa: E402
from repro.serve.telemetry import StepTracer  # noqa: E402

#: Decode batch the acceptance criterion is stated at.
DEFAULT_BATCH = 8
#: Anda KV mantissa length (the serving default).
MANTISSA_BITS = 8
#: Context lengths before the timed decode window.
SEQ_LENS_DEFAULT = (128, 512)
SEQ_LENS_SMOKE = (512,)
#: Timed decode steps (after warmup).
STEPS_DEFAULT = 16
STEPS_SMOKE = 8
WARMUP_STEPS = 2

#: Grouped-attention scenario: the scale the O(batch) -> O(buckets)
#: dispatch reduction is stated at.
GROUPED_BATCH = 32
GROUPED_SEQ = 2048
GROUPED_STEPS_DEFAULT = 8
GROUPED_STEPS_SMOKE = 4
#: One cell per storage backend (fp16 unpaged + anda paged) bounds the
#: scenario's cost while still covering both view() implementations.
GROUPED_CELLS = (("fp16", False), ("anda", True))
#: Prompt positions per prefill call while building the scenario's
#: caches: chunking keeps the O(L^2) mask/score intermediates bounded
#: (a monolithic 2048-position prefill is ~4x slower here).
PREFILL_CHUNK = 512


class _ReferencePagedKVCache(PagedKVCache):
    """Paged cache whose reads use the pre-optimization block-loop gather."""

    __slots__ = ()

    def view(self) -> tuple[np.ndarray, np.ndarray]:
        return self._sequence.gather_reference(self._layer, self._length)


def build_bench_model(max_seq_len: int = 1024) -> CausalLM:
    """A small LLaMA-style model with headroom for long contexts.

    ``d_model=128`` with 2 heads gives ``head_dim=64`` — the Anda
    group size and the hardware word the rest of the stack models —
    so the anda codec runs its unpadded fast path, as it would on a
    real serving geometry.  The grouped scenario passes a larger
    ``max_seq_len`` for its 2k contexts.
    """
    config = replace(
        tiny_test_config(family="llama", d_model=128, n_layers=2, seed=7),
        max_seq_len=max_seq_len,
    )
    return build_model(config)


def build_request_caches(
    model: CausalLM,
    kv_mode: str,
    paged: bool,
    reference: bool,
    prompts: np.ndarray,
    decode_steps: int,
    prefill_chunk: int | None = None,
) -> list[list]:
    """Per-request per-layer caches, prefilled with each request's prompt."""
    batch, seq_len = prompts.shape
    if paged:
        blocks_per_request = -(-(seq_len + decode_steps) // DEFAULT_BLOCK_SIZE) + 1
        pool = KVPool(
            model.config,
            num_blocks=batch * blocks_per_request + 2,
            codec=make_kv_codec(kv_mode, MANTISSA_BITS),
            enable_prefix_cache=False,
        )
        sequences = [pool.create_sequence(prompt) for prompt in prompts]
        if reference:
            for sequence in sequences:
                sequence.caches = [
                    _ReferencePagedKVCache(sequence, layer)
                    for layer in range(pool.n_layers)
                ]
        all_caches = [sequence.caches for sequence in sequences]
    elif reference:
        codec = make_kv_codec(kv_mode, MANTISSA_BITS)
        all_caches = [
            [ReferenceKVCache(codec=codec) for _ in model.blocks] for _ in prompts
        ]
    else:
        factory = make_cache_factory(model, kv_mode, MANTISSA_BITS)
        all_caches = [factory() for _ in prompts]
    for prompt, caches in zip(prompts, all_caches):
        row = prompt.reshape(1, -1)
        if prefill_chunk is None:
            model.forward_step(row, caches)
        else:
            for start in range(0, row.shape[1], prefill_chunk):
                model.forward_step(row[:, start : start + prefill_chunk], caches)
    return all_caches


def run_decode(
    model: CausalLM,
    all_caches: list[list],
    token_rows: list[np.ndarray],
    dispatcher: BucketedAttention | None = None,
) -> tuple[list[np.ndarray], float, tuple[int, int], int]:
    """Run scripted decode steps; time and meter the post-warmup window.

    Returns per-step logits, the timed window's elapsed seconds, the
    window's ``(copy, dequant)`` byte deltas and its attention-dispatch
    delta (``ATTENTION_STATS`` launches across the timed steps).
    """
    logits_per_step: list[np.ndarray] = []
    elapsed = 0.0
    copy0 = dequant0 = dispatch0 = 0
    for step, tokens in enumerate(token_rows):
        if step == WARMUP_STEPS:
            copy0, dequant0 = HOT_PATH_STATS.snapshot()
            dispatch0 = ATTENTION_STATS.dispatches
            started = time.perf_counter()
        logits = model.forward_decode_batch(tokens, all_caches, dispatcher=dispatcher)
        if step >= WARMUP_STEPS:
            elapsed = time.perf_counter() - started
        logits_per_step.append(logits)
    copy1, dequant1 = HOT_PATH_STATS.snapshot()
    dispatches = ATTENTION_STATS.dispatches - dispatch0
    return logits_per_step, elapsed, (copy1 - copy0, dequant1 - dequant0), dispatches


def bench_cell(
    model: CausalLM,
    kv_mode: str,
    paged: bool,
    seq_len: int,
    batch: int,
    steps: int,
    repeats: int = 1,
) -> dict:
    """Reference-vs-optimized comparison for one (kv, storage, seq) cell.

    Each variant's timed window runs ``repeats`` times from freshly
    prefilled caches and keeps the *minimum* elapsed time — the
    standard microbenchmark defence against scheduler noise, which
    matters because CI gates the reference/optimized ratio.  Decoding
    is deterministic, so parity is checked on every repeat.
    """
    rng = np.random.default_rng(11 * seq_len + (17 if paged else 0))
    vocab = model.config.vocab_size
    prompts = rng.integers(0, vocab, size=(batch, seq_len))
    total_steps = WARMUP_STEPS + steps
    token_rows = [rng.integers(0, vocab, size=(batch, 1)) for _ in range(total_steps)]

    outputs = {}
    for label, reference in (("reference", True), ("optimized", False)):
        best = None
        for _ in range(repeats):
            all_caches = build_request_caches(
                model, kv_mode, paged, reference, prompts, total_steps
            )
            logits, seconds, counters, dispatches = run_decode(
                model, all_caches, token_rows
            )
            if best is not None and not all(
                np.array_equal(a, b) for a, b in zip(best[0], logits)
            ):
                raise AssertionError(f"{label} decode is not deterministic")
            if best is None or seconds < best[1]:
                best = (logits, seconds, counters, dispatches)
        outputs[label] = best

    ref_logits, ref_seconds, (ref_copy, ref_dequant), _ = outputs["reference"]
    opt_logits, opt_seconds, (opt_copy, opt_dequant), opt_dispatches = outputs[
        "optimized"
    ]
    # Bit equality, not == (which would let -0.0 / +0.0 slip through).
    parity = all(
        ref.tobytes() == opt.tobytes() for ref, opt in zip(ref_logits, opt_logits)
    )
    return {
        "kv_mode": kv_mode,
        "paged": paged,
        "seq_len": seq_len,
        "batch_size": batch,
        "decode_steps": steps,
        "ms_per_step_reference": ref_seconds / steps * 1e3,
        "ms_per_step_optimized": opt_seconds / steps * 1e3,
        "speedup": ref_seconds / opt_seconds if opt_seconds > 0 else float("inf"),
        "reference_kv_copy_bytes_per_step": ref_copy / steps,
        "optimized_kv_copy_bytes_per_step": opt_copy / steps,
        "reference_kv_dequant_bytes_per_step": ref_dequant / steps,
        "optimized_kv_dequant_bytes_per_step": opt_dequant / steps,
        "attention_dispatches_per_step": opt_dispatches // steps,
        "parity": bool(parity),
    }


def bench_grouped_cell(
    model: CausalLM,
    kv_mode: str,
    paged: bool,
    seq_len: int,
    batch: int,
    steps: int,
    repeats: int = 1,
    pad_waste_cap: float = 0.125,
) -> dict:
    """Per-request vs grouped attention dispatch for one scaled-up cell.

    Both variants run the *optimized* storage; what changes is the
    attention dispatch shape: ``layers x batch`` per-request core calls
    vs ``layers x buckets`` bucket launches.  The scripted decode is
    deterministic and the bench prompts share one context length, so
    the planner resolves to a known bucket count
    (``planned_buckets``) the regression gate can check structurally —
    and the two variants' logits must stay bitwise identical, which is
    the grouped path's whole contract.
    """
    rng = np.random.default_rng(23 * seq_len + (29 if paged else 0))
    vocab = model.config.vocab_size
    prompts = rng.integers(0, vocab, size=(batch, seq_len))
    total_steps = WARMUP_STEPS + steps
    token_rows = [rng.integers(0, vocab, size=(batch, 1)) for _ in range(total_steps)]

    outputs = {}
    for label, grouped in (("per_request", False), ("grouped", True)):
        best = None
        for _ in range(repeats):
            # Fresh dispatcher per repeat: its workspaces are keyed on
            # the (fresh) caches' uids, so reuse would only hold dead
            # entries.
            dispatcher = BucketedAttention(pad_waste_cap) if grouped else None
            all_caches = build_request_caches(
                model,
                kv_mode,
                paged,
                False,
                prompts,
                total_steps,
                prefill_chunk=PREFILL_CHUNK,
            )
            logits, seconds, _, dispatches = run_decode(
                model, all_caches, token_rows, dispatcher=dispatcher
            )
            if best is not None and not all(
                np.array_equal(a, b) for a, b in zip(best[0], logits)
            ):
                raise AssertionError(f"{label} decode is not deterministic")
            if best is None or seconds < best[1]:
                best = (logits, seconds, dispatches)
        outputs[label] = best

    request_logits, request_seconds, request_dispatches = outputs["per_request"]
    grouped_logits, grouped_seconds, grouped_dispatches = outputs["grouped"]
    parity = all(
        a.tobytes() == b.tobytes() for a, b in zip(request_logits, grouped_logits)
    )
    # Every timed step decodes the same batch at uniform lengths, so the
    # dispatch deltas divide evenly; a remainder would mean a stray
    # attention launch leaked into the window.
    if request_dispatches % steps or grouped_dispatches % steps:
        raise AssertionError("attention dispatches not uniform across timed steps")
    planned = BucketedAttention(pad_waste_cap).plan(
        [seq_len + WARMUP_STEPS + 1] * batch
    )
    return {
        "kv_mode": kv_mode,
        "paged": paged,
        "seq_len": seq_len,
        "batch_size": batch,
        "decode_steps": steps,
        "n_layers": model.config.n_layers,
        "ms_per_step_per_request": request_seconds / steps * 1e3,
        "ms_per_step_grouped": grouped_seconds / steps * 1e3,
        "grouped_speedup": (
            request_seconds / grouped_seconds if grouped_seconds > 0 else float("inf")
        ),
        "attention_dispatches_per_step_per_request": request_dispatches // steps,
        "attention_dispatches_per_step_grouped": grouped_dispatches // steps,
        "planned_buckets": planned.num_buckets,
        "parity": bool(parity),
    }


def bench_codec_cell(
    model: CausalLM,
    seq_len: int,
    batch: int,
    steps: int,
    repeats: int = 1,
) -> dict:
    """Vectorized vs reference Anda codec on the decode hot-path shape.

    Times exactly the tensor the batched decode path compresses once
    per layer per step — the stacked K+V single-position batch,
    ``(2 x batch, heads, 1, head_dim)`` — through the vectorized
    truncate-mode pipeline and through the pre-vectorization
    field-decomposition reference, over ``n_layers`` calls per step.
    The stored float16 bytes (what the KV caches persist) must be
    **bitwise identical** between the two; the speedup is pure dispatch
    fusion, never a numerics change.

    ``codec_step_share`` reports what fraction of a real optimized
    anda decode step (same batch, ``seq_len`` context) the vectorized
    codec accounts for — the Amdahl bound on further codec work.
    """
    config = model.config
    n_layers = config.n_layers
    rng = np.random.default_rng(41 * seq_len + batch)
    shape = (2 * batch, config.n_heads, 1, config.head_dim)
    total_steps = WARMUP_STEPS + steps
    # One activation-scaled tensor per layer per step, like the live path.
    tensors = [
        [
            (
                rng.normal(size=shape)
                * 10 ** (rng.normal(size=shape) / 2)
            ).astype(np.float32)
            for _ in range(n_layers)
        ]
        for _ in range(total_steps)
    ]

    outputs = {}
    for label, codec in (
        ("reference", fake_quantize_batch_reference),
        ("vectorized", fake_quantize_batch),
    ):
        best = None
        for _ in range(repeats):
            outs: list[np.ndarray] = []
            started = 0.0
            elapsed = 0.0
            for step, layer_tensors in enumerate(tensors):
                if step == WARMUP_STEPS:
                    started = time.perf_counter()
                for tensor in layer_tensors:
                    outs.append(codec(tensor, MANTISSA_BITS))
                if step >= WARMUP_STEPS:
                    elapsed = time.perf_counter() - started
            if best is None or elapsed < best[1]:
                best = (outs, elapsed)
        outputs[label] = best

    ref_outs, ref_seconds = outputs["reference"]
    vec_outs, vec_seconds = outputs["vectorized"]
    # Stored-byte parity: the float16 rows the KV caches persist.
    parity = all(
        ref.astype(np.float16).tobytes() == vec.astype(np.float16).tobytes()
        for ref, vec in zip(ref_outs, vec_outs)
    )

    # Codec share of a real optimized anda decode step at this context.
    prompts = rng.integers(0, config.vocab_size, size=(batch, seq_len))
    token_rows = [
        rng.integers(0, config.vocab_size, size=(batch, 1))
        for _ in range(total_steps)
    ]
    all_caches = build_request_caches(
        model, "anda", False, False, prompts, total_steps
    )
    _, decode_seconds, _, _ = run_decode(model, all_caches, token_rows)

    vec_ms = vec_seconds / steps * 1e3
    decode_ms = decode_seconds / steps * 1e3
    return {
        "seq_len": seq_len,
        "batch_size": batch,
        "decode_steps": steps,
        "n_layers": n_layers,
        "mantissa_bits": MANTISSA_BITS,
        "ms_per_step_reference": ref_seconds / steps * 1e3,
        "ms_per_step_vectorized": vec_ms,
        "codec_speedup": (
            ref_seconds / vec_seconds if vec_seconds > 0 else float("inf")
        ),
        "decode_ms_per_step": decode_ms,
        "codec_step_share": vec_ms / decode_ms if decode_ms > 0 else 0.0,
        "parity": bool(parity),
    }


def bench_telemetry_overhead(
    model: CausalLM,
    kv_mode: str,
    seq_len: int,
    batch: int,
    steps: int,
    repeats: int = 1,
) -> dict:
    """Decode-step cost of the telemetry plumbing, off and on.

    The same scripted decode window runs three ways on the optimized
    unpaged storage:

    * ``unscoped`` — stat increments hit the module globals (the
      pre-telemetry hot path, and still the path for direct model
      calls);
    * ``scoped`` — inside ``stats_scope(..., tracer=None)``, exactly
      what every ``Engine.step`` installs with telemetry *disabled*:
      the increments pay one contextvar load and every span site pays
      one ``is not None`` check;
    * ``traced`` — a live :class:`StepTracer` recording span events.

    ``check_bench_regression.py`` gates ``disabled_overhead_ratio`` at
    <= 2%: enabling the telemetry *capability* must stay free; only
    actually tracing may cost.  Logits from all three runs must be
    bitwise identical — telemetry never touches numerics.

    Measurement discipline: the gated ratio is ~1.00, far below runner
    noise, so the three variants advance *in lockstep* — three cache
    sets, one step of each timed back-to-back within the same few
    milliseconds, with the in-step order rotating to cancel
    cache-warmth bias — and the reported ratio is the **median of the
    paired per-step ratios**.  Window sums or floors-of-minima proved
    an order of magnitude noisier on shared runners: a mid-window
    interruption or a multi-second slow phase lands on one variant's
    whole window, while a paired ratio only sees jitter *between* two
    adjacent ~ms measurements.
    """
    rng = np.random.default_rng(31 * seq_len)
    vocab = model.config.vocab_size
    prompts = rng.integers(0, vocab, size=(batch, seq_len))
    total_steps = WARMUP_STEPS + steps
    token_rows = [rng.integers(0, vocab, size=(batch, 1)) for _ in range(total_steps)]
    labels = ("unscoped", "scoped", "traced")

    samples: dict[str, list[float]] = {label: [] for label in labels}
    logits_by_label: dict[str, list[np.ndarray]] = {label: [] for label in labels}
    for _ in range(repeats):
        caches = {
            label: build_request_caches(
                model, kv_mode, False, False, prompts, total_steps
            )
            for label in labels
        }
        scopes = {
            "scoped": (KVHotPathStats(), AttentionDispatchStats(), None),
            "traced": (KVHotPathStats(), AttentionDispatchStats(), StepTracer()),
        }
        for step, tokens in enumerate(token_rows):
            for offset in range(len(labels)):
                label = labels[(step + offset) % len(labels)]
                if label == "unscoped":
                    started = time.perf_counter()
                    logits = model.forward_decode_batch(tokens, caches[label])
                    elapsed = time.perf_counter() - started
                else:
                    with stats_scope(*scopes[label]):
                        started = time.perf_counter()
                        logits = model.forward_decode_batch(tokens, caches[label])
                        elapsed = time.perf_counter() - started
                if step >= WARMUP_STEPS:
                    samples[label].append(elapsed)
                logits_by_label[label].append(logits)

    reference = logits_by_label["unscoped"]
    parity = all(
        all(
            a.tobytes() == b.tobytes()
            for a, b in zip(reference, logits_by_label[label])
        )
        for label in ("scoped", "traced")
    )
    unscoped_ms = min(samples["unscoped"]) * 1e3
    scoped_ms = min(samples["scoped"]) * 1e3
    traced_ms = min(samples["traced"]) * 1e3
    scoped_ratios = sorted(
        scoped / unscoped
        for scoped, unscoped in zip(samples["scoped"], samples["unscoped"])
    )
    traced_ratios = sorted(
        traced / unscoped
        for traced, unscoped in zip(samples["traced"], samples["unscoped"])
    )
    return {
        "kv_mode": kv_mode,
        "seq_len": seq_len,
        "batch_size": batch,
        "decode_steps": steps,
        "paired_samples": len(scoped_ratios),
        "ms_per_step_unscoped": unscoped_ms,
        "ms_per_step_scoped": scoped_ms,
        "ms_per_step_traced": traced_ms,
        "disabled_overhead_ratio": scoped_ratios[len(scoped_ratios) // 2],
        "traced_overhead_ratio": traced_ratios[len(traced_ratios) // 2],
        "parity": bool(parity),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--batch", type=int, default=DEFAULT_BATCH, help="decode batch size"
    )
    parser.add_argument(
        "--seq-lens",
        type=str,
        default=None,
        help="comma-separated context lengths (default 128,512; 512 with --smoke)",
    )
    parser.add_argument(
        "--steps", type=int, default=None, help="timed decode steps per cell"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repeats per variant; minimum elapsed is kept "
        "(default 3, 5 with --smoke: CI runners are noisy and the "
        "gated ratio rides on the minima)",
    )
    parser.add_argument(
        "--grouped-batch",
        type=int,
        default=GROUPED_BATCH,
        help="grouped-attention scenario batch size (0 skips the scenario)",
    )
    parser.add_argument(
        "--grouped-seq",
        type=int,
        default=GROUPED_SEQ,
        help="grouped-attention scenario context length",
    )
    parser.add_argument(
        "--grouped-steps",
        type=int,
        default=None,
        help="timed decode steps per grouped cell",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("BENCH_decode_hotpath.json"),
        help="result JSON path",
    )
    args = parser.parse_args(argv)
    if args.seq_lens is not None:
        seq_lens = tuple(int(part) for part in args.seq_lens.split(","))
    else:
        seq_lens = SEQ_LENS_SMOKE if args.smoke else SEQ_LENS_DEFAULT
    steps = args.steps or (STEPS_SMOKE if args.smoke else STEPS_DEFAULT)
    repeats = args.repeats or (5 if args.smoke else 3)
    grouped_steps = args.grouped_steps or (
        GROUPED_STEPS_SMOKE if args.smoke else GROUPED_STEPS_DEFAULT
    )
    # The grouped scenario's gated metrics (dispatch counts, parity) are
    # deterministic, so it affords fewer repeats than the timing-gated
    # base cells; its wall-clock columns are informational.
    grouped_repeats = 1 if args.smoke else 2

    model = build_bench_model()
    results = []
    for seq_len in seq_lens:
        for kv_mode in ("fp16", "anda"):
            for paged in (False, True):
                row = bench_cell(
                    model, kv_mode, paged, seq_len, args.batch, steps, repeats
                )
                results.append(row)
                storage = "paged" if paged else "unpaged"
                print(
                    f"seq={seq_len:4d} kv={kv_mode:5s} {storage:7s}: "
                    f"ref {row['ms_per_step_reference']:8.2f} ms/step -> "
                    f"opt {row['ms_per_step_optimized']:8.2f} ms/step "
                    f"({row['speedup']:.2f}x, parity={row['parity']})"
                )
                if not row["parity"]:
                    print("FAIL decode logits diverged from the reference storage")
                    return 1

    grouped_results = []
    if args.grouped_batch > 0:
        grouped_model = build_bench_model(
            max_seq_len=args.grouped_seq + WARMUP_STEPS + grouped_steps + 1
        )
        for kv_mode, paged in GROUPED_CELLS:
            row = bench_grouped_cell(
                grouped_model,
                kv_mode,
                paged,
                args.grouped_seq,
                args.grouped_batch,
                grouped_steps,
                grouped_repeats,
            )
            grouped_results.append(row)
            storage = "paged" if paged else "unpaged"
            print(
                f"grouped seq={args.grouped_seq:4d} batch={args.grouped_batch:2d} "
                f"kv={kv_mode:5s} {storage:7s}: "
                f"{row['attention_dispatches_per_step_per_request']:3d} -> "
                f"{row['attention_dispatches_per_step_grouped']:3d} dispatches/step "
                f"({row['planned_buckets']} buckets, "
                f"{row['grouped_speedup']:.2f}x, parity={row['parity']})"
            )
            if not row["parity"]:
                print("FAIL grouped decode logits diverged from per-request")
                return 1

    # Codec scenario at the acceptance context (the largest measured
    # seq len, 512 by default): vectorized-vs-reference speedup with
    # stored-byte parity, plus the codec's share of a live decode step.
    codec = bench_codec_cell(model, max(seq_lens), args.batch, steps, repeats)
    print(
        f"codec seq={codec['seq_len']:4d} batch={codec['batch_size']:2d} "
        f"M={codec['mantissa_bits']}: "
        f"ref {codec['ms_per_step_reference']:6.3f} ms/step -> "
        f"vec {codec['ms_per_step_vectorized']:6.3f} ms/step "
        f"({codec['codec_speedup']:.2f}x, "
        f"{codec['codec_step_share']:.1%} of decode step, "
        f"parity={codec['parity']})"
    )
    if not codec["parity"]:
        print("FAIL vectorized codec stored bytes diverged from the reference")
        return 1

    # The overhead ratio gates at 1.02, so each variant gets at least
    # 8 x steps per-step samples for its floor regardless of the base
    # cells' repeat count.
    telemetry_overhead = bench_telemetry_overhead(
        model, "fp16", max(seq_lens), args.batch, steps, max(repeats, 8)
    )
    print(
        f"telemetry seq={telemetry_overhead['seq_len']:4d} "
        f"batch={telemetry_overhead['batch_size']:2d}: "
        f"unscoped {telemetry_overhead['ms_per_step_unscoped']:.3f} ms/step, "
        f"scoped {telemetry_overhead['ms_per_step_scoped']:.3f} "
        f"({telemetry_overhead['disabled_overhead_ratio']:.4f}x), "
        f"traced {telemetry_overhead['ms_per_step_traced']:.3f} "
        f"({telemetry_overhead['traced_overhead_ratio']:.4f}x, "
        f"parity={telemetry_overhead['parity']})"
    )
    if not telemetry_overhead["parity"]:
        print("FAIL telemetry-scoped decode logits diverged from unscoped")
        return 1

    payload = {
        "benchmark": "decode_hotpath",
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "smoke": args.smoke,
        "batch_size": args.batch,
        "mantissa_bits": MANTISSA_BITS,
        "results": results,
        "grouped_batch": args.grouped_batch,
        "grouped_seq": args.grouped_seq,
        "grouped_results": grouped_results,
        "codec": codec,
        "telemetry_overhead": telemetry_overhead,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
