"""Bench: Anda-style BFP vs shared-microexponent (MX) formats."""

from repro.experiments import ext_mx


def test_ext_mx_comparison(run_once):
    result = run_once(ext_mx.run)
    for budget in result.rmse:
        bfp_err = result.rmse[budget]["bfp"]
        mx_err = result.rmse[budget]["mx"]
        # At matched storage the two formats land in the same error
        # regime (within 2x) — microexponents buy alignment, mantissa
        # bits buy resolution; on LLM activations with a 64-wide group
        # the mantissa axis is at least as effective, which is the
        # design choice Anda makes.
        assert 0.5 < mx_err / bfp_err < 2.0
    # Perplexity: both formats converge to the FP16 reference as the
    # budget grows, and damage shrinks monotonically.
    for scheme in ("bfp", "mx"):
        ppls = [result.perplexity[b][scheme] for b in result.perplexity]
        assert ppls == sorted(ppls, reverse=True)
        assert ppls[-1] < result.reference_ppl * 1.01
