"""Bench: the design-choice ablations (storage, serial/parallel, rounding)."""

from repro.experiments import ablations


def test_ablations(run_once):
    result = run_once(ablations.run)
    storage = result.rows["storage format (energy efficiency vs FP-FP)"]
    # The bit-plane store roughly doubles the energy win of the compute
    # datapath alone — memory savings are load-bearing, as the paper
    # argues against FIGNA's FP16-resident design.
    assert storage["Anda full (bit-plane store)"] > 1.5 * storage[
        "Anda compute only (FP16 store)"
    ]
    # Without the store, Anda-compute lands near FIGNA (same idea:
    # cheap INT compute, FP16 memory).
    figna = storage["FIGNA (reference)"]
    assert abs(storage["Anda compute only (FP16 store)"] - figna) < 0.5

    serial = result.rows["bit-serial vs bit-parallel (speedup vs FP-FP)"]
    values = list(serial.values())
    # Both run well above FP-FP; the fixed bit-parallel design must be
    # synthesized at the precision ceiling, so the two land close on
    # LLaMA (narrow mantissa spread) — the win grows with spread.
    assert all(v > 1.5 for v in values)

    rounding = result.rows["rounding mode (perplexity)"]
    ref = rounding["FP16 reference"]
    # Truncation at M=5 stays within a few percent of FP16 perplexity:
    # the hardware-cheap aligner does not cost meaningful accuracy.
    assert rounding["M=5 truncate"] < ref * 1.05
    assert rounding["M=5 nearest"] < ref * 1.05
