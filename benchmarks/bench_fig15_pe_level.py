"""Bench: regenerate Fig. 15 (PE-level comparison)."""

import pytest

from repro.experiments import fig15_pe_level
from repro.experiments.fig15_pe_level import (
    PAPER_ANDA_AREA_EFF,
    PAPER_ANDA_ENERGY_EFF,
)


def test_fig15_pe_level(run_once):
    result = run_once(fig15_pe_level.run)
    # Anda-Mx efficiency points track the paper's published curves.
    for m, paper in PAPER_ANDA_AREA_EFF.items():
        assert result.area_efficiency[f"Anda-M{m}"] == pytest.approx(paper, rel=0.02)
    for m, paper in PAPER_ANDA_ENERGY_EFF.items():
        assert result.energy_efficiency[f"Anda-M{m}"] == pytest.approx(paper, rel=0.03)
    # Efficiency grows monotonically as the mantissa shortens.
    series = [result.energy_efficiency[f"Anda-M{m}"] for m in range(13, 3, -1)]
    assert series == sorted(series)
    # The independent gate model keeps INT datapaths below the FP FMA.
    assert result.modeled_area["FIGNA"] < result.modeled_area["FP-FP"]
