"""Bench: bit-plane layout regularity and DRAM burst study (Sec. IV-A)."""

from repro.experiments import ext_memory


def test_ext_memory_layout(run_once):
    result = run_once(ext_memory.run)
    # Bit-plane never loses to the element layout, at any mantissa.
    for cmp in result.layouts.values():
        assert cmp.fetch_ratio >= 1.0
        assert cmp.bitplane.bandwidth_utilization == 1.0
        assert cmp.bitplane.rotations == 0
    # The element layout's penalty grows with mantissa length: feeding
    # the bit-serial PE re-reads the whole group per plane.
    ratios = [result.layouts[m].fetch_ratio for m in sorted(result.layouts)]
    assert ratios == sorted(ratios)
    # DRAM: Anda tensors stay burst-aligned and strictly smaller than
    # FP16 for every deployed mantissa length.
    for vals in result.dram.values():
        assert vals["footprint_ratio"] > 1.0
        assert vals["burst_utilization"] > 0.99
