"""Microbenchmarks: throughput of the format codecs themselves.

Not a paper figure — these time the library's own hot paths (encode,
decode, fake-quantize, Anda GeMM) so regressions in the software
implementation are visible.  Multiple rounds, real statistics.
"""

import numpy as np
import pytest

from repro.core.anda import AndaTensor, fake_quantize
from repro.core.bitserial import anda_matvec
from repro.core.compressor import BitPlaneCompressor


@pytest.fixture(scope="module")
def activations():
    rng = np.random.default_rng(0)
    return rng.normal(size=(64, 1024)).astype(np.float32)


def test_encode_throughput(benchmark, activations):
    result = benchmark(AndaTensor.from_float, activations, 6)
    assert result.mantissa_bits == 6


def test_decode_throughput(benchmark, activations):
    tensor = AndaTensor.from_float(activations, 6)
    decoded = benchmark(tensor.decode)
    assert decoded.shape == activations.shape


def test_fake_quantize_throughput(benchmark, activations):
    out = benchmark(fake_quantize, activations, 6)
    assert out.shape == activations.shape


def test_bpc_throughput(benchmark, activations):
    compressor = BitPlaneCompressor()
    tensor, stats = benchmark(compressor.compress, activations, 6)
    assert stats.groups == 64 * 16


def test_anda_matvec_throughput(benchmark, activations):
    rng = np.random.default_rng(1)
    weights = rng.integers(-8, 8, size=(1024, 64))
    tensor = AndaTensor.from_float(activations, 6)
    out = benchmark(anda_matvec, tensor, weights)
    assert out.shape == (64, 64)
