"""Bench: regenerate Fig. 8's workflow comparison (counted annotations)."""

from repro.experiments import fig8_workflows


def test_fig8_workflows(run_once):
    result = run_once(fig8_workflows.run)
    costs = result.costs
    # "(-) repetitive conversion" — FIGNA re-converts per access, Anda
    # converts once per produced element.
    assert costs["FIGNA"].act_conversions > 0
    assert costs["Anda"].act_conversions == 0
    assert costs["FIGNA"].total_conversions > 10 * costs["Anda"].total_conversions
    # "(+) reduced memory / access cost" — Anda is the only workflow
    # below the FP16-resident footprint.
    fp16_memory = costs["GPU"].act_memory_bits
    assert costs["Anda"].act_memory_bits < 0.6 * fp16_memory
    assert costs["Anda"].act_traffic_bits < costs["FIGNA"].act_traffic_bits
    # "(-) increased computation cost" — only the GPU path dequantizes
    # weights into FP16 FMAs.
    assert costs["GPU"].weight_dequants > 0
    assert all(
        costs[w].weight_dequants == 0 for w in ("FP-INT GPU", "FIGNA", "Anda")
    )
