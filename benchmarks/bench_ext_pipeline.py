"""Bench: end-to-end transformer pipeline (the Amdahl view of Fig. 16)."""

from repro.experiments import ext_pipeline


def test_ext_pipeline(run_once):
    result = run_once(ext_pipeline.run)
    for model, cmp in result.comparisons.items():
        # Anda wins end to end, but by less than on GeMMs alone.
        assert cmp.end_to_end_speedup > 1.5
        assert cmp.gemm_speedup >= cmp.end_to_end_speedup
        assert 0.5 < cmp.amdahl_gap <= 1.0
        # Serving estimates follow.
        assert (
            result.anda[model].decode_tokens_per_s
            > result.fpfp[model].decode_tokens_per_s
        )
    # The pipeline-level mirror of Fig. 2: GeMM share falls as the
    # FP-FP attention quadratic grows.
    shares = list(result.gemm_share_by_context.values())
    assert shares == sorted(shares, reverse=True)
    assert shares[0] > 0.9  # GeMM-dominated at short context
