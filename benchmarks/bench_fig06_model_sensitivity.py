"""Bench: regenerate Fig. 6 (per-model mantissa sensitivity)."""

from repro.experiments import fig6_model_sensitivity


def test_fig6_model_sensitivity(run_once):
    result = run_once(fig6_model_sensitivity.run)
    for model, series in result.relative.items():
        # Near-lossless at 13 bits...
        assert series[13] > 0.995, model
        # ...and clearly degraded by 4 bits (the VS-Quant collapse zone).
        assert series[4] < series[13], model
        # Every model admits some 1%-loss mantissa in the sweep range.
        assert result.tolerable_bits(model, 0.01) is not None, model
