"""CI regression gate over the serving benchmark's JSON output.

Reads ``BENCH_serving.json`` (produced by ``bench_serving.py``) and a
committed baseline (``benchmarks/baselines/serving.json``), and fails
the build when the serving engine got slower or its latency tail got
worse than the baseline allows.

Two kinds of checks run:

1. **Structural** (no baseline needed): on the long-prompt workload,
   chunked prefill must beat unchunked on p95 inter-token latency in
   every KV mode.  This is the acceptance bar for chunked prefill —
   mixed steps exist to keep the decode tail flat while a long prompt
   prefills, so a build where chunking stops helping is broken however
   fast the runner is.

2. **Baseline-relative** (within ``--tolerance``, default 25%): the
   gated metrics are deliberately *machine-normalized ratios* —
   ``speedup_vs_sequential`` for throughput and the chunked/unchunked
   ``itl_p95`` ratio for latency — not absolute tokens/sec or
   milliseconds.  CI runners vary wildly in absolute speed between
   generations and even between runs; ratios measured inside one
   process on one machine cancel that out, so the gate trips on real
   regressions (a slower engine relative to its own sequential
   baseline, a fatter tail relative to its own unchunked run) instead
   of on runner lottery.

With ``--decode-hotpath`` the gate additionally checks
``BENCH_decode_hotpath.json`` (from ``bench_decode_hotpath.py``):
every cell must report bitwise parity between the reference and
optimized KV storages, the anda+paged cell at ``seq_len >= 512`` must
clear a structural 2.0x speedup floor (the decode hot-path acceptance
bar), and each baselined cell's reference/optimized ratio — again a
machine-normalized, in-process ratio — must stay inside the tolerance
band of ``benchmarks/baselines/decode_hotpath.json``.

The same file's ``grouped_results`` rows gate the grouped-attention
dispatcher: every grouped cell must report bitwise parity against the
per-request path, its dispatch counts must be *structurally* correct —
exactly ``n_layers x planned_buckets`` launches per grouped step and
``n_layers x batch_size`` per per-request step, with grouped strictly
below per-request (the O(batch) -> O(buckets) claim, checked by
counting, not timing) — and its grouped/per-request step-latency
speedup must stay inside the baseline band.

The same file's ``telemetry_overhead`` section gates the serving
telemetry subsystem structurally: decoding inside the engine's
disabled-telemetry ``stats_scope`` must cost <= 2% step latency over
the unscoped hot path (an in-process median of paired per-step
ratios, measured in lockstep so runner noise cancels), with
bitwise-identical logits across unscoped, scoped and traced runs.

Both baseline files are validated up front: a baseline missing a
required section fails with a message naming the missing keys instead
of a bare ``KeyError`` deep inside a check.

Usage::

    python benchmarks/check_bench_regression.py BENCH_serving.json
    python benchmarks/check_bench_regression.py results.json \
        --baseline benchmarks/baselines/serving.json --tolerance 0.25
    python benchmarks/check_bench_regression.py BENCH_serving.json \
        --decode-hotpath BENCH_decode_hotpath.json

Exits non-zero with a per-check report when any check fails.  To
re-baseline after an intentional perf change, edit the matching file
under ``benchmarks/baselines/`` in the same PR and say why.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "baselines" / "serving.json"
DEFAULT_DECODE_BASELINE = Path(__file__).parent / "baselines" / "decode_hotpath.json"

#: Structural floor for the decode hot path: the optimized storage must
#: at least halve step latency vs the reference O(history) storage on
#: the anda+paged cell at long context (the PR acceptance bar).
DECODE_HOTPATH_FLOOR = 2.0
DECODE_HOTPATH_FLOOR_SEQ = 512

#: Structural floor for the vectorized Anda codec: at the acceptance
#: context (512) the fused truncate-mode pipeline must beat the
#: field-decomposition reference by at least 1.5x on the decode-shape
#: stacked K+V batch, with bitwise-identical stored float16 bytes.
CODEC_SPEEDUP_FLOOR = 1.5

#: Structural ceiling on disabled-telemetry decode overhead: decoding
#: inside the engine's ``stats_scope(..., tracer=None)`` (what every
#: Engine.step installs when telemetry is off) may cost at most 2% over
#: the unscoped hot path.  The gated number is the median of paired
#: per-step ratios measured in lockstep, so runner speed and slow-phase
#: noise cancel out.
TELEMETRY_OVERHEAD_CEILING = 1.02


class CheckFailure(Exception):
    """One gated metric fell outside its allowed band."""


def require_baseline_keys(
    baseline: dict, keys: tuple[str, ...], path: str
) -> None:
    """Fail with the full list of missing sections, not a KeyError."""
    missing = [key for key in keys if key not in baseline]
    if missing:
        raise CheckFailure(
            f"baseline {path} is missing required key(s): "
            f"{', '.join(missing)} — add them (see the matching "
            "benchmark's output for the measured values)"
        )


def load_json(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError as error:
        raise SystemExit(f"missing input: {path}") from error
    except json.JSONDecodeError as error:
        raise SystemExit(f"unparseable JSON in {path}: {error}") from error


def engine_speedups(results: dict) -> dict[tuple[str, int], float]:
    """(kv_mode, batch_size) -> speedup_vs_sequential for engine rows."""
    return {
        (row["kv_mode"], row["batch_size"]): row["speedup_vs_sequential"]
        for row in results.get("results", [])
        if row.get("mode") == "engine"
    }


def long_prompt_rows(results: dict) -> dict[tuple[str, bool], dict]:
    """(kv_mode, chunked_prefill) -> long-prompt workload row."""
    return {
        (row["kv_mode"], row["chunked_prefill"]): row
        for row in results.get("long_prompt_results", [])
    }


def check_chunking_beats_unchunked(results: dict) -> list[str]:
    """Structural gate: chunked p95 ITL strictly below unchunked."""
    rows = long_prompt_rows(results)
    kv_modes = sorted({kv_mode for kv_mode, _ in rows})
    if not kv_modes:
        raise CheckFailure(
            "no long_prompt_results in the benchmark output; run "
            "bench_serving.py without --long-prompt 0"
        )
    lines = []
    for kv_mode in kv_modes:
        try:
            chunked = rows[(kv_mode, True)]
            unchunked = rows[(kv_mode, False)]
        except KeyError:
            raise CheckFailure(
                f"long-prompt workload missing a chunked/unchunked pair "
                f"for kv={kv_mode}"
            ) from None
        chunked_p95 = chunked["itl_p95_seconds"]
        unchunked_p95 = unchunked["itl_p95_seconds"]
        if chunked_p95 >= unchunked_p95:
            raise CheckFailure(
                f"chunked prefill no longer improves p95 ITL for "
                f"kv={kv_mode}: chunked {chunked_p95 * 1e3:.2f}ms >= "
                f"unchunked {unchunked_p95 * 1e3:.2f}ms"
            )
        lines.append(
            f"ok   itl p95 (kv={kv_mode}): chunked "
            f"{chunked_p95 * 1e3:.2f}ms < unchunked "
            f"{unchunked_p95 * 1e3:.2f}ms"
        )
    return lines


def check_throughput(results: dict, baseline: dict, tolerance: float) -> list[str]:
    """Engine speedup-vs-sequential must not drop below baseline band."""
    measured = engine_speedups(results)
    lines = []
    for kv_mode, by_batch in baseline.get("speedup_vs_sequential", {}).items():
        for batch_text, base in by_batch.items():
            key = (kv_mode, int(batch_text))
            if key not in measured:
                raise CheckFailure(
                    f"baseline expects an engine row for kv={kv_mode} "
                    f"batch={batch_text}, none in the benchmark output"
                )
            floor = base * (1.0 - tolerance)
            actual = measured[key]
            if actual < floor:
                raise CheckFailure(
                    f"throughput regression (kv={kv_mode}, batch="
                    f"{batch_text}): speedup {actual:.2f}x < "
                    f"{floor:.2f}x (baseline {base:.2f}x - {tolerance:.0%})"
                )
            lines.append(
                f"ok   speedup (kv={kv_mode}, batch={batch_text}): "
                f"{actual:.2f}x >= {floor:.2f}x"
            )
    return lines


def check_itl_ratio(results: dict, baseline: dict, tolerance: float) -> list[str]:
    """Chunked/unchunked p95 ITL ratio must not rise beyond baseline band."""
    rows = long_prompt_rows(results)
    lines = []
    for kv_mode, base in baseline.get("long_prompt_itl_p95_ratio", {}).items():
        row = rows.get((kv_mode, True))
        if row is None:
            raise CheckFailure(
                f"baseline expects a chunked long-prompt row for "
                f"kv={kv_mode}, none in the benchmark output"
            )
        ceiling = base * (1.0 + tolerance)
        actual = row["itl_p95_ratio_vs_unchunked"]
        if actual > ceiling:
            raise CheckFailure(
                f"p95 ITL regression (kv={kv_mode}): chunked/unchunked "
                f"ratio {actual:.2f} > {ceiling:.2f} (baseline "
                f"{base:.2f} + {tolerance:.0%})"
            )
        lines.append(f"ok   itl ratio (kv={kv_mode}): {actual:.2f} <= {ceiling:.2f}")
    return lines


def decode_hotpath_cells(results: dict) -> dict[str, dict]:
    """'kv|storage|seq' -> row for decode hot-path benchmark output."""
    cells = {}
    for row in results.get("results", []):
        storage = "paged" if row["paged"] else "unpaged"
        cells[f"{row['kv_mode']}|{storage}|{row['seq_len']}"] = row
    return cells


def check_decode_parity(results: dict) -> list[str]:
    """Structural gate: optimized storage is bitwise-identical everywhere."""
    cells = decode_hotpath_cells(results)
    if not cells:
        raise CheckFailure(
            "no results in the decode hot-path output; run "
            "bench_decode_hotpath.py first"
        )
    for name, row in sorted(cells.items()):
        if not row.get("parity"):
            raise CheckFailure(
                f"decode hot path lost bitwise parity with the reference "
                f"storage at {name}"
            )
    return [f"ok   parity: {len(cells)} decode hot-path cells bitwise-identical"]


def check_decode_floor(results: dict) -> list[str]:
    """Structural gate: anda+paged long-context speedup >= the 2x floor."""
    rows = [
        row
        for row in results.get("results", [])
        if row["kv_mode"] == "anda"
        and row["paged"]
        and row["seq_len"] >= DECODE_HOTPATH_FLOOR_SEQ
    ]
    if not rows:
        raise CheckFailure(
            f"decode hot-path output has no anda+paged cell at seq_len >= "
            f"{DECODE_HOTPATH_FLOOR_SEQ}; the acceptance cell must be measured"
        )
    lines = []
    for row in rows:
        if row["speedup"] < DECODE_HOTPATH_FLOOR:
            raise CheckFailure(
                f"decode hot path below the structural floor at anda|paged|"
                f"{row['seq_len']}: {row['speedup']:.2f}x < "
                f"{DECODE_HOTPATH_FLOOR:.1f}x"
            )
        lines.append(
            f"ok   hot-path floor (anda|paged|{row['seq_len']}): "
            f"{row['speedup']:.2f}x >= {DECODE_HOTPATH_FLOOR:.1f}x"
        )
    return lines


def check_decode_speedups(
    results: dict, baseline: dict, tolerance: float
) -> list[str]:
    """Per-cell step-latency speedup must not drop below baseline band."""
    cells = decode_hotpath_cells(results)
    lines = []
    for name, base in baseline.get("speedup", {}).items():
        row = cells.get(name)
        if row is None:
            raise CheckFailure(
                f"baseline expects a decode hot-path cell {name}, none in "
                "the benchmark output"
            )
        floor = base * (1.0 - tolerance)
        actual = row["speedup"]
        if actual < floor:
            raise CheckFailure(
                f"decode hot-path regression at {name}: speedup "
                f"{actual:.2f}x < {floor:.2f}x (baseline {base:.2f}x "
                f"- {tolerance:.0%})"
            )
        lines.append(f"ok   hot-path speedup ({name}): {actual:.2f}x >= {floor:.2f}x")
    return lines


def grouped_cells(results: dict) -> dict[str, dict]:
    """'kv|storage' -> grouped-attention scenario row."""
    cells = {}
    for row in results.get("grouped_results", []):
        storage = "paged" if row["paged"] else "unpaged"
        cells[f"{row['kv_mode']}|{storage}"] = row
    return cells


def check_grouped_attention(results: dict) -> list[str]:
    """Structural gates on the grouped-attention scenario.

    Three claims, all checkable without a baseline: the grouped path
    emits bitwise-identical logits, each grouped step launches exactly
    ``n_layers x planned_buckets`` attention dispatches (the per-request
    path exactly ``n_layers x batch_size``), and grouped launches
    strictly fewer — the O(batch) -> O(buckets) reduction verified by
    counting dispatches, which no runner lottery can fake.
    """
    cells = grouped_cells(results)
    if not cells:
        raise CheckFailure(
            "no grouped_results in the decode hot-path output; run "
            "bench_decode_hotpath.py without --grouped-batch 0"
        )
    lines = []
    for name, row in sorted(cells.items()):
        if not row.get("parity"):
            raise CheckFailure(
                f"grouped attention lost bitwise parity with the "
                f"per-request path at {name}"
            )
        grouped = row["attention_dispatches_per_step_grouped"]
        per_request = row["attention_dispatches_per_step_per_request"]
        expected_grouped = row["n_layers"] * row["planned_buckets"]
        expected_per_request = row["n_layers"] * row["batch_size"]
        if grouped != expected_grouped:
            raise CheckFailure(
                f"grouped dispatch count is not O(layers x buckets) at "
                f"{name}: {grouped} dispatches/step != {row['n_layers']} "
                f"layers x {row['planned_buckets']} buckets"
            )
        if per_request != expected_per_request:
            raise CheckFailure(
                f"per-request dispatch count is not O(layers x batch) at "
                f"{name}: {per_request} dispatches/step != "
                f"{row['n_layers']} layers x {row['batch_size']} requests"
            )
        if grouped >= per_request:
            raise CheckFailure(
                f"grouped attention launches no fewer dispatches than the "
                f"per-request path at {name}: {grouped} >= {per_request} "
                "per step"
            )
        lines.append(
            f"ok   grouped dispatches ({name}): {per_request} -> "
            f"{grouped}/step ({row['planned_buckets']} buckets, "
            f"batch {row['batch_size']})"
        )
    return lines


def check_grouped_speedups(
    results: dict, baseline: dict, tolerance: float
) -> list[str]:
    """Grouped/per-request step-latency ratio vs the baseline band."""
    cells = grouped_cells(results)
    lines = []
    for name, base in baseline.get("grouped_speedup", {}).items():
        row = cells.get(name)
        if row is None:
            raise CheckFailure(
                f"baseline expects a grouped-attention cell {name}, none "
                "in the benchmark output"
            )
        floor = base * (1.0 - tolerance)
        actual = row["grouped_speedup"]
        if actual < floor:
            raise CheckFailure(
                f"grouped attention regression at {name}: speedup "
                f"{actual:.2f}x < {floor:.2f}x (baseline {base:.2f}x "
                f"- {tolerance:.0%})"
            )
        lines.append(f"ok   grouped speedup ({name}): {actual:.2f}x >= {floor:.2f}x")
    return lines


def check_codec_vectorization(
    results: dict, baseline: dict, tolerance: float
) -> list[str]:
    """Gates on the vectorized-codec scenario.

    Structural: the stored float16 bytes must be bitwise identical to
    the reference codec (the serving stack's parity bedrock), and the
    vectorized/reference speedup must clear the 1.5x floor.  Baseline-
    relative: the same speedup — an in-process ratio, so runner speed
    cancels — must stay inside the committed band.
    """
    row = results.get("codec")
    if not row:
        raise CheckFailure(
            "no codec section in the decode hot-path output; re-run "
            "bench_decode_hotpath.py"
        )
    if not row.get("parity"):
        raise CheckFailure(
            "vectorized codec stored bytes diverged from the reference "
            "(float16 parity lost)"
        )
    actual = row["codec_speedup"]
    if actual < CODEC_SPEEDUP_FLOOR:
        raise CheckFailure(
            f"vectorized codec below the structural floor at seq="
            f"{row['seq_len']}: {actual:.2f}x < {CODEC_SPEEDUP_FLOOR:.1f}x"
        )
    lines = [
        f"ok   codec floor (seq={row['seq_len']}): {actual:.2f}x >= "
        f"{CODEC_SPEEDUP_FLOOR:.1f}x "
        f"({row['codec_step_share']:.1%} of decode step, informational)"
    ]
    base = baseline.get("codec_speedup")
    if base is not None:
        floor = base * (1.0 - tolerance)
        if actual < floor:
            raise CheckFailure(
                f"vectorized codec regression: speedup {actual:.2f}x < "
                f"{floor:.2f}x (baseline {base:.2f}x - {tolerance:.0%})"
            )
        lines.append(f"ok   codec speedup: {actual:.2f}x >= {floor:.2f}x")
    return lines


def check_telemetry_overhead(results: dict) -> list[str]:
    """Structural gates on the telemetry-overhead scenario.

    Disabled-mode telemetry (the per-engine ``stats_scope`` with no
    tracer) must cost <= 2% step latency over the unscoped hot path,
    and all three variants (unscoped / scoped / traced) must have
    produced bitwise-identical logits — instrumentation never touches
    numerics.
    """
    row = results.get("telemetry_overhead")
    if not row:
        raise CheckFailure(
            "no telemetry_overhead section in the decode hot-path output; "
            "re-run bench_decode_hotpath.py"
        )
    if not row.get("parity"):
        raise CheckFailure(
            "telemetry-scoped decode lost bitwise parity with the "
            "unscoped hot path"
        )
    ratio = row["disabled_overhead_ratio"]
    if ratio > TELEMETRY_OVERHEAD_CEILING:
        raise CheckFailure(
            f"disabled-telemetry overhead too high: scoped/unscoped step "
            f"latency {ratio:.4f} > {TELEMETRY_OVERHEAD_CEILING:.2f} "
            f"(scoped {row['ms_per_step_scoped']:.3f} ms/step vs unscoped "
            f"{row['ms_per_step_unscoped']:.3f})"
        )
    return [
        f"ok   telemetry overhead (disabled): {ratio:.4f}x <= "
        f"{TELEMETRY_OVERHEAD_CEILING:.2f}x "
        f"(traced {row['traced_overhead_ratio']:.4f}x, informational)"
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "results",
        nargs="?",
        default="BENCH_serving.json",
        help="bench_serving.py output JSON",
    )
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE),
        help="committed baseline JSON",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional drift from baseline (default 0.25)",
    )
    parser.add_argument(
        "--decode-hotpath",
        default=None,
        help="bench_decode_hotpath.py output JSON; enables the decode "
        "hot-path gates",
    )
    parser.add_argument(
        "--decode-baseline",
        default=str(DEFAULT_DECODE_BASELINE),
        help="committed decode hot-path baseline JSON",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        parser.error("--tolerance must lie in [0, 1)")

    results = load_json(Path(args.results))
    baseline = load_json(Path(args.baseline))

    try:
        report = []
        require_baseline_keys(
            baseline,
            ("speedup_vs_sequential", "long_prompt_itl_p95_ratio"),
            args.baseline,
        )
        report.extend(check_chunking_beats_unchunked(results))
        report.extend(check_throughput(results, baseline, args.tolerance))
        report.extend(check_itl_ratio(results, baseline, args.tolerance))
        if args.decode_hotpath is not None:
            decode_results = load_json(Path(args.decode_hotpath))
            decode_baseline = load_json(Path(args.decode_baseline))
            require_baseline_keys(
                decode_baseline,
                ("speedup", "grouped_speedup", "codec_speedup"),
                args.decode_baseline,
            )
            report.extend(check_decode_parity(decode_results))
            report.extend(check_decode_floor(decode_results))
            report.extend(
                check_decode_speedups(decode_results, decode_baseline, args.tolerance)
            )
            report.extend(check_grouped_attention(decode_results))
            report.extend(
                check_grouped_speedups(decode_results, decode_baseline, args.tolerance)
            )
            report.extend(
                check_codec_vectorization(
                    decode_results, decode_baseline, args.tolerance
                )
            )
            report.extend(check_telemetry_overhead(decode_results))
    except CheckFailure as failure:
        print(f"FAIL {failure}")
        print(
            "hint: if this perf change is intentional, re-baseline "
            f"{args.baseline} in the same PR and explain why"
        )
        return 1
    for line in report:
        print(line)
    print(f"bench regression gate passed ({len(report)} checks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
