"""Bench: regenerate Fig. 18 (accuracy-performance trade-off)."""

from repro.experiments import fig18_tradeoff
from repro.experiments.fig18_tradeoff import TOLERANCES


def test_fig18_tradeoff(run_once):
    result = run_once(fig18_tradeoff.run)
    for model, per_tol in result.points.items():
        speeds = [per_tol[t].speedup for t in TOLERANCES]
        energies = [per_tol[t].energy_efficiency for t in TOLERANCES]
        # Relaxing the constraint helps overall: endpoints are ordered
        # and any local dip stays small.  (Algorithm 1 is a budgeted
        # greedy search, so a looser tolerance can occasionally commit
        # to a different relaxation path and land slightly higher —
        # path dependence the paper's pseudo-code shares.)
        assert speeds[-1] > speeds[0], model
        assert energies[-1] > energies[0], model
        assert all(b >= 0.9 * a for a, b in zip(speeds, speeds[1:])), model
        assert all(b >= 0.9 * a for a, b in zip(energies, energies[1:])), model
        # Anda always beats the FP-FP baseline, even at 0.1% loss.
        assert speeds[0] > 1.3, model
        assert energies[0] > 2.0, model
