"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one paper table/figure and prints the
report, so ``pytest benchmarks/ --benchmark-only -s`` doubles as the
reproduction harness.  Model-zoo training happens lazily on first use
and is cached under ``.anda_zoo_cache/``.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer.

    The accuracy experiments carry model evaluations and searches that
    are deterministic; repeating them only burns time, so benches use a
    single round and print the rendered report.
    """

    def runner(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                                    iterations=1)
        print()
        print(result.render())
        return result

    return runner
