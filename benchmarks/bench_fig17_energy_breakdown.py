"""Bench: regenerate Fig. 17 (energy breakdown on LLaMA-13B)."""

import pytest

from repro.experiments import fig17_energy_breakdown


def test_fig17_energy_breakdown(run_once):
    result = run_once(fig17_energy_breakdown.run)
    fpfp = result.shares["FP-FP"]
    # The calibration anchor: FP-FP splits ~42/11/48.
    assert fpfp["compute"] == pytest.approx(0.42, abs=0.03)
    assert fpfp["sram"] == pytest.approx(0.11, abs=0.03)
    assert fpfp["dram"] == pytest.approx(0.48, abs=0.03)
    # FP16-storage baselines keep SRAM/DRAM cost; compute shrinks.
    for name in ("FP-INT", "iFPU", "FIGNA", "FIGNA-M11", "FIGNA-M8"):
        assert result.shares[name]["dram"] == pytest.approx(fpfp["dram"], rel=0.02)
        assert result.shares[name]["compute"] < fpfp["compute"]
    # Anda also cuts memory: DRAM roughly halves, SRAM >2x down.
    anda = result.shares["Anda (1%)"]
    assert anda["dram"] < 0.62 * fpfp["dram"]
    assert anda["sram"] < 0.62 * fpfp["sram"]
    # Overall improvement lands in the paper's zone (3.13x; our searched
    # combinations run 1-2 bits shorter, landing somewhat higher).
    assert 2.8 < result.efficiency("Anda (1%)") < 4.2
    assert result.efficiency("Anda (1%)") > result.efficiency("FIGNA-M8") * 1.5
