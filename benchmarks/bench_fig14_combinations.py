"""Bench: regenerate Fig. 14 (selected precision combinations)."""

from repro.core.precision import TensorKind
from repro.experiments import fig14_combinations


def test_fig14_combinations(run_once):
    result = run_once(fig14_combinations.run)
    for (dataset, _tolerance), grid in result.combos.items():
        for model, comb in grid.items():
            assert all(4 <= bits <= 13 for bits in comb), (dataset, model)
    # Tighter tolerance keeps at-least-as-long mantissas on average.
    for dataset in ("wikitext2-sim", "ptb-sim", "c4-sim"):
        for kind in TensorKind:
            tight = result.mean_bits(dataset, 0.001, kind)
            loose = result.mean_bits(dataset, 0.01, kind)
            assert tight >= loose - 1e-9, (dataset, kind)
