"""Serving throughput benchmark: continuous batching vs one-at-a-time.

Compares sequential ``generate()`` decoding against the
:mod:`repro.serve` engine — driven through the redesigned ``LLM``
facade, streaming :class:`TokenDelta` s — at several batch sizes, in
FP16 and Anda-compressed KV modes, and records tokens/sec, per-request
latency (TTFT measured from each request's *first streamed delta*, not
reconstructed after drain), and simulated DRAM traffic.  A second
section benchmarks the paged KV pool on a *shared-prefix* workload (N
requests behind one common system prompt): prefix caching on vs off,
tracking prefill positions actually computed, prefix-hit tokens, and
the simulated DRAM bytes the hits avoided.  A third section benchmarks
chunked prefill on a *long-prompt* mixed workload (one long prompt
arriving while short requests decode): chunking on vs off, reporting
TTFT and inter-token latency percentiles — the latency surface
``benchmarks/check_bench_regression.py`` gates in CI.  A fourth
section exercises the *abort* lifecycle: a paged engine serving a
batch from which a fraction of requests is cancelled mid-flight,
recording the abort rate, wasted (pre-abort) tokens, and that the
allocator leaks nothing.  A fifth section is the *chaos* smoke: a
fixed-seed :class:`FaultPlan` injected into a paged chunked engine,
hard-gating bitwise parity of surviving requests against a fault-free
twin, zero leaked blocks, and exact failure accounting (results in
``BENCH_chaos.json``).  Results are written to
``BENCH_serving.json`` so CI can accumulate a perf trajectory as a
workflow artifact.

Usage::

    python benchmarks/bench_serving.py                  # full sweep
    python benchmarks/bench_serving.py --smoke          # CI-sized run
    python benchmarks/bench_serving.py --kv-mode anda --batch-sizes 1,4,8
    python benchmarks/bench_serving.py --shared-prefix 0   # skip that section
    python benchmarks/bench_serving.py --long-prompt 0     # skip that section
    python benchmarks/bench_serving.py --abort 0           # skip that section

Unlike the paper-figure benchmarks (which run under pytest-benchmark),
this is a standalone script: serving throughput is a trajectory we
track per commit, not a paper artifact we reproduce once.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.llm.generation import generate  # noqa: E402
from repro.llm.kv_quant import KVFormat, make_cache_factory  # noqa: E402
from repro.llm.zoo import get_model  # noqa: E402
from repro.serve import (  # noqa: E402
    LLM,
    Engine,
    EngineConfig,
    FaultPlan,
    FaultRule,
    RequestStatus,
    RetryPolicy,
    SamplingParams,
    TelemetryConfig,
    validate_chrome_trace,
)
from repro.serve.metrics import percentile  # noqa: E402

#: Shared-prefix workload sizes (requests) for full and --smoke runs.
SHARED_PREFIX_DEFAULT = 8
SHARED_PREFIX_SMOKE = 4

#: Long-prompt workload: length of the prompt that arrives mid-stream.
LONG_PROMPT_DEFAULT = 192
#: Chunked engine's token budget on that workload (the TTFT/ITL dial).
LONG_PROMPT_CHUNK_BUDGET = 32
#: Short requests decoding when the long prompt lands (their gaps are
#: what the monolithic prefill stalls, so they dominate the ITL tail).
LONG_PROMPT_DECODERS = 6

#: Abort workload sizes (requests) for full and --smoke runs; every
#: third request is cancelled mid-flight.
ABORT_DEFAULT = 8
ABORT_SMOKE = 4
ABORT_EVERY = 3

#: Chaos workload sizes (requests) for full and --smoke runs; the
#: fixed-seed plan targets request ids up to 3, so keep >= 4.
CHAOS_DEFAULT = 8
CHAOS_SMOKE = 6


def make_prompts(count: int, vocab_size: int, seed: int = 0) -> list[np.ndarray]:
    """Deterministic mixed-length prompts (lengths cycle 4..19)."""
    rng = np.random.default_rng(seed)
    lengths = [4 + (3 * index) % 16 for index in range(count)]
    return [rng.integers(0, vocab_size, size=length) for length in lengths]


def run_sequential(model, prompts, max_new_tokens, kv_mode, mantissa_bits):
    """One-at-a-time decode baseline; returns (results, elapsed_seconds)."""
    factory = make_cache_factory(model, kv_mode, mantissa_bits)
    started = time.perf_counter()
    results = [
        generate(model, prompt, max_new_tokens, cache_factory=factory)
        for prompt in prompts
    ]
    return results, time.perf_counter() - started


def run_engine(model, prompts, max_new_tokens, batch_size, kv_mode, mantissa_bits):
    """Batched serving run through the streaming LLM facade.

    Returns ``(results_by_submission, engine, stream_ttfts)`` where
    ``stream_ttfts`` is each request's time-to-first-token measured the
    streaming way: first :class:`TokenDelta` timestamp minus the
    handle's submission mark — observed live, not reconstructed from
    drain-time records.
    """
    engine = Engine(
        model,
        EngineConfig(
            max_batch_size=batch_size,
            max_batch_tokens=max(64, 32 * batch_size),
            kv_format=KVFormat(mode=kv_mode, mantissa_bits=mantissa_bits),
        ),
    )
    llm = LLM(engine=engine)
    params = SamplingParams(max_new_tokens=max_new_tokens)
    handles = [llm.submit(prompt, params) for prompt in prompts]
    arrivals = {handle.request_id: handle.arrival_time for handle in handles}
    stream_ttfts = {}
    for delta in llm.stream(handles):
        if delta.is_first:
            stream_ttfts[delta.request_id] = delta.time - arrivals[delta.request_id]
    results = [handle.result() for handle in handles]
    return results, engine, [stream_ttfts[h.request_id] for h in handles]


def bench_kv_mode(model, prompts, max_new_tokens, batch_sizes, kv_mode, bits):
    """Benchmark one KV mode; returns result rows and checks parity."""
    sequential, seq_seconds = run_sequential(
        model, prompts, max_new_tokens, kv_mode, bits
    )
    total_tokens = max_new_tokens * len(prompts)
    seq_tps = total_tokens / seq_seconds
    rows = [
        {
            "mode": "sequential",
            "kv_mode": kv_mode,
            "batch_size": 1,
            "tokens_per_second": seq_tps,
            "speedup_vs_sequential": 1.0,
            "total_seconds": seq_seconds,
        }
    ]
    for batch_size in batch_sizes:
        results, engine, stream_ttfts = run_engine(
            model, prompts, max_new_tokens, batch_size, kv_mode, bits
        )
        for reference_result, served in zip(sequential, results):
            if not np.array_equal(reference_result.tokens, served.tokens):
                raise SystemExit(
                    f"PARITY FAILURE: batched decode (batch={batch_size}, "
                    f"kv={kv_mode}) diverged from sequential generate()"
                )
        metrics = engine.metrics()
        rows.append(
            {
                "mode": "engine",
                "kv_mode": kv_mode,
                "batch_size": batch_size,
                "tokens_per_second": metrics.tokens_per_second,
                "speedup_vs_sequential": metrics.tokens_per_second / seq_tps,
                "total_seconds": metrics.total_seconds,
                "steps": metrics.steps,
                "mean_batch_size": metrics.mean_batch_size,
                "mean_ttft_seconds": metrics.mean_ttft_seconds,
                # TTFT from streamed deltas (first-token observation),
                # not drain-time reconstruction:
                "ttft_stream_mean_seconds": (
                    sum(stream_ttfts) / len(stream_ttfts)
                ),
                "ttft_stream_p50_seconds": percentile(stream_ttfts, 0.50),
                "ttft_stream_p95_seconds": percentile(stream_ttfts, 0.95),
                "mean_latency_seconds": metrics.mean_latency_seconds,
                "dram_bytes_total": metrics.traffic.total_bytes,
                "dram_bytes_per_token": (
                    metrics.traffic.total_bytes / metrics.total_new_tokens
                ),
                "kv_read_bytes": metrics.traffic.kv_read_bytes,
                "weight_bytes": metrics.traffic.weight_bytes,
            }
        )
    return rows


def make_shared_prefix_prompts(
    count: int, vocab_size: int, common_len: int = 48, tail_len: int = 4, seed: int = 1
) -> list[np.ndarray]:
    """N requests sharing one system prompt, each with a unique tail."""
    rng = np.random.default_rng(seed)
    system = rng.integers(0, vocab_size, size=common_len)
    return [
        np.concatenate([system, rng.integers(0, vocab_size, size=tail_len)])
        for _ in range(count)
    ]


def bench_shared_prefix(model, num_requests, max_new_tokens, kv_mode, bits):
    """Paged-pool shared-prefix workload: prefix caching on vs off.

    Returns one row per configuration; parity across configurations is
    asserted (same tokens with and without sharing).
    """
    prompts = make_shared_prefix_prompts(num_requests, model.config.vocab_size)
    prompt_positions = sum(len(prompt) for prompt in prompts)
    rows = []
    results_by_variant = {}
    for variant, prefix_caching in (("kv_pool", False), ("kv_pool+prefix", True)):
        engine = Engine(
            model,
            EngineConfig(
                max_batch_size=num_requests,
                max_batch_tokens=max(256, 64 * num_requests),
                kv_format=KVFormat(mode=kv_mode, mantissa_bits=bits),
                kv_pool=True,
                kv_pool_blocks=max(64, 8 * num_requests),
                kv_block_size=16,
                prefix_caching=prefix_caching,
            ),
        )
        results_by_variant[variant] = LLM(engine=engine).generate(
            prompts, SamplingParams(max_new_tokens=max_new_tokens)
        )
        metrics = engine.metrics()
        rows.append(
            {
                "mode": variant,
                "workload": "shared_prefix",
                "kv_mode": kv_mode,
                "batch_size": num_requests,
                "tokens_per_second": metrics.tokens_per_second,
                "total_seconds": metrics.total_seconds,
                "prefill_positions_computed": (
                    prompt_positions - metrics.prefix_hit_tokens
                ),
                "prefix_hit_tokens": metrics.prefix_hit_tokens,
                "prefix_saved_bytes": metrics.prefix_saved_bytes,
                "preemptions": metrics.preemptions,
                "dram_bytes_total": metrics.traffic.total_bytes,
            }
        )
    for first, second in zip(
        results_by_variant["kv_pool"], results_by_variant["kv_pool+prefix"]
    ):
        if not np.array_equal(first.tokens, second.tokens):
            raise SystemExit(
                "PARITY FAILURE: prefix-cached decode diverged from the "
                "uncached paged engine"
            )
    baseline, cached = rows
    cached["speedup_vs_no_prefix"] = (
        cached["tokens_per_second"] / baseline["tokens_per_second"]
        if baseline["tokens_per_second"]
        else 0.0
    )
    cached["dram_saved_vs_no_prefix"] = (
        baseline["dram_bytes_total"] - cached["dram_bytes_total"]
    )
    return rows


def bench_long_prompt(model, kv_mode, bits, long_len, max_new_tokens):
    """Chunked vs unchunked on a long prompt arriving mid-stream.

    Short requests are decoding when a ``long_len``-token prompt (and
    more short requests) arrive.  The unchunked engine needs a token
    budget that covers the whole prompt, so its prefill rides one step
    with the running decodes and stalls them for the whole prompt
    forward; the chunked engine runs a small budget
    (``LONG_PROMPT_CHUNK_BUDGET``) and splits the prompt into chunks
    that ride along step by step.  Tokens are bitwise identical either
    way — the rows differ only in the latency percentiles, which is
    the point.
    """
    vocab = model.config.vocab_size
    rows = []
    tokens_by_variant = {}
    for chunked in (False, True):
        rng = np.random.default_rng(7)
        early = [
            rng.integers(0, vocab, size=6) for _ in range(LONG_PROMPT_DECODERS)
        ]
        long_prompt = rng.integers(0, vocab, size=long_len)
        late = [rng.integers(0, vocab, size=6) for _ in range(2)]
        budget = LONG_PROMPT_CHUNK_BUDGET if chunked else long_len + 16
        engine = Engine(
            model,
            EngineConfig(
                max_batch_size=LONG_PROMPT_DECODERS + 2,
                max_batch_tokens=budget,
                chunked_prefill=chunked,
                kv_format=KVFormat(mode=kv_mode, mantissa_bits=bits),
            ),
        )
        ids = [engine.submit(prompt, 12).request_id for prompt in early]
        for _ in range(2):
            engine.step()
        ids.append(engine.submit(long_prompt, max_new_tokens).request_id)
        ids.extend(
            engine.submit(prompt, max_new_tokens).request_id for prompt in late
        )
        done = {result.request_id: result for result in engine.drain(max_steps=2000)}
        tokens_by_variant[chunked] = [done[request_id].tokens for request_id in ids]
        metrics = engine.metrics()
        rows.append(
            {
                "mode": "engine+chunked" if chunked else "engine",
                "workload": "long_prompt",
                "chunked_prefill": chunked,
                "kv_mode": kv_mode,
                "long_prompt_tokens": long_len,
                "max_batch_tokens": budget,
                "batch_size": LONG_PROMPT_DECODERS + 2,
                "tokens_per_second": metrics.tokens_per_second,
                "total_seconds": metrics.total_seconds,
                "steps": metrics.steps,
                "partial_prefills": metrics.partial_prefills,
                "ttft_p50_seconds": metrics.ttft_p50_seconds,
                "ttft_p95_seconds": metrics.ttft_p95_seconds,
                "itl_p50_seconds": metrics.itl_p50_seconds,
                "itl_p95_seconds": metrics.itl_p95_seconds,
                "dram_bytes_total": metrics.traffic.total_bytes,
            }
        )
    for unchunked_tokens, chunked_tokens in zip(
        tokens_by_variant[False], tokens_by_variant[True]
    ):
        if not np.array_equal(unchunked_tokens, chunked_tokens):
            raise SystemExit(
                f"PARITY FAILURE: chunked prefill (kv={kv_mode}) diverged "
                "from unchunked on the long-prompt workload"
            )
    unchunked_row, chunked_row = rows
    chunked_row["itl_p95_ratio_vs_unchunked"] = (
        chunked_row["itl_p95_seconds"] / unchunked_row["itl_p95_seconds"]
        if unchunked_row["itl_p95_seconds"]
        else 0.0
    )
    return rows


def bench_abort(model, num_requests, max_new_tokens, kv_mode, bits):
    """Abort-rate workload: cancel every third request mid-flight.

    A paged, prefix-cached engine serves ``num_requests`` requests;
    once decoding is underway, every ``ABORT_EVERY``-th request is
    aborted through its handle.  The row records the abort rate, the
    tokens the aborted requests had already produced (wasted decode
    work the cancellation reclaimed), survivor throughput, and — the
    invariant the test suite pins — that the allocator leaked nothing:
    every pool block ends free or as a reclaimable prefix-cache
    resident.
    """
    rng = np.random.default_rng(23)
    prompts = [
        rng.integers(0, model.config.vocab_size, size=6 + (index % 5))
        for index in range(num_requests)
    ]
    engine = Engine(
        model,
        EngineConfig(
            max_batch_size=num_requests,
            max_batch_tokens=max(64, 16 * num_requests),
            kv_format=KVFormat(mode=kv_mode, mantissa_bits=bits),
            kv_pool=True,
            kv_pool_blocks=max(64, 8 * num_requests),
            kv_block_size=16,
        ),
    )
    llm = LLM(engine=engine)
    params = SamplingParams(max_new_tokens=max_new_tokens)
    handles = [llm.submit(prompt, params) for prompt in prompts]
    for _ in range(2):
        engine.step()
    doomed = handles[::ABORT_EVERY]
    wasted_tokens = 0
    for handle in doomed:
        wasted_tokens += len(handle.generated_tokens())
        handle.abort()
    engine.run_until_idle(max_steps=2000)
    survivors = [handle for handle in handles if not handle.aborted]
    for handle in survivors:
        handle.result()  # all complete despite the churn
    leaked = engine._pool.leaked_blocks()
    if leaked:
        raise SystemExit(
            f"ABORT LEAK: {leaked} pool blocks still referenced after "
            f"drain (kv={kv_mode})"
        )
    metrics = engine.metrics()
    return [
        {
            "mode": "engine+abort",
            "workload": "abort",
            "kv_mode": kv_mode,
            "batch_size": num_requests,
            "aborted": metrics.aborted,
            "completed": len(survivors),
            "abort_rate": metrics.aborted / num_requests,
            "wasted_tokens": wasted_tokens,
            "tokens_per_second": metrics.tokens_per_second,
            "total_seconds": metrics.total_seconds,
            "preemptions": metrics.preemptions,
            "leaked_blocks": leaked,
            "dram_bytes_total": metrics.traffic.total_bytes,
        }
    ]


#: The fixed-seed chaos plan the --chaos workload injects: a transient
#: decode fault (retried, must stay bitwise), a permanent decode fault
#: (quarantined), probabilistic chunk-prefill faults, and one
#: batch-level pool-allocation fault (whole-step rollback).
CHAOS_SEED = 1234


def chaos_plan() -> FaultPlan:
    return FaultPlan(
        rules=(
            FaultRule(site="model.decode", kind="transient", request_id=1),
            FaultRule(site="model.decode", kind="permanent", request_id=3),
            FaultRule(
                site="model.chunk",
                kind="transient",
                probability=0.5,
                max_fires=2,
            ),
            FaultRule(site="pool.allocate", kind="transient", step=4),
        ),
        seed=CHAOS_SEED,
    )


def bench_chaos(model, num_requests, max_new_tokens, kv_mode, bits):
    """Chaos workload: a fixed-seed fault plan against a live engine.

    Runs the same paged, chunked workload twice — once fault-free,
    once under :func:`chaos_plan` — and enforces the failure-isolation
    invariants as hard gates (non-zero exit on violation, so CI
    catches a regression):

    * every request the faults did not fail is token-bitwise identical
      to the fault-free twin (retried requests included);
    * the pool leaks zero blocks after drain;
    * accounting is exact — every injected fault is either a retry or
      a failure;
    * the engine still completes new work after the faults.
    """
    rng = np.random.default_rng(29)
    prompts = [
        rng.integers(0, model.config.vocab_size, size=8 + (index % 7))
        for index in range(num_requests)
    ]

    def build(plan):
        return Engine(
            model,
            EngineConfig(
                max_batch_size=num_requests,
                max_batch_tokens=max(48, 8 * num_requests),
                chunked_prefill=True,
                kv_format=KVFormat(mode=kv_mode, mantissa_bits=bits),
                kv_pool=True,
                kv_pool_blocks=max(64, 8 * num_requests),
                kv_block_size=16,
                faults=plan,
                retry=RetryPolicy(max_retries=2, backoff_steps=1),
            ),
        )

    params = SamplingParams(max_new_tokens=max_new_tokens)

    twin = build(None)
    twin_handles = [twin.submit(prompt, params) for prompt in prompts]
    twin.run_until_idle(max_steps=2000)
    expected = [handle.result().tokens for handle in twin_handles]

    engine = build(chaos_plan())
    handles = [engine.submit(prompt, params) for prompt in prompts]
    engine.run_until_idle(max_steps=2000)

    survivors = 0
    for index, handle in enumerate(handles):
        if handle.status() is not RequestStatus.FINISHED:
            continue
        survivors += 1
        if not np.array_equal(handle.result().tokens, expected[index]):
            raise SystemExit(
                f"CHAOS PARITY: request {index} diverged from its "
                f"fault-free twin (kv={kv_mode})"
            )
    leaked = engine._pool.leaked_blocks()
    if leaked:
        raise SystemExit(
            f"CHAOS LEAK: {leaked} pool blocks still referenced after "
            f"drain (kv={kv_mode})"
        )
    metrics = engine.metrics()
    fired = engine.fault_injector.fired_total
    if fired != metrics.fault_retries + metrics.failed:
        raise SystemExit(
            f"CHAOS ACCOUNTING: {fired} faults fired but "
            f"{metrics.fault_retries} retries + {metrics.failed} "
            f"failures recorded (kv={kv_mode})"
        )
    probe = engine.submit(prompts[0], params)
    engine.run_until_idle(max_steps=2000)
    if probe.status() is not RequestStatus.FINISHED:
        raise SystemExit(
            f"CHAOS SERVICEABILITY: post-fault submission ended "
            f"{probe.status().value} (kv={kv_mode})"
        )
    if engine._pool.leaked_blocks():
        raise SystemExit(
            f"CHAOS LEAK: post-fault submission leaked blocks (kv={kv_mode})"
        )
    return [
        {
            "mode": "engine+chaos",
            "workload": "chaos",
            "kv_mode": kv_mode,
            "requests": num_requests,
            "plan_seed": CHAOS_SEED,
            "faults_fired": fired,
            "fired_by_site": dict(engine.fault_injector.fired_by_site),
            "failed": metrics.failed,
            "fault_retries": metrics.fault_retries,
            "survivors": survivors,
            "leaked_blocks": leaked,
            "tokens_per_second": metrics.tokens_per_second,
            "preemptions": metrics.preemptions,
        }
    ]


def bench_traced(model, trace_path, kv_mode, bits):
    """Traced mixed workload: chunked prefill + grouped decode + abort.

    Runs a small grouped-attention engine with tracing enabled over a
    workload that exercises every span family (prefill chunks, decode
    batches, per-bucket attention, sampling, lifecycle transitions
    including an abort), writes the Chrome trace-event JSON to
    ``trace_path`` (load it at https://ui.perfetto.dev), and validates
    the emitted file against the trace-event schema — a structural
    failure exits non-zero so CI catches a malformed exporter.
    """
    vocab = model.config.vocab_size
    rng = np.random.default_rng(11)
    prompts = [rng.integers(0, vocab, size=6 + (index % 9)) for index in range(6)]
    long_prompt = rng.integers(0, vocab, size=96)
    engine = Engine(
        model,
        EngineConfig(
            max_batch_size=8,
            max_batch_tokens=48,
            chunked_prefill=True,
            kv_format=KVFormat(mode=kv_mode, mantissa_bits=bits),
            telemetry=TelemetryConfig(trace=True),
        ),
    )
    llm = LLM(engine=engine)
    params = SamplingParams(max_new_tokens=10)
    handles = [llm.submit(prompt, params) for prompt in prompts]
    for _ in range(2):
        engine.step()
    handles.append(llm.submit(long_prompt, params))
    engine.step()
    handles[1].abort()
    engine.run_until_idle(max_steps=2000)
    engine.telemetry.write_trace(trace_path)
    problems = validate_chrome_trace(engine.telemetry.chrome_trace())
    if problems:
        raise SystemExit(
            "TRACE SCHEMA FAILURE: " + "; ".join(problems[:5])
        )
    metrics = engine.metrics()
    events = engine.telemetry.tracer.events
    return {
        "workload": "traced_mixed",
        "kv_mode": kv_mode,
        "trace_path": str(trace_path),
        "trace_events": len(events),
        "tracks": len({event.track for event in events}),
        "steps": metrics.steps,
        "aborted": metrics.aborted,
        "attention_dispatches": metrics.attention_dispatches,
        "tokens_per_second": metrics.tokens_per_second,
    }


def render_abort(rows) -> str:
    lines = [
        f"{'kv':>5} {'mode':>13} {'reqs':>5} {'aborted':>8} "
        f"{'wasted':>7} {'leaked':>7} {'tok/s':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['kv_mode']:>5} {row['mode']:>13} {row['batch_size']:>5} "
            f"{row['aborted']:>8} {row['wasted_tokens']:>7} "
            f"{row['leaked_blocks']:>7} {row['tokens_per_second']:>8.1f}"
        )
    return "\n".join(lines)


def render_chaos(rows) -> str:
    lines = [
        f"{'kv':>5} {'mode':>13} {'reqs':>5} {'fired':>6} "
        f"{'failed':>7} {'retries':>8} {'leaked':>7} {'tok/s':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['kv_mode']:>5} {row['mode']:>13} {row['requests']:>5} "
            f"{row['faults_fired']:>6} {row['failed']:>7} "
            f"{row['fault_retries']:>8} {row['leaked_blocks']:>7} "
            f"{row['tokens_per_second']:>8.1f}"
        )
    return "\n".join(lines)


def render_long_prompt(rows) -> str:
    lines = [
        f"{'kv':>5} {'mode':>15} {'ttft p95':>9} {'itl p50':>8} "
        f"{'itl p95':>8} {'tok/s':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row['kv_mode']:>5} {row['mode']:>15} "
            f"{row['ttft_p95_seconds'] * 1e3:>7.1f}ms "
            f"{row['itl_p50_seconds'] * 1e3:>6.2f}ms "
            f"{row['itl_p95_seconds'] * 1e3:>6.2f}ms "
            f"{row['tokens_per_second']:>8.1f}"
        )
    return "\n".join(lines)


def render_shared_prefix(rows) -> str:
    lines = [
        f"{'kv':>5} {'mode':>15} {'reqs':>5} {'tok/s':>9} "
        f"{'hit tok':>8} {'saved MB':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row['kv_mode']:>5} {row['mode']:>15} {row['batch_size']:>5} "
            f"{row['tokens_per_second']:>9.1f} "
            f"{row['prefix_hit_tokens']:>8} "
            f"{row['prefix_saved_bytes'] / 1e6:>9.2f}"
        )
    return "\n".join(lines)


def render(rows) -> str:
    lines = [
        f"{'kv':>5} {'mode':>10} {'batch':>5} {'tok/s':>9} "
        f"{'speedup':>8} {'B/token':>10}",
    ]
    for row in rows:
        per_token = row.get("dram_bytes_per_token")
        per_token_text = "-" if per_token is None else f"{per_token:.0f}"
        lines.append(
            f"{row['kv_mode']:>5} {row['mode']:>10} {row['batch_size']:>5} "
            f"{row['tokens_per_second']:>9.1f} "
            f"{row['speedup_vs_sequential']:>7.2f}x "
            f"{per_token_text:>10}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--model", default="opt-125m-sim")
    parser.add_argument("--smoke", action="store_true", help="CI-sized run")
    parser.add_argument(
        "--num-prompts", type=int, default=None, help="default 16 (8 with --smoke)"
    )
    parser.add_argument(
        "--max-new-tokens", type=int, default=None, help="default 24 (8 with --smoke)"
    )
    parser.add_argument(
        "--batch-sizes",
        default=None,
        help="comma-separated engine batch sizes; default 2,4,8 (4 with --smoke)",
    )
    parser.add_argument(
        "--kv-mode",
        default="both",
        choices=["fp16", "anda", "both"],
        help="KV-cache mode(s) to benchmark",
    )
    parser.add_argument("--kv-mantissa-bits", type=int, default=8)
    parser.add_argument(
        "--shared-prefix",
        type=int,
        default=None,
        help=(
            "requests in the shared-prefix KV-pool workload; 0 skips it "
            f"(default {SHARED_PREFIX_DEFAULT}, {SHARED_PREFIX_SMOKE} "
            "with --smoke)"
        ),
    )
    parser.add_argument(
        "--long-prompt",
        type=int,
        default=None,
        help=(
            "long-prompt length for the chunked-prefill latency "
            f"workload; 0 skips it (default {LONG_PROMPT_DEFAULT})"
        ),
    )
    parser.add_argument(
        "--abort",
        type=int,
        default=None,
        help=(
            "requests in the abort-rate workload (every "
            f"{ABORT_EVERY}rd is cancelled mid-flight); 0 skips it "
            f"(default {ABORT_DEFAULT}, {ABORT_SMOKE} with --smoke)"
        ),
    )
    parser.add_argument(
        "--chaos",
        type=int,
        default=None,
        help=(
            "requests in the chaos workload (fixed-seed fault plan; "
            "parity-, leak- and accounting-gated); 0 skips it "
            f"(default {CHAOS_DEFAULT}, {CHAOS_SMOKE} with --smoke)"
        ),
    )
    parser.add_argument(
        "--chaos-output",
        default="BENCH_chaos.json",
        help="chaos workload result JSON path",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "also run a traced mixed workload and write Perfetto-loadable "
            "Chrome trace-event JSON to PATH (validated; schema problems "
            "exit non-zero)"
        ),
    )
    parser.add_argument(
        "--output", default="BENCH_serving.json", help="result JSON path"
    )
    args = parser.parse_args(argv)

    # --smoke only shrinks knobs the user left at their defaults, so an
    # explicit flag always wins.
    if args.num_prompts is None:
        args.num_prompts = 8 if args.smoke else 16
    if args.max_new_tokens is None:
        args.max_new_tokens = 8 if args.smoke else 24
    if args.batch_sizes is None:
        args.batch_sizes = "4" if args.smoke else "2,4,8"
    if args.shared_prefix is None:
        args.shared_prefix = SHARED_PREFIX_SMOKE if args.smoke else (
            SHARED_PREFIX_DEFAULT
        )
    if args.shared_prefix < 0:
        parser.error("--shared-prefix must be >= 0")
    if args.long_prompt is None:
        args.long_prompt = LONG_PROMPT_DEFAULT
    if args.long_prompt < 0:
        parser.error("--long-prompt must be >= 0")
    if args.abort is None:
        args.abort = ABORT_SMOKE if args.smoke else ABORT_DEFAULT
    if args.abort < 0:
        parser.error("--abort must be >= 0")
    if args.chaos is None:
        args.chaos = CHAOS_SMOKE if args.smoke else CHAOS_DEFAULT
    if args.chaos < 0:
        parser.error("--chaos must be >= 0")

    try:
        batch_sizes = [int(part) for part in args.batch_sizes.split(",") if part]
    except ValueError:
        parser.error(
            f"--batch-sizes must be comma-separated ints, got {args.batch_sizes!r}"
        )
    if not batch_sizes:
        parser.error("--batch-sizes needs at least one batch size")
    if min(batch_sizes) < 1:
        parser.error("--batch-sizes entries must be >= 1")
    kv_modes = ["fp16", "anda"] if args.kv_mode == "both" else [args.kv_mode]

    print(f"training/loading {args.model} ...", flush=True)
    model = get_model(args.model)
    prompts = make_prompts(args.num_prompts, model.config.vocab_size)

    rows = []
    for kv_mode in kv_modes:
        rows.extend(
            bench_kv_mode(
                model,
                prompts,
                args.max_new_tokens,
                batch_sizes,
                kv_mode,
                args.kv_mantissa_bits,
            )
        )
    print(render(rows))

    shared_rows = []
    if args.shared_prefix:
        for kv_mode in kv_modes:
            shared_rows.extend(
                bench_shared_prefix(
                    model,
                    args.shared_prefix,
                    args.max_new_tokens,
                    kv_mode,
                    args.kv_mantissa_bits,
                )
            )
        print()
        print(render_shared_prefix(shared_rows))

    long_rows = []
    if args.long_prompt:
        for kv_mode in kv_modes:
            long_rows.extend(
                bench_long_prompt(
                    model,
                    kv_mode,
                    args.kv_mantissa_bits,
                    args.long_prompt,
                    args.max_new_tokens,
                )
            )
        print()
        print(render_long_prompt(long_rows))

    abort_rows = []
    if args.abort:
        for kv_mode in kv_modes:
            abort_rows.extend(
                bench_abort(
                    model,
                    args.abort,
                    args.max_new_tokens,
                    kv_mode,
                    args.kv_mantissa_bits,
                )
            )
        print()
        print(render_abort(abort_rows))

    chaos_rows = []
    if args.chaos:
        for kv_mode in kv_modes:
            chaos_rows.extend(
                bench_chaos(
                    model,
                    args.chaos,
                    args.max_new_tokens,
                    kv_mode,
                    args.kv_mantissa_bits,
                )
            )
        print()
        print(render_chaos(chaos_rows))
        chaos_output = Path(args.chaos_output)
        chaos_output.write_text(
            json.dumps(
                {
                    "benchmark": "serving_chaos",
                    "model": args.model,
                    "plan_seed": CHAOS_SEED,
                    "smoke": args.smoke,
                    "python": platform.python_version(),
                    "results": chaos_rows,
                },
                indent=2,
            )
            + "\n"
        )
        print(f"wrote {chaos_output}")

    trace_row = None
    if args.trace:
        trace_row = bench_traced(
            model, Path(args.trace), kv_modes[0], args.kv_mantissa_bits
        )
        print()
        print(
            f"trace: {trace_row['trace_events']} events on "
            f"{trace_row['tracks']} tracks over {trace_row['steps']} steps "
            f"-> {trace_row['trace_path']} (open in https://ui.perfetto.dev)"
        )

    payload = {
        "benchmark": "serving_throughput",
        "model": args.model,
        "num_prompts": args.num_prompts,
        "max_new_tokens": args.max_new_tokens,
        "smoke": args.smoke,
        "python": platform.python_version(),
        "results": rows,
        "shared_prefix_results": shared_rows,
        "long_prompt_results": long_rows,
        "abort_results": abort_rows,
        "trace_result": trace_row,
    }
    output = Path(args.output)
    output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {output}")

    best = max(
        (row for row in rows if row["mode"] == "engine"),
        key=lambda row: row["speedup_vs_sequential"],
    )
    print(
        f"best engine speedup: {best['speedup_vs_sequential']:.2f}x at "
        f"batch={best['batch_size']} (kv={best['kv_mode']})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
