"""Bench: Anda quantization-aware training recovery (Sec. VI future work)."""

from repro.experiments import ext_qat


def test_ext_qat_recovery(run_once):
    result = run_once(ext_qat.run)
    for res in result.results.values():
        # Aggressive sub-frontier combinations must visibly hurt PTQ...
        assert res.ppl_ptq > res.ppl_fp
        # ...and a short STE fine-tune recovers most of the damage.
        assert res.ppl_qat < res.ppl_ptq
        assert res.recovered_fraction > 0.5
    # Deeper truncation leaves more residual damage after QAT.
    three = result.results["[3, 3, 3, 3]"]
    four = result.results["[4, 4, 4, 4]"]
    assert three.qat_degradation > four.qat_degradation
