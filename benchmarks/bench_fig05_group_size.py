"""Bench: regenerate Fig. 5 (sensitivity to BFP group size)."""

from repro.experiments import fig5_group_size


def test_fig5_group_size(run_once):
    result = run_once(fig5_group_size.run)
    for model in fig5_group_size.MODELS:
        # More mantissa bits never hurt at fixed group size (GS=64).
        series = result.ppl[model][64]
        assert series[13] <= series[4] * 1.001
        # The paper's trade-off: the per-element format (GS=1) tolerates
        # a mantissa at least as short as whole-channel groups.
        fine = result.min_mantissa_within_loss(model, 1)
        coarse = result.min_mantissa_within_loss(model, None)
        assert fine is not None
        assert coarse is None or fine <= coarse
