"""Bench: regenerate Fig. 7 (per-module sensitivity)."""

from repro.core.precision import TensorKind
from repro.experiments import fig7_module_sensitivity


def test_fig7_module_sensitivity(run_once):
    result = run_once(fig7_module_sensitivity.run)
    for model, per_kind in result.relative.items():
        for kind in TensorKind:
            # Single-module truncation at 13 bits is near-lossless.
            assert per_kind[kind][13] > 0.99, (model, kind)
        # Truncating one module only is milder than truncating all four
        # (cross-check vs Fig. 6 is done in EXPERIMENTS.md; here we
        # check each module still shows a measurable effect at 4 bits).
        worst = min(per_kind[kind][4] for kind in TensorKind)
        assert worst < 1.0, model
