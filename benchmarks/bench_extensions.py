"""Bench: extension studies (decode regime, KV cache, uniform widths)."""

from repro.experiments import extensions


def test_extensions(run_once):
    result = run_once(extensions.run)
    for model, vals in result.decode.items():
        # The bit-serial datapath wins in both regimes on this budget...
        assert vals["prefill_speedup"] > 1.8, model
        assert vals["decode_speedup"] > 1.5, model
        # ...but the activation-compression DRAM saving is prefill-only
        # (decode traffic is weight-dominated).
        assert vals["prefill_dram_reduction"] > 1.4, model
        assert vals["decode_dram_reduction"] < 1.1, model
    # KV compression: monotone footprint/error trade-off.
    compressions = [result.kv[m]["compression"] for m in sorted(result.kv)]
    errors = [result.kv[m]["logit_rel_error"] for m in sorted(result.kv)]
    assert compressions == sorted(compressions, reverse=True)
    assert errors == sorted(errors, reverse=True)
    assert result.kv[8]["logit_rel_error"] < 0.02
    # The searched 4-tuple is at least as efficient as the uniform width.
    for model, bits in result.uniform_bits.items():
        assert max(result.searched[model]) <= bits + 2
