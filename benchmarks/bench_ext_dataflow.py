"""Bench: dataflow-mapping ablation (the output-stationary choice)."""

from repro.experiments import ext_dataflow


def test_ext_dataflow(run_once):
    result = run_once(ext_dataflow.run)
    # At FP16 there is no decisive winner (OS within ~2% of best)...
    fp16 = result.comparisons["FP16"]
    assert fp16.overhead("output-stationary") < 1.02
    # ...but at every Anda deployment width, OS wins outright, and the
    # gap widens as mantissas shrink (psum traffic cannot shrink).
    gaps = []
    for label in ("Anda M=11", "Anda M=8", "Anda M=5"):
        cmp = result.comparisons[label]
        assert cmp.best() == "output-stationary"
        gaps.append(cmp.overhead("input-stationary"))
    assert gaps == sorted(gaps)
    # Weight-stationary is never competitive on these deep reductions.
    for cmp in result.comparisons.values():
        assert cmp.overhead("weight-stationary") > 1.3
