"""Bench: event-simulated dispatcher/BPC overlap (Sec. IV-B/IV-C claims)."""

from repro.experiments import ext_overlap


def test_ext_overlap(run_once):
    result = run_once(ext_overlap.run)
    anda = {k: v for k, v in result.summaries.items() if k.startswith("Anda")}
    # Sec. IV-C: BPC compression largely overlaps APU compute.
    for summary in anda.values():
        assert summary.bpc_hidden_fraction > 0.9
        assert summary.slowdown_vs_compute_bound < 1.05
    # Sec. IV-B: double-buffered weight loads hide behind compute.
    for summary in result.summaries.values():
        assert summary.load_hidden_fraction > 0.7
    # Cycles scale with mantissa length (bit-serial early termination).
    cycles = [anda[f"Anda-M{m}"].total_cycles for m in (4, 6, 8, 11)]
    assert cycles == sorted(cycles)
    # All Anda points beat the full-rate baselines.
    assert max(cycles) < result.summaries["FP-FP"].total_cycles
