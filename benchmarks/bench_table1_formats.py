"""Bench: render Table I (format taxonomy)."""

from repro.experiments import table1_formats


def test_table1_formats(run_once):
    result = run_once(table1_formats.run)
    names = [spec.name for spec in result.formats]
    assert "Anda (Ours)" in names
    anda = result.formats[-1]
    assert anda.length_class == "variable"
    assert anda.compute_mantissa_bits == tuple(range(1, 17))
