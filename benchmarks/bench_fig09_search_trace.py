"""Bench: regenerate Fig. 9 (search trajectory on OPT-125M)."""

from repro.experiments import fig9_search_trace


def test_fig9_search_trace(run_once):
    result = run_once(fig9_search_trace.run)
    # The search converges within the paper's 32-iteration budget.
    assert result.search.feasible
    assert result.search.iterations <= 32
    # Trace starts on the uniform ramp, as in the paper's Fig. 9.
    first = result.search.steps[0].combination
    assert first == (4, 4, 4, 4)
    # The best combination beats the FIGNA anchor on BOPs.
    final_norm = result.normalized_bops[
        [s.combination for s in result.search.steps].index(result.best)
    ]
    assert final_norm < 1.0
