"""Root conftest: make ``src/`` importable without installation.

``pip install -e .`` is the first-class path (CI uses it); this shim
keeps the ROADMAP tier-1 command working on a bare checkout whether or
not ``PYTHONPATH=src`` is set, and in offline environments where an
editable install is not possible.
"""

import os
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

# Subprocess-launching tests (the example scripts) need the path too.
_existing = os.environ.get("PYTHONPATH")
if _existing is None:
    os.environ["PYTHONPATH"] = str(_SRC)
elif str(_SRC) not in _existing.split(os.pathsep):
    os.environ["PYTHONPATH"] = os.pathsep.join([str(_SRC), _existing])
