#!/usr/bin/env python3
"""Inside the Anda memory system: bit planes, the BPC, the bit-serial PE.

A microscope view of the hardware mechanisms (Figs. 10-12 of the paper)
on a single 64-element group:

1. how the bit-plane layout transposes a group into 64-bit words,
2. how variable mantissa length changes address depth but never word
   width,
3. the cycle-by-cycle parallel-to-serial mantissa alignment of the BPC,
4. the plane-by-plane shift-accumulate of the bit-serial dot product.

Run:  python examples/bitplane_memory.py
"""

import numpy as np

from repro.core.anda import AndaTensor
from repro.core.bitserial import plane_partial_sums, serial_group_dot
from repro.core.compressor import BitPlaneCompressor


def main() -> None:
    rng = np.random.default_rng(42)
    group = (rng.normal(size=(1, 64)) * 4).astype(np.float32)

    print("=== 1. Bit-plane layout (Fig. 10) ===")
    tensor = AndaTensor.from_float(group, mantissa_bits=5)
    store = tensor.store
    print(f"shared exponent: {int(store.exponents[0])}")
    print(f"sign word:  {int(store.sign_words[0]):016x}")
    for plane, word in enumerate(store.mantissa_planes[0]):
        print(f"plane {plane} (bit {4 - plane}): {int(word):016x}")

    print("\n=== 2. Variable depth, constant width ===")
    for m in (3, 5, 9):
        t = AndaTensor.from_float(group, mantissa_bits=m)
        print(f"M={m}: {t.store.words_per_group()} words of 64 bits per group "
              f"+ one 8-bit exponent")

    print("\n=== 3. BPC serial alignment (Fig. 12) ===")
    compressed, stats = BitPlaneCompressor(lanes=1).compress(group, 5)
    same = np.array_equal(
        compressed.store.mantissa_planes, tensor.store.mantissa_planes
    )
    print(f"aligner ran {stats.cycles} cycles "
          f"({stats.passes} pass(es) x 5 planes)")
    print(f"cycle-accurate output == arithmetic encode: {same}")

    print("\n=== 4. Bit-serial dot product (Fig. 11) ===")
    weights = rng.integers(-8, 8, size=64)
    partials = plane_partial_sums(
        tensor.store.mantissa_planes[0], tensor.store.sign_words[0], weights
    )
    acc = 0
    for plane, partial in enumerate(partials):
        acc = (acc << 1) + int(partial)
        print(f"cycle {plane}: partial sum {int(partial):>6}, "
              f"accumulator {acc:>8}")
    result = serial_group_dot(
        tensor.store.mantissa_planes[0],
        tensor.store.sign_words[0],
        int(store.exponents[0]),
        5,
        weights,
    )
    expected = float(tensor.decode()[0] @ weights)
    print(f"rescaled result: {result.value:.4f} "
          f"(decoded-reference dot product {expected:.4f})")


if __name__ == "__main__":
    main()
