#!/usr/bin/env python3
"""Choosing an activation format: Anda vs BFP vs MX vs FP16.

A format-selection walkthrough over the axes Table I organizes:

1. round-trip error on heavy-tailed activations — sweep mantissa
   length (the Anda axis) against microexponent bits (the MX axis [14])
   at equal storage,
2. storage footprint per element for each format,
3. rounding modes: truncation (hardware-cheap), nearest, stochastic
   (FAST-style) and their error/bias trade-offs,
4. the search-strategy comparison: how Algorithm 1 stacks up against
   brute force, greedy descent and random sampling on a sensitivity
   landscape.

Run:  python examples/format_comparison.py
"""

import numpy as np

from repro.core.bfp import BfpConfig, fake_quantize, quantization_error
from repro.core.search_variants import compare_strategies, synthetic_landscape
from repro.quant.mx import MxConfig, mx_error, quantize_mx


def heavy_tailed(rng: np.random.Generator, shape) -> np.ndarray:
    """Activations with per-channel scale spread (outlier channels)."""
    scales = 10 ** (0.5 * rng.normal(size=(1, shape[1])))
    return (rng.normal(size=shape) * scales).astype(np.float32)


def main() -> None:
    rng = np.random.default_rng(42)
    activations = heavy_tailed(rng, (64, 512))

    print("1. Round-trip RMSE at equal storage (group size 64)")
    print(f"{'bits/elem':>10} {'BFP/Anda':>12} {'MX (micro=1)':>14}")
    for mantissa in (4, 6, 8):
        bfp = quantization_error(
            activations, BfpConfig(mantissa_bits=mantissa, group_size=64)
        )
        mx = mx_error(
            activations,
            MxConfig(mantissa_bits=mantissa - 1, subgroup_size=2, micro_bits=1),
        )
        print(f"{mantissa + 1.125:>10.2f} {bfp:>12.5f} {mx:>14.5f}")

    print()
    print("2. Storage per element")
    mx_tensor = quantize_mx(activations, MxConfig(mantissa_bits=5))
    anda_bits = 1 + 6 + 8 / 64
    print("  FP16          : 16.00 bits")
    print(f"  Anda (M=6)    : {anda_bits:.2f} bits")
    print(f"  MX  (M=5,u=1) : {mx_tensor.bits_per_element():.2f} bits")

    print()
    print("3. Rounding modes at M=5 (error / signed bias)")
    for rounding in ("truncate", "nearest", "stochastic"):
        config = BfpConfig(mantissa_bits=5, group_size=64, rounding=rounding)
        error = quantization_error(activations, config)
        bias = float(np.mean(fake_quantize(activations, config) - activations))
        print(f"  {rounding:<10}: rmse {error:.5f}  bias {bias:+.6f}")

    print()
    print("4. Search strategies on a sensitivity landscape (1% tolerance)")
    accuracy, bops, reference = synthetic_landscape(seed=42)
    outcomes = compare_strategies(accuracy, bops, reference, 0.01)
    optimum = min(o.best_bops for o in outcomes if o.feasible)
    print(f"{'strategy':<20} {'combination':<14} {'BOPs':>7} {'evals':>6}")
    for outcome in outcomes:
        combo = str(outcome.best) if outcome.best else "-"
        marker = "  <- optimum" if outcome.best_bops == optimum else ""
        print(
            f"{outcome.strategy:<20} {combo:<14} {outcome.best_bops:>7.2f} "
            f"{outcome.evaluations:>6}{marker}"
        )


if __name__ == "__main__":
    main()
