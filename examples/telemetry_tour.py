#!/usr/bin/env python3
"""Telemetry tour: observe a serving engine end to end.

The serving telemetry subsystem (``repro.serve.telemetry``) adds three
instruments to every engine, toured here over one mixed workload:

1. **step tracing** — ``TelemetryConfig(trace=True)`` records every
   phase of every engine step (schedule, chunked-prefill lane, decode
   batch, per-bucket grouped attention, KV codec, sampling) plus each
   request's lifecycle transitions (QUEUED -> PREFILLING -> RUNNING ->
   FINISHED / ABORTED) as spans and instants;
2. **Chrome trace export** — the recorded spans serialize to a
   trace-event JSON file; open it at https://ui.perfetto.dev (or
   ``chrome://tracing``) to see the engine timeline, one track per
   phase and per request;
3. **Prometheus export** — every ``EngineMetrics`` counter and gauge
   renders as a labelled time series in the text exposition format a
   scrape endpoint would serve.

The workload mixes the lifecycles the tracer distinguishes: a batch of
short prompts, one long prompt pushed through chunked prefill, and a
request aborted mid-flight.

Run:  python examples/telemetry_tour.py
(Uses the same cached sim model as ``examples/quickstart.py``.)
"""

from pathlib import Path

from repro.llm import ByteTokenizer
from repro.llm.zoo import get_model
from repro.serve import (
    LLM,
    EngineConfig,
    SamplingParams,
    TelemetryConfig,
    validate_chrome_trace,
)

TRACE_PATH = Path("telemetry_tour_trace.json")


def main() -> None:
    model = get_model("opt-125m-sim")  # trained once, then cached
    llm = LLM(
        model,
        EngineConfig(
            max_batch_size=8,
            max_batch_tokens=48,
            chunked_prefill=True,  # long prompts prefill in budgeted chunks
            telemetry=TelemetryConfig(trace=True),
        ),
    )
    tokenizer = ByteTokenizer()

    print("=== 1. A mixed workload, traced ===")
    short_prompts = [
        "the anda format",
        "variable-length groups",
        "bit-plane compression",
        "serving telemetry",
    ]
    handles = [
        llm.submit(tokenizer.encode(text), SamplingParams(max_new_tokens=16))
        for text in short_prompts
    ]
    # A long prompt: chunked prefill spreads it across steps, so its
    # track shows a PREFILLING phase before RUNNING.
    long_prompt = tokenizer.encode("anda " * 40)
    handles.append(llm.submit(long_prompt, SamplingParams(max_new_tokens=8)))
    # And one request we cancel mid-flight: its track ends in ABORTED.
    doomed = llm.submit(
        tokenizer.encode("a request we abort"), SamplingParams(max_new_tokens=200)
    )
    llm.engine.step()
    llm.engine.step()
    doomed.abort()
    llm.engine.run_until_idle()

    metrics = llm.metrics()
    print(
        f"served {len(metrics.requests)} requests (+{metrics.aborted} "
        f"aborted) in {metrics.steps} steps, "
        f"{metrics.attention_dispatches} attention dispatches"
    )

    print("\n=== 2. Chrome trace -> Perfetto ===")
    telemetry = llm.telemetry
    path = telemetry.write_trace(TRACE_PATH)
    payload = telemetry.chrome_trace()
    problems = validate_chrome_trace(payload)
    spans = sum(1 for event in payload["traceEvents"] if event["ph"] == "B")
    tracks = sum(
        1
        for event in payload["traceEvents"]
        if event["ph"] == "M" and event["name"] == "thread_name"
    )
    print(f"wrote {path} ({spans} spans on {tracks} tracks)")
    print(f"schema problems: {problems or 'none'}")
    print("open it at https://ui.perfetto.dev or chrome://tracing")

    print("\n=== 3. Prometheus text exposition ===")
    # telemetry.prometheus() pulls the engine's metrics into the
    # per-engine registry (label engine=<label>) and renders it.
    print(telemetry.prometheus(), end="")

    if problems:
        raise SystemExit(f"trace failed schema validation: {problems}")


if __name__ == "__main__":
    main()
