#!/usr/bin/env python3
"""End-to-end transformer serving on the Anda accelerator.

The paper's Fig. 16 isolates the FP-INT GeMMs; a deployment decision
needs the whole block — FP-FP attention, softmax/norm vector work, and
the decode regime.  This example schedules LLaMA-13B end to end on the
Anda system and the GPU-like FP-FP baseline:

1. per-stage latency breakdown of one transformer block at 2K prefill,
2. the Amdahl view: GeMM-only vs end-to-end speedup,
3. serving estimates — time to first token, decode tokens/s, energy
   per generated token,
4. how the GeMM share shrinks with context (the pipeline mirror of
   Fig. 2's operation-share analysis).

Run:  python examples/layer_pipeline.py
"""

from repro.core.precision import PrecisionCombination
from repro.hw.pipeline import (
    compare_end_to_end,
    estimate_inference,
    schedule_block,
)

MODEL = "llama-13b"
#: The paper's WikiText-2 1%-loss combination for LLaMA-13B (Fig. 14).
COMBINATION = PrecisionCombination(7, 5, 6, 6)


def main() -> None:
    schedule = schedule_block(MODEL, "Anda", COMBINATION, sequence_length=2048)
    print(f"One {MODEL} transformer block on Anda (2048-token prefill)")
    print(f"{'stage':<16} {'unit':<8} {'cycles':>12} {'share':>7}")
    for stage in schedule.stages:
        print(
            f"{stage.name:<16} {stage.unit:<8} {stage.cycles:>12,.0f} "
            f"{stage.cycles / schedule.cycles * 100:>6.1f}%"
        )
    print(f"{'total':<16} {'':<8} {schedule.cycles:>12,.0f}")

    print()
    cmp = compare_end_to_end(MODEL, COMBINATION, sequence_length=2048)
    print(f"GeMM-only speedup over FP-FP : {cmp.gemm_speedup:.2f}x")
    print(f"end-to-end speedup           : {cmp.end_to_end_speedup:.2f}x")
    print(f"speedup retained (Amdahl)    : {cmp.amdahl_gap * 100:.0f}%")
    print(f"end-to-end energy ratio      : {cmp.end_to_end_energy_ratio:.2f}x")

    print()
    anda = estimate_inference(MODEL, "Anda", COMBINATION, prefill_tokens=2048)
    fpfp = estimate_inference(MODEL, "FP-FP", None, prefill_tokens=2048)
    print(f"{'metric':<28} {'FP-FP':>12} {'Anda':>12}")
    print(
        f"{'time to first token':<28} {fpfp.time_to_first_token_s:>11.2f}s "
        f"{anda.time_to_first_token_s:>11.2f}s"
    )
    print(
        f"{'decode tokens/s':<28} {fpfp.decode_tokens_per_s:>12.2f} "
        f"{anda.decode_tokens_per_s:>12.2f}"
    )
    print(
        f"{'energy per decoded token':<28} "
        f"{fpfp.decode_energy_j * 1e3:>10.1f}mJ {anda.decode_energy_j * 1e3:>10.1f}mJ"
    )

    print()
    print("GeMM share of block time vs context length (Anda):")
    for context in (256, 1024, 4096, 16384):
        share = schedule_block(MODEL, "Anda", COMBINATION, context).share("gemm:")
        print(f"  {context:>6} tokens : {share * 100:5.1f}%")


if __name__ == "__main__":
    main()
