#!/usr/bin/env python3
"""The full compile-time deployment pipeline, artifact to kernel.

Chains every offline stage of Fig. 1 for one model and shows the
artifacts a deployment system would persist:

1. run the adaptive search (cached zoo model, W4A16 reference),
2. package the result as a JSON deployment artifact,
3. compile one layer's QKV GeMM into the controller instruction stream,
4. cross-check the compiled kernel against the cycle simulator.

Run:  python examples/deployment_pipeline.py
"""

import tempfile
from pathlib import Path

from repro.hw.program import compile_gemm, validate_against_simulator
from repro.hw.workloads import prefill_gemms
from repro.llm.config import get_config
from repro.quant.report import DeploymentArtifact, build_artifact

MODEL = "opt-1.3b"
DATASET = "wikitext2-sim"
TOLERANCE = 0.01


def main() -> None:
    print(f"=== 1. Offline calibration for {MODEL} @ {TOLERANCE * 100:g}% ===")
    artifact = build_artifact(MODEL, DATASET, TOLERANCE)
    print(f"combination {artifact.combination}, "
          f"{artifact.bops_saving:.2f}x BOPs saving, "
          f"{artifact.search_iterations} search iterations")

    print("\n=== 2. Deployment artifact (JSON) ===")
    with tempfile.TemporaryDirectory() as tmp:
        path = artifact.save(Path(tmp) / f"{MODEL}.anda.json")
        text = path.read_text()
        print(text)
        restored = DeploymentArtifact.load(path)
        print(f"round-trip OK: {restored == artifact}")

    print("=== 3. Compile the QKV GeMM kernel ===")
    config = get_config(MODEL)
    qkv = prefill_gemms(config, sequence_length=2048)[0]
    program = compile_gemm(qkv, "Anda", artifact.combination)
    counts = program.opcode_counts()
    print(f"GeMM {qkv.rows}x{qkv.reduction}x{qkv.cols} "
          f"(x{qkv.repeats} layers)")
    for opcode in ("LOAD_WGT", "LOAD_ACT", "COMPUTE", "DRAIN", "COMPRESS", "STORE"):
        print(f"  {opcode:<9} x {counts[opcode]}")
    print(f"compute-critical-path cycles (one instance): "
          f"{program.compute_cycles():,}")

    print("\n=== 4. Cross-check against the cycle simulator ===")
    agreed = validate_against_simulator(program, artifact.combination)
    print(f"compiled cycle estimate agrees with the tile simulator: {agreed}")
    print(f"\nProjected system gains vs FP-FP: "
          f"{artifact.projected_speedup:.2f}x speed, "
          f"{artifact.projected_energy_efficiency:.2f}x energy.")


if __name__ == "__main__":
    main()
