#!/usr/bin/env python3
"""Anda quantization-aware training: rescuing an over-aggressive format.

The adaptive search refuses precision combinations whose *post-training*
perplexity damage exceeds the tolerance.  This example shows the
paper's Sec. VI future-work path around that wall: fine-tune the model
*through* the quantizer with a straight-through estimator, and a
combination that PTQ rejects becomes usable.

The script:

1. trains a compact OPT-style model on the simulated WikiText-2 corpus,
2. measures FP16 and post-training-quantized perplexity at the
   aggressive uniform ``[3, 3, 3, 3]`` combination,
3. runs a short STE fine-tune under Anda quantization (stochastic
   rounding, the FAST recipe for training under BFP),
4. reports how much of the PTQ damage the fine-tune recovered.

Run:  python examples/qat_finetune.py     (takes ~1 minute)
"""

import numpy as np

from repro.core.precision import PrecisionCombination
from repro.llm.config import ModelConfig
from repro.llm.datasets import load_corpus, sequence_windows
from repro.llm.qat import qat_recovery
from repro.llm.training import train_language_model
from repro.llm.transformer import CausalLM

COMBINATION = PrecisionCombination.uniform(3)


def main() -> None:
    config = ModelConfig(
        name="qat-example",
        family="opt",
        n_layers=2,
        d_model=64,
        n_heads=2,
        ffn_dim=128,
        max_seq_len=96,
        seed=11,
    )
    corpus = load_corpus("wikitext2-sim")
    print(f"Training a {config.n_layers}-layer d={config.d_model} OPT-style model ...")
    model = CausalLM(config)
    train_language_model(
        model, corpus.train_tokens, steps=150, batch_size=12, seq_len=80, seed=4
    )

    eval_sequences = sequence_windows(
        corpus.validation_tokens, seq_len=80, n_sequences=16, seed=6
    )
    print(f"Fine-tuning under STE Anda quantization at {COMBINATION} ...")
    result = qat_recovery(
        model,
        corpus.train_tokens,
        eval_sequences,
        COMBINATION,
        steps=60,
        learning_rate=4e-4,
        rounding="stochastic",
        batch_size=12,
        seq_len=80,
    )

    print()
    print(f"combination            : {result.combination}")
    print(f"FP16 perplexity        : {result.ppl_fp:.3f}")
    print(
        f"PTQ perplexity         : {result.ppl_ptq:.3f} "
        f"({result.ptq_degradation * 100:+.1f}%)"
    )
    print(
        f"QAT perplexity         : {result.ppl_qat:.3f} "
        f"({result.qat_degradation * 100:+.1f}%)"
    )
    print(f"PTQ damage recovered   : {result.recovered_fraction * 100:.0f}%")
    print(f"final fine-tune loss   : {np.mean(result.losses[-5:]):.3f}")


if __name__ == "__main__":
    main()
