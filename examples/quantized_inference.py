#!/usr/bin/env python3
"""End-to-end W4A16 + Anda inference on a trained language model.

Walks the full deployment story on the OPT-1.3B twin:

1. perplexity of the FP16 model,
2. after W4A16 weight-only quantization,
3. with Anda activations at the searched 1%-tolerance combination,
4. with the VS-Quant 4-bit format (the collapse the paper warns about),
5. text generation under each configuration to make the degradation
   tangible.

Run:  python examples/quantized_inference.py
"""

import numpy as np

from repro.llm.datasets import validation_sequences
from repro.llm.generation import generate_text
from repro.llm.hooks import anda_quantizer
from repro.llm.perplexity import evaluate_perplexity
from repro.llm.zoo import get_model
from repro.quant.act_quant import vsquant_quantizer
from repro.quant.deploy import deploy_anda, reference_model

MODEL = "opt-1.3b"
DATASET = "wikitext2-sim"
PROMPT = "the northern village of "


def main() -> None:
    print(f"Loading {MODEL} twin (trains on first run)...")
    fp_model = get_model(MODEL)
    sequences = validation_sequences(DATASET, n_sequences=16, seq_len=128)

    fp_ppl = evaluate_perplexity(fp_model, sequences)
    print(f"\n1. FP16 model:                PPL {fp_ppl:.3f}")

    w4a16 = reference_model(MODEL)
    ref_ppl = evaluate_perplexity(w4a16, sequences)
    print(f"2. W4A16 weight-only:         PPL {ref_ppl:.3f} "
          f"({(ref_ppl / fp_ppl - 1) * 100:+.2f}% vs FP16)")

    deployment = deploy_anda(MODEL, DATASET, tolerance=0.01)
    w4a16.set_quantizer(anda_quantizer(deployment.combination))
    anda_ppl = evaluate_perplexity(w4a16, sequences)
    print(f"3. + Anda {deployment.combination}:      PPL {anda_ppl:.3f} "
          f"({(anda_ppl / ref_ppl - 1) * 100:+.2f}% vs W4A16, "
          f"{deployment.bops_saving:.2f}x BOPs saving)")

    w4a16.set_quantizer(vsquant_quantizer())
    vs_ppl = evaluate_perplexity(w4a16, sequences)
    print(f"4. + VS-Quant 4b (no retrain): PPL {vs_ppl:.3f} "
          f"({(vs_ppl / ref_ppl - 1) * 100:+.2f}% vs W4A16, 4.00x saving)")
    w4a16.set_quantizer(None)

    print(f"\n5. Generation from prompt {PROMPT!r}:")
    rng_seed = 7
    fp_text = generate_text(fp_model, PROMPT, max_new_tokens=48, seed=rng_seed)
    print(f"   FP16:     {fp_text!r}")

    w4a16.set_quantizer(anda_quantizer(deployment.combination))
    anda_text = generate_text(w4a16, PROMPT, max_new_tokens=48, seed=rng_seed)
    print(f"   Anda:     {anda_text!r}")

    w4a16.set_quantizer(vsquant_quantizer())
    vs_text = generate_text(w4a16, PROMPT, max_new_tokens=48, seed=rng_seed)
    print(f"   VS-Quant: {vs_text!r}")
    w4a16.set_quantizer(None)

    match = sum(a == b for a, b in zip(fp_text, anda_text)) / len(fp_text)
    print(f"\nAnda text agrees with FP16 on {match * 100:.0f}% of characters; "
          f"activation compression preserved the model's behaviour.")
    print(np.round(deployment.effective_mantissa, 2),
          "effective mantissa bits across the four GeMM tensor types.")


if __name__ == "__main__":
    main()
