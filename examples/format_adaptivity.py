#!/usr/bin/env python3
"""Format adaptivity: one engine, many KV precisions.

KV-cache precision in the serving stack is a first-class value object,
``repro.serve.KVFormat`` — resolvable per engine, per request, and per
layer.  This tour drives all three levels over one live engine:

1. **a mixed-precision batch** — the engine default (``anda6``) serves
   alongside per-request overrides (``fp16``, ``bfp5``, ``anda4``)
   carried by ``SamplingParams.kv_format``;
2. **parity** — an override's tokens are bitwise identical to a solo
   engine configured engine-wide with that format (the mixed batch
   changes *traffic*, never *tokens*);
3. **per-format telemetry** — ``EngineMetrics.kv_format_bytes`` splits
   the simulated KV stream by format label, exported as the
   ``repro_engine_kv_format_bytes_total`` Prometheus counter;
4. **a search-derived per-layer policy** — ``KVFormat.from_search``
   turns adaptive-precision-search output (Algorithm 1,
   ``repro.core.search``) into a per-layer serving policy.

Run:  python examples/format_adaptivity.py
(Uses the same cached sim model as ``examples/quickstart.py``.)
"""

import numpy as np

from repro.core.search import adaptive_precision_search
from repro.llm import ByteTokenizer
from repro.llm.zoo import get_model
from repro.serve import LLM, EngineConfig, KVFormat, SamplingParams


def serve_mixed(model, prompts, formats, engine_format, max_new_tokens=12):
    """One engine, one format per request (None inherits the default)."""
    llm = LLM(
        model,
        EngineConfig(
            max_batch_size=8, max_batch_tokens=48, kv_format=engine_format
        ),
    )
    handles = [
        llm.submit(
            prompt,
            SamplingParams(max_new_tokens=max_new_tokens, kv_format=fmt),
        )
        for prompt, fmt in zip(prompts, formats)
    ]
    llm.engine.run_until_idle()
    return llm, [handle.result().tokens for handle in handles]


def main() -> None:
    model = get_model("opt-125m-sim")  # trained once, then cached
    tokenizer = ByteTokenizer()
    default = KVFormat.anda(6)

    print("=== 1. A mixed-precision batch ===")
    prompts = [
        tokenizer.encode(text)
        for text in (
            "the anda format",
            "keeps activations compressed",
            "variable-length groups",
            "adaptive precision",
        )
    ]
    formats = [None, KVFormat.fp16(), KVFormat.bfp(5), KVFormat.anda(4)]
    llm, mixed_tokens = serve_mixed(model, prompts, formats, default)
    for fmt, tokens in zip(formats, mixed_tokens):
        label = fmt.label if fmt is not None else f"{default.label} (default)"
        print(f"  {label:>16}: {tokenizer.decode(np.asarray(tokens))!r}")

    print("\n=== 2. Overrides decode exactly like their solo engine ===")
    _, solo_tokens = serve_mixed(
        model, [prompts[1]], [None], engine_format=KVFormat.fp16()
    )
    assert np.array_equal(mixed_tokens[1], solo_tokens[0])
    print("  fp16 override in the mixed batch == fp16 solo engine: bitwise")

    print("\n=== 3. Per-format KV traffic split ===")
    split = dict(llm.metrics().kv_format_bytes)
    total = sum(split.values())
    for label, nbytes in sorted(split.items(), key=lambda kv: -kv[1]):
        print(f"  {label:>6}: {nbytes / 1e6:8.2f} MB ({nbytes / total:5.1%})")
    exposition = llm.telemetry.prometheus()
    counter_lines = [
        line
        for line in exposition.splitlines()
        if line.startswith("repro_engine_kv_format_bytes_total{")
    ]
    print("  Prometheus view:")
    for line in counter_lines:
        print(f"    {line}")

    print("\n=== 4. A per-layer policy from the precision search ===")
    # One (synthetic) Algorithm-1 run per layer: early layers tolerate
    # less KV error than late ones, so the search lands on wider
    # mantissas up front.  A real deployment would evaluate calibration
    # accuracy; the serving API only consumes the SearchResults.
    results = []
    for layer in range(model.config.n_layers):
        sensitivity = 1.0 / (1.0 + layer)

        def accuracy(combo, sensitivity=sensitivity):
            return 1.0 - sensitivity * (2.0 ** -combo.qkv)

        results.append(
            adaptive_precision_search(
                evaluate_accuracy=accuracy,
                evaluate_bops=lambda combo: float(sum(combo)),
                reference_accuracy=1.0,
                tolerance=0.004,
                max_iterations=64,
            )
        )
    policy = KVFormat.from_search(results)
    print(f"  policy: {policy.label}")
    policy_llm, policy_tokens = serve_mixed(
        model, prompts, [None] * len(prompts), engine_format=policy
    )
    bits = policy.bits_per_element(model.config.n_layers)
    print(f"  mean KV bits/element: {bits:.2f} (fp16 = 16)")
    print(f"  served {sum(len(t) for t in policy_tokens)} tokens, "
          f"{policy_llm.metrics().tokens_per_second:.0f} tok/s")

    print("\nformat adaptivity tour complete")


if __name__ == "__main__":
    main()
