#!/usr/bin/env python3
"""Why group size 64? An empirical look at LLM activations.

Reproduces the design rationale behind the Anda format on a trained
model from the zoo:

1. capture the four FP-INT GeMM activation tensors from a forward pass,
2. measure channel-outlier structure (the reason activations resist
   plain INT quantization),
3. measure the within-group exponent spread as the group size grows —
   the exact quantity that forces mantissa truncation in BFP formats —
   and connect it to the Fig. 5 accuracy trade-off.

Run:  python examples/activation_atlas.py
"""

import numpy as np

from repro.core.precision import TensorKind
from repro.llm.analysis import (
    capture_activations,
    mean_spread_by_group_size,
    outlier_stats,
)
from repro.llm.datasets import validation_sequences
from repro.llm.zoo import get_model

MODEL = "opt-6.7b"
GROUP_SIZES = (1, 8, 16, 32, 64, 128, 256)


def main() -> None:
    print(f"Capturing activations from the {MODEL} twin...")
    model = get_model(MODEL)
    tokens = validation_sequences("wikitext2-sim", n_sequences=2, seq_len=96)
    capture = capture_activations(model, tokens)

    print("\n=== Channel-outlier structure ===")
    print(f"{'tensor':>7} {'max|x|':>9} {'median ch. max':>15} "
          f"{'outlier ratio':>14} {'top-1% energy':>14}")
    for kind in TensorKind.ordered():
        stats = outlier_stats(capture.stacked(kind))
        print(f"A_{kind.value:<5} {stats.max_abs:>9.3f} "
              f"{stats.median_channel_max:>15.3f} "
              f"{stats.outlier_ratio:>13.1f}x "
              f"{stats.top1pct_energy * 100:>13.1f}%")

    print("\n=== Within-group exponent spread vs group size ===")
    print("(bits of mantissa the worst element of a group loses to "
          "shared-exponent alignment)")
    header = f"{'tensor':>7} " + " ".join(f"GS={gs:<4}" for gs in GROUP_SIZES)
    print(header)
    for kind in TensorKind.ordered():
        spreads = mean_spread_by_group_size(
            capture.stacked(kind), GROUP_SIZES
        )
        row = " ".join(f"{spreads[gs]:>6.2f} " for gs in GROUP_SIZES)
        print(f"A_{kind.value:<5} {row}")

    spread64 = np.mean([
        mean_spread_by_group_size(capture.stacked(kind), (64,))[64]
        for kind in TensorKind.ordered()
    ])
    print(f"\nAt the paper's GS=64, the worst element of a group sits "
          f"~{spread64:.1f} exponent steps below the shared maximum — it is "
          "fully truncated by short mantissas.  Accuracy survives anyway "
          "(Fig. 5/6: 5-7 bits inside the 1% envelope) because those are "
          "precisely the *smallest* contributors to each dot product; "
          "that asymmetry is the headroom the Anda format converts into "
          "cycles and memory.")


if __name__ == "__main__":
    main()
