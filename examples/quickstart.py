#!/usr/bin/env python3
"""Quickstart: the Anda data format in five minutes.

Covers the core public API end to end:

1. encode an activation tensor into the variable-length grouped Anda
   format and inspect the compression,
2. verify the hardware-exact views (bit-plane compressor, bit-serial
   dot product) agree with the arithmetic definitions,
3. run an FP-INT GeMM through the Anda datapath and compare its error
   against the plain float result,
4. sweep the mantissa length to see the accuracy/footprint trade-off,
5. serve a model through the ``LLM`` facade: per-request
   ``SamplingParams``, token-by-token streaming, and ``abort()``.

Run:  python examples/quickstart.py
(Step 5 trains a small sim model on first run; it is cached under
``.anda_zoo_cache/`` afterwards.)

To *observe* the serving engine — Perfetto step traces, Prometheus
counters, per-request lifecycle events — continue with
``examples/telemetry_tour.py``.
"""

import numpy as np

from repro import AndaTensor, BitPlaneCompressor, anda_matvec
from repro.core import fp16
from repro.llm import ByteTokenizer
from repro.llm.zoo import get_model
from repro.serve import LLM, EngineConfig, KVFormat, SamplingParams


def main() -> None:
    rng = np.random.default_rng(2025)

    # Activations with realistic dynamic range (heavy-tailed channels).
    activations = (
        rng.normal(size=(16, 512)) * 10 ** (0.25 * rng.normal(size=(1, 512)))
    ).astype(np.float32)

    print("=== 1. Encode to the Anda format ===")
    encoded = AndaTensor.from_float(activations, mantissa_bits=6)
    error = np.abs(encoded.decode() - fp16.round_trip(activations)).max()
    print(f"shape {encoded.shape}, {encoded.n_groups} groups of 64")
    print(f"mantissa bits: {encoded.mantissa_bits}")
    print(
        f"storage: {encoded.storage_bits() / 8 / 1024:.2f} KiB "
        f"(FP16 would be {activations.size * 2 / 1024:.2f} KiB, "
        f"{encoded.compression_ratio():.2f}x compression)"
    )
    print(f"max abs decode error vs FP16: {error:.5f}")

    print("\n=== 2. Hardware-exact views ===")
    compressed, stats = BitPlaneCompressor().compress(activations, 6)
    identical = np.array_equal(
        compressed.store.mantissa_planes, encoded.store.mantissa_planes
    )
    print(f"cycle-explicit BPC output bit-identical to encoder: {identical}")
    print(
        f"BPC cost: {stats.cycles} aligner cycles over {stats.passes} "
        f"passes of {stats.lanes} lanes"
    )

    print("\n=== 3. FP-INT GeMM through the Anda datapath ===")
    weights = rng.integers(-8, 8, size=(512, 64))  # INT4 range
    exact = activations @ weights.astype(np.float32)
    approx = anda_matvec(encoded, weights)
    rel_err = np.abs(approx - exact).max() / np.abs(exact).max()
    print(f"GeMM relative error at 6 mantissa bits: {rel_err * 100:.3f}%")

    print("\n=== 4. Mantissa sweep: accuracy vs footprint ===")
    print(f"{'M':>3} {'rel GeMM error':>15} {'bits/element':>13}")
    for mantissa in (3, 4, 6, 8, 10, 12):
        tensor = AndaTensor.from_float(activations, mantissa)
        approx = anda_matvec(tensor, weights)
        rel = np.abs(approx - exact).max() / np.abs(exact).max()
        bits = tensor.storage_bits() / activations.size
        print(f"{mantissa:>3} {rel * 100:>14.4f}% {bits:>13.2f}")

    print("\n=== 5. Serve it: LLM facade, streaming, abort ===")
    model = get_model("opt-125m-sim")  # trained once, then cached
    llm = LLM(model, EngineConfig(kv_format=KVFormat.anda(8)))  # Anda KV
    tokenizer = ByteTokenizer()

    # Each request carries its own frozen decoding recipe.
    params = SamplingParams(
        max_new_tokens=24, temperature=0.8, top_k=40, top_p=0.95, seed=7
    )
    streamed = llm.submit(tokenizer.encode("the anda format"), params)
    doomed = llm.submit(
        tokenizer.encode("a request we change our mind about"),
        SamplingParams(max_new_tokens=200),
    )

    # Tokens arrive as the engine steps — both requests decode in the
    # same batched steps; the first delta marks this request's TTFT.
    pieces = []
    for delta in streamed.tokens():
        pieces.append(delta.token)
        if delta.index == 2:
            # Cancel the other request mid-flight: its KV memory is
            # released immediately, the stream above keeps flowing.
            doomed.abort()
    print(
        f"streamed {len(pieces)} tokens "
        f"({streamed.status().value}, reason: "
        f"{streamed.deltas()[-1].finish_reason})"
    )
    print(f"text: {tokenizer.decode(np.asarray(pieces))!r}")
    print(
        f"aborted request produced {len(doomed.generated_tokens())} "
        f"tokens before cancellation "
        f"(engine aborted count: {llm.metrics().aborted})"
    )


if __name__ == "__main__":
    main()
