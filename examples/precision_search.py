#!/usr/bin/env python3
"""Offline Anda calibration for a weight-only quantized LLM.

Reproduces the paper's Fig. 1 deployment flow on one model:

1. load the trained OPT-125M twin from the zoo (trains on first run),
2. weight-quantize it to W4A16,
3. run the adaptive precision combination search (Algorithm 1) at two
   accuracy tolerances,
4. print the search trajectory and the accuracy/BOPs outcome on
   held-out data.

Run:  python examples/precision_search.py
"""

from repro.quant.deploy import deploy_anda


def show(model: str, dataset: str, tolerance: float) -> None:
    result = deploy_anda(model, dataset, tolerance)
    print(f"--- {model} on {dataset} @ {tolerance * 100:g}% tolerance ---")
    print(f"reference (W4A16) calibration PPL: "
          f"{result.reference_ppl_calibration:.3f}")
    print("search trajectory:")
    for step in result.search.steps:
        marker = " *best*" if step.accepted else ""
        print(f"  #{step.iteration:2d} {step.combination}  "
              f"acc={step.accuracy * 100:6.2f}%  bops={step.bops:.3g}{marker}")
    print(f"chosen combination: {result.combination} "
          f"(effective mantissa {result.effective_mantissa:.2f} bits)")
    print(f"BOPs saving vs FP16 activations: {result.bops_saving:.2f}x")
    print(f"validation PPL: {result.reference_ppl_validation:.3f} -> "
          f"{result.anda_ppl_validation:.3f} "
          f"({result.validation_accuracy_drop:+.2f}% accuracy)")
    print()


def main() -> None:
    print("Anda adaptive precision combination search (Algorithm 1)\n")
    show("opt-125m", "wikitext2-sim", 0.001)
    show("opt-125m", "wikitext2-sim", 0.01)
    print("Looser tolerance -> shorter mantissas -> bigger savings.")


if __name__ == "__main__":
    main()
