#!/usr/bin/env python3
"""System-level accelerator comparison on a paper-scale workload.

Simulates a 2048-token LLaMA-13B prefill (the paper's Sec. V-D setting)
on the Anda architecture and every baseline: wall-clock cycles, energy
split across compute/SRAM/DRAM, and the headline speedup / efficiency
multipliers.  No zoo model is needed — the hardware experiments run on
the real model dimensions.

Run:  python examples/accelerator_sim.py
"""

from repro.core.precision import PrecisionCombination
from repro.hw.accelerator import compare_architectures
from repro.hw.area import anda_system_breakdown, system_area_mm2
from repro.hw.params import CLOCK_HZ
from repro.hw.simulator import simulate_model

MODEL = "llama-13b"

#: A representative 1%-tolerance combination for LLaMA-13B (the full
#: pipeline would take it from the adaptive search; see
#: examples/precision_search.py).
COMBINATION = PrecisionCombination(7, 5, 6, 6)


def main() -> None:
    print(f"Simulating {MODEL}, 2048-token prefill, 16x16 MXU @ 285 MHz\n")

    fpfp = simulate_model(MODEL, "FP-FP")
    results = compare_architectures(MODEL, COMBINATION)

    header = (f"{'system':<10} {'time(ms)':>9} {'speedup':>8} "
              f"{'energy(mJ)':>11} {'energy-eff':>10} {'area-eff':>9}")
    print(header)
    print("-" * len(header))
    for name, comparison in results.items():
        run = comparison.run
        time_ms = run.cycles / CLOCK_HZ * 1e3
        print(f"{name:<10} {time_ms:>9.1f} {comparison.speedup:>7.2f}x "
              f"{run.energy_pj / 1e9:>11.2f} "
              f"{comparison.energy_efficiency:>9.2f}x "
              f"{comparison.area_efficiency:>8.2f}x")

    print(f"\nAnda combination: {COMBINATION}")
    print("\nEnergy breakdown (fraction of the FP-FP total):")
    for name in ("FP-FP", "FIGNA", "Anda"):
        shares = results[name].energy_shares_vs_fpfp(fpfp)
        print(f"  {name:<8} compute {shares['compute'] * 100:5.1f}%  "
              f"sram {shares['sram'] * 100:5.1f}%  "
              f"dram {shares['dram'] * 100:5.1f}%")

    print("\nAnda system floorplan (Table III):")
    breakdown = anda_system_breakdown()
    for comp in breakdown.components:
        print(f"  {comp.name:<18} {comp.area_mm2:6.3f} mm2  "
              f"{comp.power_mw:6.2f} mW")
    print(f"  {'Total':<18} {breakdown.total_area_mm2:6.2f} mm2  "
          f"{breakdown.total_power_mw:6.2f} mW")
    print(f"\nFP-FP system area for reference: "
          f"{system_area_mm2('FP-FP'):.2f} mm2")


if __name__ == "__main__":
    main()
