"""Tests for report rendering and the experiment registry."""

import pytest

from repro.experiments.reporting import (
    format_percent,
    format_ratio,
    format_series,
    format_table,
)
from repro.experiments.runner import EXPERIMENT_ORDER, EXPERIMENTS, run_experiment


class TestFormatTable:
    def test_basic_layout(self):
        table = format_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = table.splitlines()
        assert lines[0].startswith("a")
        assert "-+-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        table = format_table(["x"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"
        assert table.splitlines()[1] == "========"

    def test_column_width_adapts(self):
        table = format_table(["h"], [["a-very-long-cell"]])
        assert "a-very-long-cell" in table

    def test_empty_rows(self):
        table = format_table(["only", "headers"], [])
        assert "only" in table


class TestFormatters:
    def test_ratio(self):
        assert format_ratio(2.488) == "2.49x"

    def test_percent_signed(self):
        assert format_percent(-0.74) == "-0.74%"
        assert format_percent(0.2) == "+0.20%"
        assert format_percent(0.2, signed=False) == "0.20%"

    def test_series(self):
        text = format_series("s", [(1, 2.0), (2, 3.0)])
        assert "[s]" in text
        assert "1: 2.0000" in text


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "table1", "fig2", "fig5", "fig6", "fig7", "fig8", "fig9",
            "table2", "fig14", "fig15", "fig16", "fig17", "table3", "fig18",
            "ablations", "extensions",
            "ext-memory", "ext-overlap", "ext-pipeline",
            "ext-search", "ext-mx", "ext-dataflow", "ext-qat",
        }
        assert expected == set(EXPERIMENTS)

    def test_order_is_stable(self):
        assert EXPERIMENT_ORDER[0] == "table1"
        assert EXPERIMENT_ORDER[-1] == "ext-qat"

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    def test_cheap_experiment_runs(self):
        report = run_experiment("table1")
        assert "Anda (Ours)" in report

    def test_cli_help(self, capsys):
        from repro.experiments.runner import main

        assert main(["--help"]) == 0
        assert "experiments:" in capsys.readouterr().out

    def test_cli_unknown_experiment_exit_code(self, capsys):
        from repro.experiments.runner import main

        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().out

    def test_cli_runs_single(self, capsys):
        from repro.experiments.runner import main

        assert main(["table3"]) == 0
        assert "Table III" in capsys.readouterr().out
