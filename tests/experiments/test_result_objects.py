"""Unit tests for experiment result containers (no model zoo needed)."""

import pytest

from repro.core.precision import PrecisionCombination, TensorKind
from repro.core.search import SearchResult, SearchStep
from repro.experiments.fig2_gemm_ops import CONTEXT_LENGTHS, Fig2Result
from repro.experiments.fig5_group_size import GROUP_SIZES, MANTISSA_BITS, Fig5Result
from repro.experiments.fig6_model_sensitivity import Fig6Result
from repro.experiments.fig7_module_sensitivity import (
    Fig7Result,
    single_kind_combination,
)
from repro.experiments.fig9_search_trace import Fig9Result
from repro.experiments.fig14_combinations import Fig14Result
from repro.experiments.fig16_system_level import Fig16Result
from repro.experiments.fig17_energy_breakdown import Fig17Result
from repro.experiments.fig18_tradeoff import Fig18Result
from repro.experiments.table2_accuracy import Table2Cell, Table2Result
from repro.hw.accelerator import AndaOperatingPoint, SystemComparison
from repro.hw.simulator import SystemRun


class TestFig2Result:
    def test_render_contains_all_models(self):
        shares = {"m1": {c: 0.9 for c in CONTEXT_LENGTHS}}
        tops = {"m1": {c: 1.0 for c in CONTEXT_LENGTHS}}
        text = Fig2Result(shares, tops).render()
        assert "m1" in text
        assert "90.0%" in text


class TestFig5Result:
    def _result(self):
        ppl = {
            "m": {
                gs: {m: 10.02 if m > 6 else 11.0 for m in MANTISSA_BITS}
                for gs in GROUP_SIZES
            }
        }
        return Fig5Result(ppl=ppl, fp_ppl={"m": 10.0})

    def test_min_mantissa(self):
        result = self._result()
        assert result.min_mantissa_within_loss("m", 64, 0.01) == 7

    def test_infeasible_returns_none(self):
        result = self._result()
        assert result.min_mantissa_within_loss("m", 64, 1e-9) is None

    def test_render(self):
        assert "GS \\ M" in self._result().render()


class TestFig6Result:
    def test_tolerable_bits(self):
        series = {m: (1.0 if m >= 6 else 0.9) for m in range(4, 14)}
        result = Fig6Result(relative={"m": series})
        assert result.tolerable_bits("m", 0.01) == 6
        assert result.tolerable_bits("m", 0.001) == 6


class TestFig7Result:
    def test_single_kind_combination(self):
        comb = single_kind_combination(TensorKind.U, 5)
        assert comb == PrecisionCombination(13, 13, 5, 13)

    def test_most_sensitive(self):
        relative = {
            "m": {
                kind: {5: 0.99 if kind != TensorKind.QKV else 0.90}
                for kind in TensorKind
            }
        }
        assert Fig7Result(relative).most_sensitive_kind("m") == TensorKind.QKV


class TestFig9Result:
    def test_render_shows_best(self):
        step = SearchStep(1, PrecisionCombination.uniform(4), 100.0, 0.9,
                          False, False, None)
        search = SearchResult(
            best=PrecisionCombination.uniform(4), best_bops=100.0,
            reference_accuracy=1.0, tolerance=0.01, steps=[step],
        )
        result = Fig9Result(search, [0.5], PrecisionCombination.uniform(4))
        text = result.render()
        assert "(Best) [4, 4, 4, 4]" in text


class TestTable2Result:
    def test_render_orders_schemes(self):
        cell = Table2Cell(10.0, -1.0, 2.0)
        result = Table2Result()
        result.cells = {"d": {"m": {s: cell for s in result.schemes}}}
        text = result.render()
        assert text.index("fp16") < text.index("vs-quant") < text.index("anda-1%")


class TestFig14Result:
    def test_mean_bits(self):
        grid = {
            "a": PrecisionCombination(8, 6, 5, 4),
            "b": PrecisionCombination(6, 6, 5, 4),
        }
        result = Fig14Result(combos={("d", 0.01): grid})
        assert result.mean_bits("d", 0.01, TensorKind.QKV) == 7.0


def _system_run(cycles, energy):
    return SystemRun(
        architecture="x", model_name="m", cycles=cycles,
        compute_energy_pj=energy / 3, sram_energy_pj=energy / 3,
        dram_energy_pj=energy / 3, dram_bytes=1.0,
    )


def _comparison(speedup):
    return SystemComparison(
        architecture="x", model_name="m", speedup=speedup,
        energy_efficiency=speedup, area_efficiency=speedup,
        run=_system_run(1.0, 1.0),
    )


class TestFig16Result:
    def test_geomean(self):
        from repro.experiments.fig16_system_level import SYSTEM_LABELS

        metrics = {
            "m1": {label: _comparison(1.0) for label in SYSTEM_LABELS},
            "m2": {label: _comparison(4.0) for label in SYSTEM_LABELS},
        }
        result = Fig16Result(metrics=metrics)
        assert result.geomean("FP-FP", "speedup") == pytest.approx(2.0)


class TestFig17Result:
    def test_efficiency_is_reciprocal_total(self):
        shares = {"sys": {"compute": 0.2, "sram": 0.1, "dram": 0.2}}
        result = Fig17Result(shares=shares)
        assert result.total("sys") == pytest.approx(0.5)
        assert result.efficiency("sys") == pytest.approx(2.0)


class TestFig18Result:
    def test_series_accessors(self):
        point = AndaOperatingPoint(
            model_name="m", tolerance=0.01,
            combination=PrecisionCombination.uniform(6),
            speedup=2.0, energy_efficiency=3.0,
        )
        result = Fig18Result(points={"m": {0.01: point}})
        assert result.speedup_series("m") == [(0.01, 2.0)]
        assert result.energy_series("m") == [(0.01, 3.0)]

    def test_energy_shares_sum_to_one(self):
        run = _system_run(1.0, 3.0)
        assert sum(run.energy_shares().values()) == pytest.approx(1.0)
