"""Tests for the extension-study experiment drivers (ext-*)."""

import pytest

from repro.experiments import (
    ext_memory,
    ext_overlap,
    ext_search_strategies,
)
from repro.experiments.ext_memory import MemoryLayoutResult
from repro.experiments.ext_overlap import OverlapResult
from repro.experiments.ext_search_strategies import StrategyComparisonResult
from repro.experiments.runner import EXPERIMENTS


class TestExtMemory:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_memory.run(mantissas=(4, 8, 13))

    def test_result_type_and_keys(self, result):
        assert isinstance(result, MemoryLayoutResult)
        assert set(result.layouts) == {4, 8, 13}
        assert set(result.dram) == {4, 8, 13}

    def test_render_contains_tables(self, result):
        text = result.render()
        assert "SRAM" in text
        assert "DRAM" in text
        assert "fetch ratio" in text

    def test_dram_reduction_shrinks_with_mantissa(self, result):
        ratios = [result.dram[m]["footprint_ratio"] for m in (4, 8, 13)]
        assert ratios == sorted(ratios, reverse=True)


class TestExtOverlap:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_overlap.run()

    def test_all_configurations_present(self, result):
        assert isinstance(result, OverlapResult)
        assert "FP-FP" in result.summaries
        assert "Anda-M4" in result.summaries

    def test_render(self, result):
        text = result.render()
        assert "BPC hidden" in text
        assert "Anda-M4" in text

    def test_bpc_overlap_claim(self, result):
        for name, summary in result.summaries.items():
            if name.startswith("Anda"):
                assert summary.bpc_hidden_fraction > 0.9


class TestExtSearchStrategies:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_search_strategies.run(seed=3)

    def test_outcomes_complete(self, result):
        assert isinstance(result, StrategyComparisonResult)
        assert "brute-force" in result.outcomes
        assert result.layerwise.evaluations > 0

    def test_render_lists_every_strategy(self, result):
        text = result.render()
        for strategy in ("adaptive", "greedy", "random", "brute-force", "layer-wise"):
            assert strategy in text

    def test_optimum_is_minimum(self, result):
        feasible = [o.best_bops for o in result.outcomes.values() if o.feasible]
        assert result.optimum_bops == min(feasible)


class TestRunnerRegistry:
    def test_extension_experiments_registered(self):
        for name in ("ext-memory", "ext-overlap", "ext-pipeline",
                     "ext-search", "ext-mx", "ext-dataflow", "ext-qat"):
            assert name in EXPERIMENTS
