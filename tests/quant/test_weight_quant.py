"""Tests for group-wise weight-only quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.llm.autograd import no_grad
from repro.llm.config import tiny_test_config
from repro.llm.transformer import build_model
from repro.quant.weight_quant import (
    WeightQuantConfig,
    fake_quantize_weights,
    quantize_model_weights,
    quantize_weights,
    weight_quantized_copy,
)


class TestConfig:
    def test_defaults_match_paper(self):
        config = WeightQuantConfig()
        assert config.bits == 4
        assert config.group_size == 128

    def test_rejects_bad_bits(self):
        with pytest.raises(FormatError):
            WeightQuantConfig(bits=1)
        with pytest.raises(FormatError):
            WeightQuantConfig(bits=9)

    def test_rejects_bad_group(self):
        with pytest.raises(FormatError):
            WeightQuantConfig(group_size=0)


class TestQuantizeWeights:
    def test_codes_in_range(self):
        rng = np.random.default_rng(0)
        w = rng.normal(size=(256, 32)).astype(np.float32)
        qw = quantize_weights(w, WeightQuantConfig(bits=4))
        assert qw.codes.min() >= 0
        assert qw.codes.max() <= 15

    def test_error_bounded_by_half_step(self):
        rng = np.random.default_rng(1)
        w = rng.normal(size=(128, 16)).astype(np.float32)
        config = WeightQuantConfig(bits=4, group_size=64)
        qw = quantize_weights(w, config)
        restored = qw.dequantize()
        # Per group/column, error <= scale / 2.
        err = np.abs(restored - w).reshape(2, 64, 16).max(axis=1)
        assert np.all(err <= qw.scales / 2 + 1e-6)

    def test_more_bits_less_error(self):
        rng = np.random.default_rng(2)
        w = rng.normal(size=(128, 8)).astype(np.float32)
        errs = [
            np.abs(fake_quantize_weights(w, WeightQuantConfig(bits=b)) - w).mean()
            for b in (2, 4, 8)
        ]
        assert errs[0] > errs[1] > errs[2]

    def test_group_size_clipped_to_rows(self):
        w = np.random.default_rng(3).normal(size=(32, 4)).astype(np.float32)
        qw = quantize_weights(w, WeightQuantConfig(group_size=128))
        assert qw.group_size == 32
        assert qw.scales.shape == (1, 4)

    def test_ragged_rows_pad(self):
        w = np.random.default_rng(4).normal(size=(100, 4)).astype(np.float32)
        qw = quantize_weights(w, WeightQuantConfig(group_size=64))
        assert qw.dequantize().shape == (100, 4)

    def test_constant_column_is_exact(self):
        w = np.full((64, 2), 3.0, dtype=np.float32)
        restored = fake_quantize_weights(w, WeightQuantConfig())
        np.testing.assert_allclose(restored, w, atol=1e-6)

    def test_rejects_non_2d(self):
        with pytest.raises(FormatError):
            quantize_weights(np.zeros((2, 3, 4)), WeightQuantConfig())

    def test_storage_bits(self):
        w = np.zeros((128, 4), dtype=np.float32)
        qw = quantize_weights(w, WeightQuantConfig(bits=4, group_size=64))
        # 128*4 codes * 4 bits + 2 groups * 4 cols * 2 * 16 bits.
        assert qw.storage_bits() == 128 * 4 * 4 + 2 * 4 * 32

    @given(seed=st.integers(0, 1000), bits=st.integers(2, 8))
    @settings(max_examples=25, deadline=None)
    def test_property_idempotent(self, seed, bits):
        rng = np.random.default_rng(seed)
        w = rng.normal(size=(64, 8)).astype(np.float32)
        config = WeightQuantConfig(bits=bits, group_size=32)
        once = fake_quantize_weights(w, config)
        twice = fake_quantize_weights(once, config)
        np.testing.assert_allclose(once, twice, atol=1e-5)


class TestModelQuantization:
    def test_quantized_copy_leaves_original(self):
        model = build_model(tiny_test_config(seed=5))
        original = model.blocks[0].attention.qkv_proj.weight.data.copy()
        clone = weight_quantized_copy(model)
        np.testing.assert_array_equal(
            model.blocks[0].attention.qkv_proj.weight.data, original
        )
        assert not np.array_equal(
            clone.blocks[0].attention.qkv_proj.weight.data, original
        )

    def test_embeddings_untouched(self):
        model = build_model(tiny_test_config(seed=6))
        emb = model.token_embedding.weight.data.copy()
        head = model.lm_head.weight.data.copy()
        quantize_model_weights(model)
        np.testing.assert_array_equal(model.token_embedding.weight.data, emb)
        np.testing.assert_array_equal(model.lm_head.weight.data, head)

    @pytest.mark.parametrize("family", ["opt", "llama"])
    def test_all_gemm_weights_quantized(self, family):
        model = build_model(tiny_test_config(family=family, seed=7))
        before = {
            name: param.data.copy() for name, param in model.named_parameters()
        }
        quantize_model_weights(model)
        changed = {
            name
            for name, param in model.named_parameters()
            if not np.array_equal(param.data, before[name])
        }
        expected_fragments = ["qkv_proj", "out_proj", "up_proj", "down_proj"]
        if family == "llama":
            expected_fragments.append("gate_proj")
        for fragment in expected_fragments:
            assert any(fragment in name for name in changed), fragment

    def test_quantized_model_still_reasonable(self):
        """W4 quantization should perturb logits, not destroy them."""
        model = build_model(tiny_test_config(seed=8))
        tokens = np.random.default_rng(0).integers(0, 256, size=(1, 16))
        with no_grad():
            base = model.forward(tokens).data
        clone = weight_quantized_copy(model)
        with no_grad():
            quantized = clone.forward(tokens).data
        correlation = np.corrcoef(base.ravel(), quantized.ravel())[0, 1]
        assert correlation > 0.98
