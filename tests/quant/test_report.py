"""Tests for the deployment artifact (compile-time output)."""

import pytest

from repro.errors import ModelError
from repro.quant.report import ARTIFACT_VERSION, DeploymentArtifact, build_artifact

MODEL = "opt-125m"
DATASET = "wikitext2-sim"


@pytest.fixture(scope="module")
def artifact():
    return build_artifact(MODEL, DATASET, tolerance=0.01)


class TestBuildArtifact:
    def test_fields_populated(self, artifact):
        assert artifact.model_name == MODEL
        assert artifact.bops_saving > 1.23
        assert artifact.projected_speedup > 1.0
        assert artifact.projected_energy_efficiency > 1.0
        assert 1 <= artifact.search_iterations <= 32

    def test_accuracy_evidence_consistent(self, artifact):
        assert artifact.anda_ppl >= artifact.reference_ppl * 0.99


class TestSerialization:
    def test_json_round_trip(self, artifact):
        restored = DeploymentArtifact.from_json(artifact.to_json())
        assert restored == artifact

    def test_save_load(self, artifact, tmp_path):
        path = artifact.save(tmp_path / "opt-125m.anda.json")
        assert DeploymentArtifact.load(path) == artifact

    def test_json_is_human_readable(self, artifact):
        text = artifact.to_json()
        assert '"mantissa_bits"' in text
        assert '"speedup_vs_fpfp"' in text
        assert f'"version": {ARTIFACT_VERSION}' in text

    def test_rejects_unknown_version(self, artifact):
        bad = artifact.to_json().replace(
            f'"version": {ARTIFACT_VERSION}', '"version": 99'
        )
        with pytest.raises(ModelError):
            DeploymentArtifact.from_json(bad)
