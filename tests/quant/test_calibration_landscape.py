"""Tests for the public calibration-landscape evaluators."""

import pytest

from repro.core.precision import PrecisionCombination
from repro.quant.deploy import calibration_landscape


@pytest.fixture(scope="module")
def landscape():
    return calibration_landscape("opt-125m", "wikitext2-sim")


class TestCalibrationLandscape:
    def test_reference_is_unity(self, landscape):
        _, _, reference = landscape
        assert reference == 1.0

    def test_full_precision_near_reference(self, landscape):
        accuracy, _, _ = landscape
        assert accuracy(PrecisionCombination.uniform(13)) == pytest.approx(
            1.0, abs=0.005
        )

    def test_aggressive_truncation_hurts(self, landscape):
        accuracy, _, _ = landscape
        assert accuracy(PrecisionCombination.uniform(3)) < accuracy(
            PrecisionCombination.uniform(10)
        )

    def test_bops_monotone(self, landscape):
        _, bops, _ = landscape
        costs = [bops(PrecisionCombination.uniform(m)) for m in (4, 6, 8, 10)]
        assert costs == sorted(costs)

    def test_quantizer_cleared_between_calls(self, landscape):
        # Two identical evaluations must agree exactly (no tap leakage).
        accuracy, _, _ = landscape
        combo = PrecisionCombination(7, 6, 5, 5)
        assert accuracy(combo) == accuracy(combo)
