"""Tests for the deployment pipeline helpers (fast model only)."""

import pytest

from repro.core.precision import PrecisionCombination
from repro.errors import ModelError
from repro.quant.deploy import (
    deploy_anda,
    deploy_uniform,
    reference_model,
)

MODEL = "opt-125m"
DATASET = "ptb-sim"


class TestDeployAnda:
    def test_result_fields_consistent(self):
        result = deploy_anda(MODEL, DATASET, tolerance=0.01)
        assert result.model_name == MODEL
        assert result.dataset == DATASET
        assert result.combination == result.search.best
        assert result.effective_mantissa <= max(result.combination)
        assert result.effective_mantissa >= min(result.combination)

    def test_distinct_datasets_cached_separately(self):
        a = deploy_anda(MODEL, "ptb-sim", tolerance=0.01)
        b = deploy_anda(MODEL, "c4-sim", tolerance=0.01)
        assert a is not b

    def test_no_cache_flag(self):
        a = deploy_anda(MODEL, DATASET, tolerance=0.01)
        b = deploy_anda(MODEL, DATASET, tolerance=0.01, use_cache=False)
        assert a is not b
        assert a.combination == b.combination  # deterministic pipeline


class TestDeployUniform:
    def test_uniform_feasible(self):
        bits = deploy_uniform(MODEL, DATASET, tolerance=0.01)
        assert 4 <= bits <= 13

    def test_uniform_at_least_search_maximum(self):
        """The searched 4-tuple is never worse than the best uniform
        deployment in BOPs terms (search includes all uniform seeds)."""
        uniform_bits = deploy_uniform(MODEL, DATASET, tolerance=0.01)
        searched = deploy_anda(MODEL, DATASET, tolerance=0.01)
        assert searched.effective_mantissa <= uniform_bits + 1e-9

    def test_uniform_monotone_in_tolerance(self):
        tight = deploy_uniform(MODEL, DATASET, tolerance=0.001)
        loose = deploy_uniform(MODEL, DATASET, tolerance=0.02)
        assert loose <= tight

    def test_uniform_infeasible_raises(self):
        with pytest.raises(ModelError):
            deploy_uniform(MODEL, DATASET, tolerance=0.0, candidate_bits=(1,))


class TestReferenceModel:
    def test_reference_differs_from_base(self):
        from repro.llm.zoo import get_model

        base = get_model(MODEL)
        ref = reference_model(MODEL)
        assert base is not ref

    def test_search_space_never_leaves_seed_range(self):
        result = deploy_anda(MODEL, DATASET, tolerance=0.05)
        for step in result.search.steps:
            assert PrecisionCombination(*step.combination).validate()
            assert all(1 <= bits <= 13 for bits in step.combination)
