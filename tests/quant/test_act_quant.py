"""Tests for activation quantization schemes and the format registry."""

import numpy as np
import pytest

from repro.core import fp16
from repro.core.precision import PrecisionCombination, TensorKind
from repro.llm.hooks import per_kind_quantizer
from repro.quant.act_quant import (
    FIGNA_MANTISSA_BITS,
    VSQUANT_MANTISSA_BITS,
    anda_combination_quantizer,
    bfp_quantizer,
    figna_quantizer,
    fp16_quantizer,
    vsquant_quantizer,
)
from repro.quant.schemes import SCHEME_BOPS_SAVING, TABLE1_FORMATS, get_format


def activations(seed=0, shape=(4, 256)):
    rng = np.random.default_rng(seed)
    return rng.normal(size=shape).astype(np.float32)


class TestFp16Scheme:
    def test_is_fp16_rounding(self):
        x = activations(1)
        out = fp16_quantizer()(TensorKind.QKV, x)
        assert np.array_equal(out, fp16.round_trip(x))


class TestBfpSchemes:
    def test_figna_nearly_lossless(self):
        x = activations(2)
        out = figna_quantizer()(TensorKind.U, x)
        ref = fp16.round_trip(x)
        assert np.abs(out - ref).max() < 2e-2 * np.abs(ref).max()

    def test_vsquant_much_coarser_than_figna(self):
        x = activations(3)
        figna_err = np.abs(figna_quantizer()(TensorKind.U, x) - x).mean()
        vs_err = np.abs(vsquant_quantizer()(TensorKind.U, x) - x).mean()
        assert vs_err > 5 * figna_err

    def test_bfp_quantizer_respects_kind_independence(self):
        """Uniform BFP treats all kinds identically."""
        x = activations(4)
        quantizer = bfp_quantizer(6)
        a = quantizer(TensorKind.QKV, x)
        b = quantizer(TensorKind.D, x)
        assert np.array_equal(a, b)

    def test_3d_activations_supported(self):
        x = activations(5, shape=(2, 8, 128))
        out = bfp_quantizer(8)(TensorKind.O, x)
        assert out.shape == x.shape

    def test_mantissa_constants_match_paper(self):
        assert FIGNA_MANTISSA_BITS == 13
        assert VSQUANT_MANTISSA_BITS == 4


class TestAndaCombinationQuantizer:
    def test_kind_specific_precision(self):
        x = activations(6)
        quantizer = anda_combination_quantizer(PrecisionCombination(13, 13, 13, 2))
        fine = quantizer(TensorKind.QKV, x)
        coarse = quantizer(TensorKind.D, x)
        ref = fp16.round_trip(x)
        assert np.abs(fine - ref).max() < np.abs(coarse - ref).max()

    def test_per_kind_quantizer_passthrough(self):
        x = activations(7)
        quantizer = per_kind_quantizer({TensorKind.D: lambda a: a * 0.0})
        assert np.array_equal(quantizer(TensorKind.QKV, x), x)
        assert np.all(quantizer(TensorKind.D, x) == 0)


class TestSchemeRegistry:
    def test_table1_has_ten_rows(self):
        assert len(TABLE1_FORMATS) == 10

    def test_anda_is_only_variable_length(self):
        variable = [f for f in TABLE1_FORMATS if f.length_class == "variable"]
        assert len(variable) == 1
        assert variable[0].name == "Anda (Ours)"

    def test_get_format_case_insensitive(self):
        assert get_format("figna").name == "FIGNA"

    def test_get_format_unknown(self):
        with pytest.raises(KeyError):
            get_format("mxfp4")

    def test_bops_savings(self):
        assert SCHEME_BOPS_SAVING["figna"] == pytest.approx(64 / 52)
        assert SCHEME_BOPS_SAVING["vs-quant"] == pytest.approx(4.0)

    def test_uni_length_quantizers_instantiable(self):
        x = activations(8)
        for spec in TABLE1_FORMATS:
            if spec.quantizer_factory is not None:
                out = spec.quantizer_factory()(TensorKind.U, x)
                assert out.shape == x.shape
