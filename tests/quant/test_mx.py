"""Tests for the shared-microexponent (MX-style) extension format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.bfp import BfpConfig, quantization_error
from repro.errors import FormatError
from repro.quant.mx import (
    MX_PRESETS,
    MxConfig,
    fake_quantize_mx,
    mx_error,
    quantize_mx,
)

RNG = np.random.default_rng(11)

FINITE = arrays(
    np.float32,
    shape=st.tuples(st.integers(1, 4), st.integers(1, 80)),
    elements=st.floats(
        min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False,
        width=32,
    ),
)


class TestMxConfig:
    def test_defaults_valid(self):
        config = MxConfig()
        assert config.subgroups_per_group == 32
        assert config.max_offset == 1

    def test_preset_lookup(self):
        config = MxConfig.preset("mx9", mantissa_bits=7)
        assert (config.group_size, config.subgroup_size, config.micro_bits) == (
            64, 8, 2,
        )
        assert config.mantissa_bits == 7

    def test_unknown_preset(self):
        with pytest.raises(FormatError):
            MxConfig.preset("mx99")

    def test_rejects_bad_fields(self):
        with pytest.raises(FormatError):
            MxConfig(mantissa_bits=0)
        with pytest.raises(FormatError):
            MxConfig(group_size=64, subgroup_size=3)  # must divide
        with pytest.raises(FormatError):
            MxConfig(micro_bits=5)
        with pytest.raises(FormatError):
            MxConfig(group_size=0)

    def test_all_presets_construct(self):
        for name in MX_PRESETS:
            assert MxConfig.preset(name).group_size == 64


class TestQuantizeMx:
    def test_round_trip_exact_at_full_precision(self):
        # 11 mantissa bits and unsaturated offsets reproduce FP16 exactly
        # when every subgroup's spread fits in the micro field.
        values = np.float32([1.0, 1.5, 0.75, 0.875] * 16)
        config = MxConfig(mantissa_bits=11, subgroup_size=2, micro_bits=2)
        restored = fake_quantize_mx(values, config)
        np.testing.assert_allclose(restored, values)

    def test_zero_tensor_encodes_to_zero(self):
        out = fake_quantize_mx(np.zeros(64, dtype=np.float32), MxConfig())
        assert np.all(out == 0)

    def test_offsets_bounded_by_field_width(self):
        values = RNG.normal(size=(4, 64)).astype(np.float32) * np.float32(
            10.0
        ) ** RNG.integers(-3, 4, size=(4, 64))
        tensor = quantize_mx(values, MxConfig(micro_bits=2))
        assert tensor.micro_offset.min() >= 0
        assert tensor.micro_offset.max() <= 3

    def test_subgroup_exponents_never_exceed_shared(self):
        values = RNG.normal(size=(2, 64)).astype(np.float32)
        tensor = quantize_mx(values, MxConfig())
        assert np.all(tensor.subgroup_exponents() <= tensor.shared_exponent[:, None])

    def test_shape_restored(self):
        values = RNG.normal(size=(3, 50)).astype(np.float32)
        assert fake_quantize_mx(values, MxConfig()).shape == (3, 50)

    @given(FINITE)
    @settings(max_examples=30, deadline=None)
    def test_error_bounded_by_group_scale(self, values):
        config = MxConfig(mantissa_bits=6)
        tensor = quantize_mx(values, config)
        restored = tensor.dequantize()
        # Truncation error per element is below one LSB at the coarse scale.
        scale = np.ldexp(1.0, tensor.shared_exponent + 1 - config.mantissa_bits)
        grouped_err = np.abs(np.float64(values) - restored)
        per_group_max = np.max(
            np.abs(grouped_err.reshape(-1)), initial=0.0
        )
        assert per_group_max <= scale.max() + 1e-6


class TestMicroexponentValue:
    def test_beats_plain_bfp_on_heavy_tails(self):
        # One outlier per group forces plain BFP to shift small values
        # away; microexponents recover local alignment.
        values = RNG.standard_cauchy(size=(16, 64)).astype(np.float32)
        mantissa = 5
        mx = mx_error(values, MxConfig(mantissa_bits=mantissa, micro_bits=2,
                                       subgroup_size=4))
        bfp = quantization_error(
            values, BfpConfig(mantissa_bits=mantissa, group_size=64)
        )
        assert mx <= bfp

    def test_zero_micro_bits_matches_bfp(self):
        values = RNG.normal(size=(8, 64)).astype(np.float32)
        mantissa = 6
        mx = fake_quantize_mx(
            values, MxConfig(mantissa_bits=mantissa, micro_bits=0)
        )
        from repro.core.bfp import fake_quantize

        bfp = fake_quantize(values, BfpConfig(mantissa_bits=mantissa, group_size=64))
        np.testing.assert_allclose(mx, bfp)

    def test_more_micro_bits_never_hurt(self):
        values = RNG.standard_cauchy(size=(8, 64)).astype(np.float32)
        errors = [
            mx_error(values, MxConfig(mantissa_bits=4, micro_bits=bits))
            for bits in (0, 1, 2, 3)
        ]
        assert all(b <= a + 1e-9 for a, b in zip(errors, errors[1:]))

    def test_finer_subgroups_never_hurt(self):
        values = RNG.standard_cauchy(size=(8, 64)).astype(np.float32)
        coarse = mx_error(values, MxConfig(mantissa_bits=4, subgroup_size=16))
        fine = mx_error(values, MxConfig(mantissa_bits=4, subgroup_size=2))
        assert fine <= coarse + 1e-9


class TestStorage:
    def test_storage_accounting(self):
        values = RNG.normal(size=(1, 64)).astype(np.float32)
        config = MxConfig(mantissa_bits=4, subgroup_size=2, micro_bits=1)
        tensor = quantize_mx(values, config)
        expected = (1 + 4) * 64 + 8 + 1 * 32
        assert tensor.storage_bits() == expected

    def test_bits_per_element_amortized(self):
        values = RNG.normal(size=(1, 64)).astype(np.float32)
        tensor = quantize_mx(values, MxConfig(mantissa_bits=4))
        assert tensor.bits_per_element() == pytest.approx(
            tensor.storage_bits() / 64
        )

    def test_micro_bits_cost_storage(self):
        values = RNG.normal(size=(1, 64)).astype(np.float32)
        lean = quantize_mx(values, MxConfig(micro_bits=0)).storage_bits()
        rich = quantize_mx(values, MxConfig(micro_bits=3)).storage_bits()
        assert rich > lean


class TestDeterminism:
    @given(FINITE)
    @settings(max_examples=20, deadline=None)
    def test_quantization_is_pure(self, values):
        config = MxConfig(mantissa_bits=5)
        first = fake_quantize_mx(values, config)
        second = fake_quantize_mx(values, config)
        np.testing.assert_array_equal(first, second)

    @given(FINITE)
    @settings(max_examples=20, deadline=None)
    def test_idempotent(self, values):
        # Quantizing an already-quantized tensor must be a fixed point.
        config = MxConfig(mantissa_bits=6)
        once = fake_quantize_mx(values, config)
        twice = fake_quantize_mx(once, config)
        np.testing.assert_allclose(twice, once, rtol=0, atol=0)
