"""Every example script must run clean and print its key results.

Examples are part of the public deliverable; these tests execute them
as subprocesses exactly as a user would.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "bit-identical to encoder: True" in out
        assert "compression" in out

    def test_bitplane_memory(self):
        out = run_example("bitplane_memory.py")
        assert "cycle-accurate output == arithmetic encode: True" in out
        assert "rescaled result" in out

    def test_accelerator_sim(self):
        out = run_example("accelerator_sim.py")
        assert "FP-FP" in out and "Anda" in out
        assert "Table III" in out

    @pytest.mark.slow
    def test_precision_search(self):
        out = run_example("precision_search.py")
        assert "chosen combination" in out
        assert "BOPs saving" in out

    @pytest.mark.slow
    def test_quantized_inference(self):
        out = run_example("quantized_inference.py")
        assert "W4A16 weight-only" in out
        assert "VS-Quant" in out
        assert "Generation from prompt" in out

    @pytest.mark.slow
    def test_activation_atlas(self):
        out = run_example("activation_atlas.py")
        assert "outlier ratio" in out
        assert "GS=64" in out

    @pytest.mark.slow
    def test_deployment_pipeline(self):
        out = run_example("deployment_pipeline.py")
        assert "round-trip OK: True" in out
        assert "agrees with the tile simulator: True" in out

    def test_format_comparison(self):
        out = run_example("format_comparison.py")
        assert "Round-trip RMSE" in out
        assert "stochastic" in out
        assert "brute-force" in out

    def test_layer_pipeline(self):
        out = run_example("layer_pipeline.py")
        assert "gemm:qkv" in out
        assert "end-to-end speedup" in out
        assert "decode tokens/s" in out

    @pytest.mark.slow
    def test_qat_finetune(self):
        out = run_example("qat_finetune.py")
        assert "PTQ damage recovered" in out
        assert "QAT perplexity" in out
