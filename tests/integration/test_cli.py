"""Tests for the andafile CLI."""

import numpy as np
import pytest

from repro.tools.andafile import main


@pytest.fixture
def tensor_file(tmp_path):
    rng = np.random.default_rng(0)
    path = tmp_path / "acts.npy"
    np.save(path, rng.normal(size=(8, 256)).astype(np.float32))
    return path


class TestCompress:
    def test_round_trip(self, tensor_file, tmp_path, capsys):
        anda_path = tmp_path / "acts.anda"
        out_path = tmp_path / "back.npy"
        assert main(["compress", str(tensor_file), "-m", "8", "-o", str(anda_path)]) == 0
        assert anda_path.exists()
        assert "footprint" in capsys.readouterr().out

        assert main(["decompress", str(anda_path), "-o", str(out_path)]) == 0
        original = np.load(tensor_file)
        restored = np.load(out_path)
        fp16_ref = original.astype(np.float16).astype(np.float32)
        assert restored.shape == original.shape
        scale = np.abs(fp16_ref).max()
        assert np.abs(restored - fp16_ref).max() < 0.02 * scale

    def test_default_output_name(self, tensor_file, capsys):
        assert main(["compress", str(tensor_file), "-m", "6"]) == 0
        assert tensor_file.with_suffix(".anda").exists()

    def test_footprint_beats_fp16(self, tensor_file, tmp_path, capsys):
        anda_path = tmp_path / "small.anda"
        main(["compress", str(tensor_file), "-m", "5", "-o", str(anda_path)])
        fp16_bytes = 8 * 256 * 2
        assert anda_path.stat().st_size < 0.5 * fp16_bytes

    def test_nearest_rounding_flag(self, tensor_file, tmp_path, capsys):
        anda_path = tmp_path / "n.anda"
        assert main([
            "compress", str(tensor_file), "-m", "6",
            "-r", "nearest", "-o", str(anda_path),
        ]) == 0

    def test_stochastic_rounding_flag(self, tensor_file, tmp_path, capsys):
        anda_path = tmp_path / "s.anda"
        assert main([
            "compress", str(tensor_file), "-m", "6",
            "-r", "stochastic", "-o", str(anda_path),
        ]) == 0
        capsys.readouterr()
        assert main(["inspect", str(anda_path)]) == 0
        assert "stochastic" in capsys.readouterr().out


class TestInspect:
    def test_inspect_reports_header(self, tensor_file, tmp_path, capsys):
        anda_path = tmp_path / "acts.anda"
        main(["compress", str(tensor_file), "-m", "7", "-o", str(anda_path)])
        capsys.readouterr()
        assert main(["inspect", str(anda_path)]) == 0
        out = capsys.readouterr().out
        assert "M=7" in out
        assert "shared exponent range" in out
        assert "x 64 bits" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["explode", "x"])
