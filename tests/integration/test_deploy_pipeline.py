"""End-to-end integration: zoo model -> W4A16 -> search -> hardware.

Uses the smallest zoo model (OPT-125M twin) so the whole pipeline runs
in seconds once the zoo cache is warm (the first invocation trains it).
"""

import numpy as np
import pytest

from repro.core.bops import combination_bops
from repro.core.precision import PrecisionCombination
from repro.hw.accelerator import anda_operating_point, compare_architectures
from repro.llm.config import get_config
from repro.llm.datasets import validation_sequences
from repro.llm.hooks import anda_quantizer
from repro.llm.perplexity import evaluate_perplexity
from repro.llm.zoo import get_model
from repro.quant.deploy import deploy_anda, fp16_validation_ppl, reference_model

MODEL = "opt-125m"
DATASET = "wikitext2-sim"


@pytest.fixture(scope="module")
def deployment():
    return deploy_anda(MODEL, DATASET, tolerance=0.01)


class TestDeployment:
    def test_search_feasible_within_budget(self, deployment):
        assert deployment.search.feasible
        assert deployment.search.iterations <= 32

    def test_combination_in_search_range(self, deployment):
        assert all(4 <= bits <= 13 for bits in deployment.combination)

    def test_bops_saving_consistent_with_combination(self, deployment):
        weights = get_config(MODEL).mac_weights()
        expected = 64 * sum(weights.values()) / combination_bops(
            deployment.combination, weights
        )
        assert deployment.bops_saving == pytest.approx(expected)

    def test_anda_beats_figna_saving(self, deployment):
        assert deployment.bops_saving > 1.23

    def test_validation_ppl_within_loose_bound(self, deployment):
        """Calibration tolerance is 1%; validation may exceed slightly
        (paper Sec. V-B) but must stay in a sane band."""
        assert deployment.anda_ppl_validation <= (
            deployment.reference_ppl_validation * 1.05
        )

    def test_reference_chain_ordering(self, deployment):
        """FP16 <= W4A16 <= W4A16+Anda perplexity (weakly, small slack
        for eval noise)."""
        fp16 = fp16_validation_ppl(MODEL, DATASET)
        assert fp16 <= deployment.reference_ppl_validation * 1.01
        assert (
            deployment.reference_ppl_validation
            <= deployment.anda_ppl_validation * 1.01
        )

    def test_deployment_cache_hit(self, deployment):
        again = deploy_anda(MODEL, DATASET, tolerance=0.01)
        assert again is deployment

    def test_tighter_tolerance_costs_bops(self, deployment):
        tight = deploy_anda(MODEL, DATASET, tolerance=0.001)
        assert tight.bops_saving <= deployment.bops_saving + 1e-9
        assert sum(tight.combination) >= sum(deployment.combination)


class TestQuantizedModelBehaviour:
    def test_reference_model_is_shared(self):
        assert reference_model(MODEL) is reference_model(MODEL)

    def test_quantizer_swap_is_clean(self, deployment):
        """Installing and removing the Anda quantizer restores the
        exact reference perplexity (no state leaks)."""
        model = reference_model(MODEL)
        sequences = validation_sequences(DATASET, n_sequences=4, seq_len=96)
        model.set_quantizer(None)
        before = evaluate_perplexity(model, sequences)
        model.set_quantizer(anda_quantizer(deployment.combination))
        during = evaluate_perplexity(model, sequences)
        model.set_quantizer(None)
        after = evaluate_perplexity(model, sequences)
        assert before == after
        assert during != before

    def test_zoo_cache_round_trip(self):
        """A second zoo load returns identical weights."""
        a = get_model(MODEL)
        b = get_model(MODEL)
        assert a is b  # in-process cache
        state = a.state_dict()
        assert all(np.isfinite(v).all() for v in state.values())


class TestHardwareHandoff:
    def test_deployment_combination_drives_simulator(self, deployment):
        point = anda_operating_point(
            MODEL, deployment.combination, tolerance=0.01
        )
        assert point.speedup > 1.0
        assert point.energy_efficiency > 1.5

    def test_full_architecture_comparison(self, deployment):
        results = compare_architectures(MODEL, deployment.combination)
        assert results["Anda"].speedup > results["FIGNA"].speedup
        assert (
            results["Anda"].energy_efficiency
            > results["FIGNA-M8"].energy_efficiency
        )

    def test_uniform4_is_upper_speed_bound(self, deployment):
        best_case = anda_operating_point(
            MODEL, PrecisionCombination.uniform(4), 1.0
        )
        real = anda_operating_point(MODEL, deployment.combination, 0.01)
        assert best_case.speedup >= real.speedup
