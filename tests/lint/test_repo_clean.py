"""End-to-end: the shipped repo must lint clean against its committed
baseline, and the baseline must honor its own hygiene rules."""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.findings import Baseline
from repro.lint.runner import DEFAULT_BASELINE, run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_lints_clean_against_committed_baseline():
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE)
    result = run_lint(REPO_ROOT, baseline=baseline)
    assert result.errors == []
    assert result.new == [], "\n".join(f.render() for f in result.new)
    assert result.stale_baseline == [], [e.key for e in result.stale_baseline]
    assert result.ok


def test_committed_baseline_entries_all_carry_notes():
    raw = json.loads((REPO_ROOT / DEFAULT_BASELINE).read_text())
    entries = raw["findings"]
    assert entries, "baseline exists, so it must have entries"
    for entry in entries:
        assert entry["key"].startswith("RPL"), entry
        assert entry.get("note"), f"baseline entry without tracking note: {entry['key']}"
    keys = [entry["key"] for entry in entries]
    assert len(keys) == len(set(keys)), "duplicate baseline keys"


def test_committed_baseline_grandfathers_known_codes_only():
    # Every other rule is enforced at zero findings; the zero-copy rule
    # grandfathers reference oracles and finish-time assembly, and the
    # error-taxonomy rule grandfathers the scheduler's abstract-protocol
    # NotImplementedError stubs.
    raw = json.loads((REPO_ROOT / DEFAULT_BASELINE).read_text())
    codes = {entry["key"].split("|", 1)[0] for entry in raw["findings"]}
    assert codes == {"RPL002", "RPL011"}


def test_serve_all_matches_runtime_exports():
    # RPL008 is a static check; cross-validate it against the runtime
    # truth that the old CI import-lint step used to assert.
    import repro.serve as serve

    missing = [name for name in serve.__all__ if not hasattr(serve, name)]
    assert missing == []
