"""Fixture helpers: fabricate miniature src/repro trees for rule tests."""

from __future__ import annotations

from pathlib import Path

import pytest


@pytest.fixture
def make_repo(tmp_path):
    """Build ``<tmp>/src/repro/...`` from {relative_path: source} and
    return the repo root (the directory containing ``src``)."""

    def build(files: dict[str, str]) -> Path:
        root = tmp_path / "repo"
        package = root / "src" / "repro"
        package.mkdir(parents=True, exist_ok=True)
        (package / "__init__.py").write_text("")
        for rel, source in files.items():
            path = package / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            for parent in path.parents:
                if parent == package:
                    break
                init = parent / "__init__.py"
                if not init.exists():
                    init.write_text("")
            path.write_text(source)
        return root

    return build
