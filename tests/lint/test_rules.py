"""Positive + negative fixtures for every RPL rule.

Each test fabricates a miniature ``src/repro`` tree (see conftest) and
runs a single rule against it: the negative fixture must produce the
rule's finding, the positive fixture must come back clean.
"""

from __future__ import annotations

from repro.lint.findings import Baseline
from repro.lint.rules import (
    RULES,
    AllMatchesBindings,
    DeprecatedKnobsStayInShims,
    FrozenFieldsOnlyInPostInit,
    HotClassesDeclareSlots,
    MatmulsRouteThroughAttention,
    NoHotPathAllocation,
    NoImportCycles,
    NoSwallowedExceptions,
    NoWallClock,
    RaisesModelErrors,
    StatsScopedToAttention,
    get_rule,
)
from repro.lint.runner import run_lint


def codes(result):
    return [f.code for f in result.findings]


def lint_one(make_repo, files, rule):
    return run_lint(make_repo(files), baseline=Baseline(), rules=(rule,))


# ---------------------------------------------------------------- RPL001


def test_rpl001_flags_wall_clock_in_hot_module(make_repo):
    result = lint_one(
        make_repo,
        {
            "serve/engine.py": (
                "import time\n"
                "def step():\n"
                "    return time.time()\n"
            )
        },
        NoWallClock(),
    )
    assert codes(result) == ["RPL001"]
    assert "time.time()" in result.findings[0].message
    assert result.findings[0].context == "step"


def test_rpl001_flags_datetime_now_and_bare_time(make_repo):
    result = lint_one(
        make_repo,
        {
            "serve/kvpool/pool.py": (
                "from time import time\n"
                "import datetime\n"
                "def a():\n"
                "    return time()\n"
                "def b():\n"
                "    return datetime.datetime.now()\n"
            )
        },
        NoWallClock(),
    )
    assert codes(result) == ["RPL001", "RPL001"]


def test_rpl001_allows_perf_counter_and_cold_modules(make_repo):
    result = lint_one(
        make_repo,
        {
            "serve/engine.py": (
                "import time\n"
                "def step():\n"
                "    return time.perf_counter()\n"
            ),
            # Wall clock outside a hot-path module is out of scope.
            "experiments/runner.py": (
                "import time\n"
                "def run():\n"
                "    return time.time()\n"
            ),
        },
        NoWallClock(),
    )
    assert codes(result) == []


# ---------------------------------------------------------------- RPL002


ENGINE_WITH_ALLOC = (
    "import numpy as np\n"
    "class Engine:\n"
    "    def step(self):\n"
    "        return self._gather()\n"
    "    def _gather(self):\n"
    "        return np.concatenate([np.zeros(2), np.zeros(2)])\n"
)


def test_rpl002_flags_concatenate_reachable_from_step(make_repo):
    result = lint_one(make_repo, {"serve/engine.py": ENGINE_WITH_ALLOC}, NoHotPathAllocation())
    assert codes(result) == ["RPL002"]
    assert result.findings[0].context == "Engine._gather"


def test_rpl002_follows_cross_module_method_calls(make_repo):
    files = {
        "serve/engine.py": (
            "from repro.serve.helper import Helper\n"
            "class Engine:\n"
            "    def step(self):\n"
            "        return Helper().grow()\n"
        ),
        "serve/helper.py": (
            "import numpy as np\n"
            "class Helper:\n"
            "    def grow(self):\n"
            "        return np.vstack([1])\n"
        ),
    }
    result = lint_one(make_repo, files, NoHotPathAllocation())
    assert codes(result) == ["RPL002"]
    assert result.findings[0].path.endswith("helper.py")


def test_rpl002_flags_hot_path_marker_functions(make_repo):
    files = {
        "llm/kernels.py": (
            "import numpy as np\n"
            "def fuse(x):  # hot-path\n"
            "    return np.append(x, 1)\n"
        )
    }
    result = lint_one(make_repo, files, NoHotPathAllocation())
    assert codes(result) == ["RPL002"]


def test_rpl002_flags_stored_buffer_astype_but_not_expressions(make_repo):
    files = {
        "serve/engine.py": (
            "import numpy as np\n"
            "class Engine:\n"
            "    def step(self):\n"
            "        bad = self._buf.astype(np.float32)\n"
            "        ok = (bad * 2).astype(np.float32)\n"
            "        return ok\n"
        )
    }
    result = lint_one(make_repo, files, NoHotPathAllocation())
    assert codes(result) == ["RPL002"]
    assert "_buf" in result.findings[0].message


def test_rpl002_ignores_unreachable_allocation(make_repo):
    files = {
        "serve/engine.py": (
            "class Engine:\n"
            "    def step(self):\n"
            "        return 1\n"
        ),
        "tools/offline.py": (
            "import numpy as np\n"
            "def pack(chunks):\n"
            "    return np.concatenate(chunks)\n"
        ),
    }
    result = lint_one(make_repo, files, NoHotPathAllocation())
    assert codes(result) == []


# ---------------------------------------------------------------- RPL003


def test_rpl003_flags_slotless_class_in_hot_module(make_repo):
    files = {
        "serve/kvpool/paged.py": (
            "class SequenceKV:\n"
            "    def __init__(self):\n"
            "        self.blocks = []\n"
        )
    }
    result = lint_one(make_repo, files, HotClassesDeclareSlots())
    assert codes(result) == ["RPL003"]


def test_rpl003_accepts_slots_dataclass_slots_and_exceptions(make_repo):
    files = {
        "serve/engine.py": (
            "from dataclasses import dataclass\n"
            "class A:\n"
            "    __slots__ = ('x',)\n"
            "@dataclass(frozen=True, slots=True)\n"
            "class B:\n"
            "    x: int = 0\n"
            "class PoolError(RuntimeError):\n"
            "    pass\n"
        ),
        # Cold modules are out of scope entirely.
        "tools/report.py": "class Report:\n    pass\n",
    }
    result = lint_one(make_repo, files, HotClassesDeclareSlots())
    assert codes(result) == []


def test_rpl003_real_allowlist_suppresses_engine_itself():
    # The shipped allowlist grandfathers once-per-engine classes; the
    # real repo must therefore be RPL003-clean (see test_repo_clean).
    from repro.lint.runner import DEFAULT_ALLOWLIST
    from repro.lint.rules import parse_slots_allowlist

    allowlist = parse_slots_allowlist(DEFAULT_ALLOWLIST)
    assert "repro.serve.engine:Engine" in allowlist
    assert allowlist["repro.serve.engine:Engine"]  # reason is mandatory


# ---------------------------------------------------------------- RPL004


def test_rpl004_flags_global_stats_access_outside_attention(make_repo):
    files = {
        "serve/engine.py": (
            "from repro.llm.attention import HOT_PATH_STATS\n"
            "def peek():\n"
            "    return HOT_PATH_STATS.gather_calls\n"
        ),
        "llm/attention.py": "HOT_PATH_STATS = object()\n",
    }
    result = lint_one(make_repo, files, StatsScopedToAttention())
    # One finding for the import, one for the read.
    assert codes(result) == ["RPL004", "RPL004"]


def test_rpl004_allows_attention_internals(make_repo):
    files = {
        "llm/attention.py": (
            "HOT_PATH_STATS = object()\n"
            "def _scope():\n"
            "    return HOT_PATH_STATS\n"
        )
    }
    result = lint_one(make_repo, files, StatsScopedToAttention())
    assert codes(result) == []


# ---------------------------------------------------------------- RPL005


def test_rpl005_flags_deprecated_knobs_outside_shims(make_repo):
    files = {
        "serve/router.py": (
            "def build(EngineConfig):\n"
            "    return EngineConfig(kv_mode='anda')\n"
        ),
        "tools/bench.py": (
            "from repro.serve.llm import serve_batch\n"
            "def run():\n"
            "    return serve_batch\n"
        ),
    }
    result = lint_one(make_repo, files, DeprecatedKnobsStayInShims())
    assert sorted(codes(result)) == ["RPL005", "RPL005", "RPL005"]


def test_rpl005_allows_shim_modules_and_lookalikes(make_repo):
    files = {
        "serve/engine.py": (
            "class EngineConfig:\n"
            "    kv_mode = None\n"
            "    def __init__(self):\n"
            "        self.kv_mode = 'anda'\n"
        ),
        "serve/llm.py": "def serve_batch():\n    pass\n",
        # validate_kv_mantissa_bits is a distinct identifier, not the knob.
        "core/precision.py": "def validate_kv_mantissa_bits(b):\n    return b\n",
    }
    result = lint_one(make_repo, files, DeprecatedKnobsStayInShims())
    assert codes(result) == []


# ---------------------------------------------------------------- RPL006


def test_rpl006_flags_setattr_outside_post_init(make_repo):
    files = {
        "serve/params.py": (
            "def tweak(params):\n"
            "    object.__setattr__(params, 'temperature', 0.0)\n"
        )
    }
    result = lint_one(make_repo, files, FrozenFieldsOnlyInPostInit())
    assert codes(result) == ["RPL006"]


def test_rpl006_flags_post_init_on_foreign_object(make_repo):
    files = {
        "serve/params.py": (
            "class P:\n"
            "    def __post_init__(self, other):\n"
            "        object.__setattr__(other, 'x', 1)\n"
        )
    }
    result = lint_one(make_repo, files, FrozenFieldsOnlyInPostInit())
    assert codes(result) == ["RPL006"]


def test_rpl006_allows_self_post_init(make_repo):
    files = {
        "serve/params.py": (
            "class P:\n"
            "    def __post_init__(self):\n"
            "        object.__setattr__(self, 'x', 1)\n"
        )
    }
    result = lint_one(make_repo, files, FrozenFieldsOnlyInPostInit())
    assert codes(result) == []


# ---------------------------------------------------------------- RPL007


def test_rpl007_flags_bare_except_and_blanket_pass(make_repo):
    files = {
        "serve/engine.py": (
            "def a():\n"
            "    try:\n"
            "        work()\n"
            "    except:\n"
            "        log()\n"
            "def b():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n"
        )
    }
    result = lint_one(make_repo, files, NoSwallowedExceptions())
    assert codes(result) == ["RPL007", "RPL007"]


def test_rpl007_flags_blanket_handler_without_reraise(make_repo):
    # A blanket handler that does real work but absorbs the failure is
    # just as corrupting as a swallow — the step's partial state stays.
    files = {
        "serve/engine.py": (
            "def a():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        rollback()\n"
            "        log()\n"
        )
    }
    result = lint_one(make_repo, files, NoSwallowedExceptions())
    assert codes(result) == ["RPL007"]
    assert "without a re-raise" in result.findings[0].message


def test_rpl007_allows_rollback_then_reraise_and_non_serve(make_repo):
    files = {
        "serve/engine.py": (
            "def a():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        rollback()\n"
            "        raise\n"
            "    except ValueError:\n"
            "        pass\n"
        ),
        # Outside serve/, even a swallow is out of this rule's scope.
        "tools/cleanup.py": (
            "def quiet():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        pass\n"
        ),
    }
    result = lint_one(make_repo, files, NoSwallowedExceptions())
    assert codes(result) == []


# ---------------------------------------------------------------- RPL008


def test_rpl008_flags_phantom_and_missing_exports(make_repo):
    files = {
        "serve/__init__.py": (
            "from repro.serve.engine import Engine\n"
            "def helper():\n"
            "    pass\n"
            "__all__ = ['Engine', 'Ghost']\n"
        ),
        "serve/engine.py": "class Engine:\n    pass\n",
    }
    result = lint_one(make_repo, files, AllMatchesBindings())
    messages = " | ".join(f.message for f in result.findings)
    assert codes(result) == ["RPL008", "RPL008"]
    assert "Ghost" in messages  # declared but not bound
    assert "helper" in messages  # bound but not declared


def test_rpl008_accepts_exact_match(make_repo):
    files = {
        "serve/__init__.py": (
            "from repro.serve.engine import Engine\n"
            "_private = 1\n"
            "__all__ = ['Engine']\n"
        ),
        "serve/engine.py": "class Engine:\n    pass\n",
    }
    result = lint_one(make_repo, files, AllMatchesBindings())
    assert codes(result) == []


# ---------------------------------------------------------------- RPL009


def test_rpl009_flags_top_level_cycle(make_repo):
    files = {
        "serve/a.py": "from repro.serve.b import B\nA = 1\n",
        "serve/b.py": "from repro.serve.a import A\nB = 1\n",
    }
    result = lint_one(make_repo, files, NoImportCycles())
    assert codes(result) == ["RPL009"]
    assert "repro.serve.a -> repro.serve.b" in result.findings[0].message or (
        "repro.serve.b -> repro.serve.a" in result.findings[0].message
    )


def test_rpl009_allows_lazy_and_type_checking_imports(make_repo):
    files = {
        "serve/a.py": (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.serve.b import B\n"
            "def get_b():\n"
            "    from repro.serve.b import B\n"
            "    return B\n"
            "A = 1\n"
        ),
        "serve/b.py": "from repro.serve.a import A\nB = 1\n",
    }
    result = lint_one(make_repo, files, NoImportCycles())
    assert codes(result) == []


def test_rpl009_sibling_submodule_import_is_not_a_package_edge(make_repo):
    # `from repro.core import fp16` inside repro.core.* is the standard
    # sibling-import idiom, not a dependency on the package __init__.
    files = {
        "core/__init__.py": "from repro.core.anda import encode\n",
        "core/anda.py": "from repro.core import fp16\ndef encode():\n    return fp16.F\n",
        "core/fp16.py": "F = 1\n",
    }
    result = lint_one(make_repo, files, NoImportCycles())
    assert codes(result) == []


# ---------------------------------------------------------------- RPL010


def test_rpl010_flags_matmul_spellings_in_serve(make_repo):
    files = {
        "serve/fastpath.py": (
            "import numpy as np\n"
            "def attn(q, k):\n"
            "    a = q @ k\n"
            "    b = np.matmul(q, k)\n"
            "    c = q.dot(k)\n"
            "    d = np.einsum('ij,jk->ik', q, k)\n"
            "    return a, b, c, d\n"
        )
    }
    result = lint_one(make_repo, files, MatmulsRouteThroughAttention())
    assert codes(result) == ["RPL010"] * 4


def test_rpl010_ignores_llm_package(make_repo):
    files = {
        "llm/attention.py": (
            "def _attention_core(q, k):\n"
            "    return q @ k\n"
        )
    }
    result = lint_one(make_repo, files, MatmulsRouteThroughAttention())
    assert codes(result) == []


# ---------------------------------------------------------------- RPL011


def test_rpl011_flags_non_model_error_raises_in_serve(make_repo):
    files = {
        "errors.py": (
            "class ModelError(Exception):\n"
            "    pass\n"
        ),
        "serve/engine.py": (
            "class LocalOops(RuntimeError):\n"
            "    pass\n"
            "def a():\n"
            "    raise ValueError('bad q')\n"
            "def b():\n"
            "    raise NotImplementedError\n"
            "def c():\n"
            "    raise LocalOops('outside the taxonomy')\n"
        ),
    }
    result = lint_one(make_repo, files, RaisesModelErrors())
    assert codes(result) == ["RPL011"] * 3
    messages = " | ".join(f.message for f in result.findings)
    assert "ValueError" in messages
    assert "NotImplementedError" in messages
    assert "LocalOops" in messages


def test_rpl011_allows_transitive_subclasses_and_unresolvable_raises(make_repo):
    files = {
        "errors.py": (
            "class ModelError(Exception):\n"
            "    pass\n"
            "class RequestError(ModelError):\n"
            "    pass\n"
        ),
        "serve/faults.py": (
            "from repro.errors import RequestError\n"
            "class TransientFault(RequestError):\n"
            "    pass\n"
            "def probe(cls):\n"
            "    raise cls('variable raise is not statically resolvable')\n"
            "def direct():\n"
            "    raise TransientFault('two hops below ModelError')\n"
            "def reraise():\n"
            "    try:\n"
            "        direct()\n"
            "    except TransientFault:\n"
            "        raise\n"
        ),
        # Outside serve/, the taxonomy rule does not apply.
        "tools/cli.py": "def main():\n    raise SystemExit(2)\n",
    }
    result = lint_one(make_repo, files, RaisesModelErrors())
    assert codes(result) == []


# ---------------------------------------------------------------- framework


def test_every_rule_has_code_rationale_invariant_and_explain():
    seen = set()
    for rule in RULES:
        assert rule.code.startswith("RPL") and len(rule.code) == 6
        assert rule.code not in seen
        seen.add(rule.code)
        assert rule.title
        assert rule.rationale
        assert rule.invariant
        assert rule.explain
        assert get_rule(rule.code) is rule
        assert get_rule(rule.code.lower()) is rule
    assert len(seen) == 11


def test_findings_are_sorted_and_keyed_stably(make_repo):
    result = lint_one(
        make_repo,
        {"serve/engine.py": ENGINE_WITH_ALLOC},
        NoHotPathAllocation(),
    )
    (finding,) = result.findings
    assert finding.key.startswith("RPL002|src/repro/serve/engine.py|Engine._gather|")
    assert str(finding.line) not in finding.key.split("|")  # line-independent
