"""Baseline-ratchet mechanics: new findings fail, baselined ones pass,
shrinking is accepted, stale entries force cleanup."""

from __future__ import annotations

import json

import pytest

from repro.lint.cli import main
from repro.lint.findings import Baseline, BaselineEntry, Finding
from repro.lint.rules import NoHotPathAllocation
from repro.lint.runner import run_lint

VIOLATING_ENGINE = {
    "serve/engine.py": (
        "import numpy as np\n"
        "class Engine:\n"
        "    def step(self):\n"
        "        return np.concatenate([np.zeros(2)])\n"
    )
}

CLEAN_ENGINE = {
    "serve/engine.py": (
        "class Engine:\n"
        "    def step(self):\n"
        "        return 1\n"
    )
}


def _violation_key(root) -> str:
    result = run_lint(root, baseline=Baseline(), rules=(NoHotPathAllocation(),))
    (finding,) = result.findings
    return finding.key


def write_baseline(root, keys: list[str]):
    path = root / "lint_baseline.json"
    path.write_text(
        json.dumps({"findings": [{"key": key, "note": "test entry"} for key in keys]})
    )
    return path


def cli(root, *extra: str) -> int:
    return main(["--root", str(root), *extra])


def test_new_violation_fails_the_run(make_repo, capsys):
    root = make_repo(VIOLATING_ENGINE)
    assert cli(root) == 1
    out = capsys.readouterr().out
    assert "RPL002" in out and "NEW" in out


def test_baselined_violation_passes(make_repo, capsys):
    root = make_repo(VIOLATING_ENGINE)
    write_baseline(root, [_violation_key(root)])
    assert cli(root) == 0
    assert "grandfathered" in capsys.readouterr().out


def test_fabricated_second_violation_fails_despite_baseline(make_repo):
    root = make_repo(VIOLATING_ENGINE)
    write_baseline(root, [_violation_key(root)])
    engine = root / "src" / "repro" / "serve" / "engine.py"
    engine.write_text(
        "import numpy as np\n"
        "class Engine:\n"
        "    def step(self):\n"
        "        self.other()\n"
        "        return np.concatenate([np.zeros(2)])\n"
        "    def other(self):\n"
        "        return np.vstack([np.zeros(2)])\n"
    )
    assert cli(root) == 1


def test_shrinking_the_baseline_is_accepted(make_repo):
    # Fix the violation AND delete its entry: clean run.
    root = make_repo(CLEAN_ENGINE)
    write_baseline(root, [])
    assert cli(root) == 0


def test_stale_baseline_entry_fails_until_removed(make_repo, capsys):
    # Fix the violation but keep the entry: the ratchet flags the stale
    # entry so the baseline can only shrink.
    root = make_repo(CLEAN_ENGINE)
    write_baseline(root, ["RPL002|src/repro/serve/engine.py|Engine.step|gone"])
    assert cli(root) == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_no_baseline_flag_reports_everything_as_new(make_repo):
    root = make_repo(VIOLATING_ENGINE)
    write_baseline(root, [_violation_key(root)])
    assert cli(root) == 0
    assert cli(root, "--no-baseline") == 1


def test_json_output_is_machine_readable(make_repo, tmp_path):
    root = make_repo(VIOLATING_ENGINE)
    out = tmp_path / "findings.json"
    assert cli(root, "--json", str(out)) == 1
    payload = json.loads(out.read_text())
    assert payload["ok"] is False
    assert payload["new"][0]["code"] == "RPL002"
    assert payload["new"][0]["path"] == "src/repro/serve/engine.py"
    assert payload["new"][0]["line"] == 4


def test_json_stdout_stays_pure_json(make_repo, capsys):
    root = make_repo(VIOLATING_ENGINE)
    assert cli(root, "--json", "-") == 1
    captured = capsys.readouterr()
    payload = json.loads(captured.out)  # human report must not pollute stdout
    assert payload["ok"] is False
    assert "repro.lint: FAIL" in captured.err


def test_explain_known_and_unknown_codes(capsys):
    assert main(["--explain", "RPL005"]) == 0
    out = capsys.readouterr().out
    assert "RPL005" in out and "rationale:" in out and "invariant:" in out
    assert main(["--explain", "RPL999"]) == 2


def test_crashing_rule_fails_the_run(make_repo):
    class Boom(NoHotPathAllocation):
        def check(self, index):
            raise RuntimeError("kaput")

    root = make_repo(CLEAN_ENGINE)
    result = run_lint(root, baseline=Baseline(), rules=(Boom(),))
    assert not result.ok
    assert result.errors and "kaput" in result.errors[0]


def test_baseline_split_partitions_consistently():
    f1 = Finding(code="RPL001", path="a.py", line=3, message="m1", context="f")
    f2 = Finding(code="RPL001", path="a.py", line=9, message="m2", context="g")
    baseline = Baseline(
        entries=[BaselineEntry(key=f1.key, note="ok"), BaselineEntry(key="gone", note="")]
    )
    new, old, stale = baseline.split([f1, f2])
    assert new == [f2]
    assert old == [f1]
    assert [entry.key for entry in stale] == ["gone"]


@pytest.mark.parametrize("flag", ["--root"])
def test_missing_repo_root_is_a_usage_error(tmp_path, flag, capsys):
    assert main([flag, str(tmp_path / "nowhere")]) == 2
    assert "no src/repro" in capsys.readouterr().err
