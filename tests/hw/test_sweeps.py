"""Tests for the architecture parameter sweeps."""

import pytest

from repro.core.precision import PrecisionCombination
from repro.errors import HardwareError
from repro.hw.sweeps import (
    array_size_sweep,
    bandwidth_sweep,
    buffer_size_sweep,
)

MODEL = "opt-6.7b"
COMB = PrecisionCombination(6, 5, 5, 4)


class TestBufferSweep:
    def test_bigger_buffers_cut_dram(self):
        points = buffer_size_sweep(MODEL, COMB, scales=(0.5, 1.0, 4.0))
        dram = [p.fpfp.dram_bytes for p in points]
        assert dram[0] >= dram[1] >= dram[2]

    def test_anda_keeps_winning_across_buffers(self):
        points = buffer_size_sweep(MODEL, COMB, scales=(0.25, 1.0, 4.0))
        assert all(p.energy_efficiency > 1.5 for p in points)

    def test_anda_advantage_grows_with_buffers(self):
        """Bigger buffers shrink DRAM traffic for everyone, shifting
        the energy mix toward compute — where Anda's advantage (~5x
        over FP-FP) exceeds its ~2x traffic advantage.  So the energy
        edge *widens* as the memory system improves."""
        points = buffer_size_sweep(MODEL, COMB, scales=(0.25, 1.0, 16.0))
        effs = [p.energy_efficiency for p in points]
        assert effs[0] < effs[1] < effs[2]

    def test_rejects_non_positive_scale(self):
        with pytest.raises(HardwareError):
            buffer_size_sweep(MODEL, COMB, scales=(0.0,))


class TestBandwidthSweep:
    def test_more_bandwidth_never_slower(self):
        points = bandwidth_sweep(MODEL, COMB, scales=(0.25, 1.0, 4.0))
        cycles = [p.fpfp.cycles for p in points]
        assert cycles[0] >= cycles[1] >= cycles[2]

    def test_starved_channel_shifts_speedup_source(self):
        """At extreme starvation (0.5% of HBM2) both systems go
        memory-bound — and Anda *keeps* its speedup, now sourced from
        moving ~2.7x fewer DRAM bytes instead of streaming fewer
        planes.  The wall-clock ratio converges to the traffic ratio."""
        point = bandwidth_sweep(MODEL, COMB, scales=(0.005,))[0]
        assert point.fpfp.cycles > 0
        traffic_ratio = point.fpfp.dram_bytes / point.anda.dram_bytes
        assert point.speedup > 2.0
        assert point.speedup == pytest.approx(traffic_ratio, rel=0.05)

    def test_energy_ratio_stable_under_bandwidth(self):
        """Energy is volume-based, not rate-based: scaling bandwidth
        leaves both systems' energy (hence the ratio) unchanged."""
        points = bandwidth_sweep(MODEL, COMB, scales=(0.5, 2.0))
        assert points[0].energy_efficiency == pytest.approx(
            points[1].energy_efficiency, rel=1e-6
        )

    def test_rejects_non_positive_scale(self):
        with pytest.raises(HardwareError):
            bandwidth_sweep(MODEL, COMB, scales=(-1.0,))


class TestArraySweep:
    def test_bigger_arrays_reduce_cycles(self):
        points = array_size_sweep(MODEL, COMB, dims=(8, 16, 32))
        cycles = [p.fpfp.cycles for p in points]
        assert cycles[0] > cycles[1] > cycles[2]

    def test_speedup_persists_while_compute_bound(self):
        points = array_size_sweep(MODEL, COMB, dims=(8, 16, 32))
        assert all(p.speedup > 1.5 for p in points)

    def test_rejects_zero_dim(self):
        with pytest.raises(HardwareError):
            array_size_sweep(MODEL, COMB, dims=(0,))
