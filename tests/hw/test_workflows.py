"""Tests for the Fig. 8 workflow cost model."""

import pytest

from repro.core.precision import TensorKind
from repro.errors import HardwareError
from repro.hw.workflows import WORKFLOWS, compare_workflows, workflow_cost
from repro.hw.workloads import Gemm

GEMM = Gemm(TensorKind.U, rows=128, reduction=512, cols=1024, repeats=2)


class TestWorkflowCost:
    def test_gpu_dequantizes_every_weight(self):
        cost = workflow_cost(GEMM, "GPU")
        assert cost.weight_dequants == GEMM.weight_count
        assert cost.compute_class == "fp16-fma"

    def test_fp_int_gpu_removes_weight_dequant(self):
        cost = workflow_cost(GEMM, "FP-INT GPU")
        assert cost.weight_dequants == 0
        assert cost.act_conversions == 0

    def test_figna_converts_on_every_access(self):
        cost = workflow_cost(GEMM, "FIGNA")
        col_tiles = -(-GEMM.cols // 16)
        assert cost.act_conversions == GEMM.act_in_count * col_tiles
        assert cost.compute_class == "int-parallel"

    def test_anda_converts_only_on_writeback(self):
        cost = workflow_cost(GEMM, "Anda")
        assert cost.act_conversions == 0
        assert cost.output_requants == GEMM.act_out_count
        assert cost.compute_class == "int-bit-serial"

    def test_anda_repetitive_conversion_gap(self):
        # The "(-) repetitive conversion" annotation: FIGNA's conversion
        # count exceeds Anda's by the re-stream factor.
        figna = workflow_cost(GEMM, "FIGNA")
        anda = workflow_cost(GEMM, "Anda")
        assert figna.total_conversions > 10 * anda.total_conversions

    def test_anda_reduces_memory_and_traffic(self):
        for mantissa in (4, 8, 13):
            anda = workflow_cost(GEMM, "Anda", mantissa_bits=mantissa)
            fp16 = workflow_cost(GEMM, "FIGNA", mantissa_bits=mantissa)
            assert anda.act_memory_bits < fp16.act_memory_bits
            assert anda.act_traffic_bits < fp16.act_traffic_bits

    def test_rejects_unknown_workflow(self):
        with pytest.raises(HardwareError):
            workflow_cost(GEMM, "TPU")

    def test_rejects_bad_mantissa(self):
        with pytest.raises(HardwareError):
            workflow_cost(GEMM, "Anda", mantissa_bits=0)

    def test_repeats_scale_counts(self):
        single = workflow_cost(
            Gemm(GEMM.kind, GEMM.rows, GEMM.reduction, GEMM.cols), "FIGNA"
        )
        double = workflow_cost(GEMM, "FIGNA")
        assert double.act_conversions == 2 * single.act_conversions


class TestCompareWorkflows:
    def test_all_four_present(self):
        costs = compare_workflows(GEMM)
        assert set(costs) == set(WORKFLOWS)

    def test_memory_ordering_matches_fig8(self):
        # FP16-resident workflows tie on memory; Anda is strictly lower.
        costs = compare_workflows(GEMM, mantissa_bits=8)
        assert (
            costs["GPU"].act_memory_bits
            == costs["FP-INT GPU"].act_memory_bits
            == costs["FIGNA"].act_memory_bits
        )
        assert costs["Anda"].act_memory_bits < costs["GPU"].act_memory_bits
