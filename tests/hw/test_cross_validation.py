"""Cross-model consistency checks between independent cost models.

The BOPs model (compile-time, Sec. III), the tile simulator
(cycle-level, Sec. V) and the instruction compiler (control path) are
three separately implemented views of the same machine; these tests pin
their mutual consistency so a regression in one is caught by the
others.
"""

import math

import pytest

from repro.core.bops import effective_mantissa_bits
from repro.core.precision import PrecisionCombination
from repro.hw.pe import ANDA_GROUP_OVERHEAD, FULL_RATE_CYCLES
from repro.hw.program import compile_gemm
from repro.hw.simulator import simulate_gemm, simulate_model
from repro.hw.workloads import prefill_gemms
from repro.llm.config import get_config
from repro.hw.pe import get_pe

MODELS = ("opt-1.3b", "llama-7b", "opt-30b")
COMBOS = (
    PrecisionCombination(8, 5, 5, 4),
    PrecisionCombination(7, 6, 6, 6),
    PrecisionCombination.uniform(6),
)


class TestSpeedupVsEffectiveMantissa:
    @pytest.mark.parametrize("model", MODELS)
    @pytest.mark.parametrize("combination", COMBOS)
    def test_speedup_tracks_weighted_mantissa(self, model, combination):
        """Compute-bound Anda speedup equals 16 / (m_eff + 1) where
        m_eff is the MAC-weighted mantissa of the BOPs model — two
        independently coded paths to the same number (up to tile
        padding on ragged shapes)."""
        config = get_config(model)
        fpfp = simulate_model(model, "FP-FP")
        anda = simulate_model(model, "Anda", combination)
        measured = fpfp.cycles / anda.cycles
        m_eff = effective_mantissa_bits(combination, config.mac_weights())
        predicted = FULL_RATE_CYCLES / (m_eff + ANDA_GROUP_OVERHEAD)
        assert measured == pytest.approx(predicted, rel=0.01)


class TestProgramVsSimulator:
    @pytest.mark.parametrize("model", MODELS)
    def test_per_gemm_cycle_agreement(self, model):
        combination = PrecisionCombination.uniform(6)
        config = get_config(model)
        for gemm in prefill_gemms(config, 256):
            program = compile_gemm(gemm, "Anda", combination)
            single = simulate_gemm(
                type(gemm)(gemm.kind, gemm.rows, gemm.reduction, gemm.cols, 1),
                get_pe("Anda"),
                combination,
            )
            tiles = math.ceil(gemm.rows / 16) * math.ceil(gemm.cols / 16)
            assert program.compute_cycles() == single.compute_cycles + tiles


class TestEnergyVsBops:
    def test_compute_energy_proportional_to_bops_plus_overhead(self):
        """Anda compute energy scales with (M+1) while BOPs scale with
        M — the drain-cycle overhead is the only divergence."""
        model = "opt-6.7b"
        e4 = simulate_model(model, "Anda", PrecisionCombination.uniform(4))
        e8 = simulate_model(model, "Anda", PrecisionCombination.uniform(8))
        ratio = e8.compute_energy_pj / e4.compute_energy_pj
        assert ratio == pytest.approx((8 + 1) / (4 + 1), rel=1e-6)

    def test_sram_energy_tracks_storage_bits(self):
        model = "opt-6.7b"
        runs = {
            m: simulate_model(model, "Anda", PrecisionCombination.uniform(m))
            for m in (4, 8)
        }
        # Activation traffic scales with (1 + M + 8/64); weight traffic
        # is constant, so the SRAM ratio sits between 1 and the
        # activation-bit ratio.
        act_ratio = (1 + 8 + 8 / 64) / (1 + 4 + 8 / 64)
        sram_ratio = runs[8].sram_energy_pj / runs[4].sram_energy_pj
        assert 1.0 < sram_ratio < act_ratio


class TestEventSimVsTileSimulator:
    """The event-driven executor and the closed-form tile simulator are
    independent implementations of the same machine timing."""

    @pytest.mark.parametrize("mantissa", (4, 7, 11))
    def test_anda_mxu_busy_matches_tile_compute(self, mantissa):
        from repro.core.precision import TensorKind
        from repro.hw.event_sim import execute
        from repro.hw.workloads import Gemm

        gemm = Gemm(TensorKind.U, rows=96, reduction=512, cols=96)
        combination = PrecisionCombination.uniform(mantissa)
        program = compile_gemm(gemm, "Anda", combination)
        report = execute(program)
        tile_cycles = simulate_gemm(gemm, get_pe("Anda"), combination).compute_cycles
        # The event machine adds one DRAIN cycle per tile to the MXU.
        tiles = math.ceil(96 / 16) * math.ceil(96 / 16)
        assert report.busy_cycles["mxu"] == tile_cycles + tiles

    @pytest.mark.parametrize("architecture", ("FP-FP", "FIGNA", "FIGNA-M8"))
    def test_baseline_mxu_busy_matches_tile_compute(self, architecture):
        from repro.core.precision import TensorKind
        from repro.hw.event_sim import execute
        from repro.hw.workloads import Gemm

        gemm = Gemm(TensorKind.O, rows=64, reduction=256, cols=64)
        program = compile_gemm(gemm, architecture)
        report = execute(program)
        tile_cycles = simulate_gemm(gemm, get_pe(architecture)).compute_cycles
        tiles = math.ceil(64 / 16) * math.ceil(64 / 16)
        assert report.busy_cycles["mxu"] == tile_cycles + tiles


class TestPipelineVsTileSimulator:
    """The block pipeline's FP-INT GeMM stages must reproduce the tile
    simulator's per-GeMM numbers exactly (same model, per-layer)."""

    @pytest.mark.parametrize("model", ("opt-1.3b", "llama-7b"))
    def test_gemm_stage_cycles_match(self, model):
        from repro.hw.pipeline import schedule_block
        from repro.hw.workloads import Gemm

        combination = PrecisionCombination(7, 6, 6, 5)
        seq = 512
        schedule = schedule_block(model, "Anda", combination, seq)
        config = get_config(model)
        for gemm in prefill_gemms(config, seq):
            single = Gemm(gemm.kind, gemm.rows, gemm.reduction, gemm.cols)
            expected = simulate_gemm(single, get_pe("Anda"), combination)
            label = "gemm:qkv" if gemm.kind.value == "qkv" else f"gemm:{gemm.kind.value}"
            stage = schedule.stage(label)
            assert stage.cycles == pytest.approx(expected.cycles)
            assert stage.energy_pj == pytest.approx(expected.energy_pj)

    def test_weight_bits_parameter_scales_weight_traffic(self):
        from repro.core.precision import TensorKind
        from repro.hw.workloads import Gemm

        gemm = Gemm(TensorKind.O, rows=32, reduction=1024, cols=1024)
        narrow = simulate_gemm(gemm, get_pe("FP-FP"), weight_bits=4.0)
        wide = simulate_gemm(gemm, get_pe("FP-FP"), weight_bits=16.0)
        # Wider stationary operand: strictly more DRAM and SRAM traffic,
        # identical compute cycles.
        assert wide.dram_bytes > narrow.dram_bytes
        assert wide.sram_bits > narrow.sram_bits
        assert wide.compute_cycles == narrow.compute_cycles
