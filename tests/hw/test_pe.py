"""Tests for PE models and the gate-level component estimates."""

import pytest

from repro.errors import HardwareError
from repro.hw.gates import adder, adder_tree, barrel_shifter, multiplier
from repro.hw.pe import (
    FULL_RATE_CYCLES,
    PE_MODELS,
    PE_ORDER,
    get_pe,
    pe_area_efficiency,
    pe_energy_efficiency,
)


class TestGates:
    def test_multiplier_scales_with_product(self):
        assert multiplier(11, 11) > multiplier(11, 4) > multiplier(4, 4)

    def test_adder_linear(self):
        assert adder(32) == 2 * adder(16)

    def test_adder_tree_counts_levels(self):
        # 4 inputs: 2 adders of w+1, 1 of w+2.
        assert adder_tree(4, 4) == 2 * adder(5) + adder(6)

    def test_barrel_shifter_log_stages(self):
        assert barrel_shifter(16, 16) < barrel_shifter(16, 256)

    def test_rejects_non_positive(self):
        with pytest.raises(HardwareError):
            multiplier(0, 4)
        with pytest.raises(HardwareError):
            adder(-1)


class TestCycles:
    def test_baselines_full_rate(self):
        for name in ("FP-FP", "FP-INT", "iFPU", "FIGNA"):
            assert get_pe(name).cycles_per_group() == FULL_RATE_CYCLES

    def test_reduced_mantissa_figna(self):
        assert get_pe("FIGNA-M11").cycles_per_group() == 11
        assert get_pe("FIGNA-M8").cycles_per_group() == 8

    def test_anda_scales_with_mantissa(self):
        anda = get_pe("Anda")
        assert anda.cycles_per_group(4) == 5
        assert anda.cycles_per_group(15) == 16

    def test_anda_requires_mantissa(self):
        with pytest.raises(HardwareError):
            get_pe("Anda").cycles_per_group()

    def test_anda_rejects_out_of_range(self):
        with pytest.raises(HardwareError):
            get_pe("Anda").cycles_per_group(0)
        with pytest.raises(HardwareError):
            get_pe("Anda").cycles_per_group(17)

    def test_unknown_pe(self):
        with pytest.raises(HardwareError):
            get_pe("TPU")


class TestEnergy:
    def test_bit_parallel_energy_is_published_ratio(self):
        assert get_pe("FIGNA").group_energy_rel() == pytest.approx(0.17)

    def test_anda_energy_linear_in_planes(self):
        anda = get_pe("Anda")
        assert anda.group_energy_rel(15) == pytest.approx(0.20)
        assert anda.group_energy_rel(7) == pytest.approx(0.20 * 8 / 16)

    def test_energy_ordering(self):
        """FP-FP > FP-INT > iFPU > FIGNA per-group energy (Fig. 15b)."""
        energies = [get_pe(n).group_energy_rel(15) for n in
                    ("FP-FP", "FP-INT", "iFPU", "FIGNA")]
        assert energies == sorted(energies, reverse=True)


class TestFig15Metrics:
    def test_area_efficiency_baselines(self):
        """Fig. 15c: 1/area for bit-parallel PEs."""
        assert pe_area_efficiency("FP-INT") == pytest.approx(1 / 0.63, rel=1e-6)
        assert pe_area_efficiency("FIGNA") == pytest.approx(1 / 0.18, rel=1e-6)

    @pytest.mark.parametrize(
        "mantissa,paper",
        [(13, 4.96), (11, 5.79), (8, 7.72), (6, 9.92), (4, 13.89)],
    )
    def test_anda_area_efficiency_matches_paper(self, mantissa, paper):
        assert pe_area_efficiency("Anda", mantissa) == pytest.approx(paper, rel=0.02)

    @pytest.mark.parametrize(
        "mantissa,paper",
        [(13, 5.74), (11, 6.69), (8, 8.93), (6, 11.48), (4, 16.07)],
    )
    def test_anda_energy_efficiency_matches_paper(self, mantissa, paper):
        assert pe_energy_efficiency("Anda", mantissa) == pytest.approx(paper, rel=0.02)

    def test_figna_energy_efficiency(self):
        assert pe_energy_efficiency("FIGNA") == pytest.approx(5.88, rel=0.01)


class TestStorageFormats:
    def test_fp16_storage(self):
        assert get_pe("FIGNA").act_bits_per_element() == 16.0

    def test_anda_storage_scales(self):
        anda = get_pe("Anda")
        assert anda.act_bits_per_element(6) == pytest.approx(7 + 8 / 64)
        assert anda.act_bits_per_element(6) < anda.act_bits_per_element(10) < 16

    def test_anda_storage_requires_mantissa(self):
        with pytest.raises(HardwareError):
            get_pe("Anda").act_bits_per_element()


class TestComponentModel:
    def test_every_pe_has_modeled_area(self):
        for name in PE_ORDER:
            assert PE_MODELS[name].modeled_area_ge() > 0

    def test_int_datapaths_smaller_than_fp(self):
        """The structural estimate keeps the key ordering: INT-compute
        PEs are smaller than the FP-FP FMA datapath."""
        fp_area = PE_MODELS["FP-FP"].modeled_area_ge()
        for name in ("FP-INT", "FIGNA", "FIGNA-M11", "FIGNA-M8", "Anda"):
            assert PE_MODELS[name].modeled_area_ge() < fp_area

    def test_figna_mantissa_monotone(self):
        a14 = PE_MODELS["FIGNA"].modeled_area_ge()
        a11 = PE_MODELS["FIGNA-M11"].modeled_area_ge()
        a8 = PE_MODELS["FIGNA-M8"].modeled_area_ge()
        assert a14 > a11 > a8
