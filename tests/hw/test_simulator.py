"""Tests for workloads, the tile simulator and system comparisons."""

import pytest

from repro.core.precision import PrecisionCombination, TensorKind
from repro.errors import HardwareError
from repro.hw.accelerator import (
    anda_operating_point,
    compare_architectures,
    geometric_mean,
)
from repro.hw.area import anda_system_breakdown, system_area_mm2
from repro.hw.params import DEFAULT_BUDGET
from repro.hw.pe import get_pe
from repro.hw.simulator import simulate_gemm, simulate_model
from repro.hw.workloads import Gemm, context_ops, fig2_series, prefill_gemms
from repro.llm.config import BENCHMARK_MODELS, get_config

COMB6 = PrecisionCombination.uniform(6)


class TestWorkloads:
    def test_prefill_gemm_macs_match_config(self):
        config = get_config("opt-1.3b")
        gemms = prefill_gemms(config, 2048)
        total = sum(g.macs for g in gemms)
        assert total == 2048 * config.fp_int_macs_per_token()

    def test_llama_gate_counted(self):
        config = get_config("llama-7b")
        up = next(
            g for g in prefill_gemms(config, 128) if g.kind == TensorKind.U
        )
        assert up.cols == 2 * config.ffn_dim

    def test_rejects_bad_sequence(self):
        with pytest.raises(HardwareError):
            prefill_gemms(get_config("opt-1.3b"), 0)

    def test_fp_int_share_decreases_with_context(self):
        config = get_config("opt-1.3b")
        shares = [
            context_ops(config, c).fp_int_share for c in (1024, 4096, 16384)
        ]
        assert shares[0] > shares[1] > shares[2]

    def test_fp_int_dominates_short_context(self):
        """Paper: >90% of operations below 4K context."""
        for name in BENCHMARK_MODELS:
            share = context_ops(get_config(name), 2048).fp_int_share
            assert share > 0.90, name

    def test_fp_int_still_significant_at_16k(self):
        share = context_ops(get_config("opt-30b"), 16384).fp_int_share
        assert 0.4 < share < 1.0

    def test_fig2_series_shape(self):
        series = fig2_series(("opt-1.3b", "llama-7b"), (1024, 2048))
        assert set(series) == {"opt-1.3b", "llama-7b"}
        assert set(series["opt-1.3b"]) == {1024, 2048}


class TestSimulateGemm:
    GEMM = Gemm(TensorKind.O, rows=2048, reduction=4096, cols=4096)

    def test_fpfp_peak_throughput(self):
        """At the common datapath width the array does 1024 MACs/cycle."""
        metrics = simulate_gemm(self.GEMM, get_pe("FP-FP"))
        assert metrics.compute_cycles == self.GEMM.macs / 1024

    def test_anda_speedup_ratio(self):
        base = simulate_gemm(self.GEMM, get_pe("FP-FP"))
        anda = simulate_gemm(self.GEMM, get_pe("Anda"), COMB6)
        assert base.compute_cycles / anda.compute_cycles == pytest.approx(16 / 7)

    def test_anda_needs_combination(self):
        with pytest.raises(HardwareError):
            simulate_gemm(self.GEMM, get_pe("Anda"))

    def test_dram_traffic_includes_weights_once(self):
        metrics = simulate_gemm(self.GEMM, get_pe("FP-FP"))
        weight_bytes = self.GEMM.reduction * self.GEMM.cols / 2
        assert metrics.dram_bytes >= weight_bytes

    def test_anda_moves_fewer_dram_bytes(self):
        base = simulate_gemm(self.GEMM, get_pe("FP-FP"))
        anda = simulate_gemm(self.GEMM, get_pe("Anda"), COMB6)
        assert anda.dram_bytes < base.dram_bytes

    def test_memory_compute_overlap(self):
        metrics = simulate_gemm(self.GEMM, get_pe("FP-FP"))
        assert metrics.cycles == max(metrics.compute_cycles, metrics.memory_cycles)

    def test_repeats_scale_linearly(self):
        single = simulate_gemm(self.GEMM, get_pe("FP-FP"))
        double = simulate_gemm(
            Gemm(TensorKind.O, 2048, 4096, 4096, repeats=2), get_pe("FP-FP")
        )
        assert double.compute_cycles == 2 * single.compute_cycles
        assert double.dram_bytes == 2 * single.dram_bytes

    def test_small_gemm_padding(self):
        tiny = Gemm(TensorKind.O, rows=5, reduction=100, cols=10)
        metrics = simulate_gemm(tiny, get_pe("FP-FP"))
        # 1 row tile x 1 col tile x 2 groups x 16 cycles.
        assert metrics.compute_cycles == 32


class TestSystemLevel:
    def test_fpfp_energy_breakdown_matches_paper(self):
        """Fig. 17 anchor: FP-FP on LLaMA-13B splits ~42/11/48."""
        run = simulate_model("llama-13b", "FP-FP")
        shares = run.energy_shares()
        assert shares["compute"] == pytest.approx(0.42, abs=0.03)
        assert shares["sram"] == pytest.approx(0.11, abs=0.03)
        assert shares["dram"] == pytest.approx(0.48, abs=0.03)

    def test_energy_efficiency_ordering(self):
        """Fig. 17: FP-FP < FP-INT < iFPU < FIGNA < M11 < M8 < Anda."""
        results = compare_architectures("llama-13b", PrecisionCombination(7, 5, 6, 6))
        effs = [results[a].energy_efficiency for a in
                ("FP-FP", "FP-INT", "iFPU", "FIGNA", "FIGNA-M11", "FIGNA-M8", "Anda")]
        assert effs == sorted(effs)

    def test_figna_energy_efficiency_near_paper(self):
        results = compare_architectures("llama-13b", PrecisionCombination(7, 5, 6, 6))
        assert results["FIGNA"].energy_efficiency == pytest.approx(1.53, abs=0.1)

    def test_anda_energy_efficiency_near_paper(self):
        results = compare_architectures("llama-13b", PrecisionCombination(7, 5, 6, 6))
        assert results["Anda"].energy_efficiency == pytest.approx(3.1, abs=0.3)

    def test_speedups_match_paper_model(self):
        results = compare_architectures("opt-6.7b", PrecisionCombination(6, 4, 5, 4))
        assert results["FIGNA-M11"].speedup == pytest.approx(16 / 11, rel=0.01)
        assert results["FIGNA-M8"].speedup == pytest.approx(2.0, rel=0.01)
        assert results["FP-INT"].speedup == pytest.approx(1.0, rel=0.01)
        # OPT-6.7B 1% combo: effective mantissa ~4.83 -> speedup ~16/5.9.
        assert results["Anda"].speedup == pytest.approx(16 / 5.9, rel=0.05)

    def test_area_efficiency_near_paper(self):
        """Fig. 16 geomean area efficiencies (paper: FIGNA 1.72x,
        FIGNA-M8 3.60x) derive from Table III composition."""
        results = compare_architectures("llama-13b", PrecisionCombination(7, 5, 6, 6))
        assert results["FIGNA"].area_efficiency == pytest.approx(1.72, abs=0.15)
        assert results["FIGNA-M8"].area_efficiency == pytest.approx(3.6, abs=0.3)

    def test_shorter_mantissas_run_faster(self):
        fast = anda_operating_point("opt-13b", PrecisionCombination.uniform(4), 0.05)
        slow = anda_operating_point("opt-13b", PrecisionCombination.uniform(10), 0.001)
        assert fast.speedup > slow.speedup
        assert fast.energy_efficiency > slow.energy_efficiency


class TestAreaModel:
    def test_total_area_near_paper(self):
        assert anda_system_breakdown().total_area_mm2 == pytest.approx(2.17, abs=0.1)

    def test_total_power_near_paper(self):
        assert anda_system_breakdown().total_power_mw == pytest.approx(81.2, abs=5.0)

    def test_buffers_dominate_area(self):
        """Table III: the two buffers hold ~77% of system area."""
        breakdown = anda_system_breakdown()
        buffer_share = breakdown.area_share("Activation Buffer") + breakdown.area_share(
            "Weight Buffer"
        )
        assert buffer_share == pytest.approx(0.77, abs=0.05)

    def test_mxu_dominates_power(self):
        breakdown = anda_system_breakdown()
        assert breakdown.power_share("MXU") > 0.5

    def test_system_area_ordering(self):
        areas = [system_area_mm2(a) for a in
                 ("FP-FP", "FP-INT", "iFPU", "FIGNA", "FIGNA-M11", "FIGNA-M8")]
        assert areas == sorted(areas, reverse=True)

    def test_anda_system_smaller_than_fpfp(self):
        assert system_area_mm2("Anda") < 0.7 * system_area_mm2("FP-FP")


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestBudget:
    def test_dram_bytes_per_cycle(self):
        assert DEFAULT_BUDGET.dram_bytes_per_cycle == pytest.approx(256e9 / 285e6)

    def test_pe_count(self):
        assert DEFAULT_BUDGET.pe_count == 256
