"""Tests for the address generator and the roofline analysis."""

import numpy as np
import pytest

from repro.core.anda import AndaTensor
from repro.core.precision import PrecisionCombination
from repro.errors import HardwareError
from repro.hw.addressing import BitPlaneAddressGenerator, buffer_words_for
from repro.hw.params import SystemBudget
from repro.hw.roofline import (
    crossover_sequence_length,
    decode_step_point,
    decode_vs_prefill_summary,
    model_roofline,
    roofline_point,
)
from repro.hw.workloads import Gemm
from repro.core.precision import TensorKind

COMB = PrecisionCombination.uniform(6)


class TestAddressGenerator:
    def test_unit_stride_regardless_of_mantissa(self):
        """The Fig. 10 claim: variable depth, perfectly regular access."""
        for m in (1, 5, 11, 16):
            gen = BitPlaneAddressGenerator(n_groups=7, mantissa_bits=m)
            assert gen.is_unit_stride(), m

    def test_words_per_group(self):
        gen = BitPlaneAddressGenerator(4, 5)
        assert gen.words_per_group == 6
        assert gen.total_words == 24

    def test_group_base_offsets(self):
        gen = BitPlaneAddressGenerator(4, 5, base_address=100)
        assert gen.group_base(0) == 100
        assert gen.group_base(2) == 112

    def test_sign_precedes_planes_msb_first(self):
        gen = BitPlaneAddressGenerator(1, 3)
        stream = list(gen.stream())
        assert [a.kind for a in stream] == ["sign", "plane", "plane", "plane"]
        assert [a.plane for a in stream[1:]] == [0, 1, 2]

    def test_for_tensor(self):
        x = np.random.default_rng(0).normal(size=(4, 128)).astype(np.float32)
        tensor = AndaTensor.from_float(x, 7)
        gen = BitPlaneAddressGenerator.for_tensor(tensor)
        assert gen.total_words == tensor.n_groups * 8

    def test_exponent_partition_separate(self):
        gen = BitPlaneAddressGenerator(4, 5)
        assert gen.exponent_address(3) == 3

    def test_validation(self):
        with pytest.raises(HardwareError):
            BitPlaneAddressGenerator(0, 5)
        with pytest.raises(HardwareError):
            BitPlaneAddressGenerator(4, 17)
        gen = BitPlaneAddressGenerator(4, 5)
        with pytest.raises(HardwareError):
            gen.group_base(4)
        with pytest.raises(HardwareError):
            gen.plane_address(0, 5)

    def test_buffer_words_helper(self):
        # 128 channels = 2 groups; (1 + 6) words each; 4 rows.
        assert buffer_words_for(128, 6, rows=4) == 4 * 2 * 7


class TestRoofline:
    GEMM = Gemm(TensorKind.O, rows=2048, reduction=5120, cols=5120)
    DECODE = Gemm(TensorKind.O, rows=1, reduction=5120, cols=5120)

    #: GPU-scale array: 128x128 PEs against the same HBM2 channel.
    GPU_SCALE = SystemBudget(mxu_rows=128, mxu_cols=128)

    def test_prefill_is_compute_bound_at_full_utilization(self):
        point = roofline_point(self.GEMM, "FP-FP")
        assert not point.memory_bound
        assert point.utilization == pytest.approx(1.0)

    def test_decode_intensity_collapses(self):
        """GeMV moves the whole weight matrix for one row of MACs."""
        prefill = roofline_point(self.GEMM, "FP-FP")
        step = roofline_point(self.DECODE, "FP-FP")
        assert prefill.intensity > 50 * step.intensity
        # ~2 MACs/byte: one INT4 weight (0.5 B) per MAC.
        assert step.intensity == pytest.approx(2.0, rel=0.05)

    def test_decode_on_paper_budget_stays_compute_bound(self):
        """The paper-scale array (256 PEs) is small against 256 GB/s:
        machine balance ~1.1 MACs/B sits *below* GeMV intensity, and
        GeMV wastes 15/16 PE rows, so decode still stalls on compute."""
        point = roofline_point(self.DECODE, "FP-FP")
        assert not point.memory_bound
        assert point.machine_balance < point.intensity
        assert point.utilization == pytest.approx(1 / 16, rel=0.05)

    def test_gpu_scale_decode_is_utilization_bound(self):
        """At GPU scale the idealized roofline predicts memory-bound
        decode (balance >> intensity), but the output-stationary tile
        simulator shows the truth: a GeMV fills one of 128 PE rows, so
        execution stays *utilization*-bound — compute cycles barely
        shrink while peak grew 64x."""
        point = roofline_point(self.DECODE, "FP-FP", budget=self.GPU_SCALE)
        assert point.machine_balance > point.intensity  # idealized view
        assert not point.memory_bound  # what the tiles actually do
        assert point.utilization < 1 / 64

    def test_model_roofline_covers_all_gemms(self):
        points = model_roofline("llama-13b", "Anda", COMB)
        assert len(points) == 4
        assert all(not p.memory_bound for p in points)

    def test_decode_points_shapes(self):
        points = decode_step_point("llama-13b", "FP-FP")
        assert len(points) == 4
        assert all(p.gemm.rows == 1 for p in points)

    def test_crossover_on_bandwidth_starved_budget(self):
        """Starve the DRAM channel (8 GB/s) and short prefills become
        genuinely memory-bound; the crossover moves past one token, and
        Anda's faster datapath needs even more reuse to saturate."""
        starved = SystemBudget(dram_bandwidth=8e9)
        fpfp = crossover_sequence_length("llama-13b", "FP-FP", budget=starved)
        anda = crossover_sequence_length(
            "llama-13b", "Anda", COMB, budget=starved
        )
        assert fpfp > 1
        assert anda >= fpfp

    def test_paper_budget_crossover_is_immediate(self):
        assert crossover_sequence_length("llama-13b", "FP-FP") == 1

    def test_decode_vs_prefill_summary(self):
        summary = decode_vs_prefill_summary("llama-13b", COMB)
        # Both regimes compute-bound on the paper budget: the
        # bit-serial datapath wins in both.
        assert summary["prefill_speedup"] > 1.8
        assert summary["decode_speedup"] > 1.8
        # The activation-compression DRAM saving is a prefill effect;
        # decode traffic is weight-dominated, so the ratio collapses.
        assert summary["prefill_dram_reduction"] > 1.5
        assert 1.0 <= summary["decode_dram_reduction"] < 1.1
