"""Tests for the serving-step DRAM traffic accounting."""

import pytest

from repro.errors import HardwareError
from repro.hw.traffic import (
    StepTraffic,
    batching_traffic_advantage,
    decode_step_traffic,
    prefill_chunk_traffic,
    prefill_traffic,
    prefix_cache_savings,
)
from repro.llm.config import get_config
from repro.llm.kv_quant import kv_bits_per_element


@pytest.fixture(scope="module")
def config():
    return get_config("opt-1.3b")


class TestDecodeStepTraffic:
    def test_batched_weights_are_amortized(self, config):
        contexts = [128] * 8
        batched = decode_step_traffic(config, contexts, batched=True)
        sequential = decode_step_traffic(config, contexts, batched=False)
        assert sequential.weight_bytes == 8 * batched.weight_bytes
        assert sequential.kv_read_bytes == batched.kv_read_bytes
        assert sequential.total_bytes > batched.total_bytes

    def test_kv_read_scales_with_context(self, config):
        short = decode_step_traffic(config, [16])
        long = decode_step_traffic(config, [256])
        assert long.kv_read_bytes == 16 * short.kv_read_bytes
        assert long.kv_write_bytes == short.kv_write_bytes

    def test_anda_kv_bits_shrink_kv_streams(self, config):
        bits = kv_bits_per_element("anda", mantissa_bits=6)
        fp16 = decode_step_traffic(config, [64, 64])
        anda = decode_step_traffic(config, [64, 64], kv_bits_per_element=bits)
        assert anda.kv_read_bytes == pytest.approx(fp16.kv_read_bytes * bits / 16.0)
        assert anda.weight_bytes == fp16.weight_bytes

    def test_empty_batch_moves_nothing(self, config):
        assert decode_step_traffic(config, []).total_bytes == 0.0

    def test_invalid_inputs_rejected(self, config):
        with pytest.raises(HardwareError):
            decode_step_traffic(config, [4], kv_bits_per_element=0.0)
        with pytest.raises(HardwareError):
            decode_step_traffic(config, [-1])


class TestPrefillTraffic:
    def test_weights_stream_once_per_prompt(self, config):
        short = prefill_traffic(config, 8)
        long = prefill_traffic(config, 64)
        assert short.weight_bytes == long.weight_bytes
        assert long.kv_write_bytes == 8 * short.kv_write_bytes
        assert short.kv_read_bytes == 0.0

    def test_empty_prompt_rejected(self, config):
        with pytest.raises(HardwareError):
            prefill_traffic(config, 0)

    def test_cached_prefix_charges_suffix_only(self, config):
        full = prefill_traffic(config, 64)
        hit = prefill_traffic(config, 64, cached_prefix_tokens=48)
        suffix = prefill_traffic(config, 16)
        assert hit.kv_write_bytes == suffix.kv_write_bytes
        assert hit.activation_bytes == suffix.activation_bytes
        # Weights still stream once: the suffix forward reads them all.
        assert hit.weight_bytes == full.weight_bytes

    def test_cached_prefix_bounds_enforced(self, config):
        with pytest.raises(HardwareError):
            prefill_traffic(config, 16, cached_prefix_tokens=16)
        with pytest.raises(HardwareError):
            prefill_traffic(config, 16, cached_prefix_tokens=-1)


class TestPrefillChunkTraffic:
    def test_first_chunk_matches_monolithic_prefill(self, config):
        # A whole-prompt chunk with no cached context is exactly a
        # monolithic prefill charge.
        chunk = prefill_chunk_traffic(config, 64)
        mono = prefill_traffic(config, 64)
        assert chunk.total_bytes == pytest.approx(mono.total_bytes)
        assert chunk.kv_read_bytes == 0.0

    def test_later_chunks_reread_cached_context(self, config):
        # Chunking's bandwidth cost: chunk N re-reads the N-1 earlier
        # chunks' KV from DRAM, scaling with how deep it starts.
        shallow = prefill_chunk_traffic(config, 16, cached_context_tokens=16)
        deep = prefill_chunk_traffic(config, 16, cached_context_tokens=48)
        assert deep.kv_read_bytes == 3 * shallow.kv_read_bytes
        assert deep.kv_write_bytes == shallow.kv_write_bytes

    def test_riding_chunk_shares_the_weight_stream(self, config):
        # A chunk in a mixed step amortizes the decode batch's weight
        # stream instead of paying its own.
        alone = prefill_chunk_traffic(config, 16)
        riding = prefill_chunk_traffic(config, 16, include_weights=False)
        assert riding.weight_bytes == 0.0
        assert alone.weight_bytes > 0.0
        assert alone.kv_write_bytes == riding.kv_write_bytes

    def test_anda_kv_bits_shrink_the_context_reread(self, config):
        bits = kv_bits_per_element("anda", mantissa_bits=6)
        fp16 = prefill_chunk_traffic(config, 16, cached_context_tokens=64)
        anda = prefill_chunk_traffic(
            config, 16, cached_context_tokens=64, kv_bits_per_element=bits
        )
        assert anda.kv_read_bytes == pytest.approx(fp16.kv_read_bytes * bits / 16.0)
        assert anda.weight_bytes == fp16.weight_bytes

    def test_invalid_inputs_rejected(self, config):
        with pytest.raises(HardwareError):
            prefill_chunk_traffic(config, 0)
        with pytest.raises(HardwareError):
            prefill_chunk_traffic(config, 8, cached_context_tokens=-1)
        with pytest.raises(HardwareError):
            prefill_chunk_traffic(config, 8, kv_bits_per_element=0.0)


class TestPrefixCacheSavings:
    def test_savings_close_the_full_vs_suffix_gap(self, config):
        full = prefill_traffic(config, 64)
        hit = prefill_traffic(config, 64, cached_prefix_tokens=48)
        saved = prefix_cache_savings(config, 48)
        assert saved.total_bytes == pytest.approx(full.total_bytes - hit.total_bytes)
        assert saved.weight_bytes == 0.0

    def test_savings_scale_with_kv_bits(self, config):
        bits = kv_bits_per_element("anda", mantissa_bits=6)
        fp16 = prefix_cache_savings(config, 32)
        anda = prefix_cache_savings(config, 32, kv_bits_per_element=bits)
        assert anda.kv_write_bytes == pytest.approx(fp16.kv_write_bytes * bits / 16.0)

    def test_negative_cached_tokens_rejected(self, config):
        with pytest.raises(HardwareError):
            prefix_cache_savings(config, -1)


class TestStepTraffic:
    def test_addition_is_fieldwise(self):
        a = StepTraffic(1.0, 2.0, 3.0, 4.0)
        b = StepTraffic(10.0, 20.0, 30.0, 40.0)
        total = a + b
        assert total.weight_bytes == 11.0
        assert total.kv_read_bytes == 22.0
        assert total.kv_write_bytes == 33.0
        assert total.activation_bytes == 44.0
        assert total.total_bytes == 110.0


class TestBatchingAdvantage:
    def test_advantage_grows_with_batch(self, config):
        small = batching_traffic_advantage(config, 2, 64)
        large = batching_traffic_advantage(config, 8, 64)
        assert 1.0 < small < large <= 8.0

    def test_advantage_decays_with_context(self, config):
        near = batching_traffic_advantage(config, 8, 16)
        far = batching_traffic_advantage(config, 8, 1024)
        assert far < near

    def test_kv_compression_extends_advantage(self, config):
        bits = kv_bits_per_element("anda", mantissa_bits=4)
        fp16 = batching_traffic_advantage(config, 8, 512)
        anda = batching_traffic_advantage(config, 8, 512, kv_bits_per_element=bits)
        assert anda > fp16

    def test_invalid_batch_rejected(self, config):
        with pytest.raises(HardwareError):
            batching_traffic_advantage(config, 0, 64)
