"""Tests for the event-driven program executor (Fig. 13 overlap claims)."""

import pytest

from repro.core.precision import PrecisionCombination, TensorKind
from repro.errors import HardwareError
from repro.hw.event_sim import (
    PREFETCH_DEPTH,
    ExecutionReport,
    execute,
    summarize_overlap,
)
from repro.hw.program import GemmProgram, Instruction, compile_gemm
from repro.hw.workloads import Gemm


def small_gemm(rows=32, reduction=256, cols=32) -> Gemm:
    return Gemm(TensorKind.QKV, rows, reduction, cols)


def anda_program(mantissa=6, **kwargs) -> GemmProgram:
    return compile_gemm(
        small_gemm(**kwargs), "Anda", PrecisionCombination.uniform(mantissa)
    )


class TestExecute:
    def test_makespan_covers_mxu_busy(self):
        report = execute(anda_program())
        assert report.total_cycles >= report.busy_cycles["mxu"]

    def test_every_unit_in_report(self):
        report = execute(anda_program())
        for unit in ("wgt_loader", "act_loader", "mxu", "bpc", "store_port"):
            assert unit in report.busy_cycles

    def test_mxu_busy_matches_program_estimate(self):
        program = anda_program()
        report = execute(program)
        assert report.busy_cycles["mxu"] == program.compute_cycles()

    def test_schedule_is_consistent(self):
        report = execute(anda_program())
        for item in report.schedule:
            assert 0 <= item.start <= item.end <= report.total_cycles

    def test_per_unit_program_order(self):
        report = execute(anda_program())
        last_end: dict[str, int] = {}
        for item in report.schedule:
            assert item.start >= last_end.get(item.unit, 0)
            last_end[item.unit] = item.end

    def test_compute_waits_for_its_loads(self):
        report = execute(anda_program())
        loads = {}
        computes = []
        wgt_slot = act_slot = 0
        for item in report.schedule:
            opcode = item.instruction.opcode
            if opcode == "LOAD_WGT":
                loads[("LOAD_WGT", wgt_slot)] = item.end
                wgt_slot += 1
            elif opcode == "LOAD_ACT":
                loads[("LOAD_ACT", act_slot)] = item.end
                act_slot += 1
            elif opcode == "COMPUTE":
                computes.append(item)
        for slot, compute in enumerate(computes):
            assert compute.start >= loads[("LOAD_WGT", slot)]
            assert compute.start >= loads[("LOAD_ACT", slot)]

    def test_prefetch_depth_limits_loader_runahead(self):
        report = execute(anda_program())
        compute_ends = [
            item.end
            for item in report.schedule
            if item.instruction.opcode == "COMPUTE"
        ]
        wgt_starts = [
            item.start
            for item in report.schedule
            if item.instruction.opcode == "LOAD_WGT"
        ]
        for slot, start in enumerate(wgt_starts):
            if slot >= PREFETCH_DEPTH:
                assert start >= compute_ends[slot - PREFETCH_DEPTH]

    def test_rejects_unknown_opcode(self):
        bogus = GemmProgram(
            gemm=small_gemm(),
            architecture="Anda",
            instructions=(Instruction("HALT", (0, 0), 0, 1),),
        )
        with pytest.raises(HardwareError):
            execute(bogus)

    def test_empty_program(self):
        empty = GemmProgram(small_gemm(), "Anda", ())
        report = execute(empty)
        assert report.total_cycles == 0
        assert report.stall_cycles() == 0


class TestOverlapClaims:
    def test_bpc_mostly_hidden_behind_mxu(self):
        # Sec. IV-C: BPC latency "can largely overlap with APU
        # computations".  With >= 2 tiles the BPC of tile t runs during
        # the compute of tile t+1.
        summary = summarize_overlap(anda_program(rows=64, cols=64))
        assert summary.bpc_hidden_fraction > 0.9

    def test_weight_loads_hidden_behind_compute(self):
        summary = summarize_overlap(anda_program(rows=64, cols=64))
        assert summary.load_hidden_fraction > 0.8

    def test_makespan_close_to_compute_bound(self):
        # Little impact on overall performance: < 10% over MXU-bound.
        summary = summarize_overlap(anda_program(rows=64, cols=64))
        assert summary.slowdown_vs_compute_bound < 1.10

    def test_low_mantissa_is_faster(self):
        fast = execute(anda_program(mantissa=4)).total_cycles
        slow = execute(anda_program(mantissa=12)).total_cycles
        assert fast < slow

    def test_mxu_utilization_high_for_long_gemm(self):
        summary = summarize_overlap(anda_program(rows=64, reduction=1024))
        assert summary.mxu_utilization > 0.85


class TestBaselineArchitectures:
    def test_fp_fp_program_executes(self):
        program = compile_gemm(small_gemm(), "FP-FP")
        report = execute(program)
        assert report.total_cycles > 0
        assert report.busy_cycles["bpc"] == 0  # no compression stage

    def test_figna_program_executes(self):
        program = compile_gemm(small_gemm(), "FIGNA-M8")
        report = execute(program)
        assert report.busy_cycles["mxu"] == program.compute_cycles()

    def test_anda_faster_than_fp_fp_at_low_mantissa(self):
        anda = execute(anda_program(mantissa=5)).total_cycles
        fpfp = execute(compile_gemm(small_gemm(), "FP-FP")).total_cycles
        assert anda < fpfp


class TestReportAccessors:
    def test_utilization_bounds(self):
        report = execute(anda_program())
        for unit in report.busy_cycles:
            assert 0.0 <= report.utilization(unit) <= 1.0

    def test_unknown_unit_raises(self):
        report = execute(anda_program())
        with pytest.raises(HardwareError):
            report.utilization("gpu")
        with pytest.raises(HardwareError):
            report.overlap_fraction("gpu", "mxu")

    def test_overlap_of_idle_unit_is_one(self):
        report = ExecutionReport(
            total_cycles=10,
            busy_cycles={unit: 0 for unit in ("wgt_loader", "act_loader", "mxu", "bpc", "store_port")},
        )
        assert report.overlap_fraction("bpc", "mxu") == 1.0

    def test_stall_cycles_non_negative(self):
        report = execute(anda_program())
        assert report.stall_cycles() >= 0


class TestOverlapComputation:
    """The two-pointer interval sweep must agree with the O(n*m)
    brute-force definition on arbitrary schedules."""

    @staticmethod
    def brute_force_overlap(intervals_a, intervals_b):
        busy_a = sum(end - start for start, end in intervals_a)
        if busy_a == 0:
            return 1.0
        overlap = 0
        for a_start, a_end in intervals_a:
            for b_start, b_end in intervals_b:
                overlap += max(0, min(a_end, b_end) - max(a_start, b_start))
        return overlap / busy_a

    @pytest.mark.parametrize("mantissa", (4, 9))
    def test_matches_brute_force_on_real_schedules(self, mantissa):
        report = execute(anda_program(mantissa=mantissa, rows=48, cols=48))
        for unit_a, unit_b in (
            ("bpc", "mxu"),
            ("wgt_loader", "mxu"),
            ("act_loader", "mxu"),
            ("store_port", "bpc"),
        ):
            expected = self.brute_force_overlap(
                report._intervals(unit_a), report._intervals(unit_b)
            )
            assert report.overlap_fraction(unit_a, unit_b) == pytest.approx(expected)

    def test_matches_brute_force_on_synthetic_intervals(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        # Build non-overlapping sorted intervals from positive gaps and
        # lengths - the invariant per-unit schedules satisfy.
        def intervals_from(pairs):
            intervals, clock = [], 0
            for gap, length in pairs:
                start = clock + gap
                intervals.append((start, start + length))
                clock = start + length
            return intervals

        @given(
            st.lists(st.tuples(st.integers(0, 5), st.integers(1, 7)), max_size=12),
            st.lists(st.tuples(st.integers(0, 5), st.integers(1, 7)), max_size=12),
        )
        @settings(max_examples=60, deadline=None)
        def check(pairs_a, pairs_b):
            intervals_a = intervals_from(pairs_a)
            intervals_b = intervals_from(pairs_b)
            report = ExecutionReport(
                total_cycles=100,
                busy_cycles={unit: 0 for unit in (
                    "wgt_loader", "act_loader", "mxu", "bpc", "store_port",
                )},
            )
            from repro.hw.event_sim import ScheduledInstruction
            from repro.hw.program import Instruction

            for start, end in intervals_a:
                report.schedule.append(ScheduledInstruction(
                    Instruction("COMPUTE", (0, 0), 0, end - start),
                    "mxu", start, end,
                ))
            for start, end in intervals_b:
                report.schedule.append(ScheduledInstruction(
                    Instruction("COMPRESS", (0, 0), 0, end - start),
                    "bpc", start, end,
                ))
            expected = self.brute_force_overlap(intervals_a, intervals_b)
            assert report.overlap_fraction("mxu", "bpc") == pytest.approx(expected)

        check()
