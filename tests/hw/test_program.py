"""Tests for the controller instruction-stream compiler."""

import pytest

from repro.core.precision import PrecisionCombination, TensorKind
from repro.errors import HardwareError
from repro.hw.program import compile_gemm, validate_against_simulator
from repro.hw.workloads import Gemm

COMB = PrecisionCombination(7, 5, 6, 6)
GEMM = Gemm(TensorKind.O, rows=64, reduction=256, cols=48)


class TestCompileGemm:
    def test_anda_program_structure(self):
        program = compile_gemm(GEMM, "Anda", COMB)
        counts = program.opcode_counts()
        tiles = 4 * 3  # ceil(64/16) x ceil(48/16)
        groups = 4  # ceil(256/64)
        assert counts["COMPUTE"] == tiles * groups
        assert counts["LOAD_WGT"] == tiles * groups
        assert counts["LOAD_ACT"] == tiles * groups
        assert counts["DRAIN"] == tiles
        assert counts["COMPRESS"] == tiles  # Anda write-back only
        assert counts["STORE"] == tiles

    def test_baseline_program_has_no_compress(self):
        program = compile_gemm(GEMM, "FIGNA")
        assert "COMPRESS" not in program.opcode_counts()

    def test_compute_cycles_scale_with_mantissa(self):
        short = compile_gemm(GEMM, "Anda", PrecisionCombination.uniform(4))
        long = compile_gemm(GEMM, "Anda", PrecisionCombination.uniform(12))
        assert long.compute_cycles() > short.compute_cycles()

    def test_kind_selects_mantissa(self):
        qkv_gemm = Gemm(TensorKind.QKV, 64, 256, 48)
        program_o = compile_gemm(GEMM, "Anda", COMB)
        program_qkv = compile_gemm(qkv_gemm, "Anda", COMB)
        # COMB has M_qkv=7 > M_o=5: the QKV program runs longer.
        assert program_qkv.compute_cycles() > program_o.compute_cycles()

    def test_anda_needs_combination(self):
        with pytest.raises(HardwareError):
            compile_gemm(GEMM, "Anda")

    def test_load_act_word_count(self):
        program = compile_gemm(GEMM, "Anda", COMB)
        load = next(i for i in program.instructions if i.opcode == "LOAD_ACT")
        assert load.cycles == 1 + COMB.o  # sign word + M_o planes


class TestSimulatorAgreement:
    @pytest.mark.parametrize("arch", ["FP-FP", "FIGNA", "FIGNA-M8"])
    def test_baseline_agreement(self, arch):
        program = compile_gemm(GEMM, arch)
        assert validate_against_simulator(program)

    def test_anda_agreement(self):
        program = compile_gemm(GEMM, "Anda", COMB)
        assert validate_against_simulator(program, COMB)

    def test_agreement_on_ragged_shapes(self):
        ragged = Gemm(TensorKind.U, rows=17, reduction=100, cols=33)
        program = compile_gemm(ragged, "Anda", COMB)
        assert validate_against_simulator(program, COMB)
