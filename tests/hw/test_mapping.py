"""Tests for the dataflow-mapping ablation (output-stationary choice)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.precision import TensorKind
from repro.errors import HardwareError
from repro.hw.mapping import (
    DATAFLOWS,
    anda_act_bits,
    compare_dataflows,
    dataflow_cost,
)
from repro.hw.workloads import Gemm

#: A production-shaped projection GeMM (2048 tokens, d=4096).
BIG = Gemm(TensorKind.QKV, rows=2048, reduction=4096, cols=4096)

#: A single-tile GeMM: no reduction slicing, no re-streaming.
TINY = Gemm(TensorKind.O, rows=16, reduction=64, cols=16)

SHAPES = st.tuples(
    st.integers(1, 512), st.integers(1, 2048), st.integers(1, 512)
)


class TestDataflowCost:
    def test_os_has_no_psum_traffic(self):
        cost = dataflow_cost(BIG, "output-stationary")
        assert cost.psum_bits == 0.0

    def test_ws_and_is_pay_partial_sums(self):
        for dataflow in ("weight-stationary", "input-stationary"):
            cost = dataflow_cost(BIG, dataflow)
            assert cost.psum_bits > 0.0

    def test_single_tile_gemm_has_no_spills(self):
        # One reduction tile: WS/IS never spill, all three converge on
        # operand reads + output write.
        for dataflow in DATAFLOWS:
            cost = dataflow_cost(TINY, dataflow)
            assert cost.psum_bits == 0.0

    def test_repeats_scale_linearly(self):
        once = dataflow_cost(BIG, "output-stationary")
        layered = dataflow_cost(
            Gemm(BIG.kind, BIG.rows, BIG.reduction, BIG.cols, repeats=3),
            "output-stationary",
        )
        assert layered.total_bits == pytest.approx(3 * once.total_bits)

    def test_rejects_unknown_dataflow(self):
        with pytest.raises(HardwareError):
            dataflow_cost(BIG, "systolic-stationary")

    def test_rejects_bad_activation_width(self):
        with pytest.raises(HardwareError):
            dataflow_cost(BIG, "output-stationary", act_bits_per_element=0)


class TestOutputStationaryChoice:
    def test_fp16_leaves_no_decisive_winner(self):
        # At FP16 widths, OS and IS land within ~1% of each other — the
        # dataflow choice is format-driven, not shape-driven.
        cmp = compare_dataflows(BIG, act_bits_per_element=16.0)
        assert cmp.overhead("output-stationary") < 1.02
        assert cmp.overhead("weight-stationary") > 1.3

    def test_anda_widths_make_os_win_outright(self):
        # The ablation's finding: with Anda-width activations the
        # 32-bit psum traffic of WS/IS stops being amortizable, and OS
        # wins at every searched mantissa length.
        for mantissa in (4, 5, 8, 11, 13):
            cmp = compare_dataflows(BIG, anda_act_bits(mantissa))
            assert cmp.best() == "output-stationary"

    def test_os_wins_harder_with_anda_activations(self):
        # Shrinking the activation width shrinks OS traffic but not the
        # 32-bit psum traffic of WS/IS: Anda widens the OS advantage.
        fp16 = compare_dataflows(BIG, act_bits_per_element=16.0)
        anda = compare_dataflows(BIG, act_bits_per_element=anda_act_bits(5))
        assert anda.best() == "output-stationary"
        assert anda.overhead("weight-stationary") > fp16.overhead(
            "weight-stationary"
        )
        assert anda.overhead("input-stationary") > fp16.overhead(
            "input-stationary"
        )

    def test_overhead_of_best_is_one(self):
        cmp = compare_dataflows(BIG)
        assert cmp.overhead(cmp.best()) == 1.0

    @given(SHAPES, st.integers(2, 13))
    @settings(max_examples=40, deadline=None)
    def test_costs_positive_and_complete(self, shape, mantissa):
        rows, reduction, cols = shape
        gemm = Gemm(TensorKind.U, rows, reduction, cols)
        cmp = compare_dataflows(gemm, anda_act_bits(mantissa))
        assert set(cmp.costs) == set(DATAFLOWS)
        for cost in cmp.costs.values():
            assert cost.total_bits > 0
            assert cost.total_bits == pytest.approx(
                cost.act_bits + cost.wgt_bits + cost.psum_bits + cost.out_bits
            )

    @given(st.integers(1, 16))
    @settings(max_examples=16, deadline=None)
    def test_anda_width_monotone(self, mantissa):
        assert anda_act_bits(mantissa) < anda_act_bits(mantissa) + 1
        if mantissa < 16:
            assert anda_act_bits(mantissa) < anda_act_bits(mantissa + 1)

    def test_anda_width_rejects_out_of_range(self):
        with pytest.raises(HardwareError):
            anda_act_bits(0)
        with pytest.raises(HardwareError):
            anda_act_bits(17)


class TestReuseAsymmetry:
    def test_ws_reads_weights_once(self):
        ws = dataflow_cost(BIG, "weight-stationary")
        os_ = dataflow_cost(BIG, "output-stationary")
        assert ws.wgt_bits < os_.wgt_bits

    def test_is_reads_activations_once(self):
        is_ = dataflow_cost(BIG, "input-stationary")
        os_ = dataflow_cost(BIG, "output-stationary")
        assert is_.act_bits < os_.act_bits

    def test_deep_reduction_punishes_ws(self):
        # Growing the reduction dimension multiplies WS psum spills
        # relative to the psum-free OS dataflow.
        def ws_vs_os(reduction):
            cmp = compare_dataflows(Gemm(TensorKind.D, 256, reduction, 256))
            return (
                cmp.costs["weight-stationary"].total_bits
                / cmp.costs["output-stationary"].total_bits
            )

        assert ws_vs_os(16384) > ws_vs_os(256)
