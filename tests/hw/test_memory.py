"""Tests for the banked SRAM and HBM2 models (Sec. IV-A regularity claims)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HardwareError
from repro.hw.memory import (
    DEFAULT_BANKS,
    HBM2_BURST_BYTES,
    HBM2_ROW_BYTES,
    Hbm2Channel,
    SramBanks,
    StreamStats,
    bitplane_stream,
    compare_layouts,
    element_stream,
)

MANTISSAS = st.integers(min_value=1, max_value=16)
GROUPS = st.integers(min_value=1, max_value=64)


class TestSramBanks:
    def test_bank_mapping_is_interleaved(self):
        banks = SramBanks(n_banks=4)
        assert [banks.bank_of(a) for a in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_no_conflict_for_distinct_banks(self):
        banks = SramBanks(n_banks=4)
        assert banks.conflicts([[0, 1, 2, 3]]) == 0

    def test_conflict_counts_same_bank_collisions(self):
        banks = SramBanks(n_banks=4)
        # 0 and 4 share bank 0; 1 is alone.
        assert banks.conflicts([[0, 4, 1]]) == 1
        # All four in bank 0: three losers.
        assert banks.conflicts([[0, 4, 8, 12]]) == 3

    def test_conflicts_accumulate_over_cycles(self):
        banks = SramBanks(n_banks=2)
        assert banks.conflicts([[0, 2], [1, 3]]) == 2

    def test_rejects_bad_parameters(self):
        with pytest.raises(HardwareError):
            SramBanks(n_banks=0)
        with pytest.raises(HardwareError):
            SramBanks(word_bits=0)
        with pytest.raises(HardwareError):
            SramBanks().bank_of(-1)


class TestBitplaneStream:
    def test_word_count_is_groups_times_depth(self):
        stats = bitplane_stream(n_groups=10, mantissa_bits=6)
        assert stats.words_fetched == 10 * 7

    def test_full_bandwidth_utilization(self):
        stats = bitplane_stream(n_groups=5, mantissa_bits=4)
        assert stats.bandwidth_utilization == 1.0

    def test_zero_conflicts_and_rotations(self):
        stats = bitplane_stream(n_groups=32, mantissa_bits=9)
        assert stats.bank_conflicts == 0
        assert stats.rotations == 0

    @given(GROUPS, MANTISSAS)
    @settings(max_examples=40, deadline=None)
    def test_access_cycles_equal_words(self, n_groups, mantissa):
        stats = bitplane_stream(n_groups, mantissa)
        assert stats.access_cycles == stats.words_fetched

    def test_rejects_bad_arguments(self):
        with pytest.raises(HardwareError):
            bitplane_stream(0, 4)
        with pytest.raises(HardwareError):
            bitplane_stream(1, 0)
        with pytest.raises(HardwareError):
            bitplane_stream(1, 17)


class TestElementStream:
    def test_plane_reads_square_in_depth(self):
        # Feeding a bit-serial PE from an element layout re-reads the
        # whole group footprint per plane: (1 + M)^2 words per group.
        stats = element_stream(n_groups=3, mantissa_bits=7)
        assert stats.words_fetched == 3 * (1 + 7) ** 2

    def test_bandwidth_utilization_is_inverse_depth(self):
        stats = element_stream(n_groups=1, mantissa_bits=7)
        assert stats.bandwidth_utilization == pytest.approx(1 / 8)

    def test_no_straddles_when_field_divides_word(self):
        # 1 + M = 4 divides 64: all fields aligned, no rotations.
        stats = element_stream(n_groups=2, mantissa_bits=3)
        assert stats.rotations == 0

    def test_straddles_when_field_does_not_divide_word(self):
        # 1 + M = 6: fields at offsets 60, 54, ... cross word boundaries.
        stats = element_stream(n_groups=1, mantissa_bits=5)
        assert stats.rotations > 0

    @given(GROUPS, MANTISSAS)
    @settings(max_examples=40, deadline=None)
    def test_never_cheaper_than_bitplane(self, n_groups, mantissa):
        element = element_stream(n_groups, mantissa)
        plane = bitplane_stream(n_groups, mantissa)
        assert element.words_fetched >= plane.words_fetched
        assert element.access_cycles >= plane.access_cycles
        assert element.bandwidth_utilization <= plane.bandwidth_utilization

    @given(MANTISSAS)
    @settings(max_examples=16, deadline=None)
    def test_useful_bits_match_bitplane(self, mantissa):
        # Both layouts deliver the same payload to the PE.
        assert (
            element_stream(4, mantissa).useful_bits
            == bitplane_stream(4, mantissa).useful_bits
        )

    def test_conflicts_appear_beyond_bank_count(self):
        small = SramBanks(n_banks=4)
        stats = element_stream(n_groups=1, mantissa_bits=8, banks=small)
        # 9 parallel words on 4 banks: at least one bank doubles up.
        assert stats.bank_conflicts > 0

    def test_wide_banking_removes_conflicts(self):
        wide = SramBanks(n_banks=32)
        stats = element_stream(n_groups=1, mantissa_bits=8, banks=wide)
        assert stats.bank_conflicts == 0


class TestCompareLayouts:
    def test_fetch_ratio_equals_depth(self):
        cmp = compare_layouts(n_groups=8, mantissa_bits=6)
        assert cmp.fetch_ratio == pytest.approx(7.0)

    @given(GROUPS, MANTISSAS)
    @settings(max_examples=40, deadline=None)
    def test_bitplane_always_wins(self, n_groups, mantissa):
        cmp = compare_layouts(n_groups, mantissa)
        assert cmp.fetch_ratio >= 1.0
        assert cmp.stall_overhead >= 1.0

    def test_advantage_grows_with_mantissa(self):
        ratios = [
            compare_layouts(4, m).fetch_ratio for m in (2, 6, 10, 14)
        ]
        assert ratios == sorted(ratios)


class TestHbm2Channel:
    def test_zero_payload_is_free(self):
        transfer = Hbm2Channel().transfer(0)
        assert transfer.bursts == 0
        assert transfer.energy_pj == 0.0

    def test_single_burst_minimum(self):
        transfer = Hbm2Channel().transfer(1)
        assert transfer.bursts == 1
        assert transfer.bus_bytes == HBM2_BURST_BYTES

    def test_contiguous_bursts_round_up(self):
        transfer = Hbm2Channel().transfer(100)
        assert transfer.bursts == math.ceil(100 / HBM2_BURST_BYTES)

    def test_row_activations_per_row_bytes(self):
        transfer = Hbm2Channel().transfer(4 * HBM2_ROW_BYTES)
        assert transfer.row_activations == 4

    def test_scattering_costs_more(self):
        channel = Hbm2Channel()
        packed = channel.transfer(10_000, segments=1)
        scattered = channel.transfer(10_000, segments=100)
        assert scattered.bursts >= packed.bursts
        assert scattered.row_activations >= packed.row_activations
        assert scattered.energy_pj > packed.energy_pj

    def test_burst_utilization_bounds(self):
        channel = Hbm2Channel()
        for payload in (1, 31, 32, 33, 1000):
            transfer = channel.transfer(payload)
            assert 0.0 < transfer.burst_utilization <= 1.0

    def test_energy_includes_io_and_rows(self):
        channel = Hbm2Channel()
        transfer = channel.transfer(HBM2_ROW_BYTES)
        io = HBM2_ROW_BYTES * 8 * 3.9
        assert transfer.energy_pj > io

    def test_anda_tensor_footprint(self):
        channel = Hbm2Channel()
        # 1 group, M=4: 5 words * 64 bits + 8 exponent bits = 328 bits.
        assert channel.tensor_bytes(1, 4) == 41

    @given(GROUPS, MANTISSAS)
    @settings(max_examples=40, deadline=None)
    def test_footprint_below_fp16(self, n_groups, mantissa):
        channel = Hbm2Channel()
        anda = channel.tensor_bytes(n_groups, mantissa)
        fp16 = n_groups * 64 * 2
        if mantissa <= 13:
            assert anda < fp16

    def test_rejects_bad_arguments(self):
        with pytest.raises(HardwareError):
            Hbm2Channel(burst_bytes=0)
        with pytest.raises(HardwareError):
            Hbm2Channel(burst_bytes=64, row_bytes=32)
        with pytest.raises(HardwareError):
            Hbm2Channel().transfer(-1)
        with pytest.raises(HardwareError):
            Hbm2Channel().transfer(10, segments=0)


class TestStreamStats:
    def test_empty_stream_utilization(self):
        stats = StreamStats(0, 0, 0, 0)
        assert stats.bandwidth_utilization == 1.0

    def test_default_bank_count(self):
        assert SramBanks().n_banks == DEFAULT_BANKS
