"""Tests for the end-to-end transformer pipeline model."""

import pytest

from repro.core.precision import PrecisionCombination
from repro.errors import HardwareError
from repro.hw.pipeline import (
    BlockSchedule,
    compare_end_to_end,
    estimate_inference,
    kv_cache_bytes,
    schedule_block,
)
from repro.llm.config import get_config

COMBO = PrecisionCombination(7, 7, 6, 5)
MODEL = "opt-1.3b"


class TestScheduleBlock:
    def test_contains_all_four_gemms(self):
        schedule = schedule_block(MODEL, "Anda", COMBO, 512)
        names = {stage.name for stage in schedule.stages}
        assert {"gemm:qkv", "gemm:o", "gemm:u", "gemm:d"} <= names

    def test_contains_attention_and_vector_stages(self):
        schedule = schedule_block(MODEL, "Anda", COMBO, 512)
        names = {stage.name for stage in schedule.stages}
        assert {"attn:scores", "attn:context", "attn:softmax"} <= names
        assert {"norm:attn", "norm:ffn", "residual", "ffn:activation"} <= names

    def test_llama_gets_rope_stage(self):
        schedule = schedule_block("llama-7b", "Anda", COMBO, 256)
        assert any(stage.name == "attn:rope" for stage in schedule.stages)

    def test_opt_has_no_rope(self):
        schedule = schedule_block(MODEL, "Anda", COMBO, 256)
        assert all(stage.name != "attn:rope" for stage in schedule.stages)

    def test_positive_costs_everywhere(self):
        schedule = schedule_block(MODEL, "FP-FP", None, 256)
        for stage in schedule.stages:
            assert stage.cycles > 0
            assert stage.energy_pj > 0

    def test_decode_point_shapes(self):
        decode = schedule_block(MODEL, "Anda", COMBO, 1, kv_length=2048)
        prefill = schedule_block(MODEL, "Anda", COMBO, 2048)
        assert decode.cycles < prefill.cycles

    def test_rejects_bad_lengths(self):
        with pytest.raises(HardwareError):
            schedule_block(MODEL, "Anda", COMBO, 0)
        with pytest.raises(HardwareError):
            schedule_block(MODEL, "Anda", COMBO, 128, kv_length=64)

    def test_stage_lookup(self):
        schedule = schedule_block(MODEL, "Anda", COMBO, 128)
        assert schedule.stage("gemm:qkv").unit == "mxu"
        with pytest.raises(HardwareError):
            schedule.stage("gemm:nonexistent")

    def test_share_partitions(self):
        schedule = schedule_block(MODEL, "Anda", COMBO, 512)
        gemm = schedule.share("gemm:")
        attn = schedule.share("attn:")
        rest = schedule.share("norm:") + schedule.share("residual") + schedule.share("ffn:")
        assert gemm + attn + rest == pytest.approx(1.0)
        assert gemm > 0.5  # FP-INT GeMMs dominate at 512 tokens (Fig. 2)


class TestAmdahl:
    def test_anda_wins_end_to_end_but_less_than_gemm_only(self):
        cmp = compare_end_to_end(MODEL, COMBO, sequence_length=2048)
        assert cmp.end_to_end_speedup > 1.0
        assert cmp.gemm_speedup >= cmp.end_to_end_speedup
        assert 0.0 < cmp.amdahl_gap <= 1.0

    def test_energy_ratio_positive(self):
        cmp = compare_end_to_end(MODEL, COMBO)
        assert cmp.end_to_end_energy_ratio > 1.0

    def test_attention_share_grows_with_context(self):
        # The same effect that caps Fig. 2's GeMM share.
        short = schedule_block(MODEL, "Anda", COMBO, 256)
        long = schedule_block(MODEL, "Anda", COMBO, 4096)
        assert long.share("attn:") > short.share("attn:")


class TestInferenceEstimate:
    def test_prefill_longer_than_decode_step(self):
        estimate = estimate_inference(MODEL, "Anda", COMBO, prefill_tokens=1024)
        assert estimate.prefill_latency_s > estimate.decode_latency_s
        assert estimate.decode_tokens_per_s > 0
        assert estimate.time_to_first_token_s == estimate.prefill_latency_s

    def test_anda_beats_fp_fp_prefill(self):
        anda = estimate_inference(MODEL, "Anda", COMBO, prefill_tokens=1024)
        fpfp = estimate_inference(MODEL, "FP-FP", None, prefill_tokens=1024)
        assert anda.prefill_latency_s < fpfp.prefill_latency_s
        assert anda.prefill_energy_j < fpfp.prefill_energy_j

    def test_bigger_model_slower(self):
        small = estimate_inference("opt-1.3b", "Anda", COMBO, prefill_tokens=512)
        large = estimate_inference("opt-13b", "Anda", COMBO, prefill_tokens=512)
        assert large.prefill_latency_s > small.prefill_latency_s
        assert large.decode_latency_s > small.decode_latency_s

    def test_energy_positive(self):
        estimate = estimate_inference(MODEL, "FIGNA", None, prefill_tokens=256)
        assert estimate.prefill_energy_j > 0
        assert estimate.decode_energy_j > 0


class TestKvCache:
    def test_linear_in_context(self):
        config = get_config(MODEL)
        assert kv_cache_bytes(config, 2048) == 2 * kv_cache_bytes(config, 1024)

    def test_fp16_default(self):
        config = get_config(MODEL)
        expected = 2 * config.n_layers * config.d_model * 128 * 2
        assert kv_cache_bytes(config, 128) == expected

    def test_compressed_cache_smaller(self):
        config = get_config(MODEL)
        anda_bits = 1 + 5 + 8 / 64  # M=5 Anda storage per element
        assert kv_cache_bytes(config, 512, anda_bits) < kv_cache_bytes(config, 512)

    def test_rejects_negative_context(self):
        with pytest.raises(HardwareError):
            kv_cache_bytes(get_config(MODEL), -1)


class TestKvCompression:
    def test_compressed_decode_cheaper(self):
        from repro.hw.pipeline import compare_kv_compression

        cmp = compare_kv_compression(MODEL, COMBO, context_length=4096, kv_mantissa=8)
        assert cmp.decode_speedup >= 1.0
        assert cmp.decode_energy_ratio > 1.0
        assert cmp.cache_compression == pytest.approx(16.0 / (1 + 8 + 8 / 64))

    def test_shorter_kv_mantissa_saves_more_energy(self):
        from repro.hw.pipeline import compare_kv_compression

        coarse = compare_kv_compression(MODEL, COMBO, 4096, kv_mantissa=4)
        fine = compare_kv_compression(MODEL, COMBO, 4096, kv_mantissa=11)
        assert coarse.decode_energy_ratio > fine.decode_energy_ratio
        assert coarse.cache_compression > fine.cache_compression

    def test_kv_bits_affects_attention_stage_only(self):
        full = schedule_block(MODEL, "Anda", COMBO, 1, kv_length=2048, kv_bits=16.0)
        lean = schedule_block(MODEL, "Anda", COMBO, 1, kv_length=2048, kv_bits=6.0)
        assert lean.stage("attn:scores").energy_pj < full.stage("attn:scores").energy_pj
        assert lean.stage("gemm:qkv").energy_pj == full.stage("gemm:qkv").energy_pj

    def test_rejects_bad_kv_parameters(self):
        from repro.hw.pipeline import compare_kv_compression

        with pytest.raises(HardwareError):
            schedule_block(MODEL, "Anda", COMBO, 1, kv_length=64, kv_bits=0)
        with pytest.raises(HardwareError):
            compare_kv_compression(MODEL, COMBO, kv_mantissa=0)


class TestBlockScheduleContainer:
    def test_latency_matches_cycles(self):
        schedule = schedule_block(MODEL, "Anda", COMBO, 128)
        assert schedule.latency_s == pytest.approx(schedule.cycles / 285e6)

    def test_empty_share(self):
        empty = BlockSchedule(MODEL, "Anda", 1, [])
        assert empty.share("gemm:") == 0.0
