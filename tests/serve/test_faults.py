"""Failure semantics: fault injection, quarantine, retry, deadlines.

The fault-tolerance acceptance bar, pinned deterministically (the
randomized sweep lives in ``test_chaos.py``):

* a :class:`FaultPlan` is validated declarative data, and a
  :class:`FaultInjector` evaluates it reproducibly — the same plan and
  seed fire at exactly the same probes;
* a permanent fault quarantines exactly its request: terminal FAILED
  status, ``finish_reason="error"``, a typed
  :class:`RequestFailedError` from ``result()`` carrying the original
  fault, batchmates bitwise-identical to a fault-free run;
* a transient fault retries with bounded backoff and the retried
  request's tokens stay bitwise identical (recompute-on-resume);
  exhausting the retry budget quarantines;
* deadlines are enforced at step boundaries and surface as
  :class:`DeadlineExceededError`;
* KV-pool pressure sheds or format-degrades new admissions without
  touching requests already in flight;
* every failure is accounted: engine counters, the Prometheus
  exposition, tracer lifecycle instants, and the drain stuck-message
  detail all agree.
"""

import numpy as np
import pytest

from repro.errors import (
    DeadlineExceededError,
    ModelError,
    RequestError,
    RequestFailedError,
)
from repro.llm.config import tiny_test_config
from repro.llm.kv_quant import KVFormat
from repro.llm.transformer import build_model
from repro.serve import (
    Engine,
    EngineConfig,
    FaultInjector,
    FaultPlan,
    FaultRule,
    PermanentFault,
    PressurePolicy,
    RequestStatus,
    RetryPolicy,
    SamplingParams,
    TransientFault,
)
from repro.serve.faults import SITES
from repro.serve.telemetry import TelemetryConfig, request_track


@pytest.fixture(scope="module")
def model():
    return build_model(tiny_test_config("opt", d_model=32, n_layers=2))


@pytest.fixture(scope="module")
def prompts(model):
    rng = np.random.default_rng(42)
    vocab = model.config.vocab_size
    return [rng.integers(0, vocab, size=n) for n in (5, 11, 3)]


PARAMS = SamplingParams(max_new_tokens=6)


def run_engine(model, prompts, config, params=PARAMS):
    engine = Engine(model, config)
    handles = [engine.submit(prompt, params) for prompt in prompts]
    engine.run_until_idle(max_steps=500)
    return engine, handles


@pytest.fixture(scope="module")
def baseline(model, prompts):
    _, handles = run_engine(model, prompts, EngineConfig())
    return [handle.result().tokens for handle in handles]


class TestPlanValidation:
    def test_rule_rejects_bad_fields(self):
        with pytest.raises(ModelError):
            FaultRule(site="")
        with pytest.raises(ModelError):
            FaultRule(site="model.decode", kind="flaky")
        with pytest.raises(ModelError):
            FaultRule(site="model.decode", step=-1)
        with pytest.raises(ModelError):
            FaultRule(site="model.decode", probability=1.5)
        with pytest.raises(ModelError):
            FaultRule(site="model.decode", max_fires=0)

    def test_plan_rejects_non_rules(self):
        with pytest.raises(ModelError):
            FaultPlan(rules=("not a rule",))

    def test_retry_policy_backoff_schedule(self):
        policy = RetryPolicy(max_retries=4, backoff_steps=2, max_backoff_steps=5)
        assert policy.delay_steps(0) == 0
        assert policy.delay_steps(1) == 2
        assert policy.delay_steps(2) == 4
        assert policy.delay_steps(3) == 5  # capped
        assert RetryPolicy(backoff_steps=0).delay_steps(3) == 0

    def test_pressure_policy_validation(self):
        with pytest.raises(ModelError):
            PressurePolicy(shed_below_free_fraction=-0.1)
        with pytest.raises(ModelError):
            PressurePolicy(degrade_below_free_fraction=0.5)  # no format
        assert not PressurePolicy().active
        assert PressurePolicy(shed_below_free_fraction=0.1).active

    def test_sampling_params_deadline_validation(self):
        with pytest.raises(RequestError):
            SamplingParams(max_new_tokens=2, deadline_s=0.0)
        with pytest.raises(RequestError):
            SamplingParams(max_new_tokens=2, deadline_s=-1.0)

    def test_engine_config_validates_fault_types(self):
        with pytest.raises(ModelError):
            EngineConfig(faults="plan")
        with pytest.raises(ModelError):
            EngineConfig(retry=None)
        with pytest.raises(ModelError):
            EngineConfig(pressure=42)


class TestInjectorDeterminism:
    def fire_pattern(self, plan, probes=100):
        injector = FaultInjector(plan)
        pattern = []
        for step in range(probes):
            injector.begin_step(step)
            try:
                injector.probe("model.decode", request_id=0)
                pattern.append(False)
            except (TransientFault, PermanentFault):
                pattern.append(True)
        return pattern

    def test_same_seed_same_fires(self):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site="model.decode", probability=0.5, max_fires=None
                ),
            ),
            seed=7,
        )
        assert self.fire_pattern(plan) == self.fire_pattern(plan)

    def test_different_seed_different_fires(self):
        rule = FaultRule(site="model.decode", probability=0.5, max_fires=None)
        a = self.fire_pattern(FaultPlan(rules=(rule,), seed=0))
        b = self.fire_pattern(FaultPlan(rules=(rule,), seed=1))
        assert a != b

    def test_max_fires_caps_and_counters_account(self):
        plan = FaultPlan(
            rules=(FaultRule(site="model.decode", max_fires=3),)
        )
        pattern = self.fire_pattern(plan)
        assert sum(pattern) == 3
        assert pattern[:3] == [True, True, True]

    def test_step_and_request_gating(self):
        plan = FaultPlan(
            rules=(FaultRule(site="model.decode", step=2, request_id=1),)
        )
        injector = FaultInjector(plan)
        injector.begin_step(2)
        injector.probe("model.decode", request_id=0)  # wrong request
        injector.probe("model.decode", request_id=None)  # unattributed
        injector.begin_step(1)
        injector.probe("model.decode", request_id=1)  # wrong step
        assert injector.fired_total == 0
        injector.begin_step(2)
        with pytest.raises(TransientFault):
            injector.probe("model.decode", request_id=1)
        assert injector.fired_total == 1
        assert injector.fired_by_site == {"model.decode": 1}

    def test_wildcard_site_matches_everything(self):
        plan = FaultPlan(rules=(FaultRule(site="*", max_fires=len(SITES)),))
        injector = FaultInjector(plan)
        for site in SITES:
            with pytest.raises(TransientFault):
                injector.probe(site)
        assert injector.fired_total == len(SITES)

    def test_fault_carries_site_and_attribution(self):
        plan = FaultPlan(
            rules=(FaultRule(site="codec.encode", kind="permanent"),)
        )
        injector = FaultInjector(plan)
        with pytest.raises(PermanentFault) as info:
            injector.probe("codec.encode", request_id=5)
        assert info.value.site == "codec.encode"
        assert info.value.request_id == 5
        assert info.value.rule_index == 0


class TestQuarantine:
    def test_permanent_fault_fails_only_its_request(
        self, model, prompts, baseline
    ):
        plan = FaultPlan(
            rules=(
                FaultRule(site="model.decode", kind="permanent", request_id=1),
            )
        )
        engine, handles = run_engine(
            model, prompts, EngineConfig(faults=plan)
        )
        assert handles[1].status() is RequestStatus.FAILED
        assert handles[1].failed
        assert isinstance(handles[1].failure(), PermanentFault)
        for index in (0, 2):
            np.testing.assert_array_equal(
                handles[index].result().tokens, baseline[index]
            )
        metrics = engine.metrics()
        assert metrics.failed == 1
        assert metrics.fault_retries == 0
        assert engine.fault_injector.fired_total == 1

    def test_result_raises_typed_error_with_original_fault(
        self, model, prompts
    ):
        plan = FaultPlan(
            rules=(
                FaultRule(site="model.decode", kind="permanent", request_id=0),
            )
        )
        _, handles = run_engine(model, prompts, EngineConfig(faults=plan))
        with pytest.raises(RequestFailedError) as info:
            handles[0].result()
        assert isinstance(info.value.fault, PermanentFault)
        assert info.value.__cause__ is info.value.fault
        assert "error" in str(info.value)

    def test_engine_serves_new_work_after_quarantine(
        self, model, prompts, baseline
    ):
        plan = FaultPlan(
            rules=(
                FaultRule(site="model.decode", kind="permanent", request_id=0),
            )
        )
        engine, handles = run_engine(
            model, prompts, EngineConfig(faults=plan)
        )
        assert handles[0].failed
        fresh = engine.submit(prompts[0], PARAMS)
        engine.run_until_idle(max_steps=500)
        np.testing.assert_array_equal(fresh.result().tokens, baseline[0])

    def test_paged_quarantine_leaks_no_blocks(self, model, prompts):
        plan = FaultPlan(
            rules=(
                FaultRule(site="paged.gather", kind="permanent", step=2),
            )
        )
        engine, handles = run_engine(
            model,
            prompts,
            EngineConfig(faults=plan, kv_pool=True, kv_pool_blocks=256),
        )
        assert any(handle.failed for handle in handles)
        assert engine._pool.leaked_blocks() == 0

    def test_abort_of_failed_request_is_noop(self, model, prompts):
        plan = FaultPlan(
            rules=(FaultRule(site="admission", kind="permanent", request_id=0),)
        )
        engine = Engine(model, EngineConfig(faults=plan))
        handle = engine.submit(prompts[0], PARAMS)
        assert handle.failed
        assert engine.abort(0) is False


class TestTransientRetry:
    @pytest.mark.parametrize(
        "overrides",
        [
            {},
            {"kv_pool": True, "kv_pool_blocks": 256},
            {"chunked_prefill": False},
        ],
        ids=["unpaged", "paged", "unchunked"],
    )
    def test_retried_request_stays_bitwise(
        self, model, prompts, baseline, overrides
    ):
        plan = FaultPlan(
            rules=(
                FaultRule(site="model.decode", kind="transient", request_id=1),
            )
        )
        engine, handles = run_engine(
            model,
            prompts,
            EngineConfig(faults=plan, retry=RetryPolicy(max_retries=2), **overrides),
        )
        for index in range(3):
            np.testing.assert_array_equal(
                handles[index].result().tokens, baseline[index]
            )
        metrics = engine.metrics()
        assert metrics.failed == 0
        assert metrics.fault_retries == 1
        assert engine.fault_injector.fired_total == 1
        if engine._pool is not None:
            assert engine._pool.leaked_blocks() == 0

    def test_exhausted_retries_quarantine(self, model, prompts):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site="model.decode",
                    kind="transient",
                    request_id=0,
                    max_fires=10,
                ),
            )
        )
        engine, handles = run_engine(
            model, prompts, EngineConfig(faults=plan, retry=RetryPolicy(max_retries=1))
        )
        assert handles[0].status() is RequestStatus.FAILED
        metrics = engine.metrics()
        assert metrics.fault_retries == 1
        assert metrics.failed == 1
        assert engine.fault_injector.fired_total == 2

    def test_admission_fault_transient_retries_to_completion(
        self, model, prompts, baseline
    ):
        plan = FaultPlan(
            rules=(FaultRule(site="admission", kind="transient", request_id=0),)
        )
        engine, handles = run_engine(
            model, prompts, EngineConfig(faults=plan)
        )
        np.testing.assert_array_equal(handles[0].result().tokens, baseline[0])
        assert engine.metrics().fault_retries == 1


class TestDeadlines:
    def test_expired_deadline_fails_with_typed_error(self, model, prompts):
        params = SamplingParams(max_new_tokens=6, deadline_s=1e-9)
        engine, handles = run_engine(model, prompts[:1], EngineConfig(), params)
        assert handles[0].status() is RequestStatus.FAILED
        with pytest.raises(RequestFailedError) as info:
            handles[0].result()
        assert isinstance(info.value.fault, DeadlineExceededError)
        metrics = engine.metrics()
        assert metrics.deadline_expired == 1
        assert metrics.failed == 1

    def test_generous_deadline_changes_nothing(self, model, prompts, baseline):
        params = SamplingParams(max_new_tokens=6, deadline_s=3600.0)
        _, handles = run_engine(model, prompts, EngineConfig(), params)
        for index in range(3):
            np.testing.assert_array_equal(
                handles[index].result().tokens, baseline[index]
            )


class TestPressure:
    def occupied_engine(self, model, prompts, pressure):
        engine = Engine(
            model,
            EngineConfig(kv_pool=True, kv_pool_blocks=16, pressure=pressure),
        )
        first = engine.submit(prompts[0], PARAMS)
        for _ in range(3):
            engine.step()
        return engine, first

    def test_degrade_downgrades_new_admissions_only(self, model, prompts):
        pressure = PressurePolicy(
            degrade_below_free_fraction=0.95,
            degraded_format=KVFormat.anda(4),
        )
        engine, first = self.occupied_engine(model, prompts, pressure)
        second = engine.submit(prompts[1], PARAMS)
        engine.run_until_idle(max_steps=500)
        metrics = engine.metrics()
        assert metrics.degraded == 1
        assert metrics.shed == 0
        assert first.result().tokens is not None
        assert second.result().tokens is not None
        assert engine._pool.leaked_blocks() == 0

    def test_explicit_format_is_never_degraded(self, model, prompts):
        pressure = PressurePolicy(
            degrade_below_free_fraction=0.95,
            degraded_format=KVFormat.anda(4),
        )
        engine, _ = self.occupied_engine(model, prompts, pressure)
        engine.submit(
            prompts[1],
            SamplingParams(max_new_tokens=6, kv_format=KVFormat.fp16()),
        )
        engine.run_until_idle(max_steps=500)
        assert engine.metrics().degraded == 0

    def test_shed_fails_fast_without_exception(self, model, prompts):
        pressure = PressurePolicy(shed_below_free_fraction=0.95)
        engine, first = self.occupied_engine(model, prompts, pressure)
        second = engine.submit(prompts[1], PARAMS)
        assert second.status() is RequestStatus.FAILED
        with pytest.raises(RequestFailedError) as info:
            second.result()
        assert "shed" in str(info.value)
        assert info.value.fault is None
        engine.run_until_idle(max_steps=500)
        assert engine.metrics().shed == 1
        assert first.result().tokens is not None
        assert engine._pool.leaked_blocks() == 0


class TestAccountingSurfaces:
    def test_drain_stuck_message_names_status_and_failure(
        self, model, prompts
    ):
        plan = FaultPlan(
            rules=(
                FaultRule(
                    site="model.decode",
                    kind="transient",
                    request_id=0,
                    max_fires=None,
                ),
            )
        )
        engine = Engine(
            model,
            EngineConfig(
                faults=plan, retry=RetryPolicy(max_retries=10_000, backoff_steps=0)
            ),
        )
        engine.submit(prompts[0], PARAMS)
        with pytest.raises(ModelError) as info:
            engine.drain(max_steps=8)
        message = str(info.value)
        assert "stuck request ids: 0" in message
        assert "waiting" in message
        assert "retries" in message
        assert "TransientFault" in message

    def test_prometheus_exposes_failure_counters(self, model, prompts):
        plan = FaultPlan(
            rules=(
                FaultRule(site="model.decode", kind="permanent", request_id=0),
            )
        )
        engine, _ = run_engine(
            model,
            prompts,
            EngineConfig(faults=plan, telemetry=TelemetryConfig(trace=True)),
        )
        text = engine.telemetry.prometheus()
        assert "repro_engine_failed_total" in text
        label = engine.telemetry.engine_label
        assert f'repro_engine_failed_total{{engine="{label}"}} 1.0' in text
        for name in (
            "repro_engine_fault_retries_total",
            "repro_engine_deadline_expired_total",
            "repro_engine_shed_requests_total",
            "repro_engine_degraded_requests_total",
        ):
            assert name in text

    def test_tracer_emits_failed_and_retry_instants(self, model, prompts):
        plan = FaultPlan(
            rules=(
                FaultRule(site="model.decode", kind="transient", request_id=0),
                FaultRule(site="model.decode", kind="permanent", request_id=1),
            )
        )
        engine, handles = run_engine(
            model,
            prompts,
            EngineConfig(faults=plan, telemetry=TelemetryConfig(trace=True)),
        )
        events = engine.telemetry.tracer.events
        retry = [event for event in events if event.name == "RETRY"]
        failed = [event for event in events if event.name == "FAILED"]
        assert len(retry) == 1
        assert retry[0].track == request_track(0)
        assert len(failed) == 1
        assert failed[0].track == request_track(1)
        assert failed[0].args["reason"] == "error"
        assert handles[0].status() is RequestStatus.FINISHED
        assert handles[1].status() is RequestStatus.FAILED

    def test_failed_request_never_produces_completed_result(
        self, model, prompts
    ):
        plan = FaultPlan(
            rules=(
                FaultRule(site="model.decode", kind="permanent", request_id=1),
            )
        )
        engine, _ = run_engine(model, prompts, EngineConfig(faults=plan))
        finished_ids = {done.request_id for done in engine.pop_finished()}
        assert finished_ids == {0, 2}
