"""KV-pool unit tests: allocator invariants, prefix trie, paged storage.

The allocator tests are property-style where cheap: random
alloc/incref/decref churn must preserve the free+used==total invariant
and refcount bookkeeping exactly.  The pool tests pin the storage
semantics the parity suite relies on — scatter/gather round-trips,
copy-on-write isolation, fragmentation tolerance — and the prefix
cache's LRU leaf-first eviction ordering under pool exhaustion.
"""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.llm.config import tiny_test_config
from repro.serve.kvpool import (
    BlockAllocator,
    KVPool,
    OutOfBlocksError,
    PrefixCache,
)


@pytest.fixture()
def config():
    return tiny_test_config("opt", d_model=32, n_layers=2)


def make_pool(config, num_blocks=16, block_size=4, prefix=True):
    return KVPool(
        config,
        num_blocks=num_blocks,
        block_size=block_size,
        enable_prefix_cache=prefix,
    )


class TestBlockAllocator:
    def test_alloc_free_roundtrip(self):
        allocator = BlockAllocator(4)
        blocks = [allocator.allocate() for _ in range(4)]
        assert sorted(blocks) == [0, 1, 2, 3]
        assert allocator.free_blocks == 0
        with pytest.raises(OutOfBlocksError):
            allocator.allocate()
        for block in blocks:
            assert allocator.decref(block) is True
        assert allocator.free_blocks == 4

    def test_refcount_defers_free(self):
        allocator = BlockAllocator(2)
        block = allocator.allocate()
        allocator.incref(block)
        assert allocator.refcount(block) == 2
        assert allocator.is_shared(block)
        assert allocator.decref(block) is False
        assert allocator.free_blocks == 1
        assert allocator.decref(block) is True
        assert allocator.free_blocks == 2

    def test_unheld_operations_rejected(self):
        allocator = BlockAllocator(2)
        with pytest.raises(ModelError):
            allocator.incref(0)  # never allocated
        block = allocator.allocate()
        allocator.decref(block)
        with pytest.raises(ModelError):
            allocator.decref(block)  # double free
        with pytest.raises(ModelError):
            allocator.refcount(99)  # out of range

    def test_lifo_reuse_keeps_working_set_compact(self):
        allocator = BlockAllocator(8)
        first = allocator.allocate()
        allocator.decref(first)
        assert allocator.allocate() == first

    def test_property_random_churn_preserves_invariants(self):
        rng = np.random.default_rng(7)
        allocator = BlockAllocator(12)
        refcounts: dict[int, int] = {}
        for _ in range(2000):
            op = rng.integers(0, 3)
            if op == 0 and allocator.free_blocks:
                block = allocator.allocate()
                assert block not in refcounts
                refcounts[block] = 1
            elif op == 1 and refcounts:
                block = int(rng.choice(list(refcounts)))
                allocator.incref(block)
                refcounts[block] += 1
            elif op == 2 and refcounts:
                block = int(rng.choice(list(refcounts)))
                freed = allocator.decref(block)
                refcounts[block] -= 1
                assert freed == (refcounts[block] == 0)
                if refcounts[block] == 0:
                    del refcounts[block]
            assert allocator.free_blocks + allocator.used_blocks == 12
            assert allocator.used_blocks == len(refcounts)
            for block, count in refcounts.items():
                assert allocator.refcount(block) == count


class TestSequenceStorage:
    def rows(self, seq, layer, n, seed=0):
        rng = np.random.default_rng(seed)
        shape = (1, 2, n, 32 // 2)  # (batch, heads, tokens, head_dim)
        return (
            rng.standard_normal(shape).astype(np.float16),
            rng.standard_normal(shape).astype(np.float16),
        )

    def test_scatter_gather_roundtrip(self, config):
        pool = make_pool(config)
        seq = pool.create_sequence(np.arange(5))
        k16, v16 = self.rows(seq, 0, 11)
        seq.write(0, 0, k16, v16)
        keys, values = seq.gather(0, 11)
        np.testing.assert_array_equal(keys[0], k16[0].astype(np.float32))
        np.testing.assert_array_equal(values[0], v16[0].astype(np.float32))
        assert len(seq.block_table) == 3  # ceil(11 / 4)

    def test_incremental_writes_match_bulk_write(self, config):
        pool = make_pool(config)
        bulk = pool.create_sequence(np.arange(3))
        incremental = pool.create_sequence(np.arange(3))
        k16, v16 = self.rows(bulk, 0, 9, seed=3)
        bulk.write(0, 0, k16, v16)
        for position in range(9):
            incremental.write(
                0,
                position,
                k16[:, :, position : position + 1],
                v16[:, :, position : position + 1],
            )
        np.testing.assert_array_equal(bulk.gather(0, 9)[0], incremental.gather(0, 9)[0])

    def test_fragmented_block_table_still_gathers_in_order(self, config):
        # Allocate interleaved sequences, free one, then grow another:
        # its table becomes non-contiguous physical ids but the gather
        # must still return positions in logical order.
        pool = make_pool(config, num_blocks=6, prefix=False)
        seq_a = pool.create_sequence(np.arange(2))
        seq_b = pool.create_sequence(np.arange(2))
        ka, va = self.rows(seq_a, 0, 4, seed=1)
        kb, vb = self.rows(seq_b, 0, 4, seed=2)
        seq_a.write(0, 0, ka, va)
        seq_b.write(0, 0, kb, vb)
        seq_b.release()  # hole in the middle of the pool
        k2, v2 = self.rows(seq_a, 0, 8, seed=4)
        seq_a.write(0, 4, k2[:, :, 4:], v2[:, :, 4:])
        expected = np.concatenate([ka, k2[:, :, 4:]], axis=2)
        np.testing.assert_array_equal(
            seq_a.gather(0, 8)[0][0], expected[0].astype(np.float32)
        )

    def test_copy_on_write_isolates_sharer_from_donor(self, config):
        pool = make_pool(config, prefix=False)
        donor = pool.create_sequence(np.arange(4))
        k16, v16 = self.rows(donor, 0, 4, seed=5)
        donor.write(0, 0, k16, v16)
        # Fork: sharer maps the donor's block (refcount 2) and then
        # overwrites its last row.
        shared_block = donor.block_table[0]
        pool.allocator.incref(shared_block)
        sharer = pool.create_sequence(np.arange(4))
        sharer.block_table.append(shared_block)
        sharer.shared_tokens = 3
        sharer.caches[0]._length = 3
        forks_before = pool.cow_forks
        k_new, v_new = self.rows(sharer, 0, 1, seed=6)
        sharer.write(0, 3, k_new, v_new)
        assert pool.cow_forks == forks_before + 1
        assert sharer.block_table[0] != shared_block
        # Donor sees its original rows; sharer sees the copied prefix
        # plus its own row.
        np.testing.assert_array_equal(
            donor.gather(0, 4)[0][0], k16[0].astype(np.float32)
        )
        np.testing.assert_array_equal(
            sharer.gather(0, 4)[0][0][:, 3], k_new[0][:, 0].astype(np.float32)
        )
        np.testing.assert_array_equal(
            sharer.gather(0, 4)[0][0][:, :3], k16[0][:, :3].astype(np.float32)
        )

    def test_release_is_idempotent(self, config):
        pool = make_pool(config, prefix=False)
        seq = pool.create_sequence(np.arange(2))
        k16, v16 = self.rows(seq, 0, 2, seed=8)
        seq.write(0, 0, k16, v16)
        free_before = pool.free_blocks
        seq.release()
        seq.release()
        assert pool.free_blocks == free_before + 1


class TestPrefixCache:
    def test_insert_then_match_shares_full_blocks(self, config):
        pool = make_pool(config, block_size=4)
        prompt = np.arange(10)  # 2 full blocks + 2 tail tokens
        seq = pool.create_sequence(prompt)
        assert seq.shared_tokens == 0
        seq.block_table.extend(pool.take_block() for _ in range(3))
        pool.register_prefix(seq, prompt)
        hit = pool.peek_shared(prompt)
        assert hit == 8
        other = pool.create_sequence(prompt)
        assert other.shared_tokens == 8
        assert other.block_table == seq.block_table[:2]
        assert pool.allocator.refcount(seq.block_table[0]) == 3  # seq+cache+other

    def test_fresh_request_never_matches_whole_prompt(self, config):
        # The final prompt position must be recomputed for logits, so
        # a block-aligned full match is capped one token short.
        pool = make_pool(config, block_size=4)
        prompt = np.arange(8)
        seq = pool.create_sequence(prompt)
        seq.block_table.extend(pool.take_block() for _ in range(2))
        pool.register_prefix(seq, prompt)
        fresh = pool.create_sequence(prompt, reserve_logits=True)
        assert fresh.shared_tokens == 7
        assert len(fresh.block_table) == 2  # partial share of block 2
        resumed = pool.create_sequence(prompt, reserve_logits=False)
        assert resumed.shared_tokens == 8

    def test_first_writer_wins_on_duplicate_insert(self, config):
        pool = make_pool(config, block_size=4)
        prompt = np.arange(4)
        first = pool.create_sequence(prompt)
        first.block_table.append(pool.take_block())
        pool.register_prefix(first, prompt)
        second = pool.create_sequence(np.arange(4), reserve_logits=False)
        # second shares first's block rather than registering a new one
        assert second.block_table == first.block_table

    def test_eviction_is_lru_and_leaf_first(self, config):
        allocator = BlockAllocator(8)
        cache = PrefixCache(allocator, block_size=2)
        # Chain A: two blocks (parent + child); chain B: one block.
        a0, a1, b0 = (allocator.allocate() for _ in range(3))
        cache.insert(np.arange(4), [a0, a1], clock=1)
        cache.insert(np.arange(10, 12), [b0], clock=2)
        for block in (a0, a1, b0):
            allocator.decref(block)  # cache holds the only reference
        assert cache.reclaimable_blocks() == 3
        # LRU leaf is a1 (clock 1) even though b0's chain is older by
        # insertion; a0 is a parent and must not go before a1.
        assert cache.evict_lru() == a1
        assert cache.evict_lru() == a0
        assert cache.evict_lru() == b0
        assert cache.evict_lru() is None
        assert cache.evicted_blocks == 3

    def test_shared_blocks_are_not_reclaimable(self, config):
        allocator = BlockAllocator(4)
        cache = PrefixCache(allocator, block_size=2)
        block = allocator.allocate()
        cache.insert(np.arange(2), [block], clock=1)
        assert allocator.refcount(block) == 2  # writer + cache
        assert cache.reclaimable_blocks() == 0
        assert cache.evict_lru() is None
        allocator.decref(block)  # writer finishes
        assert cache.reclaimable_blocks() == 1

    def test_pool_exhaustion_reclaims_lru_before_failing(self, config):
        pool = make_pool(config, num_blocks=4, block_size=4)
        prompt = np.arange(4)
        seq = pool.create_sequence(prompt)
        seq.block_table.append(pool.take_block())
        pool.register_prefix(seq, prompt)
        seq.release()  # cache-only now: reclaimable
        assert pool.reclaimable_blocks == 1
        taken = [pool.take_block() for _ in range(4)]  # forces the eviction
        assert pool.evicted_blocks == 1
        assert len(taken) == 4
        with pytest.raises(OutOfBlocksError):
            pool.take_block()


class TestPlanning:
    def test_prefill_block_cost_counts_pinned_reclaimables(self, config):
        pool = make_pool(config, block_size=4)
        prompt = np.arange(8)
        seq = pool.create_sequence(prompt)
        seq.block_table.extend(pool.take_block() for _ in range(2))
        pool.register_prefix(seq, prompt)
        while_held = pool.prefill_block_cost(prompt, 8, reserve_logits=True)
        seq.release()
        after_release = pool.prefill_block_cost(prompt, 8, reserve_logits=True)
        # Shared blocks: 2 (7-token capped match). While the writer
        # holds them they cost nothing extra; once cache-only they are
        # pinned out of the reclaimable budget on admission.  Both
        # cases add one fresh block for the CoW fork of the partial
        # tail.
        assert while_held == 1
        assert after_release == 3

    def test_blocks_for_append_counts_growth_and_fork(self, config):
        pool = make_pool(config, prefix=False)
        seq = pool.create_sequence(np.arange(2))
        rng = np.random.default_rng(0)
        k16 = rng.standard_normal((1, 2, 4, 16)).astype(np.float16)
        seq.write(0, 0, k16, k16)
        seq.caches[0]._length = 4
        assert seq.blocks_for_append(1) == 1  # at capacity: new block
        pool.allocator.incref(seq.block_table[0])
        seq.caches[0]._length = 3
        assert seq.blocks_for_append(1) == 1  # shared tail: CoW fork
        assert seq.blocks_for_append(2) == 2  # fork + growth


class TestLeakAccounting:
    def test_fresh_pool_reports_no_leaks(self, config):
        assert make_pool(config).leaked_blocks() == 0

    def test_released_sequence_blocks_are_not_leaks(self, config):
        pool = make_pool(config, block_size=4)
        prompt = np.arange(8)
        seq = pool.create_sequence(prompt)
        seq.block_table.extend(pool.take_block() for _ in range(2))
        pool.register_prefix(seq, prompt)
        # Held by a live sequence *and* the cache: the sequence's share
        # counts as a (transient) leak-check miss only until release.
        seq.release()
        assert pool.leaked_blocks() == 0
        assert pool.reclaimable_blocks == len(pool.prefix_cache)

    def test_unreleased_sequence_counts_as_leak(self, config):
        pool = make_pool(config, prefix=False)
        seq = pool.create_sequence(np.arange(2))
        seq.block_table.append(pool.take_block())
        assert pool.leaked_blocks() == 1  # still held: not yet released
        seq.release()
        assert pool.leaked_blocks() == 0

    def test_cache_resident_stuck_above_refcount_one_is_a_leak(self, config):
        # A release path that forgets a decref leaves a cache node at
        # refcount > 1: never evictable, so it must count as leaked
        # even though the cache still names it.
        pool = make_pool(config, block_size=4)
        prompt = np.arange(8)
        seq = pool.create_sequence(prompt)
        seq.block_table.extend(pool.take_block() for _ in range(2))
        pool.register_prefix(seq, prompt)
        pool.allocator.incref(seq.block_table[0])  # the forgotten ref
        seq.release()
        assert pool.leaked_blocks() == 1
