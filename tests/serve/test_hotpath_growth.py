"""Growth property tests for the zero-copy decode hot path.

The optimized KV storage (preallocated capacity-doubling buffers +
incremental dequant views, and the paged vectorized gather into
persistent scratch) must be **bitwise** indistinguishable from the
pre-optimization reference (per-append concatenate + full re-astype,
kept alive as ``ReferenceKVCache`` / ``SequenceKV.gather_reference``).
These tests pin that across the edges where the optimized storage does
something structurally different:

* capacity-doubling boundaries (buffer growth copies),
* block boundaries and fragmented block tables (paged gather),
* copy-on-write forks under prefix sharing (scratch must stay valid),
* release + replay (the preempt/resume path rebuilds from scratch),

for both KV modes (fp16, anda) and both storages (unpaged, paged).
Comparisons use ``tobytes()`` — bit equality, not ``==`` (which would
let ``-0.0`` / ``+0.0`` slip through).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.llm.attention import (
    KVCache,
    ReferenceKVCache,
    causal_mask,
    history_mask,
)
from repro.llm.config import tiny_test_config
from repro.llm.kv_quant import AndaKVCache, make_kv_codec
from repro.llm.transformer import build_model
from repro.serve import Engine, EngineConfig
from repro.serve.kvpool.paged import SequenceKV
from repro.serve.kvpool.pool import KVPool

#: Chunk sizes crossing the initial capacity (16) and two doublings.
chunk_lists = st.lists(st.integers(min_value=1, max_value=9), min_size=1, max_size=14)

KV_MODES = ["fp16", "anda"]
HEADS, HEAD_DIM = 2, 16


def bitwise_equal(left: np.ndarray, right: np.ndarray) -> bool:
    return left.shape == right.shape and left.tobytes() == right.tobytes()


def make_unpaged(mode: str) -> KVCache:
    return KVCache() if mode == "fp16" else AndaKVCache(mantissa_bits=8)


def make_reference(mode: str) -> ReferenceKVCache:
    codec = None if mode == "fp16" else AndaKVCache(mantissa_bits=8)
    return ReferenceKVCache(codec=codec)


def random_kv(rng: np.random.Generator, length: int) -> np.ndarray:
    return rng.normal(size=(1, HEADS, length, HEAD_DIM)).astype(np.float32)


class TestUnpagedGrowthParity:
    @pytest.mark.parametrize("mode", KV_MODES)
    @given(lengths=chunk_lists, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_view_matches_reference_after_every_append(self, mode, lengths, seed):
        rng = np.random.default_rng(seed)
        optimized, reference = make_unpaged(mode), make_reference(mode)
        for length in lengths:
            k, v = random_kv(rng, length), random_kv(rng, length)
            opt_k, opt_v = optimized.append(k, v)
            ref_k, ref_v = reference.append(k, v)
            assert bitwise_equal(opt_k, ref_k)
            assert bitwise_equal(opt_v, ref_v)
            assert optimized.length == reference.length
            # The stored float16 bytes are the parity bedrock.
            assert bitwise_equal(optimized.keys, reference.keys)
            assert bitwise_equal(optimized.values, reference.values)

    @pytest.mark.parametrize("mode", KV_MODES)
    def test_view_is_memoized_and_stable_across_calls(self, mode):
        rng = np.random.default_rng(3)
        cache = make_unpaged(mode)
        cache.append(random_kv(rng, 5), random_kv(rng, 5))
        first_k, first_v = cache.view()
        again_k, again_v = cache.view()
        assert again_k is not None and bitwise_equal(first_k, again_k)
        assert bitwise_equal(first_v, again_v)


class TestPagedGrowthParity:
    def make_pool(self, mode: str, prefix: bool = False) -> KVPool:
        config = tiny_test_config(d_model=HEADS * HEAD_DIM, n_layers=2)
        return KVPool(
            config,
            num_blocks=96,
            block_size=4,
            codec=make_kv_codec(mode, 8),
            enable_prefix_cache=prefix,
        )

    @pytest.mark.parametrize("mode", KV_MODES)
    @given(lengths=chunk_lists, seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_gather_matches_reference_and_unpaged(self, mode, lengths, seed):
        rng = np.random.default_rng(seed)
        pool = self.make_pool(mode)
        sequence = pool.create_sequence(np.array([1, 2, 3]))
        reference = make_reference(mode)
        for length in lengths:
            k, v = random_kv(rng, length), random_kv(rng, length)
            for layer in range(pool.n_layers):
                paged_k, paged_v = sequence.caches[layer].append(k, v)
                if layer == 0:
                    ref_k, ref_v = reference.append(k, v)
                assert bitwise_equal(paged_k, ref_k)
                assert bitwise_equal(paged_v, ref_v)
            total = sequence.length
            old_k, old_v = sequence.gather_reference(0, total)
            new_k, new_v = sequence.gather(0, total)
            assert bitwise_equal(new_k, old_k)
            assert bitwise_equal(new_v, old_v)

    @pytest.mark.parametrize("mode", KV_MODES)
    def test_cow_fork_keeps_warm_scratch_valid(self, mode):
        """A sharer that gathered before forking must re-read nothing stale.

        The fork is set up the way the kvpool suite does (a mid-block
        manual share): the sharer's first private write lands *inside*
        a block another sequence still references, forcing the
        copy-on-write fork while the sharer's gather scratch is
        already warm over that block.
        """
        rng = np.random.default_rng(7)
        pool = self.make_pool(mode)
        donor = pool.create_sequence(np.array([1]))
        for layer in range(pool.n_layers):
            donor.caches[layer].append(random_kv(rng, 4), random_kv(rng, 4))
        donor_before = donor.gather(0, 4)[0].tobytes()

        shared_block = donor.block_table[0]
        pool.allocator.incref(shared_block)
        sharer = SequenceKV(pool, [shared_block], shared_tokens=2)
        # Warm the sharer's gather scratch over the shared block...
        warm_k, _ = sharer.gather(0, 2)
        assert bitwise_equal(warm_k, sharer.gather_reference(0, 2)[0])
        # ...then append: position 2 lands mid-way into the shared
        # block, so the write forks it (donor keeps the original).
        forks_before = pool.cow_forks
        for layer in range(pool.n_layers):
            sharer.caches[layer].append(random_kv(rng, 5), random_kv(rng, 5))
        assert pool.cow_forks > forks_before
        assert sharer.block_table[0] != shared_block
        for layer in range(pool.n_layers):
            length = sharer.caches[layer].length
            new_k, new_v = sharer.gather(layer, length)
            old_k, old_v = sharer.gather_reference(layer, length)
            assert bitwise_equal(new_k, old_k)
            assert bitwise_equal(new_v, old_v)
        # The donor's stored bytes are untouched by the fork.
        assert donor.gather(0, 4)[0].tobytes() == donor_before
        assert donor.gather_reference(0, 4)[0].tobytes() == donor_before

    @pytest.mark.parametrize("mode", KV_MODES)
    def test_release_and_replay_rebuilds_bitwise(self, mode):
        """The preempt/resume path: a replayed sequence gathers identically."""
        rng = np.random.default_rng(11)
        pool = self.make_pool(mode)
        appends = [
            (random_kv(rng, length), random_kv(rng, length))
            for length in (5, 1, 1, 7, 1, 3)
        ]

        def run() -> tuple[bytes, bytes]:
            sequence = pool.create_sequence(np.array([1]))
            for k, v in appends:
                for layer in range(pool.n_layers):
                    sequence.caches[layer].append(k, v)
            keys, values = sequence.gather(0, sequence.length)
            snapshot = (keys.tobytes(), values.tobytes())
            sequence.release()
            return snapshot

        assert run() == run()


class TestMaskMemo:
    def test_prefill_mask_matches_causal_mask(self):
        mask = history_mask(0, 6)
        assert mask is not None
        assert bitwise_equal(mask, causal_mask(6))
        assert history_mask(0, 6) is mask  # memoized

    def test_decode_mask_is_elided(self):
        # A single new token attends to its entire history: the
        # additive mask is all zeros, and adding zeros is a bitwise
        # no-op through the softmax, so the hot path skips it.
        assert history_mask(41, 1) is None

    def test_mid_sequence_chunk_mask_values(self):
        start, new_len = 3, 4
        mask = history_mask(start, new_len)
        total = start + new_len
        positions = np.arange(start, total)[:, None]
        history = np.arange(total)[None, :]
        expected = np.where(history > positions, -1e9, 0.0).astype(np.float32)
        assert bitwise_equal(mask, expected)


class TestBatchedLogitsBitwise:
    """Logits-level parity: stricter than the token-level suites.

    Token parity can mask sub-ULP drift (argmax/sampling rarely flip on
    a 1e-6 logit change); comparing raw logits bytes catches it.  This
    pinned a real bug during this refactor: the reused context scratch
    was float32 while the attention core's score pipeline runs in
    float64 (the float64 ``scale`` scalar promotes it), silently
    rounding batched-decode contexts before the output projection.
    """

    @pytest.mark.parametrize("family", ["opt", "llama"])
    @pytest.mark.parametrize("mode", KV_MODES)
    def test_decode_batch_logits_bitwise_equal_sequential(self, family, mode):
        model = build_model(tiny_test_config(family=family, seed=17))
        factory = (
            model.new_cache
            if mode == "fp16"
            else (lambda: [AndaKVCache(8) for _ in model.blocks])
        )
        rng = np.random.default_rng(5)
        prompt = rng.integers(0, 255, size=(1, 11))
        seq_caches, bat_caches = factory(), factory()
        prefill_a = model.forward_step(prompt, seq_caches)
        prefill_b = model.forward_step(prompt, bat_caches)
        assert bitwise_equal(prefill_a, prefill_b)
        token = np.array([[7]])
        for _ in range(6):
            sequential = model.forward_step(token, seq_caches)
            batched = model.forward_decode_batch(token, [bat_caches])
            assert bitwise_equal(sequential[0, -1], batched[0, -1])
            token = np.array([[int(np.argmax(sequential[0, -1]))]])

    @pytest.mark.parametrize("mode", KV_MODES)
    def test_mixed_chunk_logits_bitwise_equal_monolithic(self, mode):
        model = build_model(tiny_test_config(family="llama", seed=19))
        factory = (
            model.new_cache
            if mode == "fp16"
            else (lambda: [AndaKVCache(8) for _ in model.blocks])
        )
        rng = np.random.default_rng(9)
        prompt = rng.integers(0, 255, size=13)
        mono = model.forward_step(prompt.reshape(1, -1), factory())
        chunk_caches = factory()
        chunk_logits, _ = model.forward_mixed_step(
            [prompt[:8]], [chunk_caches], decode_tokens=None, decode_caches=None
        )
        tail_logits, _ = model.forward_mixed_step(
            [prompt[8:]], [chunk_caches], decode_tokens=None, decode_caches=None
        )
        assert bitwise_equal(chunk_logits[0], mono[0, :8])
        assert bitwise_equal(tail_logits[0], mono[0, 8:])


class TestEngineHotPathCounters:
    @pytest.mark.parametrize("kv_pool", [False, True])
    def test_decode_dequant_bytes_amortize_flat(self, kv_pool):
        """Steady-state decode converts O(new tokens), not O(history)."""
        model = build_model(tiny_test_config(seed=13))
        config = EngineConfig(
            chunked_prefill=False,
            kv_pool=kv_pool,
            kv_pool_blocks=64,
            kv_block_size=8,
            prefix_caching=False,
        )
        engine = Engine(model, config)
        engine.submit(np.array([5, 6, 7, 8, 9]), max_new_tokens=30)
        engine.drain(max_steps=64)
        decode_steps = [
            report
            for report in engine._reports
            if report.decodes == 1 and report.prefills == 0
        ]
        assert len(decode_steps) >= 20
        dequant = {report.kv_dequant_bytes for report in decode_steps}
        # Incremental views dequantize exactly the appended tail every
        # step, so the per-step byte count is one constant.
        assert len(dequant) == 1
        assert dequant.pop() > 0
        # Capacity crossings (5 prompt + 30 tokens passes 16 and 32)
        # show up as growth copies on a few steps, not every step.
        growth_steps = [r for r in decode_steps if r.kv_copy_bytes > 0]
        assert growth_steps
        assert len(growth_steps) < len(decode_steps) / 2
        metrics = engine.metrics()
        assert metrics.kv_dequant_bytes == sum(
            report.kv_dequant_bytes for report in engine._reports
        )
        assert metrics.kv_copy_bytes == sum(
            report.kv_copy_bytes for report in engine._reports
        )
