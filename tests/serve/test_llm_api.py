"""The redesigned serving front end: LLM / SamplingParams / RequestHandle.

The acceptance bar for the API redesign:

* ``LLM.generate`` is token-bitwise identical to the pre-redesign
  ``submit``/``drain`` engine path across {fp16, anda} x {paged,
  unpaged} x {chunked, unchunked};
* ``abort()`` leaks nothing in any of those modes — allocator free
  counts are restored (modulo deliberately resident prefix-cache
  blocks, each reclaimable), including aborts mid-chunked-prefill and
  aborts of prefix-sharing requests under pool pressure;
* the ``serve_batch`` shim warns and returns identical outputs;
* invalid requests are rejected at submission with ``errors``-module
  exceptions, never deep in the scheduler;
* handles stream tokens incrementally (per-step deltas), report
  status, and block for results.
"""

import warnings

import numpy as np
import pytest

from repro.errors import ModelError, RequestAbortedError, RequestError
from repro.llm.config import tiny_test_config
from repro.llm.generation import generate, generate_text
from repro.llm.kv_quant import make_cache_factory
from repro.llm.transformer import build_model
from repro.serve import (
    LLM,
    Engine,
    EngineConfig,
    RequestStatus,
    SamplingParams,
    serve_batch,
)


@pytest.fixture(scope="module")
def model():
    return build_model(tiny_test_config("opt", d_model=32, n_layers=2))


@pytest.fixture(scope="module")
def prompts():
    rng = np.random.default_rng(21)
    return [rng.integers(0, 256, size=length) for length in (5, 19, 3, 11)]


def mode_config(kv_mode, paged, chunked, **overrides):
    """One cell of the {fp16,anda} x {paged,unpaged} x {chunked,unchunked} grid."""
    settings = dict(
        kv_mode=kv_mode,
        kv_mantissa_bits=6,
        chunked_prefill=chunked,
        max_batch_tokens=16 if chunked else 64,
        max_batch_size=4,
    )
    if paged:
        settings.update(kv_pool=True, kv_pool_blocks=32, kv_block_size=4)
    settings.update(overrides)
    return EngineConfig(**settings)


ALL_MODES = [
    pytest.param(
        kv_mode,
        paged,
        chunked,
        id=(
            f"{kv_mode}-{'paged' if paged else 'unpaged'}"
            f"-{'chunked' if chunked else 'unchunked'}"
        ),
    )
    for kv_mode in ("fp16", "anda")
    for paged in (False, True)
    for chunked in (False, True)
]


def old_path(model, prompts, max_new_tokens, config):
    """The pre-redesign lifecycle: bare submit + drain, results by id."""
    engine = Engine(model, config)
    ids = [engine.submit(prompt, max_new_tokens).request_id for prompt in prompts]
    done = {result.request_id: result for result in engine.drain(max_steps=500)}
    return [done[request_id] for request_id in ids]


def assert_no_leaks(engine):
    """Every pool block is free or a reclaimable prefix-cache resident."""
    pool = engine._pool
    assert pool is not None
    assert pool.leaked_blocks() == 0
    cached = 0 if pool.prefix_cache is None else len(pool.prefix_cache)
    assert pool.free_blocks + cached == pool.num_blocks
    if pool.prefix_cache is not None:
        # Resident cache blocks are all refcount-1, i.e. evictable.
        assert pool.prefix_cache.reclaimable_blocks() == cached


class TestNewApiParity:
    """LLM.generate vs the pre-redesign engine path, all eight modes."""

    @pytest.mark.parametrize("kv_mode,paged,chunked", ALL_MODES)
    def test_generate_matches_old_path(self, model, prompts, kv_mode, paged, chunked):
        config = mode_config(kv_mode, paged, chunked)
        new = LLM(model, config).generate(prompts, SamplingParams(max_new_tokens=6))
        old = old_path(model, prompts, 6, config)
        for new_result, old_result in zip(new, old):
            np.testing.assert_array_equal(new_result.tokens, old_result.tokens)

    @pytest.mark.parametrize("kv_mode,paged,chunked", ALL_MODES)
    def test_stream_deltas_match_old_path(
        self, model, prompts, kv_mode, paged, chunked
    ):
        config = mode_config(kv_mode, paged, chunked)
        streamed = {}
        llm = LLM(model, config)
        for delta in llm.stream(prompts, SamplingParams(max_new_tokens=6)):
            streamed.setdefault(delta.request_id, []).append(delta.token)
        old = old_path(model, prompts, 6, config)
        for request_id, old_result in zip(sorted(streamed), old):
            np.testing.assert_array_equal(
                np.asarray(streamed[request_id]), old_result.continuation()
            )

    def test_per_request_params_match_sequential(self, model, prompts):
        recipes = [
            SamplingParams(max_new_tokens=4),
            SamplingParams(max_new_tokens=7, temperature=1.0, top_k=30, seed=5),
            SamplingParams(max_new_tokens=3, temperature=0.7, top_k=10, seed=9),
            SamplingParams(max_new_tokens=6),
        ]
        results = LLM(model).generate(prompts, recipes)
        for prompt, params, result in zip(prompts, recipes, results):
            expected = generate(model, prompt, params=params)
            np.testing.assert_array_equal(result.tokens, expected.tokens)

    def test_single_prompt_returns_single_result(self, model, prompts):
        result = LLM(model).generate(prompts[0], SamplingParams(max_new_tokens=4))
        expected = generate(model, prompts[0], 4)
        np.testing.assert_array_equal(result.tokens, expected.tokens)

    def test_2d_ndarray_is_a_batch_of_row_prompts(self, model):
        # serve_batch iterated a 2-D array row-wise; the facade must
        # not flatten it into one concatenated request.
        rows = np.arange(8, dtype=np.int64).reshape(2, 4) % 256
        results = LLM(model).generate(rows, SamplingParams(max_new_tokens=3))
        assert isinstance(results, list) and len(results) == 2
        for row, result in zip(rows, results):
            expected = generate(model, row, 3)
            np.testing.assert_array_equal(result.tokens, expected.tokens)

    def test_params_count_mismatch_rejected(self, model, prompts):
        with pytest.raises(RequestError):
            LLM(model).generate(prompts, [SamplingParams()] * (len(prompts) - 1))


class TestServeBatchShim:
    def test_warns_and_matches_llm_generate(self, model, prompts):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = serve_batch(model, prompts, max_new_tokens=5)
        assert any(
            issubclass(warning.category, DeprecationWarning) for warning in caught
        )
        modern = LLM(model).generate(prompts, SamplingParams(max_new_tokens=5))
        assert len(legacy) == len(modern)
        for legacy_result, modern_result in zip(legacy, modern):
            np.testing.assert_array_equal(
                legacy_result.tokens, modern_result.tokens
            )


class TestSubmitValidation:
    def test_empty_prompt_rejected_with_request_error(self, model):
        engine = Engine(model)
        with pytest.raises(RequestError):
            engine.submit(np.array([], dtype=np.int64), 4)
        assert not engine.has_work()

    def test_nonpositive_max_new_tokens_rejected(self, model):
        engine = Engine(model)
        for bad in (0, -3):
            with pytest.raises(RequestError):
                engine.submit(np.array([1, 2]), bad)
        with pytest.raises(RequestError):
            SamplingParams(max_new_tokens=0)
        assert not engine.has_work()

    def test_request_error_is_a_model_error(self):
        # Pre-redesign callers catch ModelError; the new exception must
        # stay inside that contract.
        assert issubclass(RequestError, ModelError)

    def test_sampling_params_validated_at_construction(self):
        with pytest.raises(RequestError):
            SamplingParams(temperature=-0.5)
        with pytest.raises(RequestError):
            SamplingParams(temperature=1.0, top_k=0)
        with pytest.raises(RequestError):
            SamplingParams(top_p=0.0)
        with pytest.raises(RequestError):
            SamplingParams(top_p=1.5)
        with pytest.raises(RequestError):
            SamplingParams(stop_token_ids=(-1,))

    def test_submit_rejects_params_and_max_new_tokens_together(self, model):
        engine = Engine(model)
        with pytest.raises(RequestError):
            engine.submit(np.array([1, 2]), 4, max_new_tokens=4)
        with pytest.raises(RequestError):
            engine.submit(np.array([1, 2]))
        with pytest.raises(RequestError):
            engine.submit(np.array([1, 2]), "greedy")

    def test_submit_rejects_scalar_kwargs_alongside_full_params(self, model):
        # A contradictory double-specification must raise, never be
        # silently dropped in favor of the params.
        engine = Engine(model)
        params = SamplingParams(max_new_tokens=4)
        with pytest.raises(RequestError, match="temperature"):
            engine.submit(np.array([1, 2]), params, temperature=1.0)
        with pytest.raises(RequestError, match="seed"):
            engine.submit(np.array([1, 2]), params, seed=3)
        assert not engine.has_work()


class TestAbort:
    """Cancellation must release KV residency in every serving mode."""

    @pytest.mark.parametrize("kv_mode,paged,chunked", ALL_MODES)
    def test_abort_leaves_no_leaked_blocks(
        self, model, prompts, kv_mode, paged, chunked
    ):
        config = mode_config(kv_mode, paged, chunked)
        engine = Engine(model, config)
        handles = [
            engine.submit(prompt, SamplingParams(max_new_tokens=6))
            for prompt in prompts
        ]
        engine.step()
        assert handles[1].abort()
        engine.step()
        assert handles[3].abort()
        engine.run_until_idle(max_steps=500)
        if paged:
            assert_no_leaks(engine)
        factory = make_cache_factory(model, kv_mode, 6)
        survivors = [handles[0].result(), handles[2].result()]
        for index, result in zip((0, 2), survivors):
            expected = generate(model, prompts[index], 6, cache_factory=factory)
            np.testing.assert_array_equal(result.tokens, expected.tokens)
        assert engine.metrics().aborted == 2

    def test_abort_mid_chunked_prefill_releases_partial_cache(self, model):
        rng = np.random.default_rng(4)
        engine = Engine(
            model,
            mode_config("fp16", paged=True, chunked=True, max_batch_tokens=8),
        )
        short = engine.submit(rng.integers(0, 256, size=4), 8)
        engine.step()
        big = engine.submit(rng.integers(0, 256, size=40), 4)
        engine.step()  # first chunk only
        assert big.status() is RequestStatus.PREFILLING
        assert 0 < big._state.prefill_pos < 40
        assert big.abort()
        assert big._state.kv is None and big._state.caches is None
        engine.run_until_idle(max_steps=100)
        assert_no_leaks(engine)
        assert short.finished

    def test_abort_prefix_sharing_sibling_keeps_donor_blocks_balanced(self, model):
        rng = np.random.default_rng(5)
        system = rng.integers(0, 256, size=12)
        prompts = [
            np.concatenate([system, rng.integers(0, 256, size=3)])
            for _ in range(4)
        ]
        engine = Engine(model, mode_config("anda", paged=True, chunked=True))
        handles = [engine.submit(p, SamplingParams(max_new_tokens=5)) for p in prompts]
        engine.step()  # prompts register / map shared prefix blocks
        # Abort two sharers while the prefix blocks are multiply owned.
        assert handles[2].abort()
        assert handles[3].abort()
        engine.run_until_idle(max_steps=200)
        assert_no_leaks(engine)
        expected = generate(model, prompts[0], 5)
        np.testing.assert_array_equal(handles[0].result().tokens, expected.tokens)

    def test_abort_under_pool_pressure_with_preemption(self, model):
        rng = np.random.default_rng(6)
        prompts = [rng.integers(0, 256, size=6) for _ in range(5)]
        engine = Engine(
            model,
            mode_config(
                "fp16",
                paged=True,
                chunked=True,
                kv_pool_blocks=8,
                max_batch_tokens=64,
            ),
        )
        handles = [
            engine.submit(prompt, SamplingParams(max_new_tokens=10))
            for prompt in prompts
        ]
        for _ in range(4):
            engine.step()
        assert handles[4].abort()  # latest arrival, likely preempted/waiting
        assert handles[1].abort()  # an early, resident request
        engine.run_until_idle(max_steps=400)
        assert_no_leaks(engine)
        for index in (0, 2, 3):
            expected = generate(model, prompts[index], 10)
            np.testing.assert_array_equal(
                handles[index].result().tokens, expected.tokens
            )

    def test_abort_waiting_request_before_any_compute(self, model, prompts):
        engine = Engine(model)
        handle = engine.submit(prompts[0], 4)
        assert handle.status() is RequestStatus.WAITING
        assert handle.abort()
        assert handle.aborted
        assert not engine.has_work()
        assert engine.metrics().aborted == 1

    def test_abort_is_idempotent_and_too_late_after_finish(self, model, prompts):
        engine = Engine(model)
        handle = engine.submit(prompts[0], 2)
        engine.run_until_idle()
        assert handle.finished
        assert not handle.abort()  # finished: nothing to cancel
        assert engine.metrics().aborted == 0
        assert not engine.abort(99)  # unknown id

    def test_result_on_aborted_handle_raises(self, model, prompts):
        engine = Engine(model)
        handle = engine.submit(prompts[0], 8)
        engine.step()
        handle.abort()
        with pytest.raises(RequestAbortedError):
            handle.result()
        # Partial output stays readable.
        assert len(handle.generated_tokens()) == 1

    def test_abort_via_llm_facade(self, model, prompts):
        llm = LLM(model)
        handle = llm.submit(prompts[0], SamplingParams(max_new_tokens=8))
        llm.engine.step()
        assert llm.abort(handle)
        assert handle.aborted


class TestRequestHandle:
    def test_token_iteration_is_incremental_and_complete(self, model, prompts):
        engine = Engine(model, EngineConfig(max_batch_tokens=64))
        handle = engine.submit(prompts[0], 6)
        other = engine.submit(prompts[1], 6)
        seen = []
        for delta in handle:
            seen.append(delta.token)
            assert delta.request_id == handle.request_id
            assert delta.index == len(seen) - 1
        expected = generate(model, prompts[0], 6)
        np.testing.assert_array_equal(np.asarray(seen), expected.continuation())
        assert seen[-1] is not None and handle.finished
        # The sibling advanced in the same steps and can still finish.
        other_result = other.result()
        np.testing.assert_array_equal(
            other_result.tokens, generate(model, prompts[1], 6).tokens
        )

    def test_status_transitions_and_first_delta_marks_ttft(self, model, prompts):
        engine = Engine(model)
        handle = engine.submit(prompts[0], 3)
        assert handle.status() is RequestStatus.WAITING
        outputs = engine.step()
        assert handle.status() is RequestStatus.RUNNING
        first = outputs.for_request(handle.request_id)[0]
        assert first.is_first and first.index == 0
        assert first.time >= handle.arrival_time
        engine.run_until_idle()
        assert handle.status() is RequestStatus.FINISHED
        final = handle.deltas()[-1]
        assert final.finished and final.finish_reason == "length"

    def test_result_collects_once_alongside_drain(self, model, prompts):
        engine = Engine(model)
        handle = engine.submit(prompts[0], 3)
        result = handle.result()
        assert result.metrics.generated_tokens == 3
        # Already claimed through the handle: drain has nothing left.
        assert engine.drain() == []
        # Claiming again returns the cached result.
        np.testing.assert_array_equal(handle.result().tokens, result.tokens)

    def test_token_iteration_max_steps_guards_stalls(self, model, prompts):
        # tokens(max_steps=...) bounds each wait like drain/result do.
        engine = Engine(model)
        handle = engine.submit(prompts[0], 4)
        with pytest.raises(ModelError, match="max_steps must be"):
            # The bound is validated like drain's before any stepping.
            for _ in handle.tokens(max_steps=0):
                pass
        for delta in handle.tokens(max_steps=5):
            assert delta.request_id == handle.request_id
        assert handle.finished

    def test_step_outputs_carry_every_emission(self, model, prompts):
        engine = Engine(model, EngineConfig(max_batch_tokens=64))
        for prompt in prompts[:3]:
            engine.submit(prompt, 4)
        total = 0
        while engine.has_work():
            outputs = engine.step()
            assert len(outputs.deltas) == outputs.report.new_tokens
            total += len(outputs.deltas)
        assert total == 3 * 4


class TestStopTokens:
    def choose_stop(self, model, prompt):
        """A stop token the greedy continuation actually emits."""
        continuation = generate(model, prompt, 8).continuation()
        return int(continuation[3])

    def test_engine_stops_early_matching_generate(self, model, prompts):
        stop = self.choose_stop(model, prompts[0])
        params = SamplingParams(max_new_tokens=8, stop_token_ids=(stop,))
        result = LLM(model).generate(prompts[0], params)
        expected = generate(model, prompts[0], params=params)
        assert result.finish_reason == "stop"
        assert expected.finish_reason == "stop"
        np.testing.assert_array_equal(result.tokens, expected.tokens)
        assert result.continuation()[-1] == stop
        assert len(result.continuation()) < 8  # ended before the cap

    @pytest.mark.parametrize("kv_mode,paged,chunked", ALL_MODES[:2] + ALL_MODES[-2:])
    def test_stop_tokens_across_modes(self, model, prompts, kv_mode, paged, chunked):
        stop = self.choose_stop(model, prompts[1])
        params = SamplingParams(max_new_tokens=8, stop_token_ids=(stop,))
        config = mode_config(kv_mode, paged, chunked)
        result = LLM(model, config).generate(prompts[1], params)
        expected = generate(model, prompts[1], params=params)
        np.testing.assert_array_equal(result.tokens, expected.tokens)

    def test_unmatched_stop_token_runs_to_length(self, model, prompts):
        params = SamplingParams(max_new_tokens=4, stop_token_ids=(256,))
        result = LLM(model).generate(prompts[0], params)
        assert result.finish_reason == "length"
        assert len(result.continuation()) == 4


class TestTopP:
    def test_top_p_engine_matches_generate(self, model, prompts):
        params = SamplingParams(
            max_new_tokens=8, temperature=1.0, top_k=40, top_p=0.7, seed=11
        )
        result = LLM(model).generate(prompts[0], params)
        expected = generate(model, prompts[0], params=params)
        np.testing.assert_array_equal(result.tokens, expected.tokens)

    def test_top_p_one_is_bitwise_legacy_sampling(self, model, prompts):
        # top_p=1.0 must take the pre-nucleus code path: identical
        # tokens to the scalar-kwargs sampler, same RNG consumption.
        params = SamplingParams(
            max_new_tokens=8, temperature=1.0, top_k=20, top_p=1.0, seed=7
        )
        with_params = generate(model, prompts[0], params=params)
        legacy = generate(model, prompts[0], 8, temperature=1.0, top_k=20, seed=7)
        np.testing.assert_array_equal(with_params.tokens, legacy.tokens)

    def test_tiny_top_p_degenerates_to_greedy_of_sampled_set(self, model, prompts):
        # A vanishing nucleus keeps only the most likely top-k token.
        params = SamplingParams(
            max_new_tokens=5, temperature=1.0, top_k=50, top_p=1e-9, seed=3
        )
        first = LLM(model).generate(prompts[0], params)
        second = generate(model, prompts[0], params=params)
        np.testing.assert_array_equal(first.tokens, second.tokens)


class TestGenerateTextRouting:
    def test_generate_text_accepts_sampling_params(self, model):
        params = SamplingParams(max_new_tokens=6)
        routed = generate_text(model, "hi", params=params)
        legacy = generate_text(model, "hi", max_new_tokens=6)
        assert routed == legacy
