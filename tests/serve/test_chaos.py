"""Chaos property suite: random fault plans never corrupt survivors.

Hypothesis draws a workload (prompt set) and a seeded :class:`FaultPlan`
across every serving mode — {fp16, anda} x {paged, unpaged} x
{chunked, unchunked} — runs it next to a fault-free twin engine, and
pins the failure-isolation invariants:

* every request the faults did **not** fail is token-bitwise identical
  to the twin (retried requests included — recompute-on-resume is
  bitwise);
* the paged pool leaks zero blocks after drain, whatever state faults
  interrupted (mid-chunk, mid-decode, group gather/compress);
* the engine stays serviceable: work submitted after the faults
  completes bitwise;
* accounting is exact: every injected fault is either a retry or a
  failure (``fired_total == fault_retries + failed``).

The abort/fault race tests pin the sharpest aliasing case
deterministically: a fault into a request whose prefix blocks are
shared (refcounted, not copied) with live siblings, racing an abort of
another sibling, in both submission orders.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.llm.config import tiny_test_config
from repro.llm.kv_quant import KVFormat
from repro.llm.transformer import build_model
from repro.serve import (
    Engine,
    EngineConfig,
    FaultPlan,
    FaultRule,
    RequestStatus,
    RetryPolicy,
    SamplingParams,
)
from repro.serve.faults import SITES


@pytest.fixture(scope="module")
def model():
    return build_model(tiny_test_config("opt", d_model=32, n_layers=2))


PARAMS = SamplingParams(max_new_tokens=5)


def make_config(paged, chunked, fmt, plan=None):
    kwargs = dict(
        chunked_prefill=chunked,
        kv_format=fmt,
        faults=plan,
        retry=RetryPolicy(max_retries=2, backoff_steps=1),
        max_batch_tokens=24,
    )
    if paged:
        kwargs.update(kv_pool=True, kv_pool_blocks=128)
    return EngineConfig(**kwargs)


def run_batch(model, prompts, config):
    engine = Engine(model, config)
    handles = [engine.submit(prompt, PARAMS) for prompt in prompts]
    engine.run_until_idle(max_steps=1000)
    return engine, handles


def rules_strategy():
    targeted = st.fixed_dictionaries(
        {
            "site": st.sampled_from(SITES),
            "kind": st.sampled_from(["transient", "permanent"]),
            "request_id": st.integers(min_value=0, max_value=2),
            "max_fires": st.integers(min_value=1, max_value=2),
        }
    )
    stepped = st.fixed_dictionaries(
        {
            "site": st.sampled_from(SITES),
            "kind": st.sampled_from(["transient", "permanent"]),
            "step": st.integers(min_value=0, max_value=5),
            "max_fires": st.just(1),
        }
    )
    probabilistic = st.fixed_dictionaries(
        {
            "site": st.sampled_from(SITES),
            "kind": st.sampled_from(["transient", "permanent"]),
            "probability": st.sampled_from([0.5, 1.0]),
            "max_fires": st.integers(min_value=1, max_value=2),
        }
    )
    return st.lists(
        st.one_of(targeted, stepped, probabilistic), min_size=1, max_size=2
    )


@st.composite
def chaos_case(draw):
    lengths = draw(
        st.lists(st.integers(min_value=3, max_value=20), min_size=2, max_size=4)
    )
    return {
        "lengths": lengths,
        "prompt_seed": draw(st.integers(min_value=0, max_value=2**16)),
        "rules": draw(rules_strategy()),
        "plan_seed": draw(st.integers(min_value=0, max_value=2**16)),
        "paged": draw(st.booleans()),
        "chunked": draw(st.booleans()),
        "anda": draw(st.booleans()),
    }


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(case=chaos_case())
def test_faults_never_corrupt_survivors(model, case):
    rng = np.random.default_rng(case["prompt_seed"])
    vocab = model.config.vocab_size
    prompts = [rng.integers(0, vocab, size=n) for n in case["lengths"]]
    fmt = KVFormat.anda(8) if case["anda"] else None
    plan = FaultPlan(
        rules=tuple(FaultRule(**rule) for rule in case["rules"]),
        seed=case["plan_seed"],
    )

    twin_engine, twin_handles = run_batch(
        model, prompts, make_config(case["paged"], case["chunked"], fmt)
    )
    twin = [handle.result().tokens for handle in twin_handles]

    engine, handles = run_batch(
        model, prompts, make_config(case["paged"], case["chunked"], fmt, plan)
    )

    # Every request reached a terminal state.
    for handle in handles:
        assert handle.status() in (RequestStatus.FINISHED, RequestStatus.FAILED)

    # Non-faulted (and retried-to-completion) requests are bitwise.
    for index, handle in enumerate(handles):
        if handle.status() is RequestStatus.FINISHED:
            np.testing.assert_array_equal(handle.result().tokens, twin[index])

    # No block leaks whatever state the faults interrupted.
    if engine._pool is not None:
        assert engine._pool.leaked_blocks() == 0

    # Exact accounting: each injected fault was retried or failed.
    metrics = engine.metrics()
    assert (
        engine.fault_injector.fired_total
        == metrics.fault_retries + metrics.failed
    )

    # The engine still serves: post-fault work completes bitwise (the
    # plan's rules are spent or past their step by now, but even a
    # still-live rule would only fail the new request, not wedge the
    # engine — run_until_idle would then surface a stuck queue).
    probe_prompt = rng.integers(0, vocab, size=7)
    twin_extra = twin_engine.submit(probe_prompt, PARAMS)
    twin_engine.run_until_idle(max_steps=1000)
    extra = engine.submit(probe_prompt, PARAMS)
    engine.run_until_idle(max_steps=1000)
    if extra.status() is RequestStatus.FINISHED:
        np.testing.assert_array_equal(
            extra.result().tokens, twin_extra.result().tokens
        )
    if engine._pool is not None:
        assert engine._pool.leaked_blocks() == 0


class TestAbortFaultRaces:
    """Faults into prefix-sharing requests racing aborts of siblings."""

    def sibling_prompts(self, model, order_flipped):
        rng = np.random.default_rng(11)
        vocab = model.config.vocab_size
        shared = rng.integers(0, vocab, size=32)
        tails = [rng.integers(0, vocab, size=n) for n in (4, 7, 5)]
        prompts = [np.concatenate([shared, tail]) for tail in tails]
        return prompts[::-1] if order_flipped else prompts

    @pytest.mark.parametrize("order_flipped", [False, True])
    @pytest.mark.parametrize("victim", [0, 1])
    def test_fault_into_shared_prefix_leaves_siblings_bitwise(
        self, model, order_flipped, victim
    ):
        prompts = self.sibling_prompts(model, order_flipped)
        config = make_config(paged=True, chunked=True, fmt=None)
        _, twin_handles = run_batch(model, prompts, config)
        twin = [handle.result().tokens for handle in twin_handles]

        plan = FaultPlan(
            rules=(
                FaultRule(
                    site="model.decode",
                    kind="permanent",
                    request_id=victim,
                ),
            )
        )
        engine, handles = run_batch(
            model, prompts, make_config(True, True, None, plan)
        )
        assert handles[victim].status() is RequestStatus.FAILED
        for index, handle in enumerate(handles):
            if index != victim:
                np.testing.assert_array_equal(
                    handle.result().tokens, twin[index]
                )
        assert engine._pool.leaked_blocks() == 0

    @pytest.mark.parametrize("order_flipped", [False, True])
    def test_abort_races_fault_on_shared_blocks(self, model, order_flipped):
        # Request 0 faults at step 3 while request 1 is aborted at step
        # 4; request 2 — sharing the same prefix blocks as both — must
        # come out bitwise, and nothing may leak.
        prompts = self.sibling_prompts(model, order_flipped)
        config = make_config(paged=True, chunked=True, fmt=None)
        _, twin_handles = run_batch(model, prompts, config)
        twin = [handle.result().tokens for handle in twin_handles]

        plan = FaultPlan(
            rules=(
                FaultRule(
                    site="model.decode",
                    kind="permanent",
                    request_id=0,
                    step=3,
                ),
            )
        )
        engine = Engine(model, make_config(True, True, None, plan))
        handles = [engine.submit(prompt, PARAMS) for prompt in prompts]
        for step in range(5):
            if step == 4:
                handles[1].abort()
            engine.step()
        engine.run_until_idle(max_steps=1000)
        assert handles[0].status() is RequestStatus.FAILED
        assert handles[1].status() is RequestStatus.ABORTED
        np.testing.assert_array_equal(handles[2].result().tokens, twin[2])
        assert engine._pool.leaked_blocks() == 0
