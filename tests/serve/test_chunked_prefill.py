"""Chunked-prefill tests: bitwise parity, mixed steps, starvation.

The acceptance bar for chunked prefill: splitting a prompt into
budget-sized chunks that ride along with the decode batch changes step
composition — and therefore latency — but **never** changes a token.
Parity is pinned across {fp16, anda} x {paged, unpaged}, greedy and
sampled, tiny budgets (many chunks per prompt) and generous ones.  The
scheduler side is pinned too: mixed steps keep decoding while a long
prompt prefills (no head-of-line starvation), half-prefilled requests
hold their residency slot, can be preempted under pool pressure, and
recover cleanly from a mid-step model failure.
"""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.llm.config import tiny_test_config
from repro.llm.generation import generate
from repro.llm.kv_quant import make_cache_factory
from repro.llm.transformer import build_model
from repro.serve import (
    DecodeFirstPolicy,
    Engine,
    EngineConfig,
    RequestStatus,
    get_policy,
    plan_step,
)
from repro.serve.request import Request, RequestState
from serving_helpers import serve


@pytest.fixture(scope="module")
def model():
    return build_model(tiny_test_config("opt", d_model=32, n_layers=2))


@pytest.fixture(scope="module")
def llama():
    return build_model(tiny_test_config("llama", d_model=32, n_layers=2))


@pytest.fixture(scope="module")
def prompts():
    rng = np.random.default_rng(7)
    # Mixed lengths around and far beyond the tiny budgets used below.
    return [rng.integers(0, 256, size=length) for length in (5, 37, 3, 61, 16)]


def chunked_config(**overrides):
    defaults = dict(chunked_prefill=True, max_batch_tokens=16, max_batch_size=4)
    defaults.update(overrides)
    return EngineConfig(**defaults)


def assert_parity(results, references):
    for served, expected in zip(results, references):
        np.testing.assert_array_equal(served.tokens, expected.tokens)


class TestChunkedParity:
    """Token-bitwise identity across every KV mode and storage layout."""

    @pytest.mark.parametrize("kv_mode", ["fp16", "anda"])
    @pytest.mark.parametrize("paged", [False, True])
    def test_chunked_matches_unchunked(self, model, prompts, kv_mode, paged):
        pool = dict(kv_pool=True, kv_pool_blocks=64, kv_block_size=4) if paged else {}
        chunked = serve(
            model,
            prompts,
            max_new_tokens=8,
            config=chunked_config(kv_mode=kv_mode, kv_mantissa_bits=6, **pool),
        )
        unchunked = serve(
            model,
            prompts,
            max_new_tokens=8,
            config=chunked_config(
                chunked_prefill=False,
                kv_mode=kv_mode,
                kv_mantissa_bits=6,
                **pool,
            ),
        )
        assert_parity(chunked, unchunked)

    @pytest.mark.parametrize("kv_mode", ["fp16", "anda"])
    def test_chunked_matches_sequential_generate(self, model, prompts, kv_mode):
        engine = Engine(model, chunked_config(kv_mode=kv_mode, kv_mantissa_bits=6))
        results = serve(model, prompts, max_new_tokens=8, engine=engine)
        assert engine.metrics().partial_prefills > 0  # chunking actually ran
        factory = make_cache_factory(model, kv_mode, 6)
        for prompt, result in zip(prompts, results):
            expected = generate(model, prompt, 8, cache_factory=factory)
            np.testing.assert_array_equal(result.tokens, expected.tokens)

    @pytest.mark.parametrize("kv_mode", ["fp16", "anda"])
    def test_rotary_family_chunked_parity(self, llama, prompts, kv_mode):
        # Chunk positions offset into the rotary table via gather.
        chunked = serve(
            llama,
            prompts,
            max_new_tokens=8,
            config=chunked_config(kv_mode=kv_mode, kv_mantissa_bits=6),
        )
        for prompt, result in zip(prompts, chunked):
            expected = generate(
                llama,
                prompt,
                8,
                cache_factory=make_cache_factory(llama, kv_mode, 6),
            )
            np.testing.assert_array_equal(result.tokens, expected.tokens)

    @pytest.mark.parametrize("budget", [4, 7, 16, 64])
    def test_chunk_size_never_changes_tokens(self, model, prompts, budget):
        # Different budgets mean different chunk boundaries; tokens
        # must not move.
        results = serve(
            model,
            prompts,
            max_new_tokens=6,
            config=chunked_config(max_batch_tokens=budget),
        )
        for prompt, result in zip(prompts, results):
            expected = generate(model, prompt, 6)
            np.testing.assert_array_equal(result.tokens, expected.tokens)

    def test_sampled_chunked_parity(self, model, prompts):
        results = serve(
            model,
            prompts,
            max_new_tokens=8,
            temperature=1.0,
            seed=5,
            config=chunked_config(),
        )
        for prompt, result in zip(prompts, results):
            expected = generate(model, prompt, 8, temperature=1.0, seed=5)
            np.testing.assert_array_equal(result.tokens, expected.tokens)

    def test_paged_prefix_sharing_chunked_parity(self, model):
        # Shared prefixes + chunking: later requests map the prompt
        # blocks an earlier same-step admission registered.
        rng = np.random.default_rng(3)
        system = rng.integers(0, 256, size=12)
        prompts = [
            np.concatenate([system, rng.integers(0, 256, size=3)]) for _ in range(4)
        ]
        engine = Engine(
            model,
            chunked_config(
                max_batch_tokens=64,
                kv_pool=True,
                kv_pool_blocks=32,
                kv_block_size=4,
            ),
        )
        results = serve(model, prompts, max_new_tokens=6, engine=engine)
        for prompt, result in zip(prompts, results):
            expected = generate(model, prompt, 6)
            np.testing.assert_array_equal(result.tokens, expected.tokens)
        metrics = engine.metrics()
        assert metrics.prefix_hit_tokens == 3 * 12
        # Gross savings (avoided writes + activations) bound the net
        # delta: the chunk lane re-reads the shared context it attends
        # over, which monolithic prefill never paid.
        assert metrics.prefix_saved_bytes > 0


class TestMixedSteps:
    def test_long_prompt_chunks_ride_with_decodes(self, model):
        rng = np.random.default_rng(1)
        engine = Engine(model, chunked_config(max_batch_tokens=8))
        engine.submit(rng.integers(0, 256, size=4), 12)
        engine.step()  # short prompt prefills whole, starts decoding
        engine.submit(rng.integers(0, 256, size=40), 4)
        mixed = engine.step().report
        # One decode and one partial chunk share the step.
        assert mixed.decodes == 1
        assert mixed.prefills == 1
        assert mixed.partial_prefills == 1
        assert 0 < mixed.prefill_tokens <= 7  # budget 8 minus one decode
        state = engine._waiting[0]
        assert state.status is RequestStatus.PREFILLING
        assert 0 < state.prefill_pos < 40
        done = {r.request_id: r for r in engine.drain()}
        assert len(done) == 2

    def test_prefill_pos_tracks_progress_to_first_token(self, model):
        rng = np.random.default_rng(2)
        prompt = rng.integers(0, 256, size=30)
        engine = Engine(model, chunked_config(max_batch_tokens=8))
        engine.submit(prompt, 2)
        positions = []
        state = engine._waiting[0]
        while state.status is not RequestStatus.RUNNING:
            engine.step()
            positions.append(state.prefill_pos)
        # Monotone progress in budget-sized strides, TTFT at completion.
        assert positions == [8, 16, 24, 30]
        assert state.first_token_step == 3
        expected = generate(model, prompt, 2)
        done = engine.drain()[0]
        np.testing.assert_array_equal(done.tokens, expected.tokens)

    def test_ttft_steps_scale_with_budget(self, model):
        # The max_batch_tokens dial: a bigger budget means fewer chunk
        # steps before the first token.
        rng = np.random.default_rng(4)
        prompt = rng.integers(0, 256, size=48)
        ttfts = {}
        for budget in (8, 48):
            engine = Engine(model, chunked_config(max_batch_tokens=budget))
            engine.submit(prompt, 2)
            engine.drain()
            ttfts[budget] = engine.metrics().requests[0].ttft_steps
        assert ttfts[48] == 0
        assert ttfts[8] == 5  # ceil(48 / 8) - 1 extra steps

    def test_chunk_failure_rolls_back_cleanly(self, model):
        # A mid-step model failure in the chunk lane must not corrupt
        # running decodes or leak the chunk's cache; the request stays
        # queued and servable.
        rng = np.random.default_rng(6)
        engine = Engine(
            model,
            chunked_config(
                max_batch_tokens=8,
                kv_pool=True,
                kv_pool_blocks=32,
                kv_block_size=4,
            ),
        )
        engine.submit(rng.integers(0, 256, size=4), max_new_tokens=6)
        engine.step()
        free_before = engine._pool.free_blocks
        engine.submit(rng.integers(0, 256, size=30), max_new_tokens=2)

        real = engine.model.forward_mixed_step

        def failing(*args, **kwargs):
            raise ModelError("injected chunk failure")

        engine.model.forward_mixed_step = failing
        try:
            with pytest.raises(ModelError, match="injected"):
                engine.step()
        finally:
            engine.model.forward_mixed_step = real
        state = engine._waiting[0]
        assert state.status is RequestStatus.WAITING
        assert state.prefill_pos == 0
        assert state.caches is None and state.kv is None
        assert engine._pool.free_blocks == free_before  # no block leak
        done = engine.drain(max_steps=50)
        assert sorted(result.request_id for result in done) == [0, 1]

    def test_half_prefilled_request_preempted_under_pool_pressure(self, model):
        # Decode growth outranks a half-prefilled prompt: when the pool
        # runs dry, the (latest-arrived) half-prefilled request loses
        # its partial cache, restarts from scratch, and still finishes
        # with bitwise-identical tokens.
        rng = np.random.default_rng(8)
        shorts = [rng.integers(0, 256, size=4) for _ in range(3)]
        long_prompt = rng.integers(0, 256, size=24)
        engine = Engine(
            model,
            chunked_config(
                max_batch_tokens=8,
                max_batch_size=8,
                kv_pool=True,
                kv_pool_blocks=10,
                kv_block_size=4,
                prefix_caching=False,
            ),
        )
        for prompt in shorts:
            engine.submit(prompt, 12)
        engine.submit(long_prompt, 2)
        done = {r.request_id: r for r in engine.drain(max_steps=200)}
        assert engine.metrics().preemptions > 0
        for index, prompt in enumerate(shorts + [long_prompt]):
            count = 12 if index < 3 else 2
            expected = generate(model, prompt, count)
            np.testing.assert_array_equal(done[index].tokens, expected.tokens)


class TestNoStarvation:
    def test_huge_prompt_never_stalls_decodes(self, model):
        # FCFS, one huge prompt behind steady short arrivals: once
        # chunking is on, every step with running requests makes decode
        # progress — the huge prefill never monopolizes a step — and
        # first-token progress happens every step (a decode, a chunk
        # advancing toward a first token, or both).
        rng = np.random.default_rng(9)
        engine = Engine(model, chunked_config(max_batch_tokens=8, max_batch_size=4))
        engine.submit(rng.integers(0, 256, size=4), 20)
        engine.step()
        engine.submit(rng.integers(0, 256, size=120), 2)  # the monster
        stalled = 0
        steps = 0
        while engine.has_work() and steps < 200:
            had_running = bool(engine._running)
            report = engine.step().report
            steps += 1
            if had_running and report.decodes == 0:
                stalled += 1
            assert report.decodes > 0 or report.prefill_tokens > 0
        assert stalled == 0
        assert not engine.has_work()

    def test_unchunked_huge_prompt_does_stall(self, model):
        # The contrast case.  Serving this workload unchunked requires
        # a budget >= the longest prompt (a smaller budget would park
        # the monster until the engine idles), and then the monolithic
        # prefill shares one step with running decodes — stalling them
        # for the whole 120-token forward.  Chunked steps never exceed
        # their (much smaller) budget.
        rng = np.random.default_rng(9)
        short = rng.integers(0, 256, size=4)
        monster = rng.integers(0, 256, size=120)
        worst_step_work = {}
        for chunked, budget in ((False, 128), (True, 16)):
            engine = Engine(
                model,
                chunked_config(
                    chunked_prefill=chunked,
                    max_batch_tokens=budget,
                    max_batch_size=4,
                ),
            )
            engine.submit(short, 20)
            engine.step()
            engine.submit(monster, 2)
            worst = 0
            steps = 0
            while engine.has_work() and steps < 300:
                report = engine.step().report
                steps += 1
                if report.decodes > 0:
                    worst = max(worst, report.decodes + report.prefill_tokens)
            worst_step_work[chunked] = worst
        assert worst_step_work[False] >= 121  # prefill rode whole with a decode
        assert worst_step_work[True] <= 16  # chunked never exceeds the budget

    def test_short_arrivals_keep_flowing_during_long_prefill(self, model):
        # Shorter requests submitted while the monster prefills still
        # finish promptly (they are behind it in FCFS order, so they
        # wait for its first token, but decodes already running never
        # stop).
        rng = np.random.default_rng(10)
        engine = Engine(model, chunked_config(max_batch_tokens=12, max_batch_size=4))
        first = engine.submit(rng.integers(0, 256, size=4), 30).request_id
        engine.step()
        engine.submit(rng.integers(0, 256, size=100), 2)
        for _ in range(4):
            engine.step()
        done = {r.request_id for r in engine.drain(max_steps=100)}
        assert first in done


class TestDecodeFirstPolicy:
    def make_state(self, request_id, prompt_length, prefill_pos=0):
        state = RequestState(
            request=Request(
                request_id=request_id,
                prompt=np.arange(prompt_length) % 256,
                max_new_tokens=4,
            )
        )
        state.prefill_pos = prefill_pos
        return state

    def test_registry_and_ordering(self):
        assert isinstance(get_policy("decode-first"), DecodeFirstPolicy)
        fresh_a = self.make_state(0, 30)
        inflight = self.make_state(1, 50, prefill_pos=16)
        fresh_b = self.make_state(2, 4)
        ordered = DecodeFirstPolicy().order([fresh_a, inflight, fresh_b])
        assert [s.request.request_id for s in ordered] == [1, 0, 2]

    def test_inflight_prefill_finishes_before_new_admissions(self):
        inflight = self.make_state(0, 50, prefill_pos=40)
        fresh = self.make_state(1, 4)
        plan = plan_step(
            [inflight, fresh], [], DecodeFirstPolicy(), 4, 16, chunking=True
        )
        assert [c.state.request.request_id for c in plan.prefills] == [0, 1]
        assert plan.prefills[0].tokens == 10  # finishes the in-flight prompt

    def test_engine_parity_under_decode_first(self, model, prompts):
        results = serve(
            model,
            prompts,
            max_new_tokens=6,
            config=chunked_config(policy="decode-first"),
        )
        for prompt, result in zip(prompts, results):
            expected = generate(model, prompt, 6)
            np.testing.assert_array_equal(result.tokens, expected.tokens)


class TestLatencyMetrics:
    def test_ttft_and_itl_percentiles_populate(self, model, prompts):
        engine = Engine(model, chunked_config())
        serve(model, prompts, max_new_tokens=6, engine=engine)
        metrics = engine.metrics()
        assert 0.0 < metrics.ttft_p50_seconds <= metrics.ttft_p95_seconds
        assert 0.0 < metrics.itl_p50_seconds <= metrics.itl_p95_seconds
        for record in metrics.requests:
            assert len(record.itl_seconds) == record.generated_tokens - 1
            assert all(gap >= 0.0 for gap in record.itl_seconds)

    def test_percentiles_empty_engine_are_zero(self, model):
        metrics = Engine(model, chunked_config()).metrics()
        assert metrics.ttft_p95_seconds == 0.0
        assert metrics.itl_p95_seconds == 0.0


class TestDrainDiagnostics:
    def test_drain_timeout_names_stuck_request_ids(self, model):
        engine = Engine(model, EngineConfig())
        first = engine.submit(np.arange(4, dtype=np.int64), max_new_tokens=8).request_id
        second = engine.submit(
            np.arange(6, dtype=np.int64), max_new_tokens=8
        ).request_id
        with pytest.raises(ModelError, match=rf"{first}, {second}"):
            engine.drain(max_steps=2)

    def test_no_progress_error_names_stuck_request_ids(self, model, monkeypatch):
        import repro.serve.engine as engine_module
        from repro.serve.scheduler import StepPlan

        engine = Engine(model, EngineConfig())
        stuck = engine.submit(np.arange(4, dtype=np.int64), 4).request_id
        monkeypatch.setattr(
            engine_module,
            "plan_step",
            lambda *args, **kwargs: StepPlan(decodes=[], prefills=[]),
        )
        with pytest.raises(ModelError, match=rf"stuck request ids: {stuck}"):
            engine.drain()
