"""Serving telemetry: tracer, registry, exporters, engine integration.

The observability acceptance bar:

* a traced grouped-attention engine run produces a Chrome trace-event
  object that passes the schema validator (required keys, per-track
  monotonic ``ts``, LIFO-matched B/E pairs) — the same validator CI
  runs against the uploaded artifact;
* the root ``step`` span durations reproduce ``elapsed_seconds`` of
  the matching :class:`StepReport` (the span reuses the report's exact
  ``perf_counter`` readings, so the comparison is tight);
* per-request lifecycle instants agree with the handles' terminal
  statuses, including aborts and the PREFILLING transition of chunked
  prompts;
* the Prometheus exposition reproduces every ``EngineMetrics``
  counter and gauge, per engine, through the declared field tables;
* telemetry changes **no** numerics: token streams with tracing and
  step logging on are bitwise identical to a telemetry-off engine —
  and a disabled-telemetry engine records no events at all.
"""

import json
import logging
import math

import numpy as np
import pytest

from repro.errors import ModelError
from repro.llm.config import tiny_test_config
from repro.llm.transformer import build_model
from repro.serve import (
    LLM,
    Engine,
    EngineConfig,
    RequestStatus,
    SamplingParams,
)
from repro.serve.telemetry import (
    ENGINE_COUNTER_FIELDS,
    ENGINE_GAUGE_FIELDS,
    CounterRegistry,
    StepTracer,
    TelemetryConfig,
    chrome_trace,
    prometheus_exposition,
    request_track,
    validate_chrome_trace,
)


@pytest.fixture(scope="module")
def model():
    return build_model(tiny_test_config("opt", d_model=32, n_layers=2))


def traced_config(**overrides):
    defaults = dict(
        max_batch_size=4,
        telemetry=TelemetryConfig(trace=True),
    )
    defaults.update(overrides)
    return EngineConfig(**defaults)


def prompts_for(model, count=4, seed=3):
    rng = np.random.default_rng(seed)
    vocab = model.config.vocab_size
    return [rng.integers(0, vocab, size=5 + (index % 4)) for index in range(count)]


def run_traced_engine(model, **config_overrides):
    engine = Engine(model, traced_config(**config_overrides))
    llm = LLM(engine=engine)
    handles = [
        llm.submit(prompt, SamplingParams(max_new_tokens=6))
        for prompt in prompts_for(model)
    ]
    engine.run_until_idle(max_steps=500)
    return engine, handles


class TestCounterRegistry:
    def test_counter_inc_and_samples(self):
        registry = CounterRegistry()
        family = registry.counter("reqs_total", "requests", labels=("engine",))
        family.labels(engine="e0").inc()
        family.labels(engine="e0").inc(2.5)
        family.labels(engine="e1").inc(4)
        samples = {s.labels: s.value for s in family.samples()}
        assert samples[(("engine", "e0"),)] == 3.5
        assert samples[(("engine", "e1"),)] == 4.0

    def test_gauge_set_overwrites(self):
        registry = CounterRegistry()
        gauge = registry.gauge("depth", labels=())
        gauge.labels().set(7.0)
        gauge.labels().set(3.0)
        assert gauge.labels().value == 3.0

    def test_counter_cannot_decrease(self):
        registry = CounterRegistry()
        family = registry.counter("ticks")
        with pytest.raises(ModelError, match="cannot decrease"):
            family.labels().inc(-1)

    def test_set_is_gauge_only(self):
        registry = CounterRegistry()
        family = registry.counter("ticks")
        with pytest.raises(ModelError, match="gauge-only"):
            family.labels().set(5.0)

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ModelError, match="invalid metric name"):
            CounterRegistry().counter("9starts-with-digit")

    def test_invalid_label_name_rejected(self):
        with pytest.raises(ModelError, match="invalid label name"):
            CounterRegistry().counter("ok", labels=("not-ok",))

    def test_reregistration_must_match(self):
        registry = CounterRegistry()
        registry.counter("ticks", labels=("engine",))
        assert registry.counter("ticks", labels=("engine",)) is not None
        with pytest.raises(ModelError, match="re-registered"):
            registry.gauge("ticks", labels=("engine",))
        with pytest.raises(ModelError, match="re-registered"):
            registry.counter("ticks", labels=("other",))

    def test_wrong_label_set_rejected(self):
        family = CounterRegistry().counter("ticks", labels=("engine",))
        with pytest.raises(ModelError, match="takes labels"):
            family.labels(host="h")

    def test_collect_preserves_registration_order(self):
        registry = CounterRegistry()
        registry.counter("b_total")
        registry.gauge("a_depth")
        assert [f.name for f in registry.collect()] == ["b_total", "a_depth"]


class TestTelemetryConfig:
    def test_log_every_must_be_positive(self):
        with pytest.raises(ModelError, match="log_every"):
            TelemetryConfig(log_every=0)


class TestStepTracer:
    def test_span_records_matched_pair(self):
        tracer = StepTracer()
        with tracer.span("phase", detail=3):
            pass
        begin, end = tracer.events
        assert (begin.phase, end.phase) == ("B", "E")
        assert begin.name == end.name == "phase"
        assert begin.track == end.track == "phase"
        assert begin.args == {"detail": 3}
        assert begin.ts <= end.ts

    def test_explicit_ts_is_used_verbatim(self):
        tracer = StepTracer()
        tracer.begin("step", ts=10.0)
        tracer.end("step", ts=250.0)
        assert [event.ts for event in tracer.events] == [10.0, 250.0]

    def test_lifecycle_lands_on_request_track(self):
        tracer = StepTracer()
        tracer.lifecycle(17, "QUEUED", prompt_tokens=9)
        (event,) = tracer.events
        assert event.phase == "i"
        assert event.name == "QUEUED"
        assert event.track == request_track(17) == "request 17"
        assert event.args == {"prompt_tokens": 9}

    def test_clear_keeps_epoch(self):
        tracer = StepTracer()
        tracer.instant("x")
        epoch = tracer.epoch
        tracer.clear()
        assert tracer.events == []
        assert tracer.epoch == epoch


class TestChromeTraceExport:
    def test_empty_tracer_exports_metadata_only(self):
        payload = chrome_trace(StepTracer())
        assert payload["displayTimeUnit"] == "ms"
        (process_meta,) = payload["traceEvents"]
        assert process_meta["ph"] == "M"
        assert process_meta["name"] == "process_name"

    def test_tracks_become_named_threads(self):
        tracer = StepTracer()
        with tracer.span("step"):
            with tracer.span("step.sample"):
                pass
        tracer.lifecycle(3, "QUEUED")
        payload = chrome_trace(tracer, process_name="proc")
        thread_names = {
            event["args"]["name"]: event["tid"]
            for event in payload["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        }
        assert set(thread_names) == {"step", "step.sample", "request 3"}
        # tids assigned in first-appearance order, starting after the
        # process metadata row.
        assert thread_names["step"] < thread_names["step.sample"]

    def test_validator_accepts_own_output(self):
        tracer = StepTracer()
        with tracer.span("step"):
            tracer.instant("QUEUED", track="request 0")
        assert validate_chrome_trace(chrome_trace(tracer)) == []

    def test_validator_rejects_missing_container(self):
        assert validate_chrome_trace({}) == ["traceEvents is missing or not a list"]

    def test_validator_rejects_missing_keys(self):
        problems = validate_chrome_trace({"traceEvents": [{"ph": "B"}]})
        assert problems

    def test_validator_rejects_nonmonotonic_ts(self):
        events = [
            {"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 5.0},
            {"name": "a", "ph": "E", "pid": 1, "tid": 1, "ts": 4.0},
        ]
        problems = validate_chrome_trace({"traceEvents": events})
        assert any("goes backwards" in p for p in problems)

    def test_validator_rejects_unmatched_spans(self):
        events = [
            {"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 1.0},
            {"name": "b", "ph": "E", "pid": 1, "tid": 1, "ts": 2.0},
        ]
        assert validate_chrome_trace({"traceEvents": events})
        dangling = [{"name": "a", "ph": "B", "pid": 1, "tid": 1, "ts": 1.0}]
        assert validate_chrome_trace({"traceEvents": dangling})


class TestEngineTracing:
    def test_traced_run_passes_schema_validation(self, model):
        engine, _ = run_traced_engine(model)
        assert validate_chrome_trace(engine.telemetry.chrome_trace()) == []

    def test_trace_file_is_json_loadable(self, model, tmp_path):
        engine, _ = run_traced_engine(model)
        path = engine.telemetry.write_trace(tmp_path / "trace.json")
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []

    def test_root_step_spans_reproduce_step_reports(self, model):
        engine = Engine(model, traced_config())
        llm = LLM(engine=engine)
        for prompt in prompts_for(model):
            llm.submit(prompt, SamplingParams(max_new_tokens=5))
        reports = []
        while engine.has_work():
            reports.append(engine.step().report)
        durations = []
        open_ts = None
        for event in engine.telemetry.tracer.events:
            if event.name != "step":
                continue
            if event.phase == "B":
                open_ts = event.ts
            elif event.phase == "E":
                durations.append((event.ts - open_ts) / 1e6)
        assert len(durations) == len(reports)
        for duration, report in zip(durations, reports):
            assert math.isclose(
                duration, report.elapsed_seconds, rel_tol=1e-9, abs_tol=1e-12
            )

    def test_expected_phase_spans_present(self, model):
        engine, _ = run_traced_engine(model)
        names = {event.name for event in engine.telemetry.tracer.events}
        assert {"step", "step.schedule", "step.decode_batch", "step.sample"} <= names

    def test_grouped_attention_bucket_spans_carry_args(self, model):
        # Equal-length prompts decode at equal KV lengths, so the
        # grouped dispatcher forms multi-request buckets — each launch
        # must appear as a decode.attention span tagged with its shape.
        engine = Engine(model, traced_config())
        llm = LLM(engine=engine)
        rng = np.random.default_rng(5)
        for _ in range(4):
            llm.submit(
                rng.integers(0, model.config.vocab_size, size=6),
                SamplingParams(max_new_tokens=5),
            )
        engine.run_until_idle(max_steps=200)
        buckets = [
            event
            for event in engine.telemetry.tracer.events
            if event.name == "decode.attention" and event.phase == "B"
        ]
        assert buckets
        assert all(event.args["size"] >= 2 for event in buckets)
        assert all(event.args["kv_length"] >= 6 for event in buckets)

    def test_chunked_prefill_emits_chunk_lane_spans(self, model):
        engine = Engine(
            model,
            traced_config(max_batch_tokens=8, chunked_prefill=True),
        )
        llm = LLM(engine=engine)
        rng = np.random.default_rng(9)
        llm.submit(
            rng.integers(0, model.config.vocab_size, size=30),
            SamplingParams(max_new_tokens=3),
        )
        engine.run_until_idle(max_steps=200)
        names = {event.name for event in engine.telemetry.tracer.events}
        assert "step.prefill_chunks" in names

    def test_disabled_telemetry_records_nothing(self, model):
        engine = Engine(model, EngineConfig(max_batch_size=4))
        llm = LLM(engine=engine)
        llm.generate(prompts_for(model), SamplingParams(max_new_tokens=4))
        assert engine.telemetry.tracer is None
        with pytest.raises(ModelError, match="tracing is disabled"):
            engine.telemetry.chrome_trace()


class TestLifecycleEvents:
    def lifecycle_by_request(self, engine):
        events = {}
        for event in engine.telemetry.tracer.events:
            if event.phase == "i" and event.track.startswith("request "):
                request_id = int(event.track.split(" ", 1)[1])
                events.setdefault(request_id, []).append(event.name)
        return events

    def test_finished_requests_trace_queued_running_finished(self, model):
        engine, handles = run_traced_engine(model)
        events = self.lifecycle_by_request(engine)
        for handle in handles:
            assert handle.status() is RequestStatus.FINISHED
            trail = events[handle.request_id]
            assert trail[0] == "QUEUED"
            assert trail[-1] == "FINISHED"
            assert "RUNNING" in trail
            assert "ABORTED" not in trail

    def test_aborted_request_traces_aborted_terminal(self, model):
        engine = Engine(model, traced_config())
        llm = LLM(engine=engine)
        handles = [
            llm.submit(prompt, SamplingParams(max_new_tokens=8))
            for prompt in prompts_for(model)
        ]
        engine.step()
        handles[1].abort()
        engine.run_until_idle(max_steps=200)
        events = self.lifecycle_by_request(engine)
        assert handles[1].status() is RequestStatus.ABORTED
        assert events[handles[1].request_id][-1] == "ABORTED"
        assert "FINISHED" not in events[handles[1].request_id]
        for handle in handles:
            if handle is not handles[1]:
                assert events[handle.request_id][-1] == "FINISHED"

    def test_chunked_prompt_traces_prefilling_before_running(self, model):
        engine = Engine(
            model,
            traced_config(max_batch_tokens=8, chunked_prefill=True),
        )
        llm = LLM(engine=engine)
        rng = np.random.default_rng(13)
        handle = llm.submit(
            rng.integers(0, model.config.vocab_size, size=30),
            SamplingParams(max_new_tokens=3),
        )
        engine.run_until_idle(max_steps=200)
        trail = self.lifecycle_by_request(engine)[handle.request_id]
        assert "PREFILLING" in trail
        assert trail.index("PREFILLING") < trail.index("RUNNING")


def parse_exposition(text):
    """name -> {labels_text: float} for every sample line."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name_and_labels, value = line.rsplit(" ", 1)
        name = name_and_labels.split("{", 1)[0]
        samples.setdefault(name, {})[name_and_labels] = float(value)
    return samples


class TestPrometheusExposition:
    def test_renders_help_type_and_escaped_labels(self):
        registry = CounterRegistry()
        family = registry.counter("reqs_total", "total requests", ("engine",))
        family.labels(engine='e"0\\x\n').inc(2)
        text = prometheus_exposition(registry)
        assert "# HELP reqs_total total requests" in text
        assert "# TYPE reqs_total counter" in text
        assert '\\"' in text and "\\n" in text and "\\\\" in text
        assert text.endswith("\n")

    def test_exposition_reproduces_every_engine_metric(self, model):
        engine, _ = run_traced_engine(model)
        metrics = engine.metrics()
        label = engine.telemetry.engine_label
        samples = parse_exposition(engine.telemetry.prometheus())
        for attribute, name, _ in ENGINE_COUNTER_FIELDS:
            value = samples[name][f'{name}{{engine="{label}"}}']
            assert value == pytest.approx(float(getattr(metrics, attribute))), name
        for attribute, name, _ in ENGINE_GAUGE_FIELDS:
            value = samples[name][f'{name}{{engine="{label}"}}']
            assert value == pytest.approx(float(getattr(metrics, attribute))), name
        dram = samples["repro_engine_dram_bytes_total"]
        assert dram[
            f'repro_engine_dram_bytes_total{{engine="{label}"}}'
        ] == pytest.approx(metrics.traffic.total_bytes)
        finished = samples["repro_engine_finished_requests_total"]
        assert finished[
            f'repro_engine_finished_requests_total{{engine="{label}"}}'
        ] == float(len(metrics.requests))

    def test_repeated_pulls_are_idempotent_when_quiescent(self, model):
        engine, _ = run_traced_engine(model)
        assert engine.telemetry.prometheus() == engine.telemetry.prometheus()

    def test_counters_advance_across_pulls(self, model):
        engine = Engine(model, traced_config())
        llm = LLM(engine=engine)
        llm.generate(prompts_for(model, count=2), SamplingParams(max_new_tokens=3))
        first = parse_exposition(engine.telemetry.prometheus())
        llm.generate(prompts_for(model, count=2), SamplingParams(max_new_tokens=3))
        second = parse_exposition(engine.telemetry.prometheus())
        name = "repro_engine_steps_total"
        (first_value,) = first[name].values()
        (second_value,) = second[name].values()
        assert second_value > first_value


class TestStepLogging:
    def test_log_steps_emits_summary_lines(self, model, caplog):
        engine = Engine(
            model,
            traced_config(telemetry=TelemetryConfig(log_steps=True)),
        )
        llm = LLM(engine=engine)
        with caplog.at_level(logging.INFO, logger="repro.serve.telemetry"):
            llm.generate(prompts_for(model, count=2), SamplingParams(max_new_tokens=3))
        lines = [r.message for r in caplog.records]
        assert lines
        label = engine.telemetry.engine_label
        assert all(f"engine={label}" in line for line in lines)

    def test_log_every_subsamples(self, model, caplog):
        engine = Engine(
            model,
            traced_config(telemetry=TelemetryConfig(log_steps=True, log_every=3)),
        )
        llm = LLM(engine=engine)
        with caplog.at_level(logging.INFO, logger="repro.serve.telemetry"):
            llm.generate(prompts_for(model, count=2), SamplingParams(max_new_tokens=6))
        steps = engine.metrics().steps
        assert len(caplog.records) == len([s for s in range(steps) if s % 3 == 0])


class TestTelemetryNeutrality:
    @pytest.mark.parametrize("chunked", [False, True])
    def test_tokens_bitwise_identical_with_telemetry_on(self, model, chunked):
        prompts = prompts_for(model, count=4, seed=21)
        params = SamplingParams(max_new_tokens=6, temperature=0.9, top_k=8, seed=5)

        def tokens(telemetry):
            config = EngineConfig(
                max_batch_size=4,
                max_batch_tokens=16 if chunked else 64,
                chunked_prefill=chunked,
                telemetry=telemetry,
            )
            llm = LLM(model=model, config=config)
            return [
                result.tokens.tobytes()
                for result in llm.generate([p.copy() for p in prompts], params)
            ]

        plain = tokens(TelemetryConfig())
        instrumented = tokens(TelemetryConfig(trace=True, log_steps=True))
        assert plain == instrumented
