"""Shared helpers for the serving test suites.

Importable as a plain module from any ``tests/serve/test_*.py`` file:
pytest's default (rootdir-prepend) import mode puts this directory on
``sys.path`` when collecting the suite.
"""

from repro.serve import LLM, SamplingParams


def serve(model, prompts, max_new_tokens, config=None, engine=None, **sampling):
    """Batch-serve through the redesigned LLM facade.

    The post-redesign spelling of what ``serve_batch`` used to do in
    these suites: one recipe for the whole batch, results in input
    order.  ``**sampling`` forwards recipe fields (``temperature``,
    ``top_k``, ``seed``, ...) into :class:`SamplingParams`.
    """
    llm = LLM(model=model, config=config, engine=engine)
    return llm.generate(
        prompts, SamplingParams(max_new_tokens=max_new_tokens, **sampling)
    )
