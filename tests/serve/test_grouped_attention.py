"""Grouped batched attention: bucket planning, parity, engine wiring.

The bucketed dispatcher turns a decode step's attention from O(batch)
launches per layer into O(buckets), under one non-negotiable contract:
emitted tokens (and the logits behind them) stay **bitwise** identical
to the per-request path.  These tests pin that contract across the
places it could crack:

* the planner's policy edges (all-equal, all-distinct, the pad-waste
  cap, degenerate inputs),
* singleton buckets, which must route through the per-request oracle
  untouched (the M == 1 kernel-lane guarantee),
* padded buckets, whose mask-don't-compute formulation must match the
  oracle bitwise for both KV modes and both storages,
* the engine, whose grouped/ungrouped configurations must emit the
  same tokens while the dispatch counters tell the O(buckets) story,
* the incremental gather workspace, which must re-sync only appended
  tails while memberships hold.

Comparisons use ``tobytes()`` — bit equality, not ``==``.
"""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.llm.attention import (
    ATTENTION_STATS,
    HOT_PATH_STATS,
    BucketedAttention,
    plan_buckets,
)
from repro.llm.config import tiny_test_config
from repro.llm.kv_quant import make_cache_factory, make_kv_codec
from repro.llm.transformer import build_model
from repro.serve import Engine, EngineConfig
from repro.serve.kvpool.pool import KVPool
from serving_helpers import serve

KV_MODES = ["fp16", "anda"]


@pytest.fixture(scope="module")
def model():
    return build_model(tiny_test_config("opt", d_model=32, n_layers=2))


@pytest.fixture(scope="module")
def llama():
    return build_model(tiny_test_config("llama", d_model=32, n_layers=2))


def bitwise_equal(left: np.ndarray, right: np.ndarray) -> bool:
    return left.shape == right.shape and left.tobytes() == right.tobytes()


class TestPlanBuckets:
    def test_all_equal_lengths_form_one_exact_bucket(self):
        plan = plan_buckets([9] * 8)
        assert plan.num_buckets == 1
        (bucket,) = plan.buckets
        assert bucket.size == 8 and not bucket.padded
        assert plan.grouped_requests == 8
        assert plan.padded_slots == 0

    def test_all_distinct_lengths_degrade_to_singletons(self):
        # Lengths too far apart to merge under the cap: the plan must
        # degrade gracefully to per-request dispatch, never error.
        plan = plan_buckets([4, 40, 400, 4000])
        assert plan.num_buckets == 4
        assert all(bucket.size == 1 for bucket in plan.buckets)
        assert plan.grouped_requests == 0
        assert plan.padded_slots == 0

    def test_near_equal_singletons_merge_into_padded_bucket(self):
        plan = plan_buckets([100, 99, 98])
        assert plan.num_buckets == 1
        (bucket,) = plan.buckets
        assert bucket.padded and bucket.length == 100
        assert bucket.lengths == (100, 99, 98)  # longest-first merge
        assert bucket.padded_slots == 3

    def test_zero_cap_disables_padded_merges(self):
        plan = plan_buckets([100, 99, 98], pad_waste_cap=0.0)
        assert plan.num_buckets == 3
        assert all(bucket.size == 1 for bucket in plan.buckets)

    def test_exact_groups_take_precedence_over_merging(self):
        plan = plan_buckets([5, 5, 6])
        by_size = sorted(plan.buckets, key=lambda bucket: -bucket.size)
        assert by_size[0].indices == (0, 1) and not by_size[0].padded
        assert by_size[1].indices == (2,)

    def test_every_request_lands_in_exactly_one_bucket(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            lengths = rng.integers(1, 64, size=rng.integers(1, 24)).tolist()
            plan = plan_buckets(lengths)
            indices = [i for bucket in plan.buckets for i in bucket.indices]
            assert sorted(indices) == list(range(len(lengths)))
            for bucket in plan.buckets:
                # Each member's recorded length is the real one, and
                # padded waste respects the cap the planner promised.
                assert all(
                    lengths[i] == length
                    for i, length in zip(bucket.indices, bucket.lengths)
                )
                assert bucket.length == max(bucket.lengths)
                if bucket.size > 1 and bucket.padded:
                    assert (
                        bucket.padded_slots <= 0.125 * bucket.size * bucket.length
                    )

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ModelError):
            plan_buckets([0, 4])
        with pytest.raises(ModelError):
            plan_buckets([4], pad_waste_cap=1.0)
        with pytest.raises(ModelError):
            plan_buckets([4], pad_waste_cap=-0.1)
        with pytest.raises(ModelError):
            BucketedAttention(pad_waste_cap=1.5)
        with pytest.raises(ModelError):
            BucketedAttention(max_workspaces=0)


def decode_batch_logits(model, factory, prompts, steps, dispatcher=None):
    """Per-step decode-batch logits for a batch of prompts.

    Prefills each prompt into its own caches, then runs ``steps``
    greedy decode-batch steps, returning the per-step logits array —
    the object whose bytes the grouped path must reproduce.
    """
    request_caches = []
    tokens = []
    for prompt in prompts:
        caches = factory()
        logits = model.forward_step(prompt.reshape(1, -1), caches)
        request_caches.append(caches)
        tokens.append(int(np.argmax(logits[0, -1])))
    history = []
    for _ in range(steps):
        batch = np.array(tokens).reshape(-1, 1)
        logits = model.forward_decode_batch(
            batch, request_caches, dispatcher=dispatcher
        )
        history.append(logits)
        tokens = [int(np.argmax(row[-1])) for row in logits]
    return history


def paged_factory(pool):
    def factory():
        return pool.create_sequence(np.array([1])).caches

    return factory


def make_factory(model, kv_mode, paged):
    if not paged:
        return make_cache_factory(model, kv_mode, 8)
    pool = KVPool(
        model.config,
        num_blocks=512,
        block_size=4,
        codec=make_kv_codec(kv_mode, 8),
        enable_prefix_cache=False,
    )
    return paged_factory(pool)


class TestGroupedBitwiseParity:
    #: Prompt lengths shaping the plan: an exact bucket (three equal
    #: lengths), a padded merge (two lengths one apart), and nothing
    #: left over — both grouped formulations exercised every step.
    MIXED_LENGTHS = (7, 7, 7, 10, 9)

    @pytest.mark.parametrize("kv_mode", KV_MODES)
    @pytest.mark.parametrize("paged", [False, True], ids=["unpaged", "paged"])
    def test_exact_and_padded_buckets_match_per_request(
        self, model, kv_mode, paged
    ):
        rng = np.random.default_rng(31)
        prompts = [
            rng.integers(0, 256, size=length) for length in self.MIXED_LENGTHS
        ]
        factory = make_factory(model, kv_mode, paged)
        grouped = decode_batch_logits(
            model, factory, prompts, steps=5, dispatcher=BucketedAttention()
        )
        factory = make_factory(model, kv_mode, paged)
        per_request = decode_batch_logits(model, factory, prompts, steps=5)
        for step, (ours, reference) in enumerate(zip(grouped, per_request)):
            assert bitwise_equal(ours, reference), f"diverged at step {step}"

    @pytest.mark.parametrize("kv_mode", KV_MODES)
    def test_rotary_family_grouped_parity(self, llama, kv_mode):
        rng = np.random.default_rng(37)
        prompts = [
            rng.integers(0, 256, size=length) for length in self.MIXED_LENGTHS
        ]
        factory = make_cache_factory(llama, kv_mode, 8)
        grouped = decode_batch_logits(
            llama, factory, prompts, steps=4, dispatcher=BucketedAttention()
        )
        factory = make_cache_factory(llama, kv_mode, 8)
        per_request = decode_batch_logits(llama, factory, prompts, steps=4)
        for ours, reference in zip(grouped, per_request):
            assert bitwise_equal(ours, reference)

    def test_singleton_buckets_stay_on_oracle_path(self, model):
        # All-distinct lengths: every bucket is a singleton, so the
        # grouped path must make zero grouped launches — each request
        # goes through _attention_core exactly as without a dispatcher.
        rng = np.random.default_rng(41)
        prompts = [rng.integers(0, 256, size=length) for length in (3, 12, 25)]
        factory = make_cache_factory(model, "fp16", 8)
        before = ATTENTION_STATS.snapshot()
        grouped = decode_batch_logits(
            model, factory, prompts, steps=3, dispatcher=BucketedAttention(0.0)
        )
        dispatches, grouped_requests, padded = (
            after - base for after, base in zip(ATTENTION_STATS.snapshot(), before)
        )
        assert grouped_requests == 0 and padded == 0
        factory = make_cache_factory(model, "fp16", 8)
        per_request = decode_batch_logits(model, factory, prompts, steps=3)
        for ours, reference in zip(grouped, per_request):
            assert bitwise_equal(ours, reference)

    def test_grouped_dispatch_counts_are_buckets_not_batch(self, model):
        rng = np.random.default_rng(43)
        prompts = [rng.integers(0, 256, size=6) for _ in range(8)]
        factory = make_cache_factory(model, "fp16", 8)
        caches = [factory() for _ in prompts]
        for prompt, request in zip(prompts, caches):
            model.forward_step(prompt.reshape(1, -1), request)
        token = np.full((len(prompts), 1), 5)
        n_layers = len(model.blocks)
        before = ATTENTION_STATS.dispatches
        model.forward_decode_batch(token, caches, dispatcher=BucketedAttention())
        grouped_launches = ATTENTION_STATS.dispatches - before
        assert grouped_launches == n_layers  # one bucket per layer
        before = ATTENTION_STATS.dispatches
        model.forward_decode_batch(token, caches)
        assert ATTENTION_STATS.dispatches - before == n_layers * len(prompts)

    def test_length_mismatch_rejected(self, model):
        # A plan computed from stale lengths must fail loudly, not
        # read the wrong rows.
        factory = make_cache_factory(model, "fp16", 8)
        caches = factory()
        model.forward_step(np.arange(6).reshape(1, -1), caches)
        attention = model.blocks[0].attention
        dispatcher = BucketedAttention()
        plan = dispatcher.plan([3])  # cache actually holds 6
        views = [layer_cache.view() for layer_cache in caches[:1]]
        q = np.zeros((1, attention.n_heads, 1, attention.head_dim))
        with pytest.raises(ModelError, match="KV length"):
            dispatcher.run_bucket(attention, plan.buckets[0], q, views, caches[:1])


class TestWorkspaceReuse:
    def run_steps(self, model, dispatcher, caches, token, steps):
        deltas = []
        for _ in range(steps):
            before = HOT_PATH_STATS.copy_bytes
            model.forward_decode_batch(token, caches, dispatcher=dispatcher)
            deltas.append(HOT_PATH_STATS.copy_bytes - before)
        return deltas

    def test_steady_state_syncs_only_the_appended_tail(self, model):
        # Same membership across steps: the first step syncs the full
        # history, the second crosses a capacity doubling (the initial
        # allocation lands exactly at the first length), and every
        # later step copies one position per member — a single
        # constant, the O(new tokens) hot-path contract.
        rng = np.random.default_rng(47)
        prompts = [rng.integers(0, 256, size=20) for _ in range(4)]
        factory = make_cache_factory(model, "fp16", 8)
        caches = [factory() for _ in prompts]
        for prompt, request in zip(prompts, caches):
            model.forward_step(prompt.reshape(1, -1), request)
        dispatcher = BucketedAttention()
        token = np.full((len(prompts), 1), 3)
        first, growth, *steady = self.run_steps(model, dispatcher, caches, token, 8)
        assert len(set(steady)) == 1
        assert 0 < steady[0] < first
        assert steady[0] < growth  # the doubling copy is not the norm
        assert len(dispatcher._workspaces) == len(model.blocks)

    def test_membership_change_starts_a_fresh_workspace(self, model):
        factory = make_cache_factory(model, "fp16", 8)
        first = [factory() for _ in range(2)]
        second = [factory() for _ in range(2)]
        for request in (*first, *second):
            model.forward_step(np.arange(5).reshape(1, -1), request)
        dispatcher = BucketedAttention()
        token = np.full((2, 1), 3)
        model.forward_decode_batch(token, first, dispatcher=dispatcher)
        assert len(dispatcher._workspaces) == len(model.blocks)
        model.forward_decode_batch(token, second, dispatcher=dispatcher)
        # New uid tuples -> new workspaces alongside the old ones.
        assert len(dispatcher._workspaces) == 2 * len(model.blocks)

    def test_max_workspaces_caps_the_table(self, model):
        factory = make_cache_factory(model, "fp16", 8)
        dispatcher = BucketedAttention(max_workspaces=2)
        token = np.full((2, 1), 3)
        for _ in range(4):
            caches = [factory() for _ in range(2)]
            for request in caches:
                model.forward_step(np.arange(4).reshape(1, -1), request)
            model.forward_decode_batch(token, caches, dispatcher=dispatcher)
        assert len(dispatcher._workspaces) <= 2


class TestEngineGrouped:
    def grouped_config(self, **overrides):
        return EngineConfig(grouped_attention=True, **overrides)

    @pytest.mark.parametrize("kv_mode", KV_MODES)
    def test_engine_tokens_match_ungrouped_engine(self, model, kv_mode):
        rng = np.random.default_rng(53)
        # Equal-length prompts decode at equal KV lengths: one exact
        # bucket per step, the engine's steady state.
        prompts = [rng.integers(0, 256, size=8) for _ in range(5)]
        grouped_engine = Engine(
            model, self.grouped_config(kv_mode=kv_mode, kv_mantissa_bits=6)
        )
        grouped = serve(model, prompts, max_new_tokens=8, engine=grouped_engine)
        ungrouped_engine = Engine(
            model,
            EngineConfig(
                grouped_attention=False, kv_mode=kv_mode, kv_mantissa_bits=6
            ),
        )
        ungrouped = serve(model, prompts, max_new_tokens=8, engine=ungrouped_engine)
        for ours, reference in zip(grouped, ungrouped):
            np.testing.assert_array_equal(ours.tokens, reference.tokens)
        with_groups = grouped_engine.metrics()
        without = ungrouped_engine.metrics()
        assert with_groups.attention_grouped_requests > 0
        assert without.attention_grouped_requests == 0
        # Fewer launches is the whole point.
        assert with_groups.attention_dispatches < without.attention_dispatches

    def test_padded_buckets_report_padded_reads(self, model):
        rng = np.random.default_rng(59)
        # Near-equal prompt lengths leave near-equal decode lengths:
        # the planner merges them into padded buckets, and the waste
        # must surface in the metrics (and, via traffic accounting,
        # in simulated KV-read bytes).
        prompts = [rng.integers(0, 256, size=size) for size in (30, 29, 28)]
        engine = Engine(model, self.grouped_config(kv_pool=False))
        results = serve(model, prompts, max_new_tokens=6, engine=engine)
        metrics = engine.metrics()
        assert metrics.attention_grouped_requests > 0
        assert metrics.attention_padded_reads > 0
        reference = serve(
            model, prompts, max_new_tokens=6,
            config=EngineConfig(grouped_attention=False),
        )
        for ours, expected in zip(results, reference):
            np.testing.assert_array_equal(ours.tokens, expected.tokens)

    def test_paged_engine_grouped_parity(self, model):
        rng = np.random.default_rng(61)
        prompts = [rng.integers(0, 256, size=8) for _ in range(4)]
        grouped = serve(
            model,
            prompts,
            max_new_tokens=8,
            config=self.grouped_config(
                kv_pool=True, kv_pool_blocks=64, kv_block_size=4
            ),
        )
        reference = serve(
            model,
            prompts,
            max_new_tokens=8,
            config=EngineConfig(
                grouped_attention=False,
                kv_pool=True,
                kv_pool_blocks=64,
                kv_block_size=4,
            ),
        )
        for ours, expected in zip(grouped, reference):
            np.testing.assert_array_equal(ours.tokens, expected.tokens)

    def test_pad_waste_config_validated(self):
        with pytest.raises(ModelError):
            EngineConfig(attention_pad_waste=1.0)
        with pytest.raises(ModelError):
            EngineConfig(attention_pad_waste=-0.5)
