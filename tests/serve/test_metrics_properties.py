"""Property tests for the metrics fold (:mod:`repro.serve.metrics`).

The Prometheus exposition and the regression-gate baselines both trust
:func:`summarize` to be a plain linear fold of step reports — every
cumulative :class:`EngineMetrics` counter equal to the sum of the
per-step fields, traffic folded component-wise, empty inputs producing
an all-zero summary rather than NaNs.  These properties are checked
over hypothesis-generated report lists instead of one hand-picked
workload.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.hw.traffic import StepTraffic
from repro.serve.metrics import EngineMetrics, StepReport, percentile, summarize

#: (StepReport field, EngineMetrics field) pairs related by summation.
SUMMED_FIELDS = (
    ("new_tokens", "total_new_tokens"),
    ("elapsed_seconds", "total_seconds"),
    ("prefill_tokens", "prefill_tokens"),
    ("partial_prefills", "partial_prefills"),
    ("preemptions", "preemptions"),
    ("evicted_blocks", "evicted_blocks"),
    ("prefix_hit_tokens", "prefix_hit_tokens"),
    ("prefix_saved_bytes", "prefix_saved_bytes"),
    ("kv_copy_bytes", "kv_copy_bytes"),
    ("kv_dequant_bytes", "kv_dequant_bytes"),
    ("attention_dispatches", "attention_dispatches"),
    ("attention_grouped_requests", "attention_grouped_requests"),
    ("attention_padded_reads", "attention_padded_reads"),
)

counts = st.integers(min_value=0, max_value=10_000)
byte_counts = st.integers(min_value=0, max_value=10**12)
seconds = st.floats(
    min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False
)
traffic_bytes = st.floats(
    min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False
)

step_traffics = st.builds(
    StepTraffic,
    weight_bytes=traffic_bytes,
    kv_read_bytes=traffic_bytes,
    kv_write_bytes=traffic_bytes,
    activation_bytes=traffic_bytes,
)

step_reports = st.builds(
    StepReport,
    step=counts,
    prefills=st.integers(min_value=0, max_value=64),
    decodes=st.integers(min_value=0, max_value=64),
    new_tokens=counts,
    batch_tokens=counts,
    elapsed_seconds=seconds,
    traffic=step_traffics,
    prefill_tokens=counts,
    partial_prefills=counts,
    preemptions=counts,
    evicted_blocks=counts,
    prefix_hit_tokens=counts,
    prefix_saved_bytes=traffic_bytes,
    kv_copy_bytes=byte_counts,
    kv_dequant_bytes=byte_counts,
    attention_dispatches=counts,
    attention_grouped_requests=counts,
    attention_padded_reads=counts,
)


class TestPercentile:
    def test_empty_values_fold_to_zero(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([], 0.0) == 0.0

    @given(q=st.floats(allow_nan=True))
    def test_q_outside_unit_interval_raises(self, q):
        if 0.0 <= q <= 1.0:
            percentile([1.0], q)
        else:
            with pytest.raises(ModelError, match=r"\[0, 1\]"):
                percentile([1.0], q)

    @given(
        value=st.floats(
            min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
        ),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_single_sample_is_every_percentile(self, value, q):
        assert percentile([value], q) == value

    @given(
        values=st.lists(
            st.floats(
                min_value=-1e9,
                max_value=1e9,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=1,
            max_size=50,
        ),
        q=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_result_bounded_by_extremes_and_monotone_at_ends(self, values, q):
        result = percentile(values, q)
        assert min(values) <= result <= max(values)
        assert percentile(values, 0.0) == min(values)
        assert percentile(values, 1.0) == max(values)


class TestSummarizeEmpty:
    def test_empty_reports_fold_to_zero_summary(self):
        metrics = summarize([], [])
        assert metrics.steps == 0
        assert metrics.total_new_tokens == 0
        assert metrics.total_seconds == 0.0
        assert metrics.tokens_per_second == 0.0
        assert metrics.mean_batch_size == 0.0
        assert metrics.traffic == StepTraffic()
        assert metrics.traffic.total_bytes == 0.0
        assert metrics.aborted == 0
        assert metrics.requests == []
        for _, aggregate in SUMMED_FIELDS:
            assert getattr(metrics, aggregate) == 0
        # Percentile views must render (as zero), not raise, before any
        # request finishes.
        assert metrics.ttft_p50_seconds == 0.0
        assert metrics.itl_p95_seconds == 0.0
        assert metrics.mean_latency_seconds == 0.0

    def test_idle_only_steps_have_zero_mean_batch_size(self):
        report = StepReport(
            step=0,
            prefills=0,
            decodes=0,
            new_tokens=0,
            batch_tokens=0,
            elapsed_seconds=0.5,
            traffic=StepTraffic(),
        )
        assert summarize([report, report], []).mean_batch_size == 0.0


class TestSummarizeFold:
    @settings(max_examples=50)
    @given(reports=st.lists(step_reports, max_size=30))
    def test_every_counter_is_the_sum_of_per_step_fields(self, reports):
        metrics = summarize(reports, [])
        assert metrics.steps == len(reports)
        for per_step, aggregate in SUMMED_FIELDS:
            expected = sum(getattr(report, per_step) for report in reports)
            assert getattr(metrics, aggregate) == pytest.approx(expected), (
                per_step,
                aggregate,
            )

    @settings(max_examples=50)
    @given(reports=st.lists(step_reports, max_size=30))
    def test_traffic_folds_component_wise(self, reports):
        traffic = summarize(reports, []).traffic
        for component in (
            "weight_bytes",
            "kv_read_bytes",
            "kv_write_bytes",
            "activation_bytes",
        ):
            expected = sum(getattr(report.traffic, component) for report in reports)
            assert getattr(traffic, component) == pytest.approx(expected)
        assert traffic.total_bytes == pytest.approx(
            traffic.weight_bytes
            + traffic.kv_read_bytes
            + traffic.kv_write_bytes
            + traffic.activation_bytes
        )

    @settings(max_examples=50)
    @given(reports=st.lists(step_reports, max_size=30))
    def test_throughput_and_batch_size_derivations(self, reports):
        metrics = summarize(reports, [])
        if metrics.total_seconds > 0:
            assert metrics.tokens_per_second == pytest.approx(
                metrics.total_new_tokens / metrics.total_seconds
            )
        else:
            assert metrics.tokens_per_second == 0.0
        active = [
            report.prefills + report.decodes
            for report in reports
            if report.prefills + report.decodes > 0
        ]
        if active:
            assert metrics.mean_batch_size == pytest.approx(sum(active) / len(active))
        else:
            assert metrics.mean_batch_size == 0.0
        assert not math.isnan(metrics.tokens_per_second)

    @settings(max_examples=25)
    @given(
        left=st.lists(step_reports, max_size=15),
        right=st.lists(step_reports, max_size=15),
        aborted=st.integers(min_value=0, max_value=100),
    )
    def test_fold_is_concatenation_linear(self, left, right, aborted):
        """summarize(a + b) sums what summarize(a) and summarize(b) sum."""
        combined = summarize(left + right, [], aborted=aborted)
        parts = (summarize(left, []), summarize(right, []))
        assert combined.steps == parts[0].steps + parts[1].steps
        assert combined.aborted == aborted
        for _, aggregate in SUMMED_FIELDS:
            assert getattr(combined, aggregate) == pytest.approx(
                getattr(parts[0], aggregate) + getattr(parts[1], aggregate)
            )
        assert combined.traffic.total_bytes == pytest.approx(
            parts[0].traffic.total_bytes + parts[1].traffic.total_bytes
        )

    def test_requests_are_copied_not_aliased(self):
        requests: list = []
        metrics = summarize([], requests)
        requests.append(object())
        assert metrics.requests == []

    def test_summary_is_an_engine_metrics(self):
        assert isinstance(summarize([], []), EngineMetrics)
