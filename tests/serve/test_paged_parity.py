"""Paged-engine tests: bitwise parity, prefix sharing, preemption.

The acceptance bar for the KV pool: the paged engine (FP16 and Anda
modes) emits tokens bitwise identical to the unpaged engine — through
block-granular storage, prefix-cache sharing, copy-on-write forks, and
preemption's recompute-on-resume replay.  Shared-prefix workloads must
show measurable prefill-compute and simulated-DRAM savings, and a
memory-pressure run must preempt yet still finish every request.
"""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.llm.config import tiny_test_config
from repro.llm.generation import generate
from repro.llm.kv_quant import make_cache_factory
from repro.llm.transformer import build_model
from repro.serve import Engine, EngineConfig
from serving_helpers import serve


@pytest.fixture(scope="module")
def model():
    return build_model(tiny_test_config("opt", d_model=32, n_layers=2))


@pytest.fixture(scope="module")
def llama():
    return build_model(tiny_test_config("llama", d_model=32, n_layers=2))


@pytest.fixture(scope="module")
def prompts():
    rng = np.random.default_rng(42)
    return [rng.integers(0, 256, size=length) for length in (5, 11, 3, 17)]


def paged_config(**overrides):
    defaults = dict(kv_pool=True, kv_pool_blocks=32, kv_block_size=4)
    defaults.update(overrides)
    return EngineConfig(**defaults)


def assert_parity(results, references):
    for served, expected in zip(results, references):
        np.testing.assert_array_equal(served.tokens, expected.tokens)


class TestPagedParity:
    @pytest.mark.parametrize("kv_mode", ["fp16", "anda"])
    def test_paged_tokens_match_unpaged_engine(self, model, prompts, kv_mode):
        paged = serve(
            model,
            prompts,
            max_new_tokens=8,
            config=paged_config(kv_mode=kv_mode, kv_mantissa_bits=6),
        )
        unpaged = serve(
            model,
            prompts,
            max_new_tokens=8,
            config=EngineConfig(kv_mode=kv_mode, kv_mantissa_bits=6),
        )
        assert_parity(paged, unpaged)

    @pytest.mark.parametrize("kv_mode", ["fp16", "anda"])
    def test_paged_tokens_match_sequential_generate(self, model, prompts, kv_mode):
        results = serve(
            model,
            prompts,
            max_new_tokens=8,
            config=paged_config(kv_mode=kv_mode, kv_mantissa_bits=6),
        )
        factory = make_cache_factory(model, kv_mode, 6)
        for prompt, result in zip(prompts, results):
            expected = generate(model, prompt, 8, cache_factory=factory)
            np.testing.assert_array_equal(result.tokens, expected.tokens)

    @pytest.mark.parametrize("kv_mode", ["fp16", "anda"])
    def test_rotary_family_paged_parity(self, llama, prompts, kv_mode):
        paged = serve(
            llama,
            prompts,
            max_new_tokens=8,
            config=paged_config(kv_mode=kv_mode, kv_mantissa_bits=6),
        )
        unpaged = serve(
            llama,
            prompts,
            max_new_tokens=8,
            config=EngineConfig(kv_mode=kv_mode, kv_mantissa_bits=6),
        )
        assert_parity(paged, unpaged)

    @pytest.mark.parametrize("block_size", [1, 3, 64])
    def test_block_size_never_changes_tokens(self, model, prompts, block_size):
        # Anda groups per position along the head dimension, so even
        # unaligned block sizes stay bitwise exact.
        paged = serve(
            model,
            prompts,
            max_new_tokens=6,
            config=paged_config(
                kv_mode="anda",
                kv_mantissa_bits=6,
                kv_block_size=block_size,
                kv_pool_blocks=64,
            ),
        )
        unpaged = serve(
            model,
            prompts,
            max_new_tokens=6,
            config=EngineConfig(kv_mode="anda", kv_mantissa_bits=6),
        )
        assert_parity(paged, unpaged)

    def test_sampled_decoding_parity(self, model, prompts):
        paged = serve(
            model, prompts, max_new_tokens=8, temperature=1.0, seed=9,
            config=paged_config(),
        )
        for prompt, result in zip(prompts, paged):
            expected = generate(model, prompt, 8, temperature=1.0, seed=9)
            np.testing.assert_array_equal(result.tokens, expected.tokens)


class TestPrefixSharing:
    def shared_prompts(self, count=4, common=12, tail=3, seed=0):
        rng = np.random.default_rng(seed)
        system = rng.integers(0, 256, size=common)
        return [
            np.concatenate([system, rng.integers(0, 256, size=tail)])
            for _ in range(count)
        ]

    def test_shared_prefix_hits_and_parity(self, model):
        prompts = self.shared_prompts()
        engine = Engine(model, paged_config())
        results = serve(model, prompts, max_new_tokens=6, engine=engine)
        unpaged = serve(model, prompts, max_new_tokens=6, config=EngineConfig())
        assert_parity(results, unpaged)
        metrics = engine.metrics()
        # 3 of 4 requests share the 12-token system prompt's 3 blocks.
        assert metrics.prefix_hit_tokens == 3 * 12
        assert metrics.prefix_saved_bytes > 0

    def test_shared_prefix_saves_prefill_compute_and_traffic(self, model):
        # Unchunked engines: monolithic prefill never re-reads cached
        # context, so gross savings equal the traffic delta exactly
        # (the chunked counterpart is pinned in test_chunked_prefill).
        prompts = self.shared_prompts(count=6, common=16, tail=2)
        with_cache = Engine(
            model, paged_config(kv_pool_blocks=64, chunked_prefill=False)
        )
        without_cache = Engine(
            model,
            paged_config(
                kv_pool_blocks=64, prefix_caching=False, chunked_prefill=False
            ),
        )
        results = serve(model, prompts, 4, engine=with_cache)
        baseline = serve(model, prompts, 4, engine=without_cache)
        assert_parity(results, baseline)
        hit, miss = with_cache.metrics(), without_cache.metrics()
        assert hit.prefix_hit_tokens >= 5 * 16
        assert miss.prefix_hit_tokens == 0
        # Prefill work (batch_tokens beyond one decode per new token)
        # and simulated DRAM both shrink with sharing.
        assert hit.traffic.kv_write_bytes < miss.traffic.kv_write_bytes
        assert hit.traffic.total_bytes < miss.traffic.total_bytes
        assert hit.prefix_saved_bytes == pytest.approx(
            miss.traffic.total_bytes - hit.traffic.total_bytes
        )

    def test_identical_prompts_fork_copy_on_write(self, model):
        # A block-aligned duplicated prompt shares all but its final
        # token; writing that token must fork the partial shared block.
        rng = np.random.default_rng(3)
        prompt = rng.integers(0, 256, size=8)
        engine = Engine(model, paged_config())
        results = serve(
            model, [prompt.copy() for _ in range(3)], 5, engine=engine
        )
        assert engine._pool.cow_forks >= 2
        expected = generate(model, prompt, 5)
        for result in results:
            np.testing.assert_array_equal(result.tokens, expected.tokens)

    def test_prefix_cache_survives_request_completion(self, model):
        prompt = np.arange(10, dtype=np.int64)
        engine = Engine(model, paged_config())
        serve(model, [prompt], 4, engine=engine)
        assert engine._pool.reclaimable_blocks > 0  # cached, evictable
        serve(model, [prompt.copy()], 4, engine=engine)
        assert engine.metrics().prefix_hit_tokens == 8  # 2 full blocks


class TestPreemption:
    def test_memory_pressure_preempts_and_completes(self, model):
        rng = np.random.default_rng(11)
        prompts = [rng.integers(0, 256, size=6) for _ in range(5)]
        # 8 blocks x 4 positions = 32 slots for 5 x 16 = 80 positions.
        engine = Engine(
            model,
            paged_config(kv_pool_blocks=8, max_batch_tokens=128),
        )
        results = serve(model, prompts, max_new_tokens=10, engine=engine)
        metrics = engine.metrics()
        assert metrics.preemptions > 0
        assert len(results) == len(prompts)
        unpaged = serve(model, prompts, max_new_tokens=10, config=EngineConfig())
        assert_parity(results, unpaged)

    def test_preempted_sampled_requests_resume_bitwise(self, model):
        rng = np.random.default_rng(13)
        prompts = [rng.integers(0, 256, size=5) for _ in range(4)]
        engine = Engine(
            model,
            paged_config(kv_pool_blocks=6, prefix_caching=False),
        )
        results = serve(
            model, prompts, max_new_tokens=12, temperature=1.0, seed=3,
            engine=engine,
        )
        assert engine.metrics().preemptions > 0
        for prompt, result in zip(prompts, results):
            expected = generate(model, prompt, 12, temperature=1.0, seed=3)
            np.testing.assert_array_equal(result.tokens, expected.tokens)

    def test_preemption_evicts_latest_arrival_first(self, model):
        rng = np.random.default_rng(17)
        prompts = [rng.integers(0, 256, size=6) for _ in range(4)]
        engine = Engine(model, paged_config(kv_pool_blocks=8))
        first = engine.submit(prompts[0], 10).request_id
        for prompt in prompts[1:]:
            engine.submit(prompt, 10)
        # Step until the first preemption: the earliest arrival must
        # still be resident (latest-arrival-first victim selection).
        for _ in range(200):
            if engine.step().report.preemptions:
                break
        else:
            pytest.fail("undersized pool never preempted")
        running_ids = {state.request.request_id for state in engine._running}
        assert first in running_ids
        results = {done.request_id for done in engine.drain(max_steps=400)}
        assert first in results  # everyone still completes

    def test_oversized_request_rejected_at_submit(self, model):
        engine = Engine(model, paged_config(kv_pool_blocks=4))
        with pytest.raises(ModelError):
            # 4 blocks x 4 tokens = 16 slots, minus one CoW slack block.
            engine.submit(np.arange(10, dtype=np.int64), 6)
        assert not engine.has_work()


class TestMidStepFailureRecovery:
    def test_failed_prefill_does_not_corrupt_finished_decode(self, model):
        # One step can both finish a decode and admit a prefill.  If
        # the prefill raises, the finished request (caches already
        # released) must already be out of the running set, and the
        # failed request must stay queued and be servable afterwards.
        # (Legacy whole-prompt path; the chunked-path recovery is
        # pinned in test_chunked_prefill.)
        engine = Engine(model, paged_config(chunked_prefill=False))
        engine.submit(np.arange(4, dtype=np.int64), max_new_tokens=2)
        engine.step()  # prefill: emits token 1 of 2
        engine.submit(np.arange(6, dtype=np.int64), max_new_tokens=3)

        real_forward_step = engine.model.forward_step

        def failing_forward_step(*args, **kwargs):
            raise ModelError("injected prefill failure")

        engine.model.forward_step = failing_forward_step
        try:
            with pytest.raises(ModelError, match="injected"):
                engine.step()  # decode finishes request 0; prefill blows up
        finally:
            engine.model.forward_step = real_forward_step
        assert engine._running == []  # finished request did not linger
        done = engine.drain(max_steps=20)  # queued request still serves
        assert sorted(result.request_id for result in done) == [0, 1]
        assert len(done[1].continuation()) == 3


class TestDrainGuard:
    def test_drain_max_steps_raises_instead_of_spinning(self, model):
        engine = Engine(model, EngineConfig())
        engine.submit(np.arange(4, dtype=np.int64), max_new_tokens=8)
        with pytest.raises(ModelError):
            engine.drain(max_steps=2)

    def test_drain_max_steps_validates(self, model):
        engine = Engine(model, EngineConfig())
        with pytest.raises(ModelError):
            engine.drain(max_steps=0)

    def test_generous_max_steps_drains_normally(self, model, prompts):
        engine = Engine(model, EngineConfig())
        engine.submit(prompts[0], 3)
        done = engine.drain(max_steps=50)
        assert len(done) == 1

    def test_starved_queue_raises_clear_error(self, model, monkeypatch):
        # Simulate a scheduler bug: a plan that never admits or decodes.
        import repro.serve.engine as engine_module
        from repro.serve.scheduler import StepPlan

        engine = Engine(model, EngineConfig())
        engine.submit(np.arange(4, dtype=np.int64), 4)
        monkeypatch.setattr(
            engine_module,
            "plan_step",
            lambda *args, **kwargs: StepPlan(decodes=[], prefills=[]),
        )
        with pytest.raises(ModelError, match="no progress"):
            engine.drain()


class TestPoolConfigValidation:
    def test_bad_pool_sizes_rejected(self):
        with pytest.raises(ModelError):
            EngineConfig(kv_pool=True, kv_pool_blocks=1)
        with pytest.raises(ModelError):
            EngineConfig(kv_pool=True, kv_block_size=0)

    def test_pool_metrics_counters_default_zero_unpaged(self, model, prompts):
        engine = Engine(model, EngineConfig())
        serve(model, prompts[:2], 3, engine=engine)
        metrics = engine.metrics()
        assert metrics.preemptions == 0
        assert metrics.evicted_blocks == 0
        assert metrics.prefix_hit_tokens == 0
        assert metrics.prefix_saved_bytes == 0.0
