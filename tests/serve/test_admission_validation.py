"""Regression: non-integer prompts must be rejected at the admission
boundary, not explode steps later inside the embedding.

Before the fix, ``validate_admission`` range-checked token ids without
checking the dtype, so a float prompt (e.g. the output of tokenizer
math gone wrong) sailed through ``submit`` and then raised IndexError
deep inside the embedding on the *next step* — and, because the failed
request stayed queued, on every step after that: one bad request
permanently wedged the engine for all tenants.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RequestError
from repro.llm.zoo import get_model
from repro.serve import Engine, EngineConfig, SamplingParams
from repro.serve.scheduler import validate_admission


@pytest.fixture(scope="module")
def model():
    return get_model("opt-125m-sim")


def test_float_prompt_rejected_at_submit(model):
    engine = Engine(model, config=EngineConfig(max_batch_size=2))
    with pytest.raises(RequestError, match="integer dtype"):
        engine.submit(np.array([1.5, 2.5]), SamplingParams(max_new_tokens=2))
    # The boundary rejection must leave the engine serviceable.
    assert not engine.has_work()
    handle = engine.submit([3, 1, 2], SamplingParams(max_new_tokens=2))
    engine.run_until_idle()
    result = handle.result()
    assert len(result.tokens) - result.prompt_length == 2


def test_float_prompt_no_longer_wedges_the_step_loop(model):
    # The pre-fix failure mode: submit succeeded, then every step
    # raised IndexError forever.  Now the engine never sees the request.
    engine = Engine(model, config=EngineConfig(max_batch_size=2))
    with pytest.raises(RequestError):
        engine.submit(np.array([0.25, 1.75, 2.0]), SamplingParams(max_new_tokens=1))
    outputs = engine.step()  # must not raise, must be a no-op
    assert outputs.deltas == ()


def test_validate_admission_dtype_matrix(model):
    params = SamplingParams(max_new_tokens=1)
    config = model.config
    for good in (np.array([1, 2]), np.array([1, 2], dtype=np.uint16)):
        validate_admission(good, params, config)
    for bad in (
        np.array([1.0, 2.0]),
        np.array([1, 2], dtype=np.float16),
        np.array([True, False]),
        np.array([1 + 0j, 2 + 0j]),
    ):
        with pytest.raises(RequestError, match="integer dtype"):
            validate_admission(bad, params, config)


def test_empty_prompt_message_unchanged(model):
    # np.asarray([]) is float64; emptiness must still win the race so
    # the long-standing empty-prompt message stays stable.
    with pytest.raises(RequestError, match="at least one token"):
        validate_admission(
            np.asarray([]), SamplingParams(max_new_tokens=1), model.config
        )


def test_non_1d_prompt_rejected(model):
    with pytest.raises(RequestError, match="1-D"):
        validate_admission(
            np.array([[1, 2], [3, 4]]), SamplingParams(max_new_tokens=1), model.config
        )
