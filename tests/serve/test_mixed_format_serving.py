"""Mixed-precision serving: one engine, heterogeneous KV formats.

The load-bearing guarantee of the format redesign: a batch whose
requests override ``SamplingParams.kv_format`` emits, request for
request, exactly the tokens each format's *solo* engine (configured
engine-wide with that format) would emit — across paged/unpaged and
chunked/unchunked serving.  On top: the prefix cache never mixes
byte-incompatible formats, and telemetry splits KV traffic by format.
"""

import numpy as np
import pytest

from repro.llm.config import tiny_test_config
from repro.llm.kv_quant import KVFormat
from repro.llm.transformer import build_model
from repro.llm.zoo import get_model
from repro.serve import Engine, EngineConfig, SamplingParams


@pytest.fixture(scope="module")
def model():
    return get_model("opt-125m-sim")


@pytest.fixture(scope="module")
def prompts():
    rng = np.random.default_rng(11)
    return [rng.integers(0, 256, size=length) for length in (6, 13, 21, 9)]


#: One format per request in the mixed batch (None inherits the engine
#: default, anda6; fp16 and bfp5 are byte-incompatible overrides).
REQUEST_FORMATS = [None, KVFormat.fp16(), KVFormat.bfp(5), KVFormat.anda(4)]

MODES = [
    pytest.param(kv_pool, chunked, id=f"{'paged' if kv_pool else 'unpaged'}-"
                 f"{'chunked' if chunked else 'unchunked'}")
    for kv_pool in (False, True)
    for chunked in (False, True)
]


def run_engine(model, prompts, formats, config, max_new_tokens=6):
    engine = Engine(model, config)
    handles = [
        engine.submit(
            prompt,
            SamplingParams(max_new_tokens=max_new_tokens, kv_format=fmt),
        )
        for prompt, fmt in zip(prompts, formats)
    ]
    while engine.has_work():
        engine.step()
    return engine, [handle.result().tokens for handle in handles]


def make_config(kv_pool, chunked, **overrides):
    return EngineConfig(
        kv_format=overrides.pop("kv_format", KVFormat.anda(6)),
        kv_pool=kv_pool,
        chunked_prefill=chunked,
        max_batch_tokens=overrides.pop("max_batch_tokens", 16),
        **overrides,
    )


class TestMixedBatchParity:
    @pytest.mark.parametrize("kv_pool,chunked", MODES)
    def test_tokens_match_per_format_solo_engines(
        self, model, prompts, kv_pool, chunked
    ):
        config = make_config(kv_pool, chunked)
        _, mixed = run_engine(model, prompts, REQUEST_FORMATS, config)
        for prompt, fmt, tokens in zip(prompts, REQUEST_FORMATS, mixed):
            solo_config = make_config(
                kv_pool, chunked, kv_format=fmt or KVFormat.anda(6)
            )
            _, solo = run_engine(model, [prompt], [None], solo_config)
            np.testing.assert_array_equal(tokens, solo[0])

    @pytest.mark.parametrize("kv_pool,chunked", MODES)
    def test_per_layer_override_in_mixed_batch(self, prompts, kv_pool, chunked):
        tiny = build_model(tiny_test_config("opt", d_model=32, n_layers=2))
        stack = KVFormat.per_layer([KVFormat.anda(4), KVFormat.fp16()])
        formats = [None, stack, None, stack]
        config = make_config(kv_pool, chunked, kv_format=KVFormat.fp16())
        _, mixed = run_engine(tiny, prompts, formats, config)
        for prompt, fmt, tokens in zip(prompts, formats, mixed):
            solo_config = make_config(
                kv_pool, chunked, kv_format=fmt or KVFormat.fp16()
            )
            _, solo = run_engine(tiny, [prompt], [None], solo_config)
            np.testing.assert_array_equal(tokens, solo[0])

    def test_per_layer_engine_default_paged_matches_unpaged(self, prompts):
        # The pool's per-layer default codecs (pool.codecs) must write
        # the same bytes the unpaged per-layer caches write.
        tiny = build_model(tiny_test_config("opt", d_model=32, n_layers=2))
        stack = KVFormat.per_layer([KVFormat.anda(4), KVFormat.fp16()])
        formats = [None] * len(prompts)
        _, unpaged = run_engine(
            tiny, prompts, formats, make_config(False, False, kv_format=stack)
        )
        _, paged = run_engine(
            tiny, prompts, formats, make_config(True, False, kv_format=stack)
        )
        for a, b in zip(unpaged, paged):
            np.testing.assert_array_equal(a, b)


class TestFormatSplitTelemetry:
    def test_metrics_split_by_label(self, model, prompts):
        engine, _ = run_engine(
            model, prompts, REQUEST_FORMATS, make_config(True, True)
        )
        split = dict(engine.metrics().kv_format_bytes)
        assert set(split) == {"anda6", "fp16", "bfp5", "anda4"}
        assert all(value > 0 for value in split.values())

    def test_split_sums_to_step_kv_traffic_without_padding(self, model, prompts):
        # With grouped attention off there are no padded reads, so the
        # per-format attribution covers the KV streams exactly.
        engine, _ = run_engine(
            model,
            prompts,
            REQUEST_FORMATS,
            make_config(False, False, grouped_attention=False),
        )
        metrics = engine.metrics()
        split_total = sum(dict(metrics.kv_format_bytes).values())
        kv_total = metrics.traffic.kv_read_bytes + metrics.traffic.kv_write_bytes
        assert split_total == pytest.approx(kv_total, rel=1e-9)

    def test_prometheus_counter_per_format(self, model, prompts):
        engine, _ = run_engine(
            model, prompts, REQUEST_FORMATS, make_config(True, False)
        )
        text = engine.telemetry.prometheus()
        assert "repro_engine_kv_format_bytes_total" in text
        for label in ("anda6", "fp16", "bfp5", "anda4"):
            assert f'format="{label}"' in text

    def test_uniform_traffic_unchanged_by_redesign(self, model, prompts):
        # A single-format batch must charge exactly what the scalar
        # kv_bits arithmetic always charged (no float re-association).
        engine_new, _ = run_engine(
            model, prompts, [None] * len(prompts), make_config(False, False)
        )
        with pytest.warns(DeprecationWarning):
            legacy_config = EngineConfig(
                kv_mode="anda",
                kv_mantissa_bits=6,
                kv_pool=False,
                chunked_prefill=False,
                max_batch_tokens=16,
            )
        engine_old, _ = run_engine(
            model, prompts, [None] * len(prompts), legacy_config
        )
        assert (
            engine_new.metrics().traffic.total_bytes
            == engine_old.metrics().traffic.total_bytes
        )


class TestPrefixSharingGuard:
    def shared_prompts(self):
        rng = np.random.default_rng(3)
        prefix = rng.integers(0, 256, size=70)
        return [
            np.concatenate([prefix, rng.integers(0, 256, size=6)]),
            np.concatenate([prefix, rng.integers(0, 256, size=9)]),
        ]

    def test_default_format_requests_still_share(self, model):
        prompts = self.shared_prompts()
        engine, _ = run_engine(
            model, prompts, [None, None], make_config(True, False)
        )
        assert engine.metrics().prefix_hit_tokens > 0

    def test_private_format_request_never_shares(self, model):
        prompts = self.shared_prompts()
        engine, tokens = run_engine(
            model,
            prompts,
            [None, KVFormat.fp16()],
            make_config(True, False),
        )
        # The fp16 override must not read the anda6 donor's blocks...
        assert engine.metrics().prefix_hit_tokens == 0
        # ...and must still decode exactly like its solo engine.
        _, solo = run_engine(
            model,
            [prompts[1]],
            [None],
            make_config(True, False, kv_format=KVFormat.fp16()),
        )
        np.testing.assert_array_equal(tokens[1], solo[0])

    def test_private_blocks_never_enter_the_cache(self, model):
        prompts = self.shared_prompts()
        # Submit the override FIRST: if its blocks were registered, the
        # second (default-format) request would "hit" wrong-format
        # bytes.  With the guard, the default request gets no hit and
        # decodes from its own correctly-formatted blocks.
        engine, tokens = run_engine(
            model,
            prompts,
            [KVFormat.fp16(), None],
            make_config(True, False),
        )
        assert engine.metrics().prefix_hit_tokens == 0
        _, solo = run_engine(
            model, [prompts[1]], [None], make_config(True, False)
        )
        np.testing.assert_array_equal(tokens[1], solo[0])

    def test_same_format_override_still_shares(self, model):
        # An explicit override equal to the engine default is byte
        # compatible — sharing stays on (kv_private is signature-based,
        # not identity-based).
        prompts = self.shared_prompts()
        engine, _ = run_engine(
            model,
            prompts,
            [None, KVFormat.anda(6)],
            make_config(True, False),
        )
        assert engine.metrics().prefix_hit_tokens > 0
