"""Engine tests: token parity with sequential decoding, lifecycle, metrics.

The load-bearing guarantee: batched continuous decoding emits exactly
the tokens N independent ``generate()`` calls would — for mixed prompt
lengths, mid-stream arrivals, greedy and sampled decoding, and both
FP16 and Anda-compressed KV caches.
"""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.llm.config import tiny_test_config
from repro.llm.generation import generate
from repro.llm.kv_quant import make_cache_factory
from repro.llm.transformer import build_model
from repro.llm.zoo import get_model
from repro.serve import Engine, EngineConfig, RequestStatus
from serving_helpers import serve


@pytest.fixture(scope="module")
def model():
    return get_model("opt-125m-sim")


@pytest.fixture(scope="module")
def prompts():
    rng = np.random.default_rng(42)
    return [rng.integers(0, 256, size=length) for length in (5, 11, 3, 17)]


def reference(model, prompt, max_new_tokens, kv_mode="fp16", bits=8, **kwargs):
    return generate(
        model,
        prompt,
        max_new_tokens,
        cache_factory=make_cache_factory(model, kv_mode, bits),
        **kwargs,
    )


class TestGreedyParity:
    @pytest.mark.parametrize("kv_mode", ["fp16", "anda"])
    def test_mixed_prompt_lengths_token_identical(self, model, prompts, kv_mode):
        config = EngineConfig(kv_mode=kv_mode, kv_mantissa_bits=6)
        results = serve(model, prompts, max_new_tokens=8, config=config)
        for prompt, result in zip(prompts, results):
            expected = reference(model, prompt, 8, kv_mode=kv_mode, bits=6)
            np.testing.assert_array_equal(result.tokens, expected.tokens)

    def test_results_align_with_submission_order(self, model, prompts):
        results = serve(model, prompts, max_new_tokens=4)
        for prompt, result in zip(prompts, results):
            np.testing.assert_array_equal(result.tokens[: prompt.shape[0]], prompt)
            assert result.prompt_length == prompt.shape[0]
            assert result.continuation().shape[0] == 4

    @pytest.mark.parametrize("kv_mode", ["fp16", "anda"])
    def test_llama_family_rotary_decode_parity(self, prompts, kv_mode):
        # LLaMA-style models gather per-request rotary phases in the
        # batched path; untrained weights suffice for token parity.
        llama = build_model(tiny_test_config("llama", d_model=32, n_layers=2))
        config = EngineConfig(kv_mode=kv_mode, kv_mantissa_bits=6)
        results = serve(llama, prompts, max_new_tokens=8, config=config)
        for prompt, result in zip(prompts, results):
            expected = reference(llama, prompt, 8, kv_mode=kv_mode, bits=6)
            np.testing.assert_array_equal(result.tokens, expected.tokens)

    def test_tiny_batch_budget_still_token_identical(self, model, prompts):
        # A starved scheduler (one admission at a time) changes step
        # composition but must not change any emitted token.
        config = EngineConfig(max_batch_size=2, max_batch_tokens=18)
        results = serve(model, prompts, max_new_tokens=6, config=config)
        for prompt, result in zip(prompts, results):
            expected = generate(model, prompt, 6)
            np.testing.assert_array_equal(result.tokens, expected.tokens)


class TestMidStreamArrival:
    def test_late_submission_token_identical(self, model, prompts):
        engine = Engine(model, EngineConfig(max_batch_tokens=64))
        early_a = engine.submit(prompts[0], 10).request_id
        early_b = engine.submit(prompts[1], 6).request_id
        for _ in range(3):
            engine.step()
        late = engine.submit(prompts[2], 12).request_id
        done = {result.request_id: result for result in engine.drain()}
        for request_id, prompt, count in [
            (early_a, prompts[0], 10),
            (early_b, prompts[1], 6),
            (late, prompts[2], 12),
        ]:
            expected = generate(model, prompt, count)
            np.testing.assert_array_equal(done[request_id].tokens, expected.tokens)

    def test_late_arrival_joins_running_batch(self, model, prompts):
        engine = Engine(model)
        engine.submit(prompts[0], 12)
        engine.step()
        engine.submit(prompts[1], 4)
        report = engine.step().report
        # One running decode plus the late arrival's prefill share a step.
        assert report.decodes == 1
        assert report.prefills == 1


class TestSampledParity:
    def test_same_seed_matches_generate(self, model, prompts):
        results = serve(
            model, prompts[:2], max_new_tokens=8, temperature=1.0, seed=9
        )
        for prompt, result in zip(prompts, results):
            expected = generate(model, prompt, 8, temperature=1.0, seed=9)
            np.testing.assert_array_equal(result.tokens, expected.tokens)


class TestLifecycle:
    def test_submit_validation_mirrors_generate(self, model):
        engine = Engine(model)
        with pytest.raises(ModelError):
            engine.submit(np.array([], dtype=np.int64), 4)
        with pytest.raises(ModelError):
            engine.submit(np.array([1, 2]), 0)
        with pytest.raises(ModelError):
            engine.submit(np.array([1, 2]), model.config.max_seq_len)
        with pytest.raises(ModelError):
            engine.submit(np.array([1, 2]), 4, temperature=1.0, top_k=0)

    def test_unknown_policy_and_kv_mode_rejected(self, model):
        with pytest.raises(ModelError):
            Engine(model, EngineConfig(policy="lifo"))
        with pytest.raises(ModelError):
            EngineConfig(kv_mode="int4")

    def test_bad_kv_mantissa_fails_at_construction_not_mid_step(self):
        # A deferred failure here used to drop the request silently.
        with pytest.raises(ModelError):
            EngineConfig(kv_mode="anda", kv_mantissa_bits=0)
        with pytest.raises(ModelError):
            EngineConfig(kv_mode="anda", kv_mantissa_bits=17)

    def test_bad_batch_limits_fail_at_construction(self):
        with pytest.raises(ModelError):
            EngineConfig(max_batch_size=0)
        with pytest.raises(ModelError):
            EngineConfig(max_batch_tokens=0)

    def test_serve_batch_accepts_prebuilt_engine(self, model, prompts):
        engine = Engine(model)
        results = serve(model, prompts[:2], 3, engine=engine)
        assert len(results) == 2
        assert engine.metrics().total_new_tokens == 6

    def test_serve_batch_preserves_foreign_requests_on_shared_engine(
        self, model, prompts
    ):
        engine = Engine(model)
        foreign = engine.submit(prompts[0], 4).request_id
        results = serve(model, [prompts[1]], 3, engine=engine)
        assert [len(r.continuation()) for r in results] == [3]
        leftover = engine.pop_finished()
        assert [done.request_id for done in leftover] == [foreign]
        expected = generate(model, prompts[0], 4)
        np.testing.assert_array_equal(leftover[0].tokens, expected.tokens)

    def test_drain_collects_once_and_engine_is_reusable(self, model, prompts):
        engine = Engine(model)
        engine.submit(prompts[0], 3)
        assert len(engine.drain()) == 1
        # Collect-once: already-returned results are released, so a
        # reused engine does not accumulate token arrays forever.
        assert engine.drain() == []
        assert not engine.has_work()
        engine.submit(prompts[1], 3)
        assert engine.has_work()
        assert len(engine.drain()) == 1
        assert engine.metrics().total_new_tokens == 6

    def test_out_of_vocab_prompt_rejected_at_submit(self, model):
        engine = Engine(model)
        with pytest.raises(ModelError):
            engine.submit(np.array([0, model.config.vocab_size]), 2)
        with pytest.raises(ModelError):
            engine.submit(np.array([-1, 3]), 2)
        assert not engine.has_work()

    def test_finished_requests_release_kv_memory(self, model, prompts):
        engine = Engine(model)
        engine.submit(prompts[0], 2)
        done = engine.drain()
        assert done[0].metrics.generated_tokens == 2
        assert engine._running == []

    def test_pop_finished_clears(self, model, prompts):
        engine = Engine(model)
        engine.submit(prompts[0], 2)
        while engine.has_work():
            engine.step()
        assert len(engine.pop_finished()) == 1
        assert engine.pop_finished() == []

    def test_metrics_survive_pop_finished(self, model, prompts):
        engine = Engine(model)
        engine.submit(prompts[0], 2)
        engine.drain()
        engine.pop_finished()
        metrics = engine.metrics()
        assert len(metrics.requests) == 1
        assert metrics.mean_latency_seconds > 0.0

    def test_submitted_prompt_buffer_can_be_reused(self, model):
        # The engine defers prefill; mutating the caller's buffer after
        # submit must not change what gets served.
        buffer = np.arange(6, dtype=np.int64) % 256
        engine = Engine(model)
        engine.submit(buffer, 3)
        expected = generate(model, buffer.copy(), 3)
        buffer[:] = 0
        done = engine.drain()[0]
        np.testing.assert_array_equal(done.tokens, expected.tokens)


class TestMetrics:
    def test_request_metrics_ordering(self, model, prompts):
        engine = Engine(model)
        engine.submit(prompts[0], 5)
        engine.drain()
        metrics = engine.metrics()
        record = metrics.requests[0]
        assert record.generated_tokens == 5
        assert 0 <= record.ttft_steps <= record.latency_steps
        assert 0.0 <= record.ttft_seconds <= record.latency_seconds
        assert metrics.total_new_tokens == 5
        assert metrics.tokens_per_second > 0

    def test_batched_run_reports_mean_batch_size(self, model, prompts):
        config = EngineConfig(max_batch_tokens=64)
        engine = Engine(model, config)
        for prompt in prompts:
            engine.submit(prompt, 6)
        engine.drain()
        assert engine.metrics().mean_batch_size > 1.0

    def test_anda_kv_moves_less_traffic_than_fp16(self, model, prompts):
        totals = {}
        for kv_mode in ("fp16", "anda"):
            engine = Engine(model, EngineConfig(kv_mode=kv_mode))
            for prompt in prompts:
                engine.submit(prompt, 6)
            engine.drain()
            totals[kv_mode] = engine.metrics().traffic
        assert (
            totals["anda"].kv_read_bytes + totals["anda"].kv_write_bytes
            < totals["fp16"].kv_read_bytes + totals["fp16"].kv_write_bytes
        )
        # Weight traffic is KV-mode independent.
        assert totals["anda"].weight_bytes == totals["fp16"].weight_bytes


class TestStatusTransitions:
    def test_waiting_running_finished(self, model, prompts):
        engine = Engine(model)
        engine.submit(prompts[0], 2)
        state = engine._waiting[0]
        assert state.status is RequestStatus.WAITING
        engine.step()
        assert state.status is RequestStatus.RUNNING
        engine.step()
        assert state.status is RequestStatus.FINISHED
