"""Tests for the step-level scheduler: policies, budget, chunking."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.serve.request import Request, RequestState, RequestStatus
from repro.serve.scheduler import (
    FcfsPolicy,
    ShortestPromptFirstPolicy,
    get_policy,
    plan_step,
)


def make_state(
    request_id: int,
    prompt_length: int,
    running: bool = False,
    prefill_pos: int = 0,
):
    state = RequestState(
        request=Request(
            request_id=request_id,
            prompt=np.arange(prompt_length) % 256,
            max_new_tokens=4,
        )
    )
    if running:
        state.status = RequestStatus.RUNNING
    if prefill_pos:
        state.prefill_pos = prefill_pos
        state.status = RequestStatus.PREFILLING
    return state


class TestPolicies:
    def test_fcfs_keeps_arrival_order(self):
        waiting = [make_state(0, 9), make_state(1, 2), make_state(2, 5)]
        ordered = FcfsPolicy().order(waiting)
        assert [s.request.request_id for s in ordered] == [0, 1, 2]

    def test_shortest_prompt_first_sorts_by_length(self):
        waiting = [make_state(0, 9), make_state(1, 2), make_state(2, 5)]
        ordered = ShortestPromptFirstPolicy().order(waiting)
        assert [s.request.request_id for s in ordered] == [1, 2, 0]

    def test_shortest_prompt_ties_break_by_id(self):
        waiting = [make_state(3, 4), make_state(1, 4), make_state(2, 4)]
        ordered = ShortestPromptFirstPolicy().order(waiting)
        assert [s.request.request_id for s in ordered] == [1, 2, 3]

    def test_get_policy_by_name(self):
        assert isinstance(get_policy("fcfs"), FcfsPolicy)
        assert isinstance(
            get_policy("shortest-prompt-first"), ShortestPromptFirstPolicy
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ModelError):
            get_policy("round-robin")


class TestPlanStep:
    def test_decodes_reserve_budget_first(self):
        running = [make_state(0, 4, running=True), make_state(1, 4, running=True)]
        waiting = [make_state(2, 6)]
        plan = plan_step(waiting, running, FcfsPolicy(), 8, 8)
        # 2 decode tokens leave 6 tokens of budget: the prefill fits.
        assert len(plan.decodes) == 2
        assert [s.request.request_id for s in plan.prefills] == [2]
        assert plan.budget_tokens == 8

    def test_token_budget_caps_admissions(self):
        waiting = [make_state(0, 5), make_state(1, 5), make_state(2, 5)]
        plan = plan_step(waiting, [], FcfsPolicy(), 8, 11)
        assert [s.request.request_id for s in plan.prefills] == [0, 1]

    def test_admission_stops_at_first_misfit(self):
        # Head-of-line blocking is deliberate: request 1 does not fit,
        # so request 2 (which would fit) must wait behind it.
        waiting = [make_state(0, 4), make_state(1, 10), make_state(2, 1)]
        plan = plan_step(waiting, [], FcfsPolicy(), 8, 8)
        assert [s.request.request_id for s in plan.prefills] == [0]

    def test_batch_size_caps_admissions(self):
        waiting = [make_state(i, 1) for i in range(5)]
        plan = plan_step(waiting, [], FcfsPolicy(), 3, 100)
        assert len(plan.prefills) == 3

    def test_running_at_capacity_blocks_prefill(self):
        running = [make_state(i, 2, running=True) for i in range(4)]
        waiting = [make_state(9, 1)]
        plan = plan_step(waiting, running, FcfsPolicy(), 4, 100)
        assert plan.prefills == []
        assert len(plan.decodes) == 4

    def test_oversized_prompt_runs_alone(self):
        waiting = [make_state(0, 50), make_state(1, 2)]
        plan = plan_step(waiting, [], FcfsPolicy(), 8, 8)
        assert [s.request.request_id for s in plan.prefills] == [0]
        assert plan.budget_tokens == 50

    def test_oversized_prompt_waits_while_decodes_run(self):
        running = [make_state(1, 2, running=True)]
        waiting = [make_state(0, 50)]
        plan = plan_step(waiting, running, FcfsPolicy(), 8, 8)
        assert plan.prefills == []

    def test_policy_shapes_admission(self):
        waiting = [make_state(0, 7), make_state(1, 3)]
        fcfs = plan_step(waiting, [], FcfsPolicy(), 8, 8)
        spf = plan_step(waiting, [], ShortestPromptFirstPolicy(), 8, 8)
        assert [s.request.request_id for s in fcfs.prefills] == [0]
        assert [s.request.request_id for s in spf.prefills] == [1]

    def test_invalid_limits_rejected(self):
        with pytest.raises(ModelError):
            plan_step([], [], FcfsPolicy(), 0, 8)
        with pytest.raises(ModelError):
            plan_step([], [], FcfsPolicy(), 8, 0)

    def test_empty_plan(self):
        plan = plan_step([], [], FcfsPolicy(), 8, 8)
        assert plan.empty
        assert plan.budget_tokens == 0


class TestChunkedPlanning:
    def test_oversized_prompt_gets_budget_sized_chunk(self):
        waiting = [make_state(0, 50)]
        plan = plan_step(waiting, [], FcfsPolicy(), 8, 8, chunking=True)
        assert len(plan.prefills) == 1
        chunk = plan.prefills[0]
        assert chunk.tokens == 8
        assert not chunk.completes

    def test_chunk_rides_with_decodes_on_leftover_budget(self):
        running = [make_state(0, 4, running=True), make_state(1, 4, running=True)]
        waiting = [make_state(2, 50)]
        plan = plan_step(waiting, running, FcfsPolicy(), 8, 10, chunking=True)
        assert len(plan.decodes) == 2
        assert plan.prefills[0].tokens == 8  # 10 budget - 2 decode tokens
        assert plan.budget_tokens == 10

    def test_decodes_consuming_whole_budget_block_chunks(self):
        running = [make_state(index, 2, running=True) for index in range(4)]
        waiting = [make_state(9, 50)]
        plan = plan_step(waiting, running, FcfsPolicy(), 8, 4, chunking=True)
        assert plan.prefills == []
        assert len(plan.decodes) == 4

    def test_inflight_continuation_exempt_from_slot_cap(self):
        # Three running decodes fill a 4-slot engine alongside the
        # half-prefilled request's reserved slot; its continuation must
        # still be admitted while a fresh request is not.
        running = [make_state(index, 2, running=True) for index in range(3)]
        inflight = make_state(3, 40, prefill_pos=16)
        fresh = make_state(4, 4)
        plan = plan_step([inflight, fresh], running, FcfsPolicy(), 4, 32, chunking=True)
        assert [c.state.request.request_id for c in plan.prefills] == [3]
        assert plan.prefills[0].tokens == 24  # finishes the prompt

    def test_slot_exhaustion_skips_fresh_but_not_continuations(self):
        # Shortest-prompt-first orders a fresh short prompt ahead of a
        # half-prefilled long one.  With every slot taken, the fresh
        # candidate is skipped — not head-of-line-blocking the walk —
        # so the slot-exempt continuation still gets its chunk instead
        # of pinning its KV blocks forever.
        running = [make_state(index, 2, running=True) for index in range(3)]
        inflight = make_state(3, 60, prefill_pos=16)
        fresh = make_state(4, 2)
        plan = plan_step(
            [inflight, fresh],
            running,
            ShortestPromptFirstPolicy(),
            4,
            64,
            chunking=True,
        )
        assert [c.state.request.request_id for c in plan.prefills] == [3]

    def test_final_chunk_marks_completion(self):
        inflight = make_state(0, 20, prefill_pos=16)
        plan = plan_step([inflight], [], FcfsPolicy(), 8, 32, chunking=True)
        chunk = plan.prefills[0]
        assert chunk.tokens == 4
        assert chunk.completes

    def test_resumed_request_never_chunked(self):
        # A preempted mid-decode request replays prompt + emitted
        # tokens in one admission (bitwise rebuild), even when the
        # budget only covers part of it.
        resumed = make_state(0, 10)
        resumed.generated = [5, 6, 7]
        plan = plan_step([resumed], [], FcfsPolicy(), 8, 8, chunking=True)
        # Forward-progress override admits the whole 12-token replay.
        assert plan.prefills[0].tokens == 12

    def test_chunking_off_preserves_whole_prompt_admissions(self):
        waiting = [make_state(0, 50), make_state(1, 2)]
        plan = plan_step(waiting, [], FcfsPolicy(), 8, 8, chunking=False)
        assert plan.prefills[0].tokens == 50  # oversized override, unchunked
