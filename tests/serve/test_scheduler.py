"""Tests for the step-level scheduler: policies, budget, progress."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.serve.request import Request, RequestState, RequestStatus
from repro.serve.scheduler import (
    FcfsPolicy,
    ShortestPromptFirstPolicy,
    get_policy,
    plan_step,
)


def make_state(request_id: int, prompt_length: int, running: bool = False):
    state = RequestState(
        request=Request(
            request_id=request_id,
            prompt=np.arange(prompt_length) % 256,
            max_new_tokens=4,
        )
    )
    if running:
        state.status = RequestStatus.RUNNING
    return state


class TestPolicies:
    def test_fcfs_keeps_arrival_order(self):
        waiting = [make_state(0, 9), make_state(1, 2), make_state(2, 5)]
        ordered = FcfsPolicy().order(waiting)
        assert [s.request.request_id for s in ordered] == [0, 1, 2]

    def test_shortest_prompt_first_sorts_by_length(self):
        waiting = [make_state(0, 9), make_state(1, 2), make_state(2, 5)]
        ordered = ShortestPromptFirstPolicy().order(waiting)
        assert [s.request.request_id for s in ordered] == [1, 2, 0]

    def test_shortest_prompt_ties_break_by_id(self):
        waiting = [make_state(3, 4), make_state(1, 4), make_state(2, 4)]
        ordered = ShortestPromptFirstPolicy().order(waiting)
        assert [s.request.request_id for s in ordered] == [1, 2, 3]

    def test_get_policy_by_name(self):
        assert isinstance(get_policy("fcfs"), FcfsPolicy)
        assert isinstance(
            get_policy("shortest-prompt-first"), ShortestPromptFirstPolicy
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ModelError):
            get_policy("round-robin")


class TestPlanStep:
    def test_decodes_reserve_budget_first(self):
        running = [make_state(0, 4, running=True), make_state(1, 4, running=True)]
        waiting = [make_state(2, 6)]
        plan = plan_step(waiting, running, FcfsPolicy(), 8, 8)
        # 2 decode tokens leave 6 tokens of budget: the prefill fits.
        assert len(plan.decodes) == 2
        assert [s.request.request_id for s in plan.prefills] == [2]
        assert plan.budget_tokens == 8

    def test_token_budget_caps_admissions(self):
        waiting = [make_state(0, 5), make_state(1, 5), make_state(2, 5)]
        plan = plan_step(waiting, [], FcfsPolicy(), 8, 11)
        assert [s.request.request_id for s in plan.prefills] == [0, 1]

    def test_admission_stops_at_first_misfit(self):
        # Head-of-line blocking is deliberate: request 1 does not fit,
        # so request 2 (which would fit) must wait behind it.
        waiting = [make_state(0, 4), make_state(1, 10), make_state(2, 1)]
        plan = plan_step(waiting, [], FcfsPolicy(), 8, 8)
        assert [s.request.request_id for s in plan.prefills] == [0]

    def test_batch_size_caps_admissions(self):
        waiting = [make_state(i, 1) for i in range(5)]
        plan = plan_step(waiting, [], FcfsPolicy(), 3, 100)
        assert len(plan.prefills) == 3

    def test_running_at_capacity_blocks_prefill(self):
        running = [make_state(i, 2, running=True) for i in range(4)]
        waiting = [make_state(9, 1)]
        plan = plan_step(waiting, running, FcfsPolicy(), 4, 100)
        assert plan.prefills == []
        assert len(plan.decodes) == 4

    def test_oversized_prompt_runs_alone(self):
        waiting = [make_state(0, 50), make_state(1, 2)]
        plan = plan_step(waiting, [], FcfsPolicy(), 8, 8)
        assert [s.request.request_id for s in plan.prefills] == [0]
        assert plan.budget_tokens == 50

    def test_oversized_prompt_waits_while_decodes_run(self):
        running = [make_state(1, 2, running=True)]
        waiting = [make_state(0, 50)]
        plan = plan_step(waiting, running, FcfsPolicy(), 8, 8)
        assert plan.prefills == []

    def test_policy_shapes_admission(self):
        waiting = [make_state(0, 7), make_state(1, 3)]
        fcfs = plan_step(waiting, [], FcfsPolicy(), 8, 8)
        spf = plan_step(waiting, [], ShortestPromptFirstPolicy(), 8, 8)
        assert [s.request.request_id for s in fcfs.prefills] == [0]
        assert [s.request.request_id for s in spf.prefills] == [1]

    def test_invalid_limits_rejected(self):
        with pytest.raises(ModelError):
            plan_step([], [], FcfsPolicy(), 0, 8)
        with pytest.raises(ModelError):
            plan_step([], [], FcfsPolicy(), 8, 0)

    def test_empty_plan(self):
        plan = plan_step([], [], FcfsPolicy(), 8, 8)
        assert plan.empty
        assert plan.budget_tokens == 0
