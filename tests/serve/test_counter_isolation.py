"""Cross-engine counter isolation (the telemetry-subsystem bleed fix).

Before the engine-scoped registry, every engine funnelled its hot-path
accounting through the module globals ``HOT_PATH_STATS`` /
``ATTENTION_STATS`` in :mod:`repro.llm.attention` — two engines in one
process double-counted each other's KV bytes and attention dispatches,
and their per-step reports were garbage whenever steps interleaved.
Engines now install a private :class:`StatScope` around each step via
a contextvar, so:

* engine runs leave the module globals untouched (those remain the
  default sink for *direct* model calls only);
* two engines — back-to-back, step-interleaved, or on two threads —
  each report exactly the counters a solo run of their workload
  produces.

The compared fields are the deterministic ones (byte counts, dispatch
counts, token counts); wall-clock fields are excluded.
"""

import threading

import numpy as np
import pytest

from repro.llm.attention import ATTENTION_STATS, HOT_PATH_STATS
from repro.llm.config import tiny_test_config
from repro.llm.transformer import build_model
from repro.serve import LLM, Engine, EngineConfig, SamplingParams

#: EngineMetrics fields that are exact (no wall-clock noise) and must
#: match a solo run of the same workload regardless of engine company.
DETERMINISTIC_FIELDS = (
    "steps",
    "total_new_tokens",
    "prefill_tokens",
    "partial_prefills",
    "preemptions",
    "kv_copy_bytes",
    "kv_dequant_bytes",
    "attention_dispatches",
    "attention_grouped_requests",
    "attention_padded_reads",
    "aborted",
)


@pytest.fixture(scope="module")
def model():
    return build_model(tiny_test_config("opt", d_model=32, n_layers=2))


def workload(model, seed, count=3):
    rng = np.random.default_rng(seed)
    vocab = model.config.vocab_size
    return [rng.integers(0, vocab, size=5 + (index % 3)) for index in range(count)]


def fingerprint(engine):
    metrics = engine.metrics()
    values = {field: getattr(metrics, field) for field in DETERMINISTIC_FIELDS}
    values["traffic_bytes"] = metrics.traffic.total_bytes
    values["finished"] = len(metrics.requests)
    return values


def run_solo(model, seed, kv_mode="fp16"):
    """Reference fingerprint: one engine alone in the process."""
    engine = Engine(model, EngineConfig(max_batch_size=4, kv_mode=kv_mode))
    llm = LLM(engine=engine)
    llm.generate(workload(model, seed), SamplingParams(max_new_tokens=5))
    return fingerprint(engine)


def globals_snapshot():
    return HOT_PATH_STATS.snapshot() + ATTENTION_STATS.snapshot()


def test_engine_runs_leave_module_globals_untouched(model):
    before = globals_snapshot()
    llm = LLM(model=model, config=EngineConfig(max_batch_size=4))
    llm.generate(workload(model, seed=1), SamplingParams(max_new_tokens=5))
    assert globals_snapshot() == before


def test_direct_model_calls_still_hit_module_globals(model):
    # The default scope is the backwards-compatible sink: sequential
    # generation outside any engine must keep counting globally.
    from repro.llm.generation import generate

    before = ATTENTION_STATS.snapshot()
    generate(model, workload(model, seed=2)[0], max_new_tokens=3)
    assert ATTENTION_STATS.snapshot() != before


def test_back_to_back_engines_match_solo_baselines(model):
    solo_a = run_solo(model, seed=7)
    solo_b = run_solo(model, seed=8)

    engine_a = Engine(model, EngineConfig(max_batch_size=4))
    engine_b = Engine(model, EngineConfig(max_batch_size=4))
    LLM(engine=engine_a).generate(
        workload(model, seed=7), SamplingParams(max_new_tokens=5)
    )
    LLM(engine=engine_b).generate(
        workload(model, seed=8), SamplingParams(max_new_tokens=5)
    )
    assert fingerprint(engine_a) == solo_a
    assert fingerprint(engine_b) == solo_b


def test_interleaved_engine_steps_stay_isolated(model):
    solo_a = run_solo(model, seed=7)
    solo_b = run_solo(model, seed=8)

    engine_a = Engine(model, EngineConfig(max_batch_size=4))
    engine_b = Engine(model, EngineConfig(max_batch_size=4))
    for prompt in workload(model, seed=7):
        engine_a.submit(prompt, SamplingParams(max_new_tokens=5))
    for prompt in workload(model, seed=8):
        engine_b.submit(prompt, SamplingParams(max_new_tokens=5))
    # Strict alternation: every step of A runs between two steps of B,
    # the exact pattern that scrambled global counters.
    while engine_a.has_work() or engine_b.has_work():
        if engine_a.has_work():
            engine_a.step()
        if engine_b.has_work():
            engine_b.step()
    assert fingerprint(engine_a) == solo_a
    assert fingerprint(engine_b) == solo_b


def test_interleaved_engines_with_different_kv_modes(model):
    # Different kv_modes produce different byte traffic; interleaving
    # must not blend the two accounting streams.
    solo_a = run_solo(model, seed=7, kv_mode="fp16")
    solo_b = run_solo(model, seed=7, kv_mode="anda")

    engine_a = Engine(model, EngineConfig(max_batch_size=4, kv_mode="fp16"))
    engine_b = Engine(model, EngineConfig(max_batch_size=4, kv_mode="anda"))
    for prompt in workload(model, seed=7):
        engine_a.submit(prompt, SamplingParams(max_new_tokens=5))
        engine_b.submit(prompt.copy(), SamplingParams(max_new_tokens=5))
    while engine_a.has_work() or engine_b.has_work():
        if engine_a.has_work():
            engine_a.step()
        if engine_b.has_work():
            engine_b.step()
    assert fingerprint(engine_a) == solo_a
    assert fingerprint(engine_b) == solo_b
    assert solo_a["traffic_bytes"] != solo_b["traffic_bytes"]


def test_threaded_engines_stay_isolated(model):
    # Contextvars are thread-local, so two engines stepping
    # concurrently on two threads must not cross-count either.
    solo_a = run_solo(model, seed=7)
    solo_b = run_solo(model, seed=8)

    engines = {
        "a": Engine(model, EngineConfig(max_batch_size=4)),
        "b": Engine(model, EngineConfig(max_batch_size=4)),
    }
    errors = []

    def drive(name, seed):
        try:
            LLM(engine=engines[name]).generate(
                workload(model, seed), SamplingParams(max_new_tokens=5)
            )
        except Exception as error:  # pragma: no cover - surfaced below
            errors.append(error)

    threads = [
        threading.Thread(target=drive, args=("a", 7)),
        threading.Thread(target=drive, args=("b", 8)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    assert fingerprint(engines["a"]) == solo_a
    assert fingerprint(engines["b"]) == solo_b


def test_telemetry_registries_are_per_engine(model):
    engine_a = Engine(model, EngineConfig(max_batch_size=4))
    engine_b = Engine(model, EngineConfig(max_batch_size=4))
    assert engine_a.telemetry.engine_label != engine_b.telemetry.engine_label
    assert engine_a.telemetry.registry is not engine_b.telemetry.registry

    LLM(engine=engine_a).generate(
        workload(model, seed=7), SamplingParams(max_new_tokens=5)
    )
    exposition_a = engine_a.telemetry.prometheus()
    exposition_b = engine_b.telemetry.prometheus()
    assert f'engine="{engine_a.telemetry.engine_label}"' in exposition_a
    assert f'engine="{engine_a.telemetry.engine_label}"' not in exposition_b
    # The idle engine's counters are all zero; the active one's step
    # counter advanced.
    label_b = engine_b.telemetry.engine_label
    assert f'repro_engine_steps_total{{engine="{label_b}"}} 0.0' in exposition_b
