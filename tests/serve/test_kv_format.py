"""The KVFormat API: spec semantics, config shim, per-request override.

Covers the format value object itself (modes, per-layer stacks,
search-derived policies, labels, signatures), the ``EngineConfig``
deprecation shim over the legacy ``kv_mode``/``kv_mantissa_bits``
knobs, and admission-time validation of ``SamplingParams.kv_format``.
"""

import warnings

import numpy as np
import pytest

from repro.core.precision import PrecisionCombination
from repro.core.search import SearchResult
from repro.errors import ModelError, RequestError
from repro.llm.config import tiny_test_config
from repro.llm.kv_quant import (
    KVFormat,
    kv_bits_per_element,
    make_cache_factory,
)
from repro.llm.transformer import build_model
from repro.llm.zoo import get_model
from repro.serve import Engine, EngineConfig, SamplingParams
from serving_helpers import serve


@pytest.fixture(scope="module")
def model():
    return get_model("opt-125m-sim")


@pytest.fixture(scope="module")
def prompts():
    rng = np.random.default_rng(7)
    return [rng.integers(0, 256, size=length) for length in (5, 9, 13)]


class TestSpec:
    def test_uniform_constructors(self):
        assert KVFormat.fp16().label == "fp16"
        assert KVFormat.anda(4).label == "anda4"
        assert KVFormat.bfp(6).label == "bfp6"
        assert KVFormat.mx(4).label == "mx4"

    def test_bits_per_element(self):
        assert KVFormat.fp16().bits_per_element() == 16.0
        assert KVFormat.anda(4).bits_per_element() == 1 + 4 + 8 / 64
        assert KVFormat.bfp(6).bits_per_element() == 1 + 6 + 8 / 64
        # MX adds the per-subgroup microexponent on top.
        assert KVFormat.mx(4).bits_per_element() > 1 + 4 + 8 / 64

    def test_validation(self):
        with pytest.raises(ModelError):
            KVFormat(mode="nope")
        with pytest.raises(ModelError):
            KVFormat.anda(0)
        with pytest.raises(ModelError):
            KVFormat.anda(17)
        with pytest.raises(ModelError):
            KVFormat.per_layer([])
        with pytest.raises(ModelError):
            KVFormat.per_layer([KVFormat.anda(4), "fp16"])
        with pytest.raises(ModelError):
            # layers only belong to the per-layer sentinel mode
            KVFormat(mode="anda", layers=(KVFormat.fp16(),))

    def test_per_layer_resolution_and_mean_bits(self):
        stack = KVFormat.per_layer([KVFormat.anda(4), KVFormat.fp16()])
        assert not stack.uniform
        assert stack.resolve(0) == KVFormat.anda(4)
        assert stack.resolve(1) == KVFormat.fp16()
        assert stack.bits_per_element() == ((1 + 4 + 8 / 64) + 16.0) / 2
        with pytest.raises(ModelError):
            stack.bits_per_element(n_layers=3)
        with pytest.raises(ModelError):
            stack.resolve(2)

    def test_signature_is_per_layer_compression_keys(self):
        stack = KVFormat.per_layer([KVFormat.anda(4), KVFormat.fp16()])
        assert stack.signature(2) == (("anda", 4), ("fp16",))
        # A uniform format broadcast over n layers.
        assert KVFormat.anda(4).signature(2) == (("anda", 4), ("anda", 4))
        # Byte-equivalent spellings share a signature.
        broadcast = KVFormat.per_layer([KVFormat.anda(4)] * 2)
        assert broadcast.signature(2) == KVFormat.anda(4).signature(2)

    def test_per_layer_codec_raises(self):
        stack = KVFormat.per_layer([KVFormat.anda(4), KVFormat.fp16()])
        with pytest.raises(ModelError):
            stack.codec()
        keys = [codec.compression_key() for codec in stack.codecs(2)]
        assert keys == [("anda", 4), ("fp16",)]

    def test_labels_for_stacks(self):
        assert (
            KVFormat.per_layer([KVFormat.anda(4), KVFormat.fp16()]).label
            == "per_layer(anda4,fp16)"
        )
        assert (
            KVFormat.per_layer([KVFormat.anda(5)] * 3).label
            == "per_layer(anda5x3)"
        )

    def test_registry_helpers_accept_formats(self, model):
        fmt = KVFormat.anda(6)
        assert kv_bits_per_element(fmt) == fmt.bits_per_element()
        caches = make_cache_factory(model, fmt)()
        assert len(caches) == len(model.blocks)
        assert all(c.compression_key() == ("anda", 6) for c in caches)


class TestFromSearch:
    def combo(self, qkv):
        return PrecisionCombination(qkv=qkv, o=8, u=8, d=8)

    def result(self, qkv):
        return SearchResult(
            best=self.combo(qkv),
            best_bops=1.0,
            reference_accuracy=0.9,
            tolerance=0.01,
        )

    def test_combination_uses_qkv_bits(self):
        assert KVFormat.from_search(self.combo(5)) == KVFormat.anda(5)
        assert KVFormat.from_search(self.combo(5), mode="bfp") == KVFormat.bfp(5)

    def test_search_result_unwraps_best(self):
        assert KVFormat.from_search(self.result(6)) == KVFormat.anda(6)

    def test_infeasible_search_raises(self):
        infeasible = SearchResult(
            best=None,
            best_bops=float("inf"),
            reference_accuracy=0.9,
            tolerance=0.01,
        )
        with pytest.raises(ModelError):
            KVFormat.from_search(infeasible)

    def test_sequence_builds_per_layer_policy(self):
        fmt = KVFormat.from_search([self.result(4), self.combo(8)])
        assert fmt == KVFormat.per_layer([KVFormat.anda(4), KVFormat.anda(8)])

    def test_search_policy_serves(self, prompts):
        # First serving consumer of the search path: a per-layer policy
        # straight from (mock) search output drives a live engine.
        tiny = build_model(tiny_test_config("opt", d_model=32, n_layers=2))
        fmt = KVFormat.from_search([self.result(4), self.result(8)])
        results = serve(
            tiny, prompts, max_new_tokens=4, config=EngineConfig(kv_format=fmt)
        )
        assert all(r.continuation().shape[0] == 4 for r in results)


class TestEngineConfigShim:
    def test_legacy_kwargs_warn_and_mirror(self):
        with pytest.warns(DeprecationWarning):
            config = EngineConfig(kv_mode="anda", kv_mantissa_bits=4)
        assert config.kv_format == KVFormat.anda(4)
        assert config.kv_mode == "anda"
        assert config.kv_mantissa_bits == 4
        assert config.kv_bits == KVFormat.anda(4).bits_per_element()

    def test_partial_legacy_kwargs_fill_defaults(self):
        with pytest.warns(DeprecationWarning):
            config = EngineConfig(kv_mode="anda")
        assert config.kv_format == KVFormat.anda(8)
        with pytest.warns(DeprecationWarning):
            config = EngineConfig(kv_mantissa_bits=5)
        assert config.kv_format == KVFormat(mode="fp16", mantissa_bits=5)

    def test_default_is_fp16(self):
        config = EngineConfig()
        assert config.kv_format == KVFormat.fp16()
        assert config.kv_mode == "fp16"
        assert config.kv_bits == 16.0

    def test_conflict_raises(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ModelError):
                EngineConfig(kv_mode="anda", kv_format=KVFormat.anda(4))

    def test_non_format_kv_format_raises(self):
        with pytest.raises(ModelError):
            EngineConfig(kv_format="anda")

    def test_per_layer_config_mirrors_sentinel_mode(self):
        stack = KVFormat.per_layer([KVFormat.anda(4), KVFormat.fp16()])
        config = EngineConfig(kv_format=stack)
        assert config.kv_mode == "per_layer"
        assert config.kv_bits == stack.bits_per_element()

    def test_legacy_and_new_spellings_serve_identically(self, model, prompts):
        with pytest.warns(DeprecationWarning):
            legacy = EngineConfig(kv_mode="anda", kv_mantissa_bits=6)
        modern = EngineConfig(kv_format=KVFormat.anda(6))
        old = serve(model, prompts, max_new_tokens=6, config=legacy)
        new = serve(model, prompts, max_new_tokens=6, config=modern)
        for a, b in zip(old, new):
            np.testing.assert_array_equal(a.tokens, b.tokens)


class TestPerRequestValidation:
    def test_params_reject_non_format(self):
        with pytest.raises(RequestError):
            SamplingParams(max_new_tokens=4, kv_format="anda")

    def test_params_default_is_inherit(self):
        assert SamplingParams(max_new_tokens=4).kv_format is None

    def test_submit_rejects_model_mismatched_stack(self):
        tiny = build_model(tiny_test_config("opt", d_model=32, n_layers=2))
        engine = Engine(tiny, EngineConfig())
        wrong_depth = KVFormat.per_layer([KVFormat.anda(4)] * 3)
        with pytest.raises(RequestError):
            engine.submit(
                np.array([1, 2, 3]),
                SamplingParams(max_new_tokens=2, kv_format=wrong_depth),
            )

    def test_submit_accepts_matching_stack(self):
        tiny = build_model(tiny_test_config("opt", d_model=32, n_layers=2))
        engine = Engine(tiny, EngineConfig())
        stack = KVFormat.per_layer([KVFormat.anda(4), KVFormat.fp16()])
        handle = engine.submit(
            np.array([1, 2, 3]), SamplingParams(max_new_tokens=2, kv_format=stack)
        )
        while engine.has_work():
            engine.step()
        assert handle.result().continuation().shape[0] == 2


def test_serve_module_exports_kvformat():
    import repro.serve as serve_module

    assert serve_module.KVFormat is KVFormat
    assert "KVFormat" in serve_module.__all__
