"""Tests for the activation-distribution analysis helpers."""

import numpy as np
import pytest

from repro.core.precision import TensorKind
from repro.errors import ModelError
from repro.llm.analysis import (
    ActivationCapture,
    capture_activations,
    group_exponent_spread,
    mean_spread_by_group_size,
    outlier_stats,
)
from repro.llm.config import tiny_test_config
from repro.llm.transformer import build_model


def heavy_tailed(seed=0, shape=(64, 256), outlier_channels=4, scale=50.0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape).astype(np.float32)
    x[:, :outlier_channels] *= scale
    return x


class TestCapture:
    def test_captures_all_kinds(self):
        model = build_model(tiny_test_config(seed=3))
        tokens = np.random.default_rng(0).integers(0, 256, size=(1, 12))
        capture = capture_activations(model, tokens)
        for kind in TensorKind:
            stacked = capture.stacked(kind)
            assert stacked.ndim == 2
            assert stacked.shape[0] > 0

    def test_restores_previous_recorder(self):
        model = build_model(tiny_test_config(seed=5))
        sentinel = ActivationCapture()
        model.set_recorder(sentinel)
        capture_activations(model, np.zeros((1, 4), dtype=int))
        assert model.tap.recorder is sentinel

    def test_empty_capture_raises(self):
        with pytest.raises(ModelError):
            ActivationCapture().stacked(TensorKind.QKV)


class TestOutlierStats:
    def test_detects_outlier_channels(self):
        stats = outlier_stats(heavy_tailed())
        assert stats.outlier_ratio > 10
        assert stats.top1pct_energy > 0.3

    def test_uniform_tensor_has_no_outliers(self):
        stats = outlier_stats(np.ones((32, 128), dtype=np.float32))
        assert stats.outlier_ratio == pytest.approx(1.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ModelError):
            outlier_stats(np.ones(10))


class TestExponentSpread:
    def test_constant_group_has_zero_spread(self):
        x = np.full((1, 64), 3.0, dtype=np.float32)
        assert np.all(group_exponent_spread(x, 64) == 0)

    def test_known_spread(self):
        # 8.0 has exponent 3; 0.5 has exponent -1: spread 4.
        x = np.array([[8.0, 0.5] + [8.0] * 62], dtype=np.float32)
        assert group_exponent_spread(x, 64)[0] == 4

    def test_zeros_ignored(self):
        x = np.array([[4.0] + [0.0] * 63], dtype=np.float32)
        assert group_exponent_spread(x, 64)[0] == 0

    def test_spread_grows_with_group_size(self):
        x = heavy_tailed(seed=7)
        spreads = mean_spread_by_group_size(x, (1, 8, 64, 256))
        assert spreads[1] == 0.0
        assert spreads[8] <= spreads[64] <= spreads[256]

    def test_spread_drives_truncation_need(self):
        """The measured spread at GS=64 matches the Fig. 5 observation:
        typical groups lose a handful of mantissa bits to alignment."""
        x = heavy_tailed(seed=9, scale=10.0)
        mean_spread = mean_spread_by_group_size(x, (64,))[64]
        assert 1.0 < mean_spread < 11.0

    def test_rejects_non_2d(self):
        with pytest.raises(ModelError):
            group_exponent_spread(np.ones(8), 4)
