"""Tests for Anda quantization-aware training (STE fine-tuning)."""

import numpy as np
import pytest

from repro.core.precision import PrecisionCombination
from repro.errors import ModelError
from repro.llm.autograd import no_grad
from repro.llm.config import ModelConfig
from repro.llm.datasets import load_corpus
from repro.llm.hooks import anda_quantizer
from repro.llm.perplexity import evaluate_perplexity
from repro.llm.qat import QatResult, fine_tune, qat_recovery, straight_through_anda
from repro.llm.training import train_language_model
from repro.llm.transformer import CausalLM

AGGRESSIVE = PrecisionCombination.uniform(3)


@pytest.fixture(scope="module")
def tiny_setup():
    """A briefly-trained micro model plus train/eval token material."""
    config = ModelConfig(
        name="qat-micro",
        family="opt",
        n_layers=2,
        d_model=48,
        n_heads=2,
        ffn_dim=96,
        max_seq_len=64,
        seed=5,
    )
    model = CausalLM(config)
    corpus = load_corpus("wikitext2-sim", train_chars=32_768, validation_chars=4_096)
    tokens = corpus.train_tokens
    train_language_model(model, tokens, steps=60, batch_size=8, seq_len=48, seed=1)
    held_out = corpus.validation_tokens
    eval_sequences = np.stack(
        [held_out[i * 49 : i * 49 + 49] for i in range(12)]
    ).astype(np.int64)
    return model, tokens, eval_sequences


class TestStraightThroughContext:
    def test_tap_state_restored(self, tiny_setup):
        model, _, _ = tiny_setup
        assert model.tap.quantizer is None
        with straight_through_anda(model, AGGRESSIVE):
            assert model.tap.quantizer is not None
            assert model.tap.straight_through
        assert model.tap.quantizer is None
        assert not model.tap.straight_through

    def test_restores_on_exception(self, tiny_setup):
        model, _, _ = tiny_setup
        with pytest.raises(RuntimeError):
            with straight_through_anda(model, AGGRESSIVE):
                raise RuntimeError("boom")
        assert model.tap.quantizer is None
        assert not model.tap.straight_through

    def test_forward_sees_quantized_activations(self, tiny_setup):
        model, tokens, _ = tiny_setup
        batch = tokens[:33][None, :].astype(np.int64)
        with no_grad():
            clean = model.forward(batch).data
        with straight_through_anda(model, AGGRESSIVE):
            with no_grad():
                quantized = model.forward(batch).data
        assert np.any(clean != quantized)

    def test_gradients_flow_through_ste(self, tiny_setup):
        model, tokens, _ = tiny_setup
        batch = tokens[: 2 * 33].reshape(2, 33).astype(np.int64)
        with straight_through_anda(model, AGGRESSIVE):
            loss = model.loss(batch)
            loss.backward()
        grads = [p.grad for p in model.parameters()]
        assert any(g is not None and np.any(g != 0) for g in grads)
        for param in model.parameters():
            param.zero_grad()

    def test_without_ste_training_raises(self, tiny_setup):
        model, tokens, _ = tiny_setup
        batch = tokens[: 2 * 33].reshape(2, 33).astype(np.int64)
        model.set_quantizer(anda_quantizer(AGGRESSIVE))
        try:
            with pytest.raises(ModelError):
                model.loss(batch)
        finally:
            model.set_quantizer(None)


class TestFineTune:
    def test_losses_recorded(self, tiny_setup):
        model, tokens, _ = tiny_setup
        losses = fine_tune(
            model, tokens, AGGRESSIVE, steps=3, batch_size=4, seq_len=32,
            learning_rate=1e-4,
        )
        assert len(losses) == 3
        assert all(np.isfinite(loss) for loss in losses)

    def test_rejects_zero_steps(self, tiny_setup):
        model, tokens, _ = tiny_setup
        with pytest.raises(ModelError):
            fine_tune(model, tokens, AGGRESSIVE, steps=0)

    def test_stochastic_rounding_accepted(self, tiny_setup):
        model, tokens, _ = tiny_setup
        losses = fine_tune(
            model, tokens, AGGRESSIVE, steps=2, batch_size=4, seq_len=32,
            rounding="stochastic", learning_rate=1e-4,
        )
        assert len(losses) == 2


class TestQatRecovery:
    def test_recovers_ptq_damage(self, tiny_setup):
        model, tokens, eval_sequences = tiny_setup
        result = qat_recovery(
            model,
            tokens,
            eval_sequences,
            AGGRESSIVE,
            steps=40,
            learning_rate=5e-4,
            batch_size=8,
            seq_len=48,
        )
        # Aggressive 3-bit mantissas must hurt PTQ...
        assert result.ppl_ptq > result.ppl_fp
        # ...and the paper's future-work hypothesis: QAT recovers a
        # meaningful share of that damage.
        assert result.ppl_qat < result.ppl_ptq
        assert result.recovered_fraction > 0.25

    def test_model_left_unquantized(self, tiny_setup):
        model, _, _ = tiny_setup
        assert model.tap.quantizer is None
        assert not model.tap.straight_through


class TestQatResult:
    def test_degradation_metrics(self):
        result = QatResult(AGGRESSIVE, ppl_fp=10.0, ppl_ptq=12.0, ppl_qat=10.5)
        assert result.ptq_degradation == pytest.approx(0.20)
        assert result.qat_degradation == pytest.approx(0.05)
        assert result.recovered_fraction == pytest.approx(0.75)

    def test_no_damage_counts_as_full_recovery(self):
        result = QatResult(AGGRESSIVE, ppl_fp=10.0, ppl_ptq=10.0, ppl_qat=10.0)
        assert result.recovered_fraction == 1.0

    def test_negative_recovery_when_qat_hurts(self):
        result = QatResult(AGGRESSIVE, ppl_fp=10.0, ppl_ptq=11.0, ppl_qat=12.0)
        assert result.recovered_fraction < 0


def test_quantized_eval_matches_tap_route(tiny_setup):
    # evaluate_perplexity under a plain quantizer must equal an STE
    # context evaluated without gradients (same numerics, different path).
    model, _, eval_sequences = tiny_setup
    model.set_quantizer(anda_quantizer(AGGRESSIVE))
    via_tap = evaluate_perplexity(model, eval_sequences)
    model.set_quantizer(None)
    with straight_through_anda(model, AGGRESSIVE):
        via_ste = evaluate_perplexity(model, eval_sequences)
    assert via_tap == pytest.approx(via_ste, rel=1e-6)
