"""Numerical gradient checks for the autograd engine."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.llm.autograd import (
    Tensor,
    concat,
    embedding_lookup,
    is_grad_enabled,
    no_grad,
    softmax,
    softmax_cross_entropy,
)

EPS = 1e-3
TOL = 2e-2


def numeric_grad(fn, value: np.ndarray) -> np.ndarray:
    """Central-difference gradient of scalar fn at value."""
    grad = np.zeros_like(value, dtype=np.float64)
    flat = value.reshape(-1)
    flat_grad = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + EPS
        up = fn(value)
        flat[i] = original - EPS
        down = fn(value)
        flat[i] = original
        flat_grad[i] = (up - down) / (2 * EPS)
    return grad


def check_gradient(build, shape, seed=0):
    """Compare autograd and numeric gradients for scalar-valued build(x)."""
    rng = np.random.default_rng(seed)
    value = rng.normal(size=shape).astype(np.float32)
    x = Tensor(value.copy(), requires_grad=True)
    out = build(x)
    out.backward()

    def scalar(v):
        return float(build(Tensor(v.astype(np.float32))).data)

    expected = numeric_grad(scalar, value.astype(np.float64))
    np.testing.assert_allclose(x.grad, expected, rtol=TOL, atol=TOL)


class TestElementwiseGrads:
    def test_add_mul(self):
        check_gradient(lambda x: ((x * 3.0 + 1.0) * x).sum(), (4, 3))

    def test_sub_div(self):
        check_gradient(lambda x: ((x - 0.5) / 2.0).sum(), (5,))

    def test_pow(self):
        check_gradient(lambda x: (x**2).sum(), (3, 3))

    def test_exp_log(self):
        check_gradient(lambda x: ((x.exp() + 2.0).log()).sum(), (4,))

    def test_tanh(self):
        check_gradient(lambda x: x.tanh().sum(), (6,))

    def test_sigmoid(self):
        check_gradient(lambda x: x.sigmoid().sum(), (6,))

    def test_relu(self):
        check_gradient(lambda x: (x.relu() * x).sum(), (8,), seed=3)

    def test_silu(self):
        check_gradient(lambda x: x.silu().sum(), (8,))

    def test_neg(self):
        check_gradient(lambda x: (-x).sum(), (3,))


class TestBroadcastGrads:
    def test_row_broadcast(self):
        rng = np.random.default_rng(1)
        bias = rng.normal(size=(1, 4)).astype(np.float32)
        check_gradient(lambda x: (x + Tensor(bias)).sum(), (3, 4))

    def test_broadcast_into_parameter(self):
        rng = np.random.default_rng(2)
        x_val = rng.normal(size=(3, 4)).astype(np.float32)
        b = Tensor(rng.normal(size=(4,)).astype(np.float32), requires_grad=True)
        out = (Tensor(x_val) + b).sum()
        out.backward()
        np.testing.assert_allclose(b.grad, np.full(4, 3.0), rtol=1e-6)

    def test_scalar_broadcast(self):
        check_gradient(lambda x: (x * 2.5).mean(), (2, 3, 4))


class TestMatmulGrads:
    def test_2d(self):
        rng = np.random.default_rng(4)
        w = Tensor(rng.normal(size=(4, 2)).astype(np.float32))
        check_gradient(lambda x: (x @ w).sum(), (3, 4))

    def test_batched(self):
        rng = np.random.default_rng(5)
        w = Tensor(rng.normal(size=(2, 4, 3)).astype(np.float32))
        check_gradient(lambda x: (x @ w).sum(), (2, 5, 4))

    def test_weight_gradient(self):
        rng = np.random.default_rng(6)
        x_val = rng.normal(size=(3, 4)).astype(np.float32)
        w = Tensor(rng.normal(size=(4, 2)).astype(np.float32), requires_grad=True)
        (Tensor(x_val) @ w).sum().backward()
        np.testing.assert_allclose(
            w.grad, x_val.T @ np.ones((3, 2), np.float32), rtol=1e-5
        )


class TestShapeGrads:
    def test_reshape(self):
        check_gradient(lambda x: (x.reshape(6, 2) ** 2).sum(), (3, 4))

    def test_transpose(self):
        check_gradient(lambda x: (x.transpose(1, 0) ** 2).sum(), (3, 4))

    def test_slice(self):
        check_gradient(lambda x: (x[:, 1:3] ** 2).sum(), (3, 4))

    def test_concat(self):
        rng = np.random.default_rng(7)
        other = Tensor(rng.normal(size=(3, 2)).astype(np.float32))
        check_gradient(lambda x: (concat([x, other], axis=1) ** 2).sum(), (3, 2))

    def test_getitem_int(self):
        check_gradient(lambda x: (x[1] ** 2).sum(), (3, 4))


class TestReductionGrads:
    def test_sum_axis(self):
        check_gradient(lambda x: (x.sum(axis=0) ** 2).sum(), (3, 4))

    def test_sum_keepdims(self):
        check_gradient(lambda x: (x.sum(axis=1, keepdims=True) * x).sum(), (3, 4))

    def test_mean(self):
        check_gradient(lambda x: (x.mean(axis=-1) ** 2).sum(), (2, 5))


class TestSoftmaxAndLoss:
    def test_softmax_grad(self):
        check_gradient(lambda x: (softmax(x, axis=-1) ** 2).sum(), (3, 5))

    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(8)
        x = Tensor(rng.normal(size=(4, 7)).astype(np.float32) * 10)
        out = softmax(x, axis=-1).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4), rtol=1e-5)

    def test_cross_entropy_matches_manual(self):
        rng = np.random.default_rng(9)
        logits_val = rng.normal(size=(6, 5)).astype(np.float32)
        targets = rng.integers(0, 5, size=6)
        loss = softmax_cross_entropy(Tensor(logits_val), targets)
        probs = np.exp(logits_val) / np.exp(logits_val).sum(axis=1, keepdims=True)
        expected = -np.log(probs[np.arange(6), targets]).mean()
        assert float(loss.data) == pytest.approx(expected, rel=1e-5)

    def test_cross_entropy_grad(self):
        rng = np.random.default_rng(10)
        targets = rng.integers(0, 4, size=(2, 3))

        def build(x):
            return softmax_cross_entropy(x, targets)

        check_gradient(build, (2, 3, 4))

    def test_cross_entropy_stable_for_large_logits(self):
        logits = Tensor(np.array([[1000.0, -1000.0]]), requires_grad=True)
        loss = softmax_cross_entropy(logits, np.array([0]))
        assert float(loss.data) == pytest.approx(0.0, abs=1e-6)
        loss.backward()
        assert np.all(np.isfinite(logits.grad))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ModelError):
            softmax_cross_entropy(Tensor(np.zeros((2, 3))), np.zeros(5, dtype=int))


class TestGraphMechanics:
    def test_shared_subexpression_accumulates(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * x + x * 3.0  # dy/dx = 2x + 3 = 7
        y.backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert is_grad_enabled()

    def test_backward_without_grad_raises(self):
        with pytest.raises(ModelError):
            Tensor(np.ones(2)).backward()

    def test_embedding_lookup_grad(self):
        table = Tensor(np.eye(4, 3, dtype=np.float32), requires_grad=True)
        ids = np.array([0, 2, 2])
        out = embedding_lookup(table, ids)
        out.sum().backward()
        expected = np.zeros((4, 3), np.float32)
        expected[0] = 1.0
        expected[2] = 2.0
        np.testing.assert_allclose(table.grad, expected)
