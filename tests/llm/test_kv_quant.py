"""Tests for the Anda KV-cache compression extension."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.llm.config import tiny_test_config
from repro.llm.kv_quant import (
    AndaKVCache,
    kv_compression_ratio,
    quantized_cache_factory,
)
from repro.llm.transformer import build_model


class TestAndaKVCache:
    def test_append_quantizes(self):
        cache = AndaKVCache(mantissa_bits=4)
        rng = np.random.default_rng(0)
        k = rng.normal(size=(1, 2, 3, 64)).astype(np.float32)
        keys, _ = cache.append(k, k)
        assert keys.shape == k.shape
        assert not np.array_equal(keys, k)  # quantization happened

    def test_high_precision_nearly_transparent(self):
        cache = AndaKVCache(mantissa_bits=11)
        rng = np.random.default_rng(1)
        k = rng.normal(size=(1, 2, 2, 64)).astype(np.float32)
        keys, _ = cache.append(k, k)
        fp16 = k.astype(np.float16).astype(np.float32)
        assert np.abs(keys - fp16).max() <= np.abs(fp16).max() * 2e-3

    def test_validation(self):
        with pytest.raises(ModelError):
            AndaKVCache(mantissa_bits=0)

    def test_storage_accounting(self):
        cache = AndaKVCache(mantissa_bits=7)
        assert cache.storage_bits_per_element() == pytest.approx(8 + 8 / 64)
        assert kv_compression_ratio(7) == pytest.approx(16 / (8 + 8 / 64))

    def test_compression_monotone(self):
        assert kv_compression_ratio(4) > kv_compression_ratio(8) > 1.0


class TestGenerationWithQuantizedCache:
    @pytest.mark.parametrize("family", ["opt", "llama"])
    def test_logits_close_at_high_precision(self, family):
        model = build_model(tiny_test_config(family=family, seed=31))
        tokens = np.random.default_rng(2).integers(0, 256, size=(1, 12))
        fp_caches = model.new_cache()
        q_caches = quantized_cache_factory(model, mantissa_bits=11)
        fp_logits = model.forward_step(tokens, fp_caches)
        q_logits = model.forward_step(tokens, q_caches)
        scale = np.abs(fp_logits).max()
        assert np.abs(fp_logits - q_logits).max() < 0.05 * scale

    def test_generation_runs_with_quantized_cache(self):
        model = build_model(tiny_test_config(seed=37))
        prompt = np.array([65, 66, 67])
        caches = quantized_cache_factory(model, mantissa_bits=8)
        logits = model.forward_step(prompt.reshape(1, -1), caches)
        assert logits.shape == (1, 3, 256)
        assert caches[0].length == 3

    def _greedy_with_cache(self, model, prompt, caches, steps):
        produced = [
            int(np.argmax(model.forward_step(prompt.reshape(1, -1), caches)[0, -1]))
        ]
        for _ in range(steps - 1):
            step = model.forward_step(np.array([[produced[-1]]]), caches)
            produced.append(int(np.argmax(step[0, -1])))
        return produced

    def test_quantized_cache_decoding_is_deterministic(self):
        model = build_model(tiny_test_config(seed=41))
        prompt = np.array([65, 66, 67, 68])
        first = self._greedy_with_cache(
            model, prompt, quantized_cache_factory(model, 2), steps=12
        )
        second = self._greedy_with_cache(
            model, prompt, quantized_cache_factory(model, 2), steps=12
        )
        assert first == second
        assert all(0 <= token <= 255 for token in first)

    def test_cache_precision_controls_divergence(self):
        """Error vs the exact FP cache grows as mantissa bits shrink."""
        model = build_model(tiny_test_config(seed=43))
        prompt = np.random.default_rng(3).integers(0, 256, size=(1, 16))
        exact = model.forward_step(prompt, model.new_cache())
        errors = []
        for bits in (2, 6, 11):
            logits = model.forward_step(
                prompt, quantized_cache_factory(model, bits)
            )
            errors.append(float(np.abs(logits - exact).max()))
        assert errors[0] > errors[1] > errors[2]
