"""Tests for greedy/top-k decoding with the KV cache."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.llm.autograd import no_grad
from repro.llm.generation import generate, generate_text
from repro.llm.tokenizer import ByteTokenizer
from repro.llm.zoo import get_model


@pytest.fixture(scope="module")
def model():
    return get_model("opt-125m-sim")


@pytest.fixture(scope="module")
def prompt_tokens():
    return ByteTokenizer().encode("the cat sat on the ")


class TestGreedyDecoding:
    def test_continuation_length(self, model, prompt_tokens):
        result = generate(model, prompt_tokens, max_new_tokens=8)
        assert result.tokens.shape[0] == prompt_tokens.shape[0] + 8
        assert result.continuation().shape[0] == 8

    def test_prompt_preserved(self, model, prompt_tokens):
        result = generate(model, prompt_tokens, max_new_tokens=4)
        np.testing.assert_array_equal(
            result.tokens[: prompt_tokens.shape[0]], prompt_tokens
        )

    def test_greedy_is_deterministic(self, model, prompt_tokens):
        first = generate(model, prompt_tokens, max_new_tokens=8)
        second = generate(model, prompt_tokens, max_new_tokens=8)
        np.testing.assert_array_equal(first.tokens, second.tokens)

    def test_greedy_matches_full_forward_argmax(self, model, prompt_tokens):
        # The KV-cached decode path must reproduce the argmax chain of
        # repeated full forward passes.
        result = generate(model, prompt_tokens, max_new_tokens=4)
        tokens = prompt_tokens.copy()
        for step in range(4):
            with no_grad():
                logits = model.forward(tokens[None, :]).data[0, -1]
            next_token = int(np.argmax(logits))
            assert next_token == int(result.tokens[prompt_tokens.shape[0] + step])
            tokens = np.append(tokens, next_token)


class TestSampledDecoding:
    def test_same_seed_same_output(self, model, prompt_tokens):
        a = generate(model, prompt_tokens, 8, temperature=1.0, seed=5)
        b = generate(model, prompt_tokens, 8, temperature=1.0, seed=5)
        np.testing.assert_array_equal(a.tokens, b.tokens)

    def test_different_seeds_diverge(self, model, prompt_tokens):
        outputs = {
            tuple(generate(model, prompt_tokens, 12, temperature=1.5, seed=s).tokens)
            for s in range(4)
        }
        assert len(outputs) > 1

    def test_tokens_stay_in_vocabulary(self, model, prompt_tokens):
        result = generate(model, prompt_tokens, 16, temperature=1.0, top_k=10)
        assert result.tokens.min() >= 0
        assert result.tokens.max() < model.config.vocab_size


class TestGenerateText:
    def test_string_round_trip(self, model):
        text = generate_text(model, "the ", max_new_tokens=12)
        assert text.startswith("the ")
        assert len(text) >= 4

    def test_deterministic_greedy_text(self, model):
        assert generate_text(model, "a b", 8) == generate_text(model, "a b", 8)


class TestValidation:
    def test_empty_prompt_rejected(self, model):
        with pytest.raises(ModelError):
            generate(model, np.array([], dtype=np.int64), 4)

    def test_overlong_continuation_rejected(self, model, prompt_tokens):
        with pytest.raises(ModelError):
            generate(model, prompt_tokens, model.config.max_seq_len + 1)

    def test_sampling_with_bad_top_k_rejected(self, model, prompt_tokens):
        with pytest.raises(ModelError):
            generate(model, prompt_tokens, 4, temperature=1.0, top_k=0)
