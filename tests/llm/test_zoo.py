"""Tests for the model zoo's caching and determinism."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.llm.config import SIM_CONFIGS, get_config
from repro.llm.zoo import (
    _recipe_fingerprint,
    cache_dir,
    clear_memory_cache,
    get_model,
)


class TestFingerprint:
    def test_stable_for_same_config(self):
        config = get_config("opt-125m-sim")
        assert _recipe_fingerprint(config) == _recipe_fingerprint(config)

    def test_differs_across_configs(self):
        a = _recipe_fingerprint(get_config("opt-125m-sim"))
        b = _recipe_fingerprint(get_config("opt-1.3b-sim"))
        assert a != b

    def test_seed_changes_fingerprint(self):
        import dataclasses

        config = get_config("opt-125m-sim")
        other = dataclasses.replace(config, seed=config.seed + 1)
        assert _recipe_fingerprint(config) != _recipe_fingerprint(other)


class TestGetModel:
    def test_paper_name_resolves_to_twin(self):
        model = get_model("opt-125m")
        assert model.config.name == "opt-125m-sim"

    def test_in_process_cache_returns_same_instance(self):
        assert get_model("opt-125m") is get_model("opt-125m")

    def test_disk_cache_reload_identical(self):
        model = get_model("opt-125m")
        state = model.state_dict()
        clear_memory_cache()
        reloaded = get_model("opt-125m")
        for name, value in reloaded.state_dict().items():
            np.testing.assert_array_equal(value, state[name])

    def test_all_sim_configs_registered(self):
        assert len(SIM_CONFIGS) == 10
        for name in SIM_CONFIGS:
            assert name.endswith("-sim")

    def test_unknown_model_raises(self):
        with pytest.raises(ModelError):
            get_model("falcon-40b")

    def test_cache_dir_exists_after_use(self):
        get_model("opt-125m")
        assert cache_dir().exists()
        assert any(cache_dir().glob("opt-125m-sim-*.npz"))
