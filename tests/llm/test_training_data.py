"""Tests for datasets, training convergence, perplexity and generation."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.llm.config import tiny_test_config
from repro.llm.datasets import (
    DATASETS,
    calibration_sequences,
    generate_text,
    load_corpus,
    sequence_windows,
    training_mixture,
    validation_sequences,
)
from repro.llm.generation import generate, generate_text as generate_model_text
from repro.llm.perplexity import (
    accuracy_drop_percent,
    evaluate_perplexity,
    relative_accuracy,
)
from repro.llm.tokenizer import ByteTokenizer
from repro.llm.training import Adam, cosine_schedule, sample_batch, train_language_model
from repro.llm.transformer import build_model


class TestTokenizer:
    def test_round_trip(self):
        tokenizer = ByteTokenizer()
        text = "The quick brown fox, 1984!"
        assert tokenizer.decode(tokenizer.encode(text)) == text

    def test_vocab_size(self):
        assert ByteTokenizer().vocab_size == 256

    def test_rejects_bad_ids(self):
        with pytest.raises(ModelError):
            ByteTokenizer().decode(np.array([300]))


class TestDatasets:
    def test_three_registers_exist(self):
        assert DATASETS == ("wikitext2-sim", "ptb-sim", "c4-sim")

    def test_generation_is_deterministic(self):
        a = generate_text("wikitext2-sim", 5000, seed=1)
        b = generate_text("wikitext2-sim", 5000, seed=1)
        assert a == b

    def test_registers_differ(self):
        texts = {name: generate_text(name, 3000, seed=1) for name in DATASETS}
        assert "https://" in texts["c4-sim"]
        assert "<unk>" in texts["ptb-sim"]
        assert "https://" not in texts["wikitext2-sim"]

    def test_exact_length(self):
        assert len(generate_text("ptb-sim", 1234, seed=0)) == 1234

    def test_unknown_dataset(self):
        with pytest.raises(ModelError):
            generate_text("imagenet", 100, seed=0)

    def test_corpus_split_disjoint_streams(self):
        corpus = load_corpus("wikitext2-sim")
        assert corpus.train_tokens.size > corpus.validation_tokens.size
        # Different seeds make the streams differ.
        n = min(corpus.train_tokens.size, corpus.validation_tokens.size)
        assert not np.array_equal(corpus.train_tokens[:n], corpus.validation_tokens[:n])

    def test_training_mixture_contains_all(self):
        mixture = training_mixture(chars_per_corpus=8192)
        assert mixture.size == 3 * 8192

    def test_sequence_windows_shape(self):
        windows = sequence_windows(np.arange(1000), seq_len=64, n_sequences=5)
        assert windows.shape == (5, 64)

    def test_sequence_windows_too_short(self):
        with pytest.raises(ModelError):
            sequence_windows(np.arange(10), seq_len=64, n_sequences=2)

    def test_calibration_and_validation_differ(self):
        cal = calibration_sequences("ptb-sim", n_sequences=4, seq_len=64)
        val = validation_sequences("ptb-sim", n_sequences=4, seq_len=64)
        assert cal.shape == val.shape == (4, 64)
        assert not np.array_equal(cal, val)


class TestOptimizer:
    def test_adam_reduces_quadratic(self):
        from repro.llm.autograd import Tensor

        x = Tensor(np.array([5.0], np.float32), requires_grad=True)
        opt = Adam([x], learning_rate=0.1, clip_norm=None)
        for _ in range(200):
            opt.zero_grad()
            loss = (x * x).sum()
            loss.backward()
            opt.step()
        assert abs(float(x.data[0])) < 0.1

    def test_adam_requires_parameters(self):
        with pytest.raises(ModelError):
            Adam([])

    def test_cosine_schedule_shape(self):
        peak = 1e-2
        warm = cosine_schedule(0, 100, peak)
        mid = cosine_schedule(50, 100, peak)
        end = cosine_schedule(99, 100, peak)
        assert warm < peak
        assert end < mid <= peak

    def test_sample_batch_shape(self):
        batch = sample_batch(np.arange(500), 4, 32, np.random.default_rng(0))
        assert batch.shape == (4, 33)


class TestTrainingConvergence:
    def test_loss_decreases_on_tiny_model(self):
        model = build_model(tiny_test_config(seed=7))
        tokens = load_corpus("wikitext2-sim").train_tokens[:40_000]
        result = train_language_model(
            model, tokens, steps=60, batch_size=8, seq_len=48, seed=7
        )
        first = np.mean(result.losses[:5])
        last = np.mean(result.losses[-5:])
        assert last < first * 0.8
        # Byte-level uniform loss is ln(256) = 5.55; training must beat it.
        assert last < 4.0

    def test_rejects_zero_steps(self):
        model = build_model(tiny_test_config())
        with pytest.raises(ModelError):
            train_language_model(model, np.arange(100), steps=0)


class TestPerplexity:
    def test_untrained_ppl_near_uniform(self):
        model = build_model(tiny_test_config(seed=11))
        sequences = validation_sequences("wikitext2-sim", n_sequences=4, seq_len=48)
        ppl = evaluate_perplexity(model, sequences)
        assert 100 < ppl < 700  # near 256 for random logits

    def test_training_lowers_ppl(self):
        model = build_model(tiny_test_config(seed=13))
        corpus = load_corpus("wikitext2-sim")
        sequences = validation_sequences("wikitext2-sim", n_sequences=4, seq_len=48)
        before = evaluate_perplexity(model, sequences)
        train_language_model(
            model, corpus.train_tokens, steps=60, batch_size=8, seq_len=48, seed=13
        )
        after = evaluate_perplexity(model, sequences)
        assert after < before / 5

    def test_rejects_bad_shapes(self):
        model = build_model(tiny_test_config())
        with pytest.raises(ModelError):
            evaluate_perplexity(model, np.zeros((4,), dtype=int))

    def test_relative_accuracy_convention(self):
        assert relative_accuracy(10.0, 10.0) == pytest.approx(1.0)
        assert relative_accuracy(11.0, 10.0) < 1.0
        assert accuracy_drop_percent(10.1, 10.0) == pytest.approx(-0.99, abs=0.01)

    def test_relative_accuracy_validation(self):
        with pytest.raises(ModelError):
            relative_accuracy(0.0, 1.0)


class TestGeneration:
    def test_greedy_is_deterministic(self):
        model = build_model(tiny_test_config(seed=17))
        prompt = np.array([10, 20, 30])
        a = generate(model, prompt, max_new_tokens=8)
        b = generate(model, prompt, max_new_tokens=8)
        np.testing.assert_array_equal(a.tokens, b.tokens)
        assert a.continuation().size == 8

    def test_sampled_generation_runs(self):
        model = build_model(tiny_test_config(seed=19))
        result = generate(
            model, np.array([65, 66]), max_new_tokens=5, temperature=1.0, seed=3
        )
        assert result.tokens.size == 7

    def test_text_wrapper(self):
        model = build_model(tiny_test_config(seed=23))
        text = generate_model_text(model, "the ", max_new_tokens=4)
        assert text.startswith("the ")

    def test_rejects_overlong_generation(self):
        model = build_model(tiny_test_config())
        with pytest.raises(ModelError):
            generate(model, np.zeros(4, dtype=int), max_new_tokens=10_000)

    def test_rejects_empty_prompt(self):
        model = build_model(tiny_test_config())
        with pytest.raises(ModelError):
            generate(model, np.zeros(0, dtype=int), max_new_tokens=2)
