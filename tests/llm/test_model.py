"""Tests for layers, attention, transformer blocks and the causal LM."""

import numpy as np
import pytest

from repro.core.precision import PrecisionCombination, TensorKind
from repro.errors import ModelError
from repro.llm.attention import KVCache, causal_mask
from repro.llm.autograd import Tensor, no_grad
from repro.llm.config import get_config, tiny_test_config
from repro.llm.hooks import ActivationStatsRecorder, anda_quantizer
from repro.llm.layers import Embedding, LayerNorm, Linear, RMSNorm
from repro.llm.transformer import build_model


def tiny_model(family="opt", seed=0):
    return build_model(tiny_test_config(family=family, seed=seed))


class TestLayers:
    def test_linear_shapes(self):
        rng = np.random.default_rng(0)
        layer = Linear(8, 3, rng)
        out = layer(Tensor(np.ones((2, 5, 8), np.float32)))
        assert out.shape == (2, 5, 3)

    def test_linear_no_bias(self):
        rng = np.random.default_rng(0)
        layer = Linear(4, 2, rng, bias=False)
        assert layer.bias is None

    def test_layernorm_normalizes(self):
        norm = LayerNorm(16)
        x = Tensor(np.random.default_rng(1).normal(3.0, 5.0, size=(4, 16)))
        out = norm(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_rmsnorm_scale(self):
        norm = RMSNorm(16)
        x = Tensor(np.random.default_rng(2).normal(0.0, 7.0, size=(4, 16)))
        out = norm(x).data
        rms = np.sqrt((out**2).mean(axis=-1))
        np.testing.assert_allclose(rms, 1.0, atol=1e-2)

    def test_embedding_range_check(self):
        emb = Embedding(10, 4, np.random.default_rng(3))
        with pytest.raises(ModelError):
            emb(np.array([11]))

    def test_state_dict_round_trip(self):
        model = tiny_model()
        state = model.state_dict()
        clone = tiny_model(seed=123)
        clone.load_state_dict(state)
        tokens = np.arange(10).reshape(1, 10) % 256
        with no_grad():
            a = model.forward(tokens).data
            b = clone.forward(tokens).data
        np.testing.assert_array_equal(a, b)

    def test_state_dict_mismatch_raises(self):
        model = tiny_model()
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(ModelError):
            tiny_model().load_state_dict(state)


class TestCausalMask:
    def test_strictly_upper_triangular(self):
        mask = causal_mask(4)
        assert np.all(mask[np.tril_indices(4)] == 0)
        assert np.all(mask[np.triu_indices(4, k=1)] < -1e8)


class TestForward:
    @pytest.mark.parametrize("family", ["opt", "llama"])
    def test_logits_shape(self, family):
        model = tiny_model(family)
        tokens = np.random.default_rng(0).integers(0, 256, size=(2, 12))
        with no_grad():
            logits = model.forward(tokens)
        assert logits.shape == (2, 12, 256)

    @pytest.mark.parametrize("family", ["opt", "llama"])
    def test_causality(self, family):
        """Changing a future token must not affect earlier logits."""
        model = tiny_model(family)
        rng = np.random.default_rng(1)
        tokens = rng.integers(0, 256, size=(1, 10))
        altered = tokens.copy()
        altered[0, -1] = (altered[0, -1] + 7) % 256
        with no_grad():
            base = model.forward(tokens).data
            changed = model.forward(altered).data
        np.testing.assert_allclose(base[0, :9], changed[0, :9], atol=1e-5)
        assert not np.allclose(base[0, 9], changed[0, 9])

    def test_rejects_overlong_sequence(self):
        model = tiny_model()
        too_long = model.config.max_seq_len + 1
        with pytest.raises(ModelError):
            model.forward(np.zeros((1, too_long), dtype=int))

    def test_rejects_1d_tokens(self):
        with pytest.raises(ModelError):
            tiny_model().forward(np.zeros(5, dtype=int))

    def test_loss_positive_and_finite(self):
        model = tiny_model()
        tokens = np.random.default_rng(2).integers(0, 256, size=(2, 16))
        loss = model.loss(tokens)
        assert np.isfinite(loss.data)
        assert float(loss.data) > 0

    def test_loss_gradients_flow_everywhere(self):
        model = tiny_model()
        tokens = np.random.default_rng(3).integers(0, 256, size=(2, 16))
        loss = model.loss(tokens)
        loss.backward()
        with_grad = sum(1 for p in model.parameters() if p.grad is not None)
        # Every parameter except (possibly) unused position rows gets grads.
        assert with_grad == len(model.parameters())


class TestKVCacheDecode:
    @pytest.mark.parametrize("family", ["opt", "llama"])
    def test_cached_matches_full_forward(self, family):
        model = tiny_model(family)
        rng = np.random.default_rng(4)
        tokens = rng.integers(0, 256, size=(1, 9))
        with no_grad():
            full = model.forward(tokens).data
        caches = model.new_cache()
        prefill = model.forward_step(tokens[:, :5], caches)
        np.testing.assert_allclose(prefill, full[:, :5], atol=2e-3)
        for t in range(5, 9):
            step = model.forward_step(tokens[:, t : t + 1], caches)
            np.testing.assert_allclose(step[:, 0], full[:, t], atol=2e-3)

    def test_cache_length_tracks(self):
        cache = KVCache()
        assert cache.length == 0
        k = np.zeros((1, 2, 3, 4), np.float32)
        cache.append(k, k)
        assert cache.length == 3


class TestActivationTaps:
    def test_recorder_sees_all_four_kinds(self):
        model = tiny_model()
        recorder = ActivationStatsRecorder()
        model.set_recorder(recorder)
        tokens = np.random.default_rng(5).integers(0, 256, size=(1, 8))
        with no_grad():
            model.forward(tokens)
        for kind in TensorKind:
            assert recorder.count[kind] > 0

    def test_quantizer_changes_logits(self):
        model = tiny_model()
        tokens = np.random.default_rng(6).integers(0, 256, size=(1, 16))
        with no_grad():
            base = model.forward(tokens).data
            model.set_quantizer(anda_quantizer(PrecisionCombination.uniform(2)))
            quantized = model.forward(tokens).data
            model.set_quantizer(None)
            restored = model.forward(tokens).data
        assert not np.allclose(base, quantized)
        np.testing.assert_array_equal(base, restored)

    def test_high_precision_quantizer_is_nearly_transparent(self):
        model = tiny_model()
        tokens = np.random.default_rng(7).integers(0, 256, size=(1, 16))
        with no_grad():
            base = model.forward(tokens).data
            model.set_quantizer(anda_quantizer(PrecisionCombination.uniform(16)))
            quantized = model.forward(tokens).data
        scale = np.abs(base).max()
        np.testing.assert_allclose(quantized, base, atol=2e-3 * scale)

    def test_quantizer_during_training_raises(self):
        model = tiny_model()
        model.set_quantizer(anda_quantizer(PrecisionCombination.uniform(4)))
        tokens = np.random.default_rng(8).integers(0, 256, size=(1, 8))
        with pytest.raises(ModelError):
            model.loss(tokens)


class TestConfigs:
    def test_paper_config_lookup(self):
        config = get_config("opt-1.3b")
        assert config.d_model == 2048
        assert config.n_layers == 24

    def test_sim_twin(self):
        assert get_config("opt-1.3b").sim_twin().name == "opt-1.3b-sim"

    def test_unknown_name(self):
        with pytest.raises(ModelError):
            get_config("gpt-5")

    def test_llama_family_properties(self):
        config = get_config("llama-7b")
        assert config.gated_ffn
        assert config.norm == "rmsnorm"
        assert config.ffn_dim == 11008
