"""Unit tests for the bit-true FP16 codec."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import fp16
from repro.errors import FormatError


class TestDecompose:
    def test_one(self):
        sign, exponent, significand = fp16.decompose(np.array([1.0]))
        assert sign[0] == 0
        assert exponent[0] == 0
        assert significand[0] == 1 << 10

    def test_negative_two(self):
        sign, exponent, significand = fp16.decompose(np.array([-2.0]))
        assert sign[0] == 1
        assert exponent[0] == 1
        assert significand[0] == 1 << 10

    def test_one_point_five(self):
        _, exponent, significand = fp16.decompose(np.array([1.5]))
        assert exponent[0] == 0
        assert significand[0] == (1 << 10) | (1 << 9)

    def test_zero_gets_sentinel_exponent(self):
        _, exponent, significand = fp16.decompose(np.array([0.0]))
        assert significand[0] == 0
        assert exponent[0] == fp16.ZERO_EXPONENT

    def test_subnormal(self):
        # Smallest positive FP16 subnormal is 2**-24.
        sign, exponent, significand = fp16.decompose(np.array([2.0**-24]))
        assert sign[0] == 0
        assert exponent[0] == fp16.SUBNORMAL_EXPONENT
        assert significand[0] == 1

    def test_significand_range(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=1000).astype(np.float32)
        _, _, significand = fp16.decompose(x)
        assert np.all(significand < (1 << 11))
        assert np.all(significand >= 0)

    def test_rejects_nan(self):
        with pytest.raises(FormatError):
            fp16.decompose(np.array([np.nan]))

    def test_rejects_inf(self):
        with pytest.raises(FormatError):
            fp16.decompose(np.array([np.inf]))

    def test_overflow_saturates_to_max_finite(self):
        sign, exponent, significand = fp16.decompose(np.array([1e9, -1e9]))
        value = fp16.compose(sign, exponent, significand)
        assert value[0] == pytest.approx(fp16.MAX_FINITE)
        assert value[1] == pytest.approx(-fp16.MAX_FINITE)


class TestRoundTrip:
    def test_exact_fp16_values(self):
        values = np.array([0.0, 1.0, -1.5, 0.25, 1024.0, -65504.0], dtype=np.float32)
        assert np.array_equal(fp16.round_trip(values), values)

    def test_matches_numpy_cast(self):
        rng = np.random.default_rng(7)
        x = (rng.normal(size=4096) * 10 ** rng.uniform(-6, 4, size=4096)).astype(
            np.float32
        )
        expected = x.astype(np.float16).astype(np.float32)
        assert np.array_equal(fp16.round_trip(x), expected)

    @given(
        st.lists(
            st.floats(
                min_value=-60000.0,
                max_value=60000.0,
                allow_nan=False,
                allow_infinity=False,
                width=32,
            ),
            min_size=1,
            max_size=64,
        )
    )
    def test_property_round_trip_equals_fp16_cast(self, values):
        x = np.array(values, dtype=np.float32)
        expected = x.astype(np.float16).astype(np.float32)
        assert np.array_equal(fp16.round_trip(x), expected)

    def test_preserves_shape(self):
        x = np.zeros((3, 5, 7), dtype=np.float32)
        assert fp16.round_trip(x).shape == (3, 5, 7)

    def test_all_positive_normal_bit_patterns(self):
        # Exhaustively reconstruct every finite positive FP16 pattern.
        bits = np.arange(0, 0x7C00, dtype=np.uint16)  # below Inf
        expected = bits.view(np.float16).astype(np.float32)
        sign, exp_field, mant_field = fp16.decompose_bits(bits)
        hidden = np.where(exp_field > 0, 1 << 10, 0)
        significand = hidden | mant_field
        exponent = np.where(exp_field > 0, exp_field - 15, -14)
        rebuilt = fp16.compose(sign, exponent, significand)
        assert np.array_equal(rebuilt, expected)


class TestStorage:
    def test_storage_bits(self):
        assert fp16.storage_bits(64) == 1024
        assert fp16.storage_bits(0) == 0
