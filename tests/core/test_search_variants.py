"""Tests for the alternative search strategies (Sec. III-D comparators)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.precision import PrecisionCombination
from repro.core.search_variants import (
    LayerwiseOutcome,
    StrategyOutcome,
    adaptive_search_outcome,
    brute_force_search,
    compare_strategies,
    greedy_descent_search,
    layer_wise_search,
    random_search,
    synthetic_landscape,
)
from repro.errors import SearchError


@pytest.fixture(scope="module")
def landscape():
    return synthetic_landscape(seed=7)


class TestBruteForce:
    def test_finds_global_optimum(self, landscape):
        accuracy, bops, reference = landscape
        outcome = brute_force_search(accuracy, bops, reference, 0.01)
        assert outcome.feasible
        # No feasible combination can be cheaper: check against full scan.
        threshold = 0.99 * reference
        for qkv in range(4, 14):
            for o in range(4, 14):
                for u in range(4, 14):
                    for d in range(4, 14):
                        combo = PrecisionCombination(qkv, o, u, d)
                        if accuracy(combo) >= threshold:
                            assert bops(combo) >= outcome.best_bops

    def test_bops_first_enumeration_stops_early(self, landscape):
        accuracy, bops, reference = landscape
        outcome = brute_force_search(accuracy, bops, reference, 0.01)
        # Far fewer than the 10^4 combinations of the full space.
        assert outcome.evaluations < 10_000

    def test_infeasible_when_tolerance_zero_and_noise_high(self):
        accuracy, bops, reference = synthetic_landscape(seed=1)
        outcome = brute_force_search(
            lambda combo: 0.0, bops, reference, 0.0
        )
        assert not outcome.feasible
        assert outcome.best_bops == float("inf")

    def test_evaluation_cap_respected(self, landscape):
        accuracy, bops, reference = landscape
        outcome = brute_force_search(
            accuracy, bops, reference, 0.01, max_evaluations=5
        )
        assert outcome.evaluations <= 5

    def test_rejects_bad_range(self, landscape):
        accuracy, bops, reference = landscape
        with pytest.raises(SearchError):
            brute_force_search(accuracy, bops, reference, 0.01, bit_range=(0, 13))
        with pytest.raises(SearchError):
            brute_force_search(accuracy, bops, reference, -0.1)


class TestRandomSearch:
    def test_budget_respected(self, landscape):
        accuracy, bops, reference = landscape
        outcome = random_search(accuracy, bops, reference, 0.01, max_evaluations=16)
        assert outcome.evaluations <= 16

    def test_deterministic_per_seed(self, landscape):
        accuracy, bops, reference = landscape
        a = random_search(accuracy, bops, reference, 0.01, seed=3)
        b = random_search(accuracy, bops, reference, 0.01, seed=3)
        assert a.best == b.best
        assert a.best_bops == b.best_bops

    def test_feasible_result_meets_tolerance(self, landscape):
        accuracy, bops, reference = landscape
        outcome = random_search(accuracy, bops, reference, 0.05, max_evaluations=64)
        if outcome.feasible:
            assert accuracy(outcome.best) >= 0.95 * reference

    def test_rejects_zero_budget(self, landscape):
        accuracy, bops, reference = landscape
        with pytest.raises(SearchError):
            random_search(accuracy, bops, reference, 0.01, max_evaluations=0)


class TestGreedyDescent:
    def test_result_meets_tolerance(self, landscape):
        accuracy, bops, reference = landscape
        outcome = greedy_descent_search(accuracy, bops, reference, 0.01)
        assert outcome.feasible
        assert accuracy(outcome.best) >= 0.99 * reference

    def test_infeasible_start_detected(self, landscape):
        _, bops, reference = landscape
        outcome = greedy_descent_search(lambda combo: 0.0, bops, reference, 0.01)
        assert not outcome.feasible
        assert outcome.evaluations == 1  # only the start was probed

    def test_descends_from_conservative_start(self, landscape):
        accuracy, bops, reference = landscape
        outcome = greedy_descent_search(accuracy, bops, reference, 0.01)
        assert outcome.best_bops < bops(PrecisionCombination.uniform(13))

    def test_respects_bit_floor(self, landscape):
        accuracy, bops, reference = landscape
        outcome = greedy_descent_search(
            accuracy, bops, reference, 0.5, bit_range=(8, 13)
        )
        assert outcome.feasible
        assert min(outcome.best) >= 8


class TestAdaptiveOutcome:
    def test_matches_algorithm_one(self, landscape):
        accuracy, bops, reference = landscape
        outcome = adaptive_search_outcome(accuracy, bops, reference, 0.01)
        assert outcome.strategy == "adaptive (Alg. 1)"
        assert outcome.feasible
        assert outcome.evaluations <= 32

    @given(st.integers(min_value=0, max_value=10))
    @settings(max_examples=10, deadline=None)
    def test_feasible_on_any_seeded_landscape(self, seed):
        accuracy, bops, reference = synthetic_landscape(seed=seed)
        outcome = adaptive_search_outcome(accuracy, bops, reference, 0.01)
        assert outcome.feasible


class TestStrategyComparison:
    def test_all_strategies_present(self, landscape):
        accuracy, bops, reference = landscape
        outcomes = compare_strategies(accuracy, bops, reference, 0.01)
        names = {outcome.strategy for outcome in outcomes}
        assert names == {"adaptive (Alg. 1)", "greedy-descent", "random", "brute-force"}

    def test_adaptive_near_brute_force_quality(self, landscape):
        accuracy, bops, reference = landscape
        outcomes = {o.strategy: o for o in compare_strategies(accuracy, bops, reference, 0.01)}
        adaptive = outcomes["adaptive (Alg. 1)"]
        brute = outcomes["brute-force"]
        assert adaptive.feasible and brute.feasible
        # Paper claim: near-optimal within a few dozen evaluations.
        assert adaptive.best_bops <= 1.15 * brute.best_bops

    def test_adaptive_cheaper_than_greedy(self, landscape):
        accuracy, bops, reference = landscape
        outcomes = {o.strategy: o for o in compare_strategies(accuracy, bops, reference, 0.01)}
        assert (
            outcomes["adaptive (Alg. 1)"].evaluations
            <= outcomes["greedy-descent"].evaluations
        )


class TestLayerwise:
    @staticmethod
    def make_layerwise(n_layers, landscape):
        accuracy, bops, reference = landscape

        def layer_accuracy(assignment):
            # Whole-model accuracy: mean of per-layer landscape scores.
            scores = [accuracy(combo) for combo in assignment]
            return sum(scores) / len(scores)

        return layer_accuracy, bops, reference

    def test_evaluations_scale_with_layers(self, landscape):
        accuracy4, bops, reference = self.make_layerwise(4, landscape)
        accuracy8, _, _ = self.make_layerwise(8, landscape)
        small = layer_wise_search(accuracy4, bops, 4, reference, 0.01)
        large = layer_wise_search(accuracy8, bops, 8, reference, 0.01)
        assert large.evaluations > small.evaluations

    def test_layerwise_costs_more_than_modulewise(self, landscape):
        accuracy, bops, reference = landscape
        module = adaptive_search_outcome(accuracy, bops, reference, 0.01)
        layer_accuracy, _, _ = self.make_layerwise(12, landscape)
        layered = layer_wise_search(layer_accuracy, bops, 12, reference, 0.01)
        # The paper's motivation: layer-wise multiplies deployment cost.
        assert layered.evaluations > 4 * module.evaluations

    def test_assignment_shape(self, landscape):
        layer_accuracy, bops, reference = self.make_layerwise(3, landscape)
        outcome = layer_wise_search(layer_accuracy, bops, 3, reference, 0.01)
        assert len(outcome.assignment) == 3
        assert all(isinstance(combo, PrecisionCombination) for combo in outcome.assignment)
        assert 4 <= outcome.mean_bits <= 13

    def test_budget_cap(self, landscape):
        layer_accuracy, bops, reference = self.make_layerwise(6, landscape)
        outcome = layer_wise_search(
            layer_accuracy, bops, 6, reference, 0.01, max_evaluations=10
        )
        assert outcome.evaluations <= 10

    def test_rejects_bad_layers(self, landscape):
        layer_accuracy, bops, reference = self.make_layerwise(2, landscape)
        with pytest.raises(SearchError):
            layer_wise_search(layer_accuracy, bops, 0, reference, 0.01)


class TestSyntheticLandscape:
    def test_accuracy_monotone_in_bits(self):
        accuracy, _, _ = synthetic_landscape(seed=2)
        lo = accuracy(PrecisionCombination.uniform(4))
        hi = accuracy(PrecisionCombination.uniform(13))
        assert hi > lo

    def test_bops_monotone_in_bits(self):
        _, bops, _ = synthetic_landscape(seed=2)
        assert bops(PrecisionCombination.uniform(5)) < bops(
            PrecisionCombination.uniform(6)
        )

    def test_qkv_most_sensitive(self):
        accuracy, _, _ = synthetic_landscape(seed=0)
        base = PrecisionCombination.uniform(8)
        drops = []
        for index in range(4):
            bits = list(base)
            bits[index] = 4
            drops.append(accuracy(base) - accuracy(PrecisionCombination(*bits)))
        assert drops[0] == max(drops)

    def test_noise_is_reproducible(self):
        accuracy, _, _ = synthetic_landscape(seed=0, noise=0.001)
        combo = PrecisionCombination.uniform(7)
        assert accuracy(combo) == accuracy(combo)


class TestOutcomeContainers:
    def test_strategy_outcome_feasibility(self):
        assert not StrategyOutcome("x", None, float("inf"), 3).feasible
        assert StrategyOutcome(
            "x", PrecisionCombination.uniform(5), 1.0, 3
        ).feasible

    def test_layerwise_mean_bits(self):
        outcome = LayerwiseOutcome(
            (PrecisionCombination.uniform(4), PrecisionCombination.uniform(6)),
            bops=1.0,
            evaluations=2,
        )
        assert outcome.mean_bits == 5.0
