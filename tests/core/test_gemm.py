"""Tests for the full integer W4A16 x Anda GeMM operator."""

import numpy as np
import pytest

from repro.core.anda import AndaTensor
from repro.core.gemm import anda_gemm, reference_gemm
from repro.errors import HardwareError
from repro.quant.weight_quant import WeightQuantConfig, quantize_weights


def make_operands(seed=0, rows=6, k=256, n=32, mantissa=8, weight_group=128):
    rng = np.random.default_rng(seed)
    acts = rng.normal(size=(rows, k)).astype(np.float32)
    weights = rng.normal(size=(k, n)).astype(np.float32) / np.sqrt(k)
    encoded = AndaTensor.from_float(acts, mantissa)
    quantized = quantize_weights(
        weights, WeightQuantConfig(bits=4, group_size=weight_group)
    )
    return encoded, quantized


class TestNumericalContract:
    @pytest.mark.parametrize("mantissa", [3, 6, 8, 11, 14])
    def test_matches_float_reference(self, mantissa):
        acts, weights = make_operands(mantissa, mantissa=mantissa)
        out, _ = anda_gemm(acts, weights)
        ref = reference_gemm(acts, weights)
        np.testing.assert_allclose(out, ref, rtol=1e-5, atol=1e-5)

    def test_weight_group_equal_to_anda_group(self):
        acts, weights = make_operands(1, weight_group=64)
        out, _ = anda_gemm(acts, weights)
        np.testing.assert_allclose(out, reference_gemm(acts, weights), rtol=1e-5)

    def test_weight_group_smaller_than_anda_group(self):
        acts, weights = make_operands(2, weight_group=32)
        out, _ = anda_gemm(acts, weights)
        np.testing.assert_allclose(
            out, reference_gemm(acts, weights), rtol=1e-5, atol=1e-5
        )

    def test_weight_group_larger_than_anda_group(self):
        acts, weights = make_operands(3, k=512, weight_group=256)
        out, _ = anda_gemm(acts, weights)
        np.testing.assert_allclose(
            out, reference_gemm(acts, weights), rtol=1e-5, atol=1e-5
        )

    def test_approximates_unquantized_matmul(self):
        rng = np.random.default_rng(4)
        acts_f = rng.normal(size=(4, 256)).astype(np.float32)
        weights_f = rng.normal(size=(256, 16)).astype(np.float32) / 16
        acts, weights = make_operands(4, mantissa=11)
        exact = acts_f @ weights_f
        out, _ = anda_gemm(
            AndaTensor.from_float(acts_f, 11),
            quantize_weights(weights_f, WeightQuantConfig()),
        )
        # Residual error is dominated by the INT4 *weight* quantization
        # (the W4A16 scheme's intrinsic cost), not the Anda encode.
        scale = np.abs(exact).max()
        assert np.abs(out - exact).max() < 0.2 * scale
        assert np.corrcoef(out.ravel(), exact.ravel())[0, 1] > 0.99

    def test_non_nesting_groups_rejected(self):
        acts, _ = make_operands(5)
        rng = np.random.default_rng(5)
        weights = quantize_weights(
            rng.normal(size=(256, 8)).astype(np.float32),
            WeightQuantConfig(group_size=48),
        )
        with pytest.raises(HardwareError):
            anda_gemm(acts, weights)

    def test_shape_mismatch_rejected(self):
        acts, _ = make_operands(6, k=256)
        rng = np.random.default_rng(6)
        weights = quantize_weights(
            rng.normal(size=(128, 8)).astype(np.float32), WeightQuantConfig()
        )
        with pytest.raises(HardwareError):
            anda_gemm(acts, weights)

    def test_rejects_non_2d_activations(self):
        x = np.ones((2, 2, 64), dtype=np.float32)
        acts = AndaTensor.from_float(x, 8)
        _, weights = make_operands(7, k=64)
        with pytest.raises(HardwareError):
            anda_gemm(acts, weights)


class TestOutputCompression:
    def test_write_back_path_quantizes(self):
        acts, weights = make_operands(8)
        raw, _ = anda_gemm(acts, weights)
        compressed, stats = anda_gemm(acts, weights, compress_output_bits=6)
        assert stats.output_compress_cycles > 0
        assert not np.array_equal(raw, compressed)
        # The compressed output equals raw encoded at 6 bits.
        expected = AndaTensor.from_float(raw, 6).decode()
        np.testing.assert_array_equal(compressed, expected)

    def test_stats_counts(self):
        acts, weights = make_operands(9, rows=3, k=128, n=8, mantissa=5)
        _, stats = anda_gemm(acts, weights)
        assert stats.integer_macs == 3 * 128 * 8
        assert stats.groups_reduced == 3 * 2 * 8
        assert stats.bitplanes_streamed == 3 * 2 * 5


class TestFaultInjection:
    """Bit errors in the stored planes have bounded, plane-weighted
    impact — the failure-containment property of the bit-plane layout."""

    def _flip_plane_bit(self, tensor, group, plane, element):
        planes = tensor.store.mantissa_planes.copy()
        planes[group, plane] ^= np.uint64(1) << np.uint64(element)
        tensor.store.mantissa_planes = planes
        return tensor

    def test_lsb_flip_has_small_effect(self):
        acts, weights = make_operands(10, mantissa=8)
        clean, _ = anda_gemm(acts, weights)
        faulty = self._flip_plane_bit(acts, group=0, plane=7, element=3)
        dirty, _ = anda_gemm(faulty, weights)
        # Exactly one group of one row changes, by one LSB-weighted step.
        diff = np.abs(dirty - clean)
        assert (diff > 0).any()
        exponent = int(acts.store.exponents[0])
        lsb_value = 2.0 ** (exponent + 1 - 8)
        max_weight_mag = np.abs(weights.dequantize()).max()
        assert diff.max() <= lsb_value * max_weight_mag * 1.001

    def test_msb_flip_is_2e7_times_lsb_flip(self):
        acts, weights = make_operands(11, mantissa=8)
        clean, _ = anda_gemm(acts, weights)
        msb = self._flip_plane_bit(make_operands(11, mantissa=8)[0], 0, 0, 5)
        lsb = self._flip_plane_bit(make_operands(11, mantissa=8)[0], 0, 7, 5)
        msb_diff = np.abs(anda_gemm(msb, weights)[0] - clean).max()
        lsb_diff = np.abs(anda_gemm(lsb, weights)[0] - clean).max()
        if lsb_diff > 0 and msb_diff > 0:
            # float32 output rounding leaves ~1e-2 slack on the exact
            # 2^7 plane-weight ratio.
            assert msb_diff == pytest.approx(lsb_diff * 2**7, rel=1e-2)

    def test_sign_word_flip_doubles_contribution(self):
        acts, weights = make_operands(12, mantissa=8)
        clean, _ = anda_gemm(acts, weights)
        signs = acts.store.sign_words.copy()
        signs[0] ^= np.uint64(1) << np.uint64(9)
        acts.store.sign_words = signs
        dirty, _ = anda_gemm(acts, weights)
        # Flipping a sign changes the contribution by 2x the element.
        assert not np.array_equal(dirty, clean)

    def test_exponent_corruption_scales_group(self):
        acts, weights = make_operands(13, mantissa=8)
        clean, _ = anda_gemm(acts, weights)
        exps = acts.store.exponents.copy()
        exps[0] += 1
        acts.store.exponents = exps
        dirty, _ = anda_gemm(acts, weights)
        # Only the first row (which owns group 0) is affected.
        assert not np.allclose(dirty[0], clean[0])
        np.testing.assert_array_equal(dirty[1:], clean[1:])
