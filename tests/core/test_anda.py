"""Unit and property tests for the Anda tensor format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fp16
from repro.core.anda import (
    ANDA_GROUP_SIZE,
    AndaTensor,
    fake_quantize,
    fake_quantize_batch,
)
from repro.core.bfp import BfpConfig, quantize
from repro.errors import FormatError


def random_activations(seed, shape, scale_spread=2.0):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=shape)
    scales = 10 ** (rng.normal(size=shape) * scale_spread / 4)
    return (base * scales).astype(np.float32)


class TestRoundTrip:
    def test_decode_matches_bfp_dequantize(self):
        x = random_activations(0, (8, 256))
        tensor = AndaTensor.from_float(x, mantissa_bits=7)
        bfp = quantize(x, BfpConfig(mantissa_bits=7, group_size=ANDA_GROUP_SIZE))
        assert np.array_equal(tensor.decode(), bfp.dequantize())

    def test_fake_quantize_matches_decode(self):
        x = random_activations(1, (4, 128))
        tensor = AndaTensor.from_float(x, mantissa_bits=5)
        assert np.array_equal(fake_quantize(x, 5), tensor.decode())

    def test_bitplane_pack_unpack_identity(self):
        x = random_activations(2, (3, 192))
        tensor = AndaTensor.from_float(x, mantissa_bits=9)
        rebuilt = tensor.to_bfp()
        direct = quantize(x, BfpConfig(mantissa_bits=9, group_size=ANDA_GROUP_SIZE))
        assert np.array_equal(rebuilt.mantissa, direct.mantissa)
        assert np.array_equal(rebuilt.sign, direct.sign)
        assert np.array_equal(rebuilt.shared_exponent, direct.shared_exponent)

    @given(
        seed=st.integers(0, 10_000),
        mantissa=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_encode_decode_error_bound(self, seed, mantissa):
        x = random_activations(seed, (2, 64))
        tensor = AndaTensor.from_float(x, mantissa_bits=mantissa)
        decoded = tensor.decode()
        x16 = fp16.round_trip(x)
        exps = tensor.store.exponents
        lsb = np.ldexp(1.0, exps + 1 - mantissa).reshape(2, 1)
        assert np.all(np.abs(decoded - x16) <= lsb + 1e-12)

    def test_rejects_wrong_group_size_bfp(self):
        x = random_activations(3, (2, 64))
        bfp = quantize(x, BfpConfig(mantissa_bits=4, group_size=32))
        with pytest.raises(FormatError):
            AndaTensor.from_bfp(bfp)

    def test_rejects_out_of_range_mantissa(self):
        with pytest.raises(FormatError):
            AndaTensor.from_float(np.ones((1, 64)), mantissa_bits=0)


class TestStorage:
    def test_storage_bits_scale_with_mantissa(self):
        x = random_activations(4, (16, 256))
        small = AndaTensor.from_float(x, mantissa_bits=4).storage_bits()
        large = AndaTensor.from_float(x, mantissa_bits=12).storage_bits()
        assert small < large

    def test_storage_formula(self):
        x = np.ones((1, 64), dtype=np.float32)
        tensor = AndaTensor.from_float(x, mantissa_bits=6)
        # sign word + 6 plane words + 8-bit exponent, one group.
        assert tensor.storage_bits() == 64 * (1 + 6) + 8

    def test_compression_ratio_vs_fp16(self):
        x = random_activations(5, (32, 512))
        tensor = AndaTensor.from_float(x, mantissa_bits=7)
        # 16 bits -> (1 + 7 + 8/64) bits per element.
        assert tensor.compression_ratio() == pytest.approx(16 / (8 + 8 / 64))

    def test_words_per_group(self):
        x = np.ones((1, 64), dtype=np.float32)
        tensor = AndaTensor.from_float(x, mantissa_bits=5)
        assert tensor.store.words_per_group() == 6


class TestGroupViews:
    def test_group_values_match_decode(self):
        x = random_activations(6, (4, 192))
        tensor = AndaTensor.from_float(x, mantissa_bits=8)
        grouped = tensor.group_values()
        assert grouped.shape == (tensor.n_groups, ANDA_GROUP_SIZE)
        assert np.allclose(
            grouped.reshape(4, -1)[:, :192], tensor.decode(), atol=0
        )

    def test_signed_mantissa_signs(self):
        x = np.array([[-1.0] * 32 + [1.0] * 32], dtype=np.float32)
        tensor = AndaTensor.from_float(x, mantissa_bits=8)
        signed = tensor.signed_mantissa()
        assert np.all(signed[0, :32] < 0)
        assert np.all(signed[0, 32:] > 0)


class TestFakeQuantizeBatch:
    def test_rows_match_independent_quantization(self):
        # The serving engine's parity guarantee: quantizing a stacked
        # (batch, time, channels) tensor must equal quantizing each
        # leading-axis slice alone, bit for bit.
        x = random_activations(7, (4, 3, 96))
        batched = fake_quantize_batch(x, mantissa_bits=6)
        for row in range(x.shape[0]):
            np.testing.assert_array_equal(
                batched[row], fake_quantize_batch(x[row], mantissa_bits=6)
            )

    def test_matches_flat_fake_quantize(self):
        x = random_activations(8, (5, 128))
        np.testing.assert_array_equal(
            fake_quantize_batch(x, 5), fake_quantize(x, 5)
        )

    def test_shape_preserved(self):
        x = random_activations(9, (2, 3, 4, 64))
        assert fake_quantize_batch(x, 8).shape == x.shape
