"""Tests for the Anda binary serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.anda import AndaTensor
from repro.core.serialize import dumps, image_bytes, loads
from repro.errors import FormatError


def tensor_for(seed=0, shape=(4, 192), mantissa=7, rounding="truncate"):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=shape).astype(np.float32)
    return AndaTensor.from_float(x, mantissa, rounding=rounding)


class TestRoundTrip:
    def test_bit_exact(self):
        tensor = tensor_for()
        restored = loads(dumps(tensor))
        assert np.array_equal(restored.decode(), tensor.decode())
        assert np.array_equal(
            restored.store.mantissa_planes, tensor.store.mantissa_planes
        )
        assert restored.layout == tensor.layout

    def test_rounding_mode_preserved(self):
        tensor = tensor_for(rounding="nearest")
        assert loads(dumps(tensor)).rounding == "nearest"

    def test_3d_shape(self):
        tensor = tensor_for(shape=(2, 3, 64))
        assert loads(dumps(tensor)).shape == (2, 3, 64)

    @given(
        seed=st.integers(0, 1000),
        mantissa=st.integers(1, 16),
        rows=st.integers(1, 4),
        cols=st.sampled_from([64, 100, 128, 200]),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_round_trip(self, seed, mantissa, rows, cols):
        tensor = tensor_for(seed, (rows, cols), mantissa)
        restored = loads(dumps(tensor))
        assert np.array_equal(restored.decode(), tensor.decode())


class TestImageSize:
    def test_image_bytes_matches_dumps(self):
        tensor = tensor_for()
        assert len(dumps(tensor)) == image_bytes(tensor)

    def test_size_scales_with_mantissa(self):
        small = image_bytes(tensor_for(mantissa=4))
        large = image_bytes(tensor_for(mantissa=12))
        assert large > small

    def test_beats_fp16_for_short_mantissa(self):
        tensor = tensor_for(shape=(64, 1024), mantissa=6)
        fp16_bytes = 64 * 1024 * 2
        assert len(dumps(tensor)) < 0.6 * fp16_bytes


class TestValidation:
    def test_rejects_truncated_payload(self):
        payload = dumps(tensor_for())
        with pytest.raises(FormatError):
            loads(payload[:-8])

    def test_rejects_bad_magic(self):
        payload = dumps(tensor_for())
        with pytest.raises(FormatError):
            loads(b"XXXX" + payload[4:])

    def test_rejects_short_header(self):
        with pytest.raises(FormatError):
            loads(b"ANDA")


class TestStochasticRoundTrip:
    def test_stochastic_tensor_round_trips(self):
        import numpy as np

        from repro.core.anda import AndaTensor
        from repro.core.serialize import dumps, loads

        values = np.random.default_rng(3).normal(size=(4, 128)).astype(np.float32)
        tensor = AndaTensor.from_float(values, 6, rounding="stochastic")
        restored = loads(dumps(tensor))
        assert restored.rounding == "stochastic"
        np.testing.assert_array_equal(restored.decode(), tensor.decode())
