"""Tests for precision combinations and the BOPs cost model."""

import pytest

from repro.core.bops import (
    FP16_INT4_BOPS,
    baseline_bops,
    bops_saving,
    combination_bops,
    effective_mantissa_bits,
    module_mac_weights,
    uniform_bops_saving,
)
from repro.core.precision import PrecisionCombination, TensorKind
from repro.errors import FormatError


class TestPrecisionCombination:
    def test_uniform(self):
        assert PrecisionCombination.uniform(7) == (7, 7, 7, 7)

    def test_kind_indexing(self):
        comb = PrecisionCombination(8, 7, 6, 5)
        assert comb[TensorKind.QKV] == 8
        assert comb[TensorKind.O] == 7
        assert comb[TensorKind.U] == 6
        assert comb[TensorKind.D] == 5
        assert comb[0] == 8

    def test_relaxations_match_paper_example(self):
        """Sec. III-C: [6,7,5,5] relaxes to the four single-bit decrements."""
        comb = PrecisionCombination(6, 7, 5, 5)
        assert set(comb.relaxations()) == {
            PrecisionCombination(5, 7, 5, 5),
            PrecisionCombination(6, 6, 5, 5),
            PrecisionCombination(6, 7, 4, 5),
            PrecisionCombination(6, 7, 5, 4),
        }

    def test_relaxations_respect_floor(self):
        comb = PrecisionCombination(1, 2, 1, 1)
        assert set(comb.relaxations()) == {PrecisionCombination(1, 1, 1, 1)}

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(FormatError):
            PrecisionCombination(0, 5, 5, 5).validate()
        with pytest.raises(FormatError):
            PrecisionCombination(5, 5, 5, 17).validate()

    def test_str(self):
        assert str(PrecisionCombination(7, 7, 6, 5)) == "[7, 7, 6, 5]"

    def test_hashable_for_visited_set(self):
        assert len({PrecisionCombination.uniform(4), PrecisionCombination.uniform(4)}) == 1


class TestMacWeights:
    def test_opt_style_ratios(self):
        """OPT FFN = 4x hidden: weights are 3:1:4:4 per d_model**2."""
        w = module_mac_weights(d_model=2048, ffn_dim=8192, gated_ffn=False)
        d2 = 2048 * 2048
        assert w[TensorKind.QKV] == 3 * d2
        assert w[TensorKind.O] == d2
        assert w[TensorKind.U] == 4 * d2
        assert w[TensorKind.D] == 4 * d2

    def test_gated_ffn_doubles_up(self):
        w = module_mac_weights(d_model=4096, ffn_dim=11008, gated_ffn=True)
        assert w[TensorKind.U] == 2 * 4096 * 11008
        assert w[TensorKind.D] == 11008 * 4096


class TestBops:
    def test_fp16_int4_unit(self):
        assert FP16_INT4_BOPS == 64

    def test_uniform_savings_match_paper(self):
        """FIGNA (13b effective) -> 1.23x; VS-Quant (4b) -> 4.0x."""
        assert uniform_bops_saving(13) == pytest.approx(1.2307, abs=1e-3)
        assert uniform_bops_saving(4) == pytest.approx(4.0)

    def test_paper_opt13b_example(self):
        """Fig. 14 + Table II cross-check: OPT-1.3B WikiText2 1% combo
        [8, 5, 5, 4] gives a 2.95x BOPs saving."""
        weights = module_mac_weights(2048, 8192, gated_ffn=False)
        comb = PrecisionCombination(8, 5, 5, 4)
        assert bops_saving(comb, weights) == pytest.approx(2.95, abs=0.01)

    def test_paper_llama7b_example(self):
        """LLaMA-7B WikiText2 1% combo [7, 6, 6, 6] -> 2.56x (Table II)."""
        weights = module_mac_weights(4096, 11008, gated_ffn=True)
        comb = PrecisionCombination(7, 6, 6, 6)
        assert bops_saving(comb, weights) == pytest.approx(2.56, abs=0.01)

    def test_combination_bops_additivity(self):
        weights = module_mac_weights(128, 512, gated_ffn=False)
        lo = combination_bops(PrecisionCombination.uniform(4), weights)
        hi = combination_bops(PrecisionCombination.uniform(8), weights)
        assert hi == 2 * lo

    def test_baseline_is_64_per_mac(self):
        weights = {TensorKind.QKV: 10, TensorKind.O: 0, TensorKind.U: 0, TensorKind.D: 0}
        assert baseline_bops(weights) == 640

    def test_effective_mantissa_weighted_mean(self):
        weights = module_mac_weights(2048, 8192, gated_ffn=False)
        comb = PrecisionCombination(8, 5, 5, 4)
        # (3*8 + 1*5 + 4*5 + 4*4) / 12 = 65/12
        assert effective_mantissa_bits(comb, weights) == pytest.approx(65 / 12)

    def test_effective_mantissa_rejects_empty(self):
        with pytest.raises(FormatError):
            effective_mantissa_bits(
                PrecisionCombination.uniform(5),
                {k: 0 for k in TensorKind.ordered()},
            )

    def test_rejects_bad_weight_bits(self):
        weights = module_mac_weights(64, 256, gated_ffn=False)
        with pytest.raises(FormatError):
            combination_bops(PrecisionCombination.uniform(5), weights, weight_bits=0)
