"""Property-based tests of Algorithm 1 on random landscapes."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bops import combination_bops, module_mac_weights
from repro.core.precision import PrecisionCombination
from repro.core.search import adaptive_precision_search

MACS = module_mac_weights(d_model=512, ffn_dim=2048, gated_ffn=False)


def bops_fn(comb):
    return combination_bops(comb, MACS)


def random_monotone_landscape(seed):
    """A random accuracy function that is monotone non-decreasing in
    every coordinate — the physically meaningful landscape family
    (more mantissa bits never hurt accuracy)."""
    rng = np.random.default_rng(seed)
    # Per-kind knee positions and steepnesses.
    knees = rng.uniform(4, 10, size=4)
    slopes = rng.uniform(0.002, 0.05, size=4)

    def accuracy(comb: PrecisionCombination) -> float:
        penalty = sum(
            slope * max(0.0, knee - bits)
            for bits, knee, slope in zip(comb, knees, slopes)
        )
        return max(0.0, 1.0 - penalty)

    return accuracy


@given(seed=st.integers(0, 10_000), tolerance=st.sampled_from([0.001, 0.01, 0.05]))
@settings(max_examples=60, deadline=None)
def test_best_is_always_feasible_and_cheapest_seen(seed, tolerance):
    accuracy = random_monotone_landscape(seed)
    result = adaptive_precision_search(
        accuracy, bops_fn, 1.0, tolerance, max_iterations=48
    )
    threshold = (1.0 - tolerance) * 1.0
    feasible_seen = [
        step for step in result.steps if step.accuracy >= threshold
    ]
    if result.best is None:
        assert not feasible_seen
    else:
        # The best is feasible and no evaluated feasible candidate was
        # cheaper.
        assert accuracy(result.best) >= threshold
        assert result.best_bops == min(step.bops for step in feasible_seen)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_looser_tolerance_never_costs_bops(seed):
    # End-to-end best-vs-best monotonicity is NOT a theorem of the
    # greedy search: acceptances reshape the queue, so a looser run can
    # finish on a costlier incumbent (hypothesis counterexample:
    # seed=197, loose [9,9,8,8] vs tight [10,9,9,6]).  What the shared
    # pop prefix does guarantee: both runs pop identically until the
    # first acceptance, any tight-feasible candidate is loose-feasible,
    # and a run's incumbent only improves — so the loose best can never
    # cost more than the tight run's *first accepted* candidate.
    accuracy = random_monotone_landscape(seed)
    tight = adaptive_precision_search(accuracy, bops_fn, 1.0, 0.005, max_iterations=48)
    loose = adaptive_precision_search(accuracy, bops_fn, 1.0, 0.05, max_iterations=48)
    if tight.best is not None:
        assert loose.best is not None
        first_accepted = next(step for step in tight.steps if step.accepted)
        assert loose.best_bops <= first_accepted.bops


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_conservative_seed_guarantees_feasibility(seed):
    """If [13,13,13,13] meets the tolerance, the search cannot fail
    (the paper's rationale for seeding the uniform ladder)."""
    accuracy = random_monotone_landscape(seed)
    result = adaptive_precision_search(
        accuracy, bops_fn, 1.0, 0.01, max_iterations=64
    )
    if accuracy(PrecisionCombination.uniform(13)) >= 0.99:
        assert result.feasible


@given(seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_trace_bops_are_consistent(seed):
    accuracy = random_monotone_landscape(seed)
    result = adaptive_precision_search(
        accuracy, bops_fn, 1.0, 0.01, max_iterations=32
    )
    for step in result.steps:
        assert step.bops == bops_fn(step.combination)
        assert step.iteration <= 32


@given(
    seed=st.integers(0, 10_000),
    budget=st.integers(min_value=1, max_value=64),
)
@settings(max_examples=40, deadline=None)
def test_budget_is_hard(seed, budget):
    accuracy = random_monotone_landscape(seed)
    result = adaptive_precision_search(
        accuracy, bops_fn, 1.0, 0.01, max_iterations=budget
    )
    assert result.iterations <= budget


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30, deadline=None)
def test_accepted_steps_strictly_improve(seed):
    accuracy = random_monotone_landscape(seed)
    result = adaptive_precision_search(
        accuracy, bops_fn, 1.0, 0.02, max_iterations=48
    )
    accepted = [step.bops for step in result.steps if step.accepted]
    assert all(b < a for a, b in zip(accepted, accepted[1:]))


@given(seed=st.integers(0, 5000))
@settings(max_examples=30, deadline=None)
def test_search_is_deterministic(seed):
    accuracy = random_monotone_landscape(seed)
    a = adaptive_precision_search(accuracy, bops_fn, 1.0, 0.01, max_iterations=32)
    b = adaptive_precision_search(accuracy, bops_fn, 1.0, 0.01, max_iterations=32)
    assert a.best == b.best
    assert [s.combination for s in a.steps] == [s.combination for s in b.steps]


@given(seed=st.integers(0, 5000))
@settings(max_examples=30, deadline=None)
def test_evaluated_candidates_stay_in_range(seed):
    """Every candidate is a valid combination reachable from the seeds
    by single-bit relaxations: entries stay within [1, 13] and no
    combination is evaluated twice."""
    accuracy = random_monotone_landscape(seed)
    result = adaptive_precision_search(
        accuracy, bops_fn, 1.0, 0.01, max_iterations=48
    )
    seen = set()
    for step in result.steps:
        assert all(1 <= bits <= 13 for bits in step.combination)
        assert step.combination not in seen
        seen.add(step.combination)
