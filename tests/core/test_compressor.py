"""Tests for the cycle-explicit bit-plane compressor (BPC)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.anda import AndaTensor
from repro.core.compressor import BitPlaneCompressor
from repro.errors import FormatError


def random_fp16_like(seed, shape):
    rng = np.random.default_rng(seed)
    return (rng.normal(size=shape) * 10 ** rng.normal(size=shape)).astype(np.float32)


class TestEquivalence:
    """The hardware aligner must be bit-identical to the arithmetic encoder."""

    @pytest.mark.parametrize("mantissa_bits", [1, 2, 4, 7, 11, 13, 16])
    def test_matches_direct_encode(self, mantissa_bits):
        x = random_fp16_like(mantissa_bits, (8, 256))
        compressed, _ = BitPlaneCompressor().compress(x, mantissa_bits)
        direct = AndaTensor.from_float(x, mantissa_bits)
        assert np.array_equal(
            compressed.store.mantissa_planes, direct.store.mantissa_planes
        )
        assert np.array_equal(compressed.store.sign_words, direct.store.sign_words)
        assert np.array_equal(compressed.store.exponents, direct.store.exponents)

    def test_decode_matches(self):
        x = random_fp16_like(42, (4, 64))
        compressed, _ = BitPlaneCompressor().compress(x, 6)
        assert np.array_equal(
            compressed.decode(), AndaTensor.from_float(x, 6).decode()
        )

    @given(
        seed=st.integers(0, 10_000),
        mantissa=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_equivalence(self, seed, mantissa):
        x = random_fp16_like(seed, (2, 128))
        compressed, _ = BitPlaneCompressor().compress(x, mantissa)
        direct = AndaTensor.from_float(x, mantissa)
        assert np.array_equal(
            compressed.store.mantissa_planes, direct.store.mantissa_planes
        )

    def test_with_zeros_and_subnormals(self):
        x = np.array(
            [[0.0, 2.0**-24, -(2.0**-24), 1.0, -0.0, 65504.0] + [0.0] * 58],
            dtype=np.float32,
        )
        compressed, _ = BitPlaneCompressor().compress(x, 8)
        direct = AndaTensor.from_float(x, 8)
        assert np.array_equal(compressed.decode(), direct.decode())


class TestCycleModel:
    def test_cycles_scale_with_mantissa(self):
        x = random_fp16_like(0, (16, 64))
        _, fast = BitPlaneCompressor().compress(x, 4)
        _, slow = BitPlaneCompressor().compress(x, 12)
        assert slow.cycles == 3 * fast.cycles

    def test_lane_parallelism(self):
        x = random_fp16_like(1, (16, 64))  # 16 groups
        _, one_lane = BitPlaneCompressor(lanes=1).compress(x, 8)
        _, sixteen = BitPlaneCompressor(lanes=16).compress(x, 8)
        assert one_lane.passes == 16
        assert sixteen.passes == 1
        assert one_lane.cycles == 16 * sixteen.cycles

    def test_group_count(self):
        x = random_fp16_like(2, (4, 256))  # 4 rows x 4 groups
        _, stats = BitPlaneCompressor().compress(x, 8)
        assert stats.groups == 16

    def test_rejects_zero_lanes(self):
        with pytest.raises(FormatError):
            BitPlaneCompressor(lanes=0)
