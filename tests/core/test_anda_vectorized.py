"""Bitwise parity of the vectorized Anda codec against the reference.

The serving KV caches persist ``compress(x).astype(float16)`` bytes;
those stored bytes are the parity bedrock of every serving guarantee
(paged == unpaged, batched == solo, chunked == monolithic).  The
vectorized hot path therefore must match the pre-vectorization
reference *bitwise* — including the float16 conversion — not merely to
within rounding.  These tests pin that down across group-boundary
shapes, mantissa widths, denormals, zeros and mixed magnitudes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.anda import (
    ANDA_GROUP_SIZE,
    fake_quantize,
    fake_quantize_batch,
    fake_quantize_batch_reference,
)
from repro.errors import FormatError


def random_rows(seed, shape, scale_spread=2.0):
    rng = np.random.default_rng(seed)
    base = rng.normal(size=shape)
    scales = 10 ** (rng.normal(size=shape) * scale_spread / 4)
    return (base * scales).astype(np.float32)


def assert_bitwise(vectorized: np.ndarray, reference: np.ndarray) -> None:
    """Equality at the stored-byte level, not just value level."""
    assert vectorized.shape == reference.shape
    assert (
        vectorized.astype(np.float16).tobytes()
        == reference.astype(np.float16).tobytes()
    )
    # And in the float32 working domain (covers -0.0 vs +0.0 too).
    assert np.array_equal(vectorized, reference)


# Channel counts straddling the 64-wide group boundary, including
# ragged tails the vectorized path zero-pads through scratch buffers.
BOUNDARY_CHANNELS = [1, 2, 63, 64, 65, 127, 128, 129, 192]


class TestStoredBytesParity:
    @pytest.mark.parametrize("channels", BOUNDARY_CHANNELS)
    def test_group_boundary_shapes(self, channels):
        x = random_rows(channels, (16, channels))
        assert_bitwise(
            fake_quantize_batch(x, 6), fake_quantize_batch_reference(x, 6)
        )

    @pytest.mark.parametrize("mantissa", [1, 2, 4, 7, 8, 11, 15, 16])
    def test_all_mantissa_widths(self, mantissa):
        x = random_rows(mantissa, (8, 96))
        assert_bitwise(
            fake_quantize_batch(x, mantissa),
            fake_quantize_batch_reference(x, mantissa),
        )

    def test_decode_shape_stacked_kv(self):
        # The serving decode codec call: stacked K+V of a decode batch,
        # one position per request — (2 * batch, heads, 1, head_dim)
        # flattened to rows of head_dim by the cache's compress().
        x = random_rows(0, (32, 4, 1, 16))
        assert_bitwise(
            fake_quantize_batch(x, 6), fake_quantize_batch_reference(x, 6)
        )

    def test_zeros_and_negative_zero(self):
        x = np.zeros((4, ANDA_GROUP_SIZE), dtype=np.float32)
        x[1] = -0.0
        out = fake_quantize_batch(x, 4)
        ref = fake_quantize_batch_reference(x, 4)
        assert_bitwise(out, ref)

    def test_subnormal_groups(self):
        # Groups whose peak sits in the fp16 subnormal range exercise
        # the shared-exponent clamp.
        x = random_rows(3, (8, 128)) * np.float32(1e-7)
        assert_bitwise(
            fake_quantize_batch(x, 5), fake_quantize_batch_reference(x, 5)
        )

    def test_float64_input_double_rounds_like_reference(self):
        x = random_rows(4, (4, 64)).astype(np.float64) * 1.0000001
        assert_bitwise(
            fake_quantize_batch(x, 6), fake_quantize_batch_reference(x, 6)
        )

    def test_large_magnitudes_clip_to_fp16(self):
        x = random_rows(5, (4, 64)) * np.float32(1e6)
        assert_bitwise(
            fake_quantize_batch(x, 8), fake_quantize_batch_reference(x, 8)
        )

    @settings(deadline=None, max_examples=60)
    @given(
        seed=st.integers(0, 10_000),
        rows=st.integers(1, 12),
        channels=st.sampled_from(BOUNDARY_CHANNELS),
        mantissa=st.integers(1, 16),
    )
    def test_property_bitwise_parity(self, seed, rows, channels, mantissa):
        x = random_rows(seed, (rows, channels), scale_spread=3.0)
        assert_bitwise(
            fake_quantize_batch(x, mantissa),
            fake_quantize_batch_reference(x, mantissa),
        )

    @settings(deadline=None, max_examples=30)
    @given(seed=st.integers(0, 10_000), mantissa=st.integers(1, 16))
    def test_batched_equals_per_row(self, seed, mantissa):
        # Row-locality: compressing a stack is bitwise identical to
        # compressing each row alone — what lets the engine compress a
        # whole decode batch (and stacked K+V) in one call.
        x = random_rows(seed, (6, 96))
        stacked = fake_quantize_batch(x, mantissa)
        solo = np.stack(
            [fake_quantize(x[i], mantissa) for i in range(x.shape[0])]
        )
        assert_bitwise(stacked, solo)


class TestFallbacksAndErrors:
    def test_nearest_rounding_uses_reference(self):
        x = random_rows(6, (4, 64))
        out = fake_quantize_batch(x, 6, rounding="nearest")
        ref = fake_quantize_batch_reference(x, 6, rounding="nearest")
        assert np.array_equal(out, ref)

    def test_bad_mantissa_raises_format_error(self):
        x = random_rows(7, (2, 64))
        with pytest.raises(FormatError):
            fake_quantize_batch(x, 0)
        with pytest.raises(FormatError):
            fake_quantize_batch(x, 17)

    def test_nonfinite_raises_format_error(self):
        x = random_rows(8, (2, 64))
        x[0, 3] = np.inf
        with pytest.raises(FormatError):
            fake_quantize_batch(x, 6)
