"""Tests for the grouping helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.groups import from_groups, resolve_group_size, to_groups
from repro.errors import FormatError


class TestToGroups:
    def test_exact_division(self):
        x = np.arange(12.0).reshape(2, 6)
        grouped, layout = to_groups(x, 3)
        assert grouped.shape == (4, 3)
        assert layout.pad == 0
        assert layout.groups_per_row == 2

    def test_padding(self):
        x = np.arange(10.0).reshape(2, 5)
        grouped, layout = to_groups(x, 4)
        assert grouped.shape == (4, 4)
        assert layout.pad == 3
        assert np.all(grouped[1, 1:] == 0)

    def test_none_group_size_is_row(self):
        x = np.ones((3, 7))
        grouped, layout = to_groups(x, None)
        assert layout.group_size == 7
        assert grouped.shape == (3, 7)

    def test_3d_tensor(self):
        x = np.ones((2, 3, 8))
        grouped, layout = to_groups(x, 4)
        assert grouped.shape == (12, 4)

    def test_scalar_promoted(self):
        grouped, layout = to_groups(np.float32(5.0), 4)
        assert grouped.shape == (1, 4)

    def test_rejects_empty_last_axis(self):
        with pytest.raises(FormatError):
            to_groups(np.ones((2, 0)), 4)

    def test_rejects_bad_group_size(self):
        with pytest.raises(FormatError):
            resolve_group_size(0, 8)


class TestFromGroups:
    def test_round_trip(self):
        x = np.random.default_rng(0).normal(size=(3, 5, 70))
        grouped, layout = to_groups(x, 16)
        assert np.array_equal(from_groups(grouped, layout), x)

    def test_shape_mismatch_raises(self):
        x = np.ones((2, 8))
        grouped, layout = to_groups(x, 4)
        with pytest.raises(FormatError):
            from_groups(grouped[:1], layout)

    @given(
        rows=st.integers(1, 5),
        cols=st.integers(1, 100),
        group=st.integers(1, 64),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_round_trip(self, rows, cols, group):
        rng = np.random.default_rng(rows * 1000 + cols)
        x = rng.normal(size=(rows, cols))
        grouped, layout = to_groups(x, group)
        assert np.array_equal(from_groups(grouped, layout), x)
        assert grouped.shape[1] == min(group, grouped.shape[1])
