"""Tests for the bit-serial APU dot-product arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.anda import AndaTensor
from repro.core.bitserial import (
    anda_matvec,
    reference_group_dot,
    serial_group_dot,
)
from repro.errors import HardwareError


def encoded_group(seed, mantissa_bits):
    rng = np.random.default_rng(seed)
    x = (rng.normal(size=(1, 64)) * 10 ** rng.normal(size=(1, 64))).astype(np.float32)
    return AndaTensor.from_float(x, mantissa_bits)


class TestSerialGroupDot:
    @pytest.mark.parametrize("mantissa_bits", [1, 3, 6, 9, 12, 16])
    def test_matches_integer_reference(self, mantissa_bits):
        tensor = encoded_group(mantissa_bits, mantissa_bits)
        rng = np.random.default_rng(99)
        weights = rng.integers(-8, 8, size=64)
        result = serial_group_dot(
            tensor.store.mantissa_planes[0],
            tensor.store.sign_words[0],
            int(tensor.store.exponents[0]),
            mantissa_bits,
            weights,
        )
        expected_int = int(tensor.signed_mantissa()[0] @ weights)
        assert result.integer == expected_int
        expected_value = reference_group_dot(
            tensor.signed_mantissa()[0],
            int(tensor.store.exponents[0]),
            mantissa_bits,
            weights,
        )
        assert result.value == pytest.approx(expected_value, rel=0, abs=0)

    def test_cycle_count_equals_planes(self):
        tensor = encoded_group(5, 7)
        result = serial_group_dot(
            tensor.store.mantissa_planes[0],
            tensor.store.sign_words[0],
            int(tensor.store.exponents[0]),
            7,
            np.ones(64, dtype=np.int64),
        )
        assert result.cycles == 7

    def test_weight_scale_applied(self):
        tensor = encoded_group(6, 8)
        weights = np.ones(64, dtype=np.int64)
        base = serial_group_dot(
            tensor.store.mantissa_planes[0],
            tensor.store.sign_words[0],
            int(tensor.store.exponents[0]),
            8,
            weights,
        ).value
        scaled = serial_group_dot(
            tensor.store.mantissa_planes[0],
            tensor.store.sign_words[0],
            int(tensor.store.exponents[0]),
            8,
            weights,
            weight_scale=0.5,
        ).value
        assert scaled == pytest.approx(base * 0.5)

    def test_rejects_wrong_weight_count(self):
        tensor = encoded_group(7, 4)
        with pytest.raises(HardwareError):
            serial_group_dot(
                tensor.store.mantissa_planes[0],
                tensor.store.sign_words[0],
                0,
                4,
                np.ones(32, dtype=np.int64),
            )

    @given(seed=st.integers(0, 5000), mantissa=st.integers(1, 16))
    @settings(max_examples=30, deadline=None)
    def test_property_serial_equals_reference(self, seed, mantissa):
        tensor = encoded_group(seed, mantissa)
        rng = np.random.default_rng(seed + 1)
        weights = rng.integers(-8, 8, size=64)
        result = serial_group_dot(
            tensor.store.mantissa_planes[0],
            tensor.store.sign_words[0],
            int(tensor.store.exponents[0]),
            mantissa,
            weights,
        )
        assert result.integer == int(tensor.signed_mantissa()[0] @ weights)


class TestAndaMatvec:
    def test_vectorized_matches_serial(self):
        rng = np.random.default_rng(11)
        x = rng.normal(size=(3, 128)).astype(np.float32)
        w = rng.integers(-8, 8, size=(128, 5))
        tensor = AndaTensor.from_float(x, 6)
        fast = anda_matvec(tensor, w)
        slow = anda_matvec(tensor, w, serial=True)
        assert np.allclose(fast, slow, rtol=1e-6, atol=1e-6)

    def test_approximates_float_matmul(self):
        """High-precision Anda GeMM converges to the float result."""
        rng = np.random.default_rng(12)
        x = rng.normal(size=(4, 256)).astype(np.float32)
        w = rng.integers(-8, 8, size=(256, 8))
        exact = x @ w.astype(np.float32)
        coarse = anda_matvec(AndaTensor.from_float(x, 3), w)
        fine = anda_matvec(AndaTensor.from_float(x, 12), w)
        err_coarse = np.abs(coarse - exact).max()
        err_fine = np.abs(fine - exact).max()
        assert err_fine < err_coarse
        assert np.allclose(fine, exact, rtol=2e-3, atol=2e-3 * np.abs(exact).max())

    def test_ragged_reduction_dim_padded(self):
        rng = np.random.default_rng(13)
        x = rng.normal(size=(2, 100)).astype(np.float32)  # pads to 128
        w = rng.integers(-8, 8, size=(100, 3))
        out = anda_matvec(AndaTensor.from_float(x, 11), w)
        exact = x @ w.astype(np.float32)
        assert np.allclose(out, exact, rtol=2e-3, atol=2e-3 * np.abs(exact).max())

    def test_column_scales(self):
        rng = np.random.default_rng(14)
        x = rng.normal(size=(2, 64)).astype(np.float32)
        w = rng.integers(-8, 8, size=(64, 4))
        scales = np.array([1.0, 0.5, 2.0, 0.25], dtype=np.float32)
        base = anda_matvec(AndaTensor.from_float(x, 8), w)
        scaled = anda_matvec(AndaTensor.from_float(x, 8), w, weight_scales=scales)
        assert np.allclose(scaled, base * scales)

    def test_rejects_shape_mismatch(self):
        x = np.ones((2, 64), dtype=np.float32)
        with pytest.raises(HardwareError):
            anda_matvec(AndaTensor.from_float(x, 8), np.ones((32, 4), dtype=np.int64))

    def test_rejects_non_2d(self):
        x = np.ones((2, 2, 64), dtype=np.float32)
        with pytest.raises(HardwareError):
            anda_matvec(AndaTensor.from_float(x, 8), np.ones((64, 4), dtype=np.int64))
