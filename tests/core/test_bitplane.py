"""Tests for the transposed bit-plane memory layout."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitplane import (
    WORD_BITS,
    BitPlaneStore,
    pack_planes,
    pack_signs,
    unpack_planes,
    unpack_signs,
)
from repro.errors import FormatError


class TestPlanePacking:
    def test_single_element_msb_first(self):
        mantissa = np.zeros((1, WORD_BITS), dtype=np.int64)
        mantissa[0, 0] = 0b101  # element 0, M=3
        planes = pack_planes(mantissa, 3)
        # MSB plane first: bit2=1, bit1=0, bit0=1, all in word bit 0.
        assert planes[0, 0] == 1
        assert planes[0, 1] == 0
        assert planes[0, 2] == 1

    def test_element_position_maps_to_word_bit(self):
        mantissa = np.zeros((1, WORD_BITS), dtype=np.int64)
        mantissa[0, 63] = 1  # M=1
        planes = pack_planes(mantissa, 1)
        assert planes[0, 0] == np.uint64(1) << np.uint64(63)

    def test_round_trip_random(self):
        rng = np.random.default_rng(0)
        for m in (1, 4, 7, 11, 16):
            mantissa = rng.integers(0, 1 << m, size=(5, WORD_BITS))
            planes = pack_planes(mantissa, m)
            assert np.array_equal(unpack_planes(planes, m), mantissa)

    def test_rejects_overflowing_mantissa(self):
        mantissa = np.full((1, WORD_BITS), 16, dtype=np.int64)
        with pytest.raises(FormatError):
            pack_planes(mantissa, 4)

    def test_rejects_bad_shape(self):
        with pytest.raises(FormatError):
            pack_planes(np.zeros((1, 32), dtype=np.int64), 4)

    @given(
        m=st.integers(min_value=1, max_value=16),
        seed=st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_round_trip(self, m, seed):
        rng = np.random.default_rng(seed)
        mantissa = rng.integers(0, 1 << m, size=(3, WORD_BITS))
        assert np.array_equal(unpack_planes(pack_planes(mantissa, m), m), mantissa)


class TestSignPacking:
    def test_round_trip(self):
        rng = np.random.default_rng(1)
        sign = rng.integers(0, 2, size=(7, WORD_BITS))
        assert np.array_equal(unpack_signs(pack_signs(sign)), sign)

    def test_all_ones(self):
        sign = np.ones((1, WORD_BITS), dtype=np.int8)
        assert pack_signs(sign)[0] == np.uint64(0xFFFFFFFFFFFFFFFF)


class TestStore:
    def test_store_round_trip(self):
        rng = np.random.default_rng(2)
        m = 9
        sign = rng.integers(0, 2, size=(4, WORD_BITS))
        mantissa = rng.integers(0, 1 << m, size=(4, WORD_BITS))
        exps = rng.integers(-20, 20, size=4)
        store = BitPlaneStore.from_fields(sign, mantissa, exps, m)
        s2, m2, e2 = store.unpack()
        assert np.array_equal(s2, sign)
        assert np.array_equal(m2, mantissa)
        assert np.array_equal(e2, exps)

    def test_variable_depth_constant_width(self):
        """Different mantissa lengths change word count, not word width."""
        sign = np.zeros((2, WORD_BITS), dtype=np.int8)
        exps = np.zeros(2, dtype=np.int32)
        m4 = BitPlaneStore.from_fields(sign, np.zeros((2, WORD_BITS), int), exps, 4)
        m9 = BitPlaneStore.from_fields(sign, np.zeros((2, WORD_BITS), int), exps, 9)
        assert m4.mantissa_planes.dtype == m9.mantissa_planes.dtype == np.uint64
        assert m4.words_per_group() == 5
        assert m9.words_per_group() == 10
