"""Tests for the adaptive precision combination search (Algorithm 1)."""

import pytest

from repro.core.bops import combination_bops, module_mac_weights
from repro.core.precision import PrecisionCombination
from repro.core.search import adaptive_precision_search
from repro.errors import SearchError

MACS = module_mac_weights(d_model=768, ffn_dim=3072, gated_ffn=False)


def bops_fn(comb):
    return combination_bops(comb, MACS)


def threshold_accuracy(min_bits):
    """Synthetic landscape: full accuracy while every module keeps at
    least ``min_bits[kind]`` bits, sharp drop otherwise."""

    def evaluate(comb):
        ok = all(bits >= floor for bits, floor in zip(comb, min_bits))
        return 1.0 if ok else 0.5

    return evaluate


class TestBasicSearch:
    def test_finds_exact_floor(self):
        floors = (7, 7, 6, 5)
        result = adaptive_precision_search(
            threshold_accuracy(floors), bops_fn, 1.0, tolerance=0.01,
            max_iterations=64,
        )
        assert result.best == PrecisionCombination(*floors)

    def test_trace_matches_paper_fig9_prefix(self):
        """With a [7,7,6,5]-floor landscape (OPT-125M shape), the first
        evaluations follow Fig. 9: uniform ramp 4..7 then relaxations in
        BOPs order."""
        floors = (7, 7, 6, 5)
        result = adaptive_precision_search(
            threshold_accuracy(floors), bops_fn, 1.0, tolerance=0.01,
            max_iterations=16,
        )
        combos = [step.combination for step in result.steps]
        assert combos[0] == PrecisionCombination.uniform(4)
        assert combos[1] == PrecisionCombination.uniform(5)
        assert combos[2] == PrecisionCombination.uniform(6)
        assert combos[3] == PrecisionCombination.uniform(7)
        # First accepted combination is [7,7,7,7]; the relaxation with the
        # lowest BOPs decrements the FFN types (MAC weight 4 > 3 > 1).
        assert result.steps[3].accepted
        assert combos[4] in (
            PrecisionCombination(7, 7, 6, 7),
            PrecisionCombination(7, 7, 7, 6),
        )

    def test_infeasible_returns_none(self):
        result = adaptive_precision_search(
            lambda comb: 0.0, bops_fn, 1.0, tolerance=0.01, max_iterations=12,
        )
        assert result.best is None
        assert not result.feasible
        assert result.iterations == 10  # exhausts the ten uniform seeds
        assert result.exhausted

    def test_iteration_budget_respected(self):
        result = adaptive_precision_search(
            threshold_accuracy((5, 5, 5, 5)), bops_fn, 1.0, tolerance=0.01,
            max_iterations=3,
        )
        assert result.iterations == 3

    def test_zero_tolerance(self):
        floors = (6, 6, 6, 6)
        result = adaptive_precision_search(
            threshold_accuracy(floors), bops_fn, 1.0, tolerance=0.0,
            max_iterations=32,
        )
        assert result.best == PrecisionCombination.uniform(6)

    def test_monotone_best_bops(self):
        floors = (6, 5, 5, 4)
        result = adaptive_precision_search(
            threshold_accuracy(floors), bops_fn, 1.0, tolerance=0.01,
            max_iterations=40,
        )
        accepted = [s.bops for s in result.steps if s.accepted]
        assert accepted == sorted(accepted, reverse=True)

    def test_never_evaluates_duplicates(self):
        result = adaptive_precision_search(
            threshold_accuracy((5, 5, 5, 5)), bops_fn, 1.0, tolerance=0.01,
            max_iterations=64,
        )
        combos = [s.combination for s in result.steps]
        assert len(combos) == len(set(combos))

    def test_pops_in_bops_order(self):
        result = adaptive_precision_search(
            threshold_accuracy((5, 5, 5, 5)), bops_fn, 1.0, tolerance=0.01,
            max_iterations=64,
        )
        # The queue is keyed by BOPs: a popped candidate either has higher
        # BOPs than the previous pop, or was pushed after it (a relaxation
        # of a new best, hence cheaper than its parent).
        bops = [s.bops for s in result.steps]
        assert bops[0] == min(bops)


class TestTolerance:
    def test_accuracy_threshold_is_relative(self):
        """A 1% tolerance accepts 0.995 accuracy when the reference is 1.0
        but rejects it when the reference is 1.01."""

        def evaluate(comb):
            return 0.995

        accept = adaptive_precision_search(
            evaluate, bops_fn, 1.0, tolerance=0.01, max_iterations=1
        )
        assert accept.best is not None
        reject = adaptive_precision_search(
            evaluate, bops_fn, 1.01, tolerance=0.001, max_iterations=1
        )
        assert reject.best is None

    def test_looser_tolerance_never_worse(self):
        """Larger tolerance must find equal-or-lower BOPs combinations."""

        def smooth(comb):
            # Smooth degradation with total bits.
            return min(1.0, sum(comb) / 26.0)

        tight = adaptive_precision_search(
            smooth, bops_fn, 1.0, tolerance=0.01, max_iterations=32
        )
        loose = adaptive_precision_search(
            smooth, bops_fn, 1.0, tolerance=0.05, max_iterations=32
        )
        assert loose.best_bops <= tight.best_bops


class TestValidation:
    def test_rejects_bad_reference(self):
        with pytest.raises(SearchError):
            adaptive_precision_search(lambda c: 1.0, bops_fn, 0.0, 0.01)

    def test_rejects_negative_tolerance(self):
        with pytest.raises(SearchError):
            adaptive_precision_search(lambda c: 1.0, bops_fn, 1.0, -0.1)

    def test_rejects_zero_iterations(self):
        with pytest.raises(SearchError):
            adaptive_precision_search(lambda c: 1.0, bops_fn, 1.0, 0.01, max_iterations=0)

    def test_rejects_empty_seeds(self):
        with pytest.raises(SearchError):
            adaptive_precision_search(
                lambda c: 1.0, bops_fn, 1.0, 0.01, start_bits=()
            )
