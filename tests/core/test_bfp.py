"""Unit and property tests for grouped block-floating-point quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fp16
from repro.core.bfp import BfpConfig, fake_quantize, quantization_error, quantize
from repro.errors import FormatError

finite_arrays = st.lists(
    st.floats(
        min_value=-1000.0, max_value=1000.0, allow_nan=False, allow_infinity=False,
        width=32,
    ),
    min_size=1,
    max_size=200,
)


class TestConfig:
    def test_rejects_zero_mantissa(self):
        with pytest.raises(FormatError):
            BfpConfig(mantissa_bits=0)

    def test_rejects_too_long_mantissa(self):
        with pytest.raises(FormatError):
            BfpConfig(mantissa_bits=17)

    def test_rejects_bad_group_size(self):
        with pytest.raises(FormatError):
            BfpConfig(group_size=0)

    def test_rejects_bad_rounding(self):
        with pytest.raises(FormatError):
            BfpConfig(rounding="dither")


class TestQuantizeBasics:
    def test_shared_exponent_is_group_max(self):
        x = np.array([[1.0, 4.0, 0.25, 8.0]])
        t = quantize(x, BfpConfig(mantissa_bits=8, group_size=4))
        # 8.0 has unbiased exponent 3 in the integer-significand convention
        # of the library: 8.0 = 1024 * 2**(3 - 10).
        assert t.shared_exponent[0] == 3

    def test_group_max_is_exact_when_m_covers_it(self):
        x = np.array([[5.5, 0.125, -0.0625, 2.0]])
        t = quantize(x, BfpConfig(mantissa_bits=11, group_size=4))
        decoded = t.dequantize()
        assert decoded[0, 0] == 5.5

    def test_small_elements_truncate_to_zero(self):
        # With M=2 and shifts larger than 1 bit, tiny elements vanish.
        x = np.array([[8.0, 0.001]])
        t = quantize(x, BfpConfig(mantissa_bits=2, group_size=2))
        decoded = t.dequantize()
        assert decoded[0, 1] == 0.0

    def test_all_zero_group(self):
        x = np.zeros((2, 8), dtype=np.float32)
        t = quantize(x, BfpConfig(mantissa_bits=4, group_size=8))
        assert np.array_equal(t.dequantize(), x)

    def test_sign_preserved(self):
        x = np.array([[-1.0, 1.0, -2.0, 4.0]])
        decoded = fake_quantize(x, BfpConfig(mantissa_bits=8, group_size=4))
        assert np.all(np.sign(decoded) == np.sign(x))

    def test_rejects_nan(self):
        with pytest.raises(FormatError):
            quantize(np.array([np.nan]), BfpConfig())

    def test_group_size_none_means_whole_row(self):
        x = np.ones((3, 100), dtype=np.float32)
        t = quantize(x, BfpConfig(mantissa_bits=8, group_size=None))
        assert t.layout.group_size == 100
        assert t.n_groups == 3

    def test_padding_restores_shape(self):
        x = np.random.default_rng(0).normal(size=(5, 70)).astype(np.float32)
        out = fake_quantize(x, BfpConfig(mantissa_bits=11, group_size=64))
        assert out.shape == x.shape

    def test_3d_shape_preserved(self):
        x = np.random.default_rng(1).normal(size=(2, 3, 64)).astype(np.float32)
        out = fake_quantize(x, BfpConfig(mantissa_bits=8, group_size=64))
        assert out.shape == x.shape


class TestFidelityVsMantissa:
    def test_error_decreases_with_mantissa(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(16, 256)).astype(np.float32)
        errors = [
            quantization_error(x, BfpConfig(mantissa_bits=m, group_size=64))
            for m in (2, 4, 6, 8, 10, 12)
        ]
        assert all(a >= b for a, b in zip(errors, errors[1:]))

    def test_error_grows_with_group_size(self):
        rng = np.random.default_rng(4)
        x = (rng.normal(size=(8, 512)) * 10 ** rng.normal(size=(8, 512))).astype(
            np.float32
        )
        errors = [
            quantization_error(x, BfpConfig(mantissa_bits=5, group_size=gs))
            for gs in (1, 16, 64, 256)
        ]
        assert errors[0] <= errors[1] <= errors[2] <= errors[3]

    def test_gs1_m11_is_fp16_exact(self):
        """Group size 1 with 11 mantissa bits reproduces FP16 exactly."""
        rng = np.random.default_rng(5)
        x = rng.normal(size=(4, 32)).astype(np.float32)
        out = fake_quantize(x, BfpConfig(mantissa_bits=11, group_size=1))
        assert np.array_equal(out, fp16.round_trip(x))

    def test_truncation_never_increases_magnitude(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(8, 128)).astype(np.float32)
        out = fake_quantize(x, BfpConfig(mantissa_bits=6, group_size=64))
        assert np.all(np.abs(out) <= np.abs(fp16.round_trip(x)) + 1e-9)

    def test_relative_group_error_bound(self):
        """Truncation error is below one LSB of the group scale."""
        rng = np.random.default_rng(7)
        x = rng.normal(size=(32, 64)).astype(np.float32)
        m = 7
        config = BfpConfig(mantissa_bits=m, group_size=64)
        t = quantize(x, config)
        decoded = t.dequantize()
        x16 = fp16.round_trip(x)
        # LSB value per group: 2**(shared + 1 - M).
        lsb = np.ldexp(1.0, t.shared_exponent + 1 - m)
        err = np.abs(decoded - x16).reshape(32, 64)
        assert np.all(err <= lsb[:, None] + 1e-12)


class TestRounding:
    def test_nearest_at_least_as_accurate_on_average(self):
        rng = np.random.default_rng(8)
        x = rng.normal(size=(64, 64)).astype(np.float32)
        trunc = quantization_error(x, BfpConfig(mantissa_bits=5, rounding="truncate"))
        near = quantization_error(x, BfpConfig(mantissa_bits=5, rounding="nearest"))
        assert near <= trunc

    def test_nearest_saturates_instead_of_overflowing(self):
        # A group max with an all-ones mantissa would carry out when
        # rounded; the encoder must saturate, not wrap.
        x = np.array([[np.float32(np.nextafter(np.float16(2.0), np.float16(1.0)))] * 4])
        out = fake_quantize(x, BfpConfig(mantissa_bits=4, group_size=4, rounding="nearest"))
        assert np.all(np.isfinite(out))
        assert np.all(np.abs(out) <= 2.0)


class TestStorage:
    def test_storage_accounting(self):
        x = np.zeros((1, 64), dtype=np.float32)
        t = quantize(x, BfpConfig(mantissa_bits=7, group_size=64))
        # 64 * (1 sign + 7 mantissa) + 8 exponent bits.
        assert t.storage_bits() == 64 * 8 + 8


@given(values=finite_arrays, mantissa=st.integers(min_value=1, max_value=16))
@settings(max_examples=60, deadline=None)
def test_property_dequantized_error_bounded_by_group_lsb(values, mantissa):
    """For any input, every element's error is below the group LSB."""
    x = np.array(values, dtype=np.float32).reshape(1, -1)
    config = BfpConfig(mantissa_bits=mantissa, group_size=None)
    t = quantize(x, config)
    decoded = t.dequantize()
    x16 = fp16.round_trip(x)
    lsb = float(np.ldexp(1.0, int(t.shared_exponent[0]) + 1 - mantissa))
    assert np.all(np.abs(decoded - x16) <= lsb + 1e-12)


@given(values=finite_arrays)
@settings(max_examples=40, deadline=None)
def test_property_m16_gs1_lossless(values):
    """16 mantissa bits with group size 1 keep all FP16 information."""
    x = np.array(values, dtype=np.float32)
    out = fake_quantize(x, BfpConfig(mantissa_bits=16, group_size=1))
    assert np.array_equal(out.ravel(), fp16.round_trip(x).ravel())


@given(
    values=finite_arrays,
    mantissa=st.integers(min_value=1, max_value=11),
    group=st.sampled_from([1, 2, 8, 64]),
)
@settings(max_examples=60, deadline=None)
def test_property_idempotent(values, mantissa, group):
    """Quantizing an already-quantized tensor changes nothing (M <= 11,
    where decoded values are exactly FP16-representable)."""
    x = np.array(values, dtype=np.float32)
    config = BfpConfig(mantissa_bits=mantissa, group_size=group)
    once = fake_quantize(x, config)
    twice = fake_quantize(once, config)
    assert np.array_equal(once, twice)
