"""Tests for the FAST-style stochastic rounding mode of the BFP codec."""

import numpy as np
import pytest

from repro.core.bfp import BfpConfig, fake_quantize, quantization_error, quantize
from repro.errors import FormatError

RNG = np.random.default_rng(23)


def stochastic(mantissa_bits=5, seed=0):
    return BfpConfig(mantissa_bits=mantissa_bits, group_size=64,
                     rounding="stochastic", seed=seed)


class TestStochasticMode:
    def test_mode_accepted(self):
        assert stochastic().rounding == "stochastic"

    def test_unknown_mode_still_rejected(self):
        with pytest.raises(FormatError):
            BfpConfig(rounding="dither")

    def test_deterministic_per_seed(self):
        values = RNG.normal(size=(4, 64)).astype(np.float32)
        first = fake_quantize(values, stochastic(seed=9))
        second = fake_quantize(values, stochastic(seed=9))
        np.testing.assert_array_equal(first, second)

    def test_seed_changes_outcome(self):
        values = RNG.normal(size=(16, 64)).astype(np.float32)
        a = fake_quantize(values, stochastic(seed=0))
        b = fake_quantize(values, stochastic(seed=1))
        assert np.any(a != b)

    def test_mantissa_stays_in_field(self):
        values = RNG.normal(size=(8, 64)).astype(np.float32)
        tensor = quantize(values, stochastic(mantissa_bits=4))
        assert tensor.mantissa.max() < 2**4
        assert tensor.mantissa.min() >= 0

    def test_rounds_within_one_ulp_of_truncation(self):
        values = RNG.normal(size=(8, 64)).astype(np.float32)
        trunc = quantize(values, BfpConfig(mantissa_bits=5, group_size=64))
        stoch = quantize(values, stochastic(mantissa_bits=5))
        diff = stoch.mantissa - trunc.mantissa
        # Stochastic rounding only ever rounds up by one step (or
        # saturates at the field maximum).
        assert diff.min() >= 0
        assert diff.max() <= 1


class TestUnbiasedness:
    def test_mean_error_near_zero(self):
        # Truncation is biased toward zero magnitude; stochastic rounding
        # is unbiased in expectation.  Compare signed magnitude errors.
        values = np.abs(RNG.normal(size=(64, 64))).astype(np.float32) + 0.1
        config_t = BfpConfig(mantissa_bits=4, group_size=64)
        trunc_bias = float(np.mean(fake_quantize(values, config_t) - values))
        stoch_errs = []
        for seed in range(8):
            out = fake_quantize(values, stochastic(mantissa_bits=4, seed=seed))
            stoch_errs.append(float(np.mean(out - values)))
        stoch_bias = float(np.mean(stoch_errs))
        assert trunc_bias < 0  # truncation systematically shrinks magnitudes
        assert abs(stoch_bias) < abs(trunc_bias) / 2

    def test_rmse_comparable_to_truncation(self):
        values = RNG.normal(size=(32, 64)).astype(np.float32)
        stoch = quantization_error(values, stochastic(mantissa_bits=5))
        trunc = quantization_error(
            values, BfpConfig(mantissa_bits=5, group_size=64)
        )
        # Unbiasedness costs a little variance; within 2x is the regime
        # FAST reports.
        assert stoch < 2 * trunc


class TestInteroperability:
    def test_anda_tensor_accepts_stochastic(self):
        from repro.core.anda import AndaTensor

        values = RNG.normal(size=(2, 128)).astype(np.float32)
        tensor = AndaTensor.from_float(values, 5, rounding="stochastic")
        assert tensor.rounding == "stochastic"
        assert tensor.decode().shape == (2, 128)

    def test_zero_preserved(self):
        values = np.zeros((1, 64), dtype=np.float32)
        out = fake_quantize(values, stochastic())
        assert np.all(out == 0)
