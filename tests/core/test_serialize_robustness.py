"""Corruption and fuzz tests for the Anda binary image format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.anda import AndaTensor
from repro.core.serialize import dumps, image_bytes, loads
from repro.errors import FormatError

RNG = np.random.default_rng(7)


def make_image(mantissa=6, shape=(4, 128)) -> bytes:
    values = RNG.normal(size=shape).astype(np.float32)
    return dumps(AndaTensor.from_float(values, mantissa))


class TestHeaderCorruption:
    def test_bad_magic_rejected(self):
        payload = bytearray(make_image())
        payload[0:4] = b"NOPE"
        with pytest.raises(FormatError, match="magic"):
            loads(bytes(payload))

    def test_future_version_rejected(self):
        payload = bytearray(make_image())
        payload[4] = 99
        with pytest.raises(FormatError, match="version"):
            loads(bytes(payload))

    def test_unknown_rounding_code_rejected(self):
        payload = bytearray(make_image())
        payload[6] = 200
        with pytest.raises(FormatError, match="rounding"):
            loads(bytes(payload))

    def test_empty_payload_rejected(self):
        with pytest.raises(FormatError, match="short"):
            loads(b"")

    def test_header_only_rejected(self):
        payload = make_image()
        with pytest.raises(FormatError):
            loads(payload[:29])


class TestLengthCorruption:
    def test_truncated_payload_rejected(self):
        payload = make_image()
        with pytest.raises(FormatError, match="length"):
            loads(payload[:-1])

    def test_trailing_garbage_rejected(self):
        payload = make_image()
        with pytest.raises(FormatError, match="length"):
            loads(payload + b"\x00")

    @given(st.integers(min_value=1, max_value=200))
    @settings(max_examples=20, deadline=None)
    def test_any_truncation_rejected(self, cut):
        payload = make_image()
        truncated = payload[: max(0, len(payload) - cut)]
        with pytest.raises(FormatError):
            loads(truncated)


class TestPayloadBitflips:
    def test_plane_bitflip_changes_decode_but_parses(self):
        # Payload corruption past the header is not detectable by the
        # format (no checksum by design — it is a memory image, not an
        # archive format); it must still parse into a valid tensor.
        payload = bytearray(make_image())
        payload[-1] ^= 0x01
        tensor = loads(bytes(payload))
        assert tensor.decode().shape == (4, 128)

    def test_image_bytes_matches_len(self):
        values = RNG.normal(size=(3, 200)).astype(np.float32)
        tensor = AndaTensor.from_float(values, 9)
        assert image_bytes(tensor) == len(dumps(tensor))


class TestRoundTripProperties:
    @given(
        st.integers(min_value=1, max_value=13),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=25, deadline=None)
    def test_round_trip_any_shape(self, mantissa, rows, cols):
        values = np.random.default_rng(rows * 1000 + cols).normal(
            size=(rows, cols)
        ).astype(np.float32)
        tensor = AndaTensor.from_float(values, mantissa)
        restored = loads(dumps(tensor))
        assert restored.shape == tensor.shape
        np.testing.assert_array_equal(restored.decode(), tensor.decode())
