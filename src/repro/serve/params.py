"""Per-request sampling parameters for the serving front end.

A :class:`SamplingParams` is the immutable decoding recipe one request
carries through the whole stack — submission, scheduling, decode, and
the sequential :func:`repro.llm.generation.generate` reference path —
replacing the scattered per-call kwargs the pre-redesign
``Engine.submit`` took.  It is validated at construction, so an invalid
recipe fails at the API boundary (``repro.errors.RequestError``) rather
than deep inside a scheduler step with the request already accepted.

Defaults reproduce the engine's historical behavior exactly: greedy
decoding (``temperature=0``), no nucleus truncation (``top_p=1``), no
stop tokens.  Because ``top_p=1.0`` and ``stop_token_ids=()`` take the
pre-existing code paths verbatim, the new-API parity suite can pin
token-bitwise identity against the pre-redesign engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import RequestError
from repro.llm.kv_quant import KVFormat


@dataclass(frozen=True)
class SamplingParams:
    """Frozen per-request decoding recipe.

    Args:
        max_new_tokens: continuation length to produce (the cap; stop
            tokens may end the request earlier).
        temperature: 0 for greedy argmax, else softmax temperature.
        top_k: sample from the k most likely tokens when sampling.
        top_p: nucleus truncation — keep the smallest set of top-k
            tokens whose cumulative probability reaches ``top_p``.
            1.0 (the default) disables truncation and is bitwise
            identical to the pre-``top_p`` sampler.
        stop_token_ids: token ids that end the request early.  The stop
            token itself is emitted (it is part of the continuation);
            the request then finishes with ``finish_reason="stop"``.
        seed: per-request sampling seed (each request draws from its
            own RNG stream, as sequential ``generate`` calls would).
        deadline_s: optional per-request latency budget in seconds,
            measured from submission.  Enforced at step boundaries:
            a request still unfinished when its budget elapses is
            failed with ``finish_reason="deadline"`` and its handle's
            ``result()`` raises
            :class:`~repro.errors.RequestFailedError` carrying a
            :class:`~repro.errors.DeadlineExceededError`.  None (the
            default) never expires.
        kv_format: optional per-request KV-cache format override
            (:class:`repro.llm.kv_quant.KVFormat`).  ``None`` (the
            default) inherits the engine-wide
            ``EngineConfig.kv_format``, so existing recipes are
            untouched; a value makes this request's cached keys/values
            go through that format instead — one engine serving
            heterogeneous-precision traffic.
    """

    max_new_tokens: int = 16
    temperature: float = 0.0
    top_k: int = 20
    top_p: float = 1.0
    stop_token_ids: tuple[int, ...] = field(default_factory=tuple)
    seed: int = 0
    deadline_s: float | None = None
    kv_format: KVFormat | None = None

    def __post_init__(self) -> None:
        if self.max_new_tokens < 1:
            raise RequestError(
                f"max_new_tokens must be >= 1, got {self.max_new_tokens}"
            )
        if self.temperature < 0.0:
            raise RequestError(f"temperature must be >= 0, got {self.temperature}")
        if self.temperature > 0.0 and self.top_k < 1:
            raise RequestError(f"top_k must be >= 1 when sampling, got {self.top_k}")
        if not 0.0 < self.top_p <= 1.0:
            raise RequestError(f"top_p must lie in (0, 1], got {self.top_p}")
        # Normalize to a plain tuple of ints so membership checks and
        # equality are exact whatever iterable the caller handed in.
        stop = tuple(int(token) for token in self.stop_token_ids)
        object.__setattr__(self, "stop_token_ids", stop)
        if any(token < 0 for token in stop):
            raise RequestError(f"stop token ids must be >= 0, got {stop}")
        if self.deadline_s is not None and not self.deadline_s > 0.0:
            raise RequestError(
                f"deadline_s must be > 0 (or None), got {self.deadline_s}"
            )
        if self.kv_format is not None and not isinstance(self.kv_format, KVFormat):
            raise RequestError(
                "kv_format must be a repro.llm.kv_quant.KVFormat or None, "
                f"got {type(self.kv_format).__name__}"
            )

    def is_stop(self, token: int) -> bool:
        """Whether emitting ``token`` ends the request."""
        return token in self.stop_token_ids
