"""Serving telemetry: step tracing, engine-scoped counters, exporters.

The observability layer over the serving engine, in three parts:

* :class:`~repro.serve.telemetry.counters.CounterRegistry` — per-engine
  counter/gauge families with Prometheus-style labels (the fix for the
  old process-global counter bleed between engines);
* :class:`~repro.serve.telemetry.tracer.StepTracer` — a low-overhead
  span/instant recorder instrumenting every phase of ``Engine.step``
  plus per-request lifecycle transitions;
* :mod:`~repro.serve.telemetry.export` — Chrome trace-event JSON
  (Perfetto-loadable), Prometheus text exposition, and structured
  per-step log lines, bundled per engine as :class:`EngineTelemetry`.

Enable tracing with ``EngineConfig(telemetry=TelemetryConfig(
trace=True))`` and read everything through ``engine.telemetry`` (or
``LLM(...).telemetry``); see ``examples/telemetry_tour.py``.
"""

from repro.serve.telemetry.config import TelemetryConfig
from repro.serve.telemetry.counters import CounterRegistry, Metric, MetricFamily, Sample
from repro.serve.telemetry.export import (
    ENGINE_COUNTER_FIELDS,
    ENGINE_GAUGE_FIELDS,
    EngineTelemetry,
    chrome_trace,
    log_step_summary,
    prometheus_exposition,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.serve.telemetry.tracer import StepTracer, TraceEvent, request_track

__all__ = [
    "ENGINE_COUNTER_FIELDS",
    "ENGINE_GAUGE_FIELDS",
    "CounterRegistry",
    "EngineTelemetry",
    "Metric",
    "MetricFamily",
    "Sample",
    "StepTracer",
    "TelemetryConfig",
    "TraceEvent",
    "chrome_trace",
    "log_step_summary",
    "prometheus_exposition",
    "request_track",
    "validate_chrome_trace",
    "write_chrome_trace",
]
