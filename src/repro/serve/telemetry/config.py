"""Telemetry knobs of one engine instance (`EngineConfig.telemetry`)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError


@dataclass(frozen=True)
class TelemetryConfig:
    """What an engine records beyond its always-on counters.

    The counter registry and per-engine stats exist regardless of this
    config (they replace the old process-global counters and cost the
    same); the knobs here govern the *optional* instruments:

    Args:
        trace: record phase spans and request lifecycle events into a
            :class:`~repro.serve.telemetry.StepTracer` for Chrome
            trace-event export.  Off by default: a disabled tracer is
            ``None`` everywhere, so the hot path pays one ``is None``
            check per instrumented region (CI gates the disabled-mode
            step-latency overhead at <= 2%).
        log_steps: emit one structured ``logging`` summary line per
            engine step (logger ``repro.serve.telemetry``, INFO level).
        log_every: emit the summary line every N-th step only
            (``log_steps`` must be on; 1 logs every step).
    """

    trace: bool = False
    log_steps: bool = False
    log_every: int = 1

    def __post_init__(self) -> None:
        if self.log_every < 1:
            raise ModelError(f"log_every must be >= 1, got {self.log_every}")
