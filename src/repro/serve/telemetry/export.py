"""Telemetry exporters: Chrome trace JSON, Prometheus text, step logs.

Three consumers, one recording substrate:

* :func:`chrome_trace` / :func:`write_chrome_trace` turn a
  :class:`~repro.serve.telemetry.tracer.StepTracer`'s event list into
  Chrome trace-event JSON (the ``traceEvents`` object form) loadable in
  Perfetto / ``chrome://tracing`` — one track per span name, one per
  request, named through ``thread_name`` metadata events.
  :func:`validate_chrome_trace` checks an emitted payload against the
  schema subset CI relies on (required keys, per-track monotonic
  ``ts``, matched B/E pairs).
* :func:`prometheus_exposition` renders a
  :class:`~repro.serve.telemetry.counters.CounterRegistry` in the
  Prometheus text exposition format (version 0.0.4).
* :func:`log_step_summary` emits one structured ``logging`` line per
  engine step on the ``repro.serve.telemetry`` logger.

:class:`EngineTelemetry` bundles the per-engine instruments (registry +
optional tracer) and the pull that maps every
:class:`~repro.serve.metrics.EngineMetrics` field into labelled
registry series — the table :data:`ENGINE_COUNTER_FIELDS` /
:data:`ENGINE_GAUGE_FIELDS` drives it, so the exposition reproduces the
legacy metrics object by construction.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from collections.abc import Callable
from typing import TYPE_CHECKING

from repro.errors import ModelError
from repro.serve.telemetry.config import TelemetryConfig
from repro.serve.telemetry.counters import CounterRegistry
from repro.serve.telemetry.tracer import StepTracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> here)
    from repro.serve.metrics import EngineMetrics, StepReport

#: Logger carrying the per-step summary lines (INFO level).
LOGGER = logging.getLogger("repro.serve.telemetry")

#: Cumulative :class:`EngineMetrics` fields exported as Prometheus
#: counters: ``(attribute, metric name, help)``.  Monotone over an
#: engine's life, so the pull-model collect can advance each counter by
#: its delta since the last pull.
ENGINE_COUNTER_FIELDS: tuple[tuple[str, str, str], ...] = (
    ("steps", "repro_engine_steps_total", "Engine steps executed"),
    (
        "total_new_tokens",
        "repro_engine_new_tokens_total",
        "Continuation tokens emitted",
    ),
    (
        "total_seconds",
        "repro_engine_step_seconds_total",
        "Wall-clock seconds spent inside steps",
    ),
    (
        "prefill_tokens",
        "repro_engine_prefill_tokens_total",
        "Prompt positions computed",
    ),
    (
        "partial_prefills",
        "repro_engine_partial_prefills_total",
        "Chunk admissions that left a prompt in flight",
    ),
    (
        "preemptions",
        "repro_engine_preemptions_total",
        "Recompute-on-resume evictions",
    ),
    (
        "evicted_blocks",
        "repro_engine_evicted_blocks_total",
        "Prefix-cache blocks reclaimed",
    ),
    (
        "prefix_hit_tokens",
        "repro_engine_prefix_hit_tokens_total",
        "Prompt positions served from shared blocks",
    ),
    (
        "prefix_saved_bytes",
        "repro_engine_prefix_saved_bytes_total",
        "Simulated DRAM bytes avoided by prefix hits",
    ),
    (
        "kv_copy_bytes",
        "repro_engine_kv_copy_bytes_total",
        "Host bytes memcpy'd re-materializing KV history",
    ),
    (
        "kv_dequant_bytes",
        "repro_engine_kv_dequant_bytes_total",
        "Host bytes converted float16 -> float32 for attention reads",
    ),
    (
        "attention_dispatches",
        "repro_engine_attention_dispatches_total",
        "Attention pipeline launches",
    ),
    (
        "attention_grouped_requests",
        "repro_engine_attention_grouped_requests_total",
        "Decode requests served through multi-request buckets",
    ),
    (
        "attention_padded_reads",
        "repro_engine_attention_padded_reads_total",
        "Wasted KV positions scored by padded buckets (per layer group)",
    ),
    (
        "aborted",
        "repro_engine_aborted_requests_total",
        "Requests cancelled via abort()",
    ),
    (
        "failed",
        "repro_engine_failed_total",
        "Requests quarantined into FAILED (faults, deadlines, shedding)",
    ),
    (
        "fault_retries",
        "repro_engine_fault_retries_total",
        "Transient-fault recoveries (request backoffs and step rollbacks)",
    ),
    (
        "deadline_expired",
        "repro_engine_deadline_expired_total",
        "Requests failed by deadline_s expiry",
    ),
    (
        "shed",
        "repro_engine_shed_requests_total",
        "Admissions refused under KV-pool pressure",
    ),
    (
        "degraded",
        "repro_engine_degraded_requests_total",
        "Admissions downgraded to the pressure policy's KV format",
    ),
)

#: Point-in-time :class:`EngineMetrics` views exported as gauges.
ENGINE_GAUGE_FIELDS: tuple[tuple[str, str, str], ...] = (
    (
        "tokens_per_second",
        "repro_engine_tokens_per_second",
        "Aggregate decode throughput",
    ),
    (
        "mean_batch_size",
        "repro_engine_mean_batch_size",
        "Average requests per non-empty step",
    ),
    (
        "ttft_p50_seconds",
        "repro_engine_ttft_p50_seconds",
        "Median time-to-first-token across finished requests",
    ),
    (
        "ttft_p95_seconds",
        "repro_engine_ttft_p95_seconds",
        "Tail time-to-first-token across finished requests",
    ),
    (
        "itl_p50_seconds",
        "repro_engine_itl_p50_seconds",
        "Median inter-token gap across all token streams",
    ),
    (
        "itl_p95_seconds",
        "repro_engine_itl_p95_seconds",
        "Tail inter-token gap across all token streams",
    ),
)


# -- Chrome trace-event export -------------------------------------------------


def chrome_trace(
    tracer: StepTracer, process_name: str = "repro.serve.engine"
) -> dict:
    """Chrome trace-event JSON object for a tracer's recorded events.

    Tracks are materialized as threads of one process: each distinct
    ``TraceEvent.track`` gets a ``tid`` in order of first appearance,
    named via a ``thread_name`` metadata event so Perfetto shows
    ``step`` / ``decode.attention`` / ``request 3`` timelines instead
    of bare thread ids.
    """
    pid = 1
    tids: dict[str, int] = {}
    events: list[dict] = []
    for event in tracer.events:
        tid = tids.get(event.track)
        if tid is None:
            tid = len(tids) + 1
            tids[event.track] = tid
        entry: dict = {
            "name": event.name,
            "ph": event.phase,
            "ts": event.ts,
            "pid": pid,
            "tid": tid,
            "cat": "serve",
        }
        if event.phase == "i":
            entry["s"] = "t"  # instant scope: thread
        if event.args:
            entry["args"] = dict(event.args)
        events.append(entry)
    metadata: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for track, tid in tids.items():
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": track},
            }
        )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str | Path,
    tracer: StepTracer,
    process_name: str = "repro.serve.engine",
) -> Path:
    """Serialize :func:`chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer, process_name)) + "\n")
    return path


def validate_chrome_trace(payload: dict) -> list[str]:
    """Schema problems in an emitted trace object (empty list = valid).

    Checks the subset of the Chrome trace-event format the CI artifact
    relies on: the ``traceEvents`` container, per-event required keys,
    non-negative per-track monotonically non-decreasing ``ts``, and
    strictly matched B/E pairs per track (LIFO, names agreeing) — an
    unbalanced or interleaved span would render as garbage in Perfetto.
    """
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is missing or not a list"]
    open_spans: dict[tuple[int, int], list[str]] = {}
    last_ts: dict[tuple[int, int], float] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        phase = event.get("ph")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"event {index} lacks required key {key!r}")
        if phase == "M":
            continue
        if phase not in ("B", "E", "i"):
            problems.append(f"event {index} has unsupported phase {phase!r}")
            continue
        if "ts" not in event:
            problems.append(f"event {index} lacks required key 'ts'")
            continue
        ts = event["ts"]
        track = (event.get("pid", 0), event.get("tid", 0))
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {index} has non-monotonic ts {ts!r}")
            continue
        if ts < last_ts.get(track, 0.0):
            problems.append(
                f"event {index} ({event.get('name')}) goes backwards on "
                f"track {track}: ts {ts} < {last_ts[track]}"
            )
        last_ts[track] = ts
        if phase == "B":
            open_spans.setdefault(track, []).append(event.get("name", ""))
        elif phase == "E":
            stack = open_spans.get(track)
            if not stack:
                problems.append(
                    f"event {index} ends span {event.get('name')!r} with "
                    f"no open span on track {track}"
                )
            elif stack[-1] != event.get("name"):
                problems.append(
                    f"event {index} ends span {event.get('name')!r} but "
                    f"{stack[-1]!r} is open on track {track}"
                )
            else:
                stack.pop()
    for track, stack in open_spans.items():
        if stack:
            problems.append(
                f"track {track} has unclosed span(s): {', '.join(stack)}"
            )
    return problems


# -- Prometheus text exposition ------------------------------------------------


def _escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def prometheus_exposition(registry: CounterRegistry) -> str:
    """Text exposition (format 0.0.4) of every family in the registry."""
    lines: list[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for sample in family.samples():
            if sample.labels:
                rendered = ",".join(
                    f'{name}="{_escape_label_value(value)}"'
                    for name, value in sample.labels
                )
                lines.append(f"{sample.name}{{{rendered}}} {sample.value!r}")
            else:
                lines.append(f"{sample.name} {sample.value!r}")
    return "\n".join(lines) + "\n"


# -- per-step summary logging --------------------------------------------------


def log_step_summary(engine_label: str, report: "StepReport") -> None:
    """One structured INFO line summarizing an engine step."""
    LOGGER.info(
        "engine=%s step=%d prefills=%d decodes=%d new_tokens=%d "
        "batch_tokens=%d prefill_tokens=%d partial=%d preemptions=%d "
        "elapsed_ms=%.3f kv_copy_bytes=%d kv_dequant_bytes=%d "
        "attention_dispatches=%d",
        engine_label,
        report.step,
        report.prefills,
        report.decodes,
        report.new_tokens,
        report.batch_tokens,
        report.prefill_tokens,
        report.partial_prefills,
        report.preemptions,
        report.elapsed_seconds * 1e3,
        report.kv_copy_bytes,
        report.kv_dequant_bytes,
        report.attention_dispatches,
    )


# -- the per-engine bundle -----------------------------------------------------


class EngineTelemetry:
    """One engine's telemetry instruments: registry + optional tracer.

    Built by :class:`~repro.serve.engine.Engine` from its
    :class:`TelemetryConfig`; the engine passes its own ``metrics``
    callable so :meth:`collect` can pull the legacy
    :class:`~repro.serve.metrics.EngineMetrics` summary into the
    registry (every series labelled ``engine=<label>``) without this
    module importing the engine.
    """

    def __init__(
        self,
        config: TelemetryConfig,
        engine_label: str,
        metrics_fn: "Callable[[], EngineMetrics]",
    ) -> None:
        self.config = config
        self.engine_label = engine_label
        self.registry = CounterRegistry()
        self.tracer: StepTracer | None = StepTracer() if config.trace else None
        self._metrics_fn = metrics_fn

    def collect(self) -> None:
        """Pull the engine's metrics summary into the registry.

        Counters advance by their delta since the previous pull (the
        underlying fields are cumulative), gauges are set to the latest
        value; repeated pulls are therefore idempotent on quiescent
        engines.
        """
        metrics = self._metrics_fn()
        for attribute, name, help in ENGINE_COUNTER_FIELDS:
            series = self.registry.counter(name, help, labels=("engine",)).labels(
                engine=self.engine_label
            )
            series.inc(float(getattr(metrics, attribute)) - series.value)
        dram = self.registry.counter(
            "repro_engine_dram_bytes_total",
            "Simulated DRAM traffic",
            labels=("engine",),
        ).labels(engine=self.engine_label)
        dram.inc(float(metrics.traffic.total_bytes) - dram.value)
        finished = self.registry.counter(
            "repro_engine_finished_requests_total",
            "Requests run to completion",
            labels=("engine",),
        ).labels(engine=self.engine_label)
        finished.inc(float(len(metrics.requests)) - finished.value)
        format_family = self.registry.counter(
            "repro_engine_kv_format_bytes_total",
            "Simulated KV traffic attributed per KV format",
            labels=("engine", "format"),
        )
        for label, nbytes in metrics.kv_format_bytes:
            series = format_family.labels(engine=self.engine_label, format=label)
            series.inc(float(nbytes) - series.value)
        for attribute, name, help in ENGINE_GAUGE_FIELDS:
            self.registry.gauge(name, help, labels=("engine",)).labels(
                engine=self.engine_label
            ).set(float(getattr(metrics, attribute)))

    def prometheus(self) -> str:
        """Collect, then render the registry's text exposition."""
        self.collect()
        return prometheus_exposition(self.registry)

    def chrome_trace(self) -> dict:
        """The engine's trace as a Chrome trace-event JSON object."""
        if self.tracer is None:
            raise ModelError(
                "tracing is disabled; construct the engine with "
                "EngineConfig(telemetry=TelemetryConfig(trace=True))"
            )
        return chrome_trace(self.tracer, f"repro.serve[{self.engine_label}]")

    def write_trace(self, path: str | Path) -> Path:
        """Serialize :meth:`chrome_trace` to ``path``; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.chrome_trace()) + "\n")
        return path
