"""Low-overhead span tracer for engine steps and request lifecycles.

A :class:`StepTracer` records flat begin/end/instant events with
``time.perf_counter`` timestamps (microseconds relative to the
tracer's epoch) — no nesting bookkeeping, no I/O, no formatting on the
hot path; one list append per event.  The Chrome trace-event exporter
(:mod:`repro.serve.telemetry.export`) turns the event list into a
Perfetto-loadable timeline afterwards, assigning one track per span
name (phase) and one per request.

Disabled tracing is represented by *absence*: the engine holds
``tracer = None`` and every instrumented site guards with ``is not
None``, so the disabled cost is one attribute/contextvar load per
region — the property the CI overhead gate (<= 2% step latency)
measures.

``begin``/``end`` accept an explicit pre-captured ``ts`` (a raw
``perf_counter`` reading mapped through :meth:`StepTracer.to_us`) so a
span can share the *exact* clock readings other accounting uses — the
engine's root ``step`` span reuses the readings behind
``StepReport.elapsed_seconds``, which is what lets the acceptance test
compare span durations to the report tightly instead of within slop.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass

#: Track (Perfetto thread) prefix for per-request lifecycle events.
REQUEST_TRACK_PREFIX = "request "


def request_track(request_id: int) -> str:
    """Track name carrying one request's lifecycle events."""
    return f"{REQUEST_TRACK_PREFIX}{request_id}"


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded event.

    Attributes:
        name: span or instant name (``step``, ``decode.attention``, a
            lifecycle status, ...).
        phase: ``"B"`` (span begin), ``"E"`` (span end) or ``"i"``
            (instant) — the Chrome trace-event phases the exporter
            emits verbatim.
        ts: microseconds since the tracer's epoch.
        track: timeline the event renders on; defaults to ``name`` so
            every span name gets its own track.
        args: extra key/values shown in the trace UI (``None`` for
            none — cheaper than an empty dict per event).
    """

    name: str
    phase: str
    ts: float
    track: str
    args: dict | None = None


class StepTracer:
    """Append-only event recorder with a private perf_counter epoch."""

    __slots__ = ("events", "_epoch")

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._epoch = time.perf_counter()

    @property
    def epoch(self) -> float:
        """The raw ``perf_counter`` reading mapped to ``ts == 0``."""
        return self._epoch

    def to_us(self, perf_counter_seconds: float) -> float:
        """Map a raw ``time.perf_counter()`` reading onto the trace clock."""
        return (perf_counter_seconds - self._epoch) * 1e6

    def _now(self) -> float:
        return (time.perf_counter() - self._epoch) * 1e6

    def begin(
        self,
        name: str,
        *,
        ts: float | None = None,
        track: str | None = None,
        **args: object,
    ) -> None:
        """Open a span (pair with :meth:`end` on the same track)."""
        self.events.append(
            TraceEvent(
                name,
                "B",
                self._now() if ts is None else ts,
                name if track is None else track,
                args or None,
            )
        )

    def end(
        self, name: str, *, ts: float | None = None, track: str | None = None
    ) -> None:
        """Close the most recent open span of ``name`` on its track."""
        self.events.append(
            TraceEvent(
                name,
                "E",
                self._now() if ts is None else ts,
                name if track is None else track,
                None,
            )
        )

    def instant(
        self, name: str, *, track: str | None = None, **args: object
    ) -> None:
        """Record a point event (no duration — lifecycle transitions)."""
        self.events.append(
            TraceEvent(
                name,
                "i",
                self._now(),
                name if track is None else track,
                args or None,
            )
        )

    @contextmanager
    def span(
        self, name: str, *, track: str | None = None, **args: object
    ) -> Iterator[None]:
        """``with tracer.span("decode.attention", size=...):`` region."""
        self.begin(name, track=track, **args)
        try:
            yield
        finally:
            self.end(name, track=track)

    def lifecycle(self, request_id: int, status: str, **args: object) -> None:
        """Record one request's lifecycle transition on its own track."""
        self.instant(status, track=request_track(request_id), **args)

    def clear(self) -> None:
        """Drop recorded events (the epoch is kept, timestamps stay
        comparable across clears)."""
        self.events.clear()
