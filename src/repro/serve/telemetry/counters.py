"""Engine-scoped counter/gauge registry with Prometheus-style labels.

One :class:`CounterRegistry` belongs to one engine (it lives on
:class:`~repro.serve.telemetry.export.EngineTelemetry`), which is the
fix for the cross-engine counter-bleed the old module-global
``HOT_PATH_STATS``/``ATTENTION_STATS`` suffered: nothing in a registry
is process-global, and every mutation takes the registry's lock so two
engines stepping on different threads stay isolated *and* consistent.

The model is deliberately the Prometheus client-library core:

* a metric *family* has a name, a kind (``counter`` monotonically
  increases, ``gauge`` is set to the latest value), a help string and
  fixed label names;
* ``family.labels(engine="e0")`` returns the child time series for one
  label combination (created on first use, cached after);
* ``registry.collect()`` snapshots every sample for the text
  exposition (:func:`repro.serve.telemetry.export.prometheus_exposition`).
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass

from repro.errors import ModelError

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


@dataclass(frozen=True, slots=True)
class Sample:
    """One collected time series value.

    Attributes:
        name: the owning family's metric name.
        labels: ``(label, value)`` pairs in the family's declared order.
        value: current value.
    """

    name: str
    labels: tuple[tuple[str, str], ...]
    value: float


class Metric:
    """One label combination's value within a family."""

    __slots__ = ("_family", "_key", "_value")

    def __init__(self, family: "MetricFamily", key: tuple[str, ...]) -> None:
        self._family = family
        self._key = key
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add to the value (counters must only ever grow)."""
        if self._family.kind == "counter" and amount < 0:
            raise ModelError(
                f"counter {self._family.name} cannot decrease (inc {amount})"
            )
        with self._family._lock:
            self._value += amount

    def set(self, value: float) -> None:
        """Overwrite the value (gauges only — counters are monotonic)."""
        if self._family.kind != "gauge":
            raise ModelError(
                f"set() is gauge-only; {self._family.name} is a "
                f"{self._family.kind}"
            )
        with self._family._lock:
            self._value = value

    @property
    def value(self) -> float:
        return self._value


class MetricFamily:
    """A named metric with fixed label names and per-combination children."""

    __slots__ = ("name", "kind", "help", "label_names", "_lock", "_children")

    def __init__(
        self,
        name: str,
        kind: str,
        help: str,
        label_names: tuple[str, ...],
        lock: threading.Lock,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = label_names
        self._lock = lock
        self._children: dict[tuple[str, ...], Metric] = {}

    def labels(self, **labels: str) -> Metric:
        """The child series for one label-value combination."""
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ModelError(
                f"metric {self.name} takes labels "
                f"{sorted(self.label_names)}, got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = Metric(self, key)
                self._children[key] = child
        return child

    def samples(self) -> list[Sample]:
        with self._lock:
            return [
                Sample(
                    self.name,
                    tuple(zip(self.label_names, key)),
                    child._value,
                )
                for key, child in sorted(self._children.items())
            ]


class CounterRegistry:
    """Thread-safe registry of counter/gauge families for one engine."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    def _family(
        self, name: str, kind: str, help: str, labels: tuple[str, ...]
    ) -> MetricFamily:
        if not _NAME_RE.match(name):
            raise ModelError(f"invalid metric name {name!r}")
        for label in labels:
            if not _LABEL_RE.match(label):
                raise ModelError(f"invalid label name {label!r} on {name}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help, tuple(labels), self._lock)
                self._families[name] = family
                return family
        if family.kind != kind or family.label_names != tuple(labels):
            raise ModelError(
                f"metric {name} re-registered with a different kind or "
                f"labels ({family.kind}{family.label_names} vs "
                f"{kind}{tuple(labels)})"
            )
        return family

    def counter(
        self, name: str, help: str = "", labels: tuple[str, ...] = ()
    ) -> MetricFamily:
        """Register (or fetch) a monotonically increasing counter family."""
        return self._family(name, "counter", help, labels)

    def gauge(
        self, name: str, help: str = "", labels: tuple[str, ...] = ()
    ) -> MetricFamily:
        """Register (or fetch) a set-to-latest gauge family."""
        return self._family(name, "gauge", help, labels)

    def collect(self) -> list[MetricFamily]:
        """Families in registration order (exposition iterates these)."""
        with self._lock:
            return list(self._families.values())
