"""Continuous-batching serving engine over the numpy LLM substrate.

Serving is where the paper's decode-side analysis becomes load-bearing:
decode is bandwidth-bound (:mod:`repro.hw.roofline`), so throughput
comes from amortizing the weight stream over many concurrent requests
and shrinking the per-request KV stream (the Anda KV format of
:mod:`repro.llm.kv_quant`).  This package provides:

* :class:`~repro.serve.engine.Engine` — ``submit()`` / ``step()`` /
  ``drain()`` continuous batching with chunked prefill (long prompts
  split into budget-sized chunks that ride along with the decode batch
  in mixed steps, bounding TTFT and inter-token latency) and
  token-parity with sequential ``generate`` calls;
* :func:`~repro.serve.engine.serve_batch` — synchronous convenience
  wrapper for a fixed batch of prompts;
* scheduler policies (FCFS, shortest-prompt-first, decode-first) under
  a ``max_batch_tokens`` budget — and, in paged mode, the KV pool's
  free-block budget (:mod:`repro.serve.scheduler`);
* the paged KV-cache memory subsystem — block allocator with
  copy-on-write, prefix-sharing radix cache, recompute-on-resume
  preemption — enabled per engine with ``EngineConfig(kv_pool=True)``
  (:mod:`repro.serve.kvpool`);
* per-request latency and aggregate throughput/traffic metrics,
  including preemption / eviction / prefix-hit counters
  (:mod:`repro.serve.metrics`).

See ``src/repro/serve/README.md`` for a walkthrough and
``benchmarks/bench_serving.py`` for the throughput benchmark.
"""

from repro.serve.engine import Engine, EngineConfig, serve_batch
from repro.serve.kvpool import (
    BlockAllocator,
    KVPool,
    OutOfBlocksError,
    PagedKVCache,
    Preemptor,
    PrefixCache,
    SequenceKV,
)
from repro.serve.metrics import EngineMetrics, StepReport, summarize
from repro.serve.request import (
    CompletedRequest,
    Request,
    RequestMetrics,
    RequestState,
    RequestStatus,
)
from repro.serve.scheduler import (
    POLICIES,
    DecodeFirstPolicy,
    FcfsPolicy,
    KVBlockPlanner,
    PrefillChunk,
    SchedulerPolicy,
    ShortestPromptFirstPolicy,
    StepPlan,
    get_policy,
    plan_step,
)

__all__ = [
    "POLICIES",
    "BlockAllocator",
    "CompletedRequest",
    "DecodeFirstPolicy",
    "Engine",
    "EngineConfig",
    "EngineMetrics",
    "FcfsPolicy",
    "KVBlockPlanner",
    "PrefillChunk",
    "KVPool",
    "OutOfBlocksError",
    "PagedKVCache",
    "Preemptor",
    "PrefixCache",
    "Request",
    "RequestMetrics",
    "RequestState",
    "RequestStatus",
    "SchedulerPolicy",
    "SequenceKV",
    "ShortestPromptFirstPolicy",
    "StepPlan",
    "StepReport",
    "get_policy",
    "plan_step",
    "serve_batch",
    "summarize",
]
