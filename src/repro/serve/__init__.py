"""Continuous-batching serving engine over the numpy LLM substrate.

Serving is where the paper's decode-side analysis becomes load-bearing:
decode is bandwidth-bound (:mod:`repro.hw.roofline`), so throughput
comes from amortizing the weight stream over many concurrent requests
and shrinking the per-request KV stream (the Anda KV format of
:mod:`repro.llm.kv_quant`).

The public front end is three abstractions:

* :class:`~repro.serve.llm.LLM` — the facade: ``generate(prompts,
  sampling_params)`` for batches, ``stream(...)`` for per-token
  delivery, ``submit(...)`` for incremental control;
* :class:`~repro.serve.params.SamplingParams` — the frozen per-request
  decoding recipe (temperature, top-k, top-p, stop tokens, length cap,
  seed), validated at construction and shared with the sequential
  :func:`repro.llm.generation.generate` path so both stay
  token-bitwise identical;
* :class:`~repro.serve.handle.RequestHandle` — one in-flight request:
  incremental token iteration fed by per-step
  :class:`~repro.serve.handle.TokenDelta` emissions, ``status()``,
  blocking ``result()``, and ``abort()`` (cancellation releases paged
  blocks and prefix-cache references through the preemption rollback
  path).

Beneath the facade, :class:`~repro.serve.engine.Engine` is the
internal-but-public layer: ``submit()`` / ``step()`` / ``drain()``
continuous batching with chunked prefill (mixed steps bounding TTFT
and inter-token latency), scheduler policies (FCFS,
shortest-prompt-first, decode-first) under a ``max_batch_tokens``
budget (:mod:`repro.serve.scheduler`), the paged KV-cache memory
subsystem — refcounted block allocator with copy-on-write,
prefix-sharing radix cache, recompute-on-resume preemption — enabled
with ``EngineConfig(kv_pool=True)`` (:mod:`repro.serve.kvpool`), and
per-request latency plus aggregate throughput/traffic metrics
(:mod:`repro.serve.metrics`).

Failure semantics (:mod:`repro.serve.faults`) make the engine
fault-tolerant: deterministic seeded fault injection
(:class:`~repro.serve.faults.FaultPlan` /
:class:`~repro.serve.faults.FaultInjector`) drives per-request
quarantine (terminal ``FAILED`` status, residency released through the
shared rollback path), batch-level step rollback that leaves
surviving requests' KV bitwise-untouched, bounded-backoff retry of
transient faults (:class:`~repro.serve.faults.RetryPolicy`),
per-request deadlines (``SamplingParams.deadline_s``), and graceful
degradation under KV-pool pressure
(:class:`~repro.serve.faults.PressurePolicy`: load-shedding and
opt-in KV-format downgrades).

:func:`~repro.serve.llm.serve_batch` survives as a deprecated shim
over ``LLM.generate`` with identical outputs.

See ``src/repro/serve/README.md`` for a walkthrough and
``benchmarks/bench_serving.py`` for the throughput benchmark.
"""

from repro.llm.kv_quant import KVFormat
from repro.serve.engine import Engine, EngineConfig
from repro.serve.faults import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    PermanentFault,
    PressurePolicy,
    RetryPolicy,
    TransientFault,
)
from repro.serve.handle import RequestHandle, StepOutputs, TokenDelta
from repro.serve.kvpool import (
    BlockAllocator,
    KVPool,
    OutOfBlocksError,
    PagedKVCache,
    Preemptor,
    PrefixCache,
    SequenceKV,
)
from repro.serve.llm import LLM, serve_batch
from repro.serve.metrics import EngineMetrics, StepReport, summarize
from repro.serve.params import SamplingParams
from repro.serve.request import (
    CompletedRequest,
    Request,
    RequestMetrics,
    RequestState,
    RequestStatus,
)
from repro.serve.scheduler import (
    POLICIES,
    DecodeFirstPolicy,
    FcfsPolicy,
    KVBlockPlanner,
    PrefillChunk,
    SchedulerPolicy,
    ShortestPromptFirstPolicy,
    StepPlan,
    get_policy,
    plan_step,
    validate_admission,
)
from repro.serve.telemetry import (
    CounterRegistry,
    EngineTelemetry,
    StepTracer,
    TelemetryConfig,
    TraceEvent,
    chrome_trace,
    prometheus_exposition,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "POLICIES",
    "BlockAllocator",
    "CompletedRequest",
    "CounterRegistry",
    "DecodeFirstPolicy",
    "Engine",
    "EngineConfig",
    "EngineMetrics",
    "EngineTelemetry",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "FcfsPolicy",
    "InjectedFault",
    "KVBlockPlanner",
    "KVFormat",
    "KVPool",
    "LLM",
    "OutOfBlocksError",
    "PagedKVCache",
    "PermanentFault",
    "Preemptor",
    "PrefillChunk",
    "PrefixCache",
    "PressurePolicy",
    "Request",
    "RequestHandle",
    "RequestMetrics",
    "RequestState",
    "RequestStatus",
    "RetryPolicy",
    "SamplingParams",
    "SchedulerPolicy",
    "SequenceKV",
    "ShortestPromptFirstPolicy",
    "StepOutputs",
    "StepPlan",
    "StepReport",
    "StepTracer",
    "TelemetryConfig",
    "TokenDelta",
    "TraceEvent",
    "TransientFault",
    "chrome_trace",
    "get_policy",
    "plan_step",
    "prometheus_exposition",
    "serve_batch",
    "summarize",
    "validate_admission",
    "validate_chrome_trace",
    "write_chrome_trace",
]
