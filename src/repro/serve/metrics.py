"""Aggregate serving metrics: throughput, latency, simulated traffic.

The engine accumulates one :class:`StepReport` per step; this module
rolls those plus the per-request records into an :class:`EngineMetrics`
summary — the object the serving benchmark serializes.  In paged
KV-pool mode the reports additionally carry the memory subsystem's
counters: preemptions, prefix-cache block evictions, prefix-hit tokens
and the DRAM traffic those hits avoided.

Latency is summarized as percentiles, the form a serving SLO is
written in: **TTFT** (time to first token — what chunked prefill
bounds for the long prompt itself) and **ITL** (inter-token latency —
what mixed steps bound for everyone else, by never letting a monolithic
prefill stall the decode batch).  TTFT percentiles are taken across
requests; ITL percentiles are taken across every consecutive
token-to-token gap of every request, so one long stall in one request
shows up in the tail instead of averaging away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np

from repro.errors import ModelError
from repro.hw.traffic import StepTraffic
from repro.serve.request import RequestMetrics


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile (``q`` in [0, 1]) of ``values``.

    Thin wrapper over :func:`numpy.quantile` that returns 0.0 for an
    empty sequence, so metric objects are safe to render before any
    request finishes.
    """
    if not 0.0 <= q <= 1.0:
        raise ModelError(f"percentile q must lie in [0, 1], got {q}")
    if not values:
        return 0.0
    return float(np.quantile(np.asarray(values), q))


@dataclass(frozen=True)
class StepReport:
    """What one engine step did and what it cost.

    Attributes:
        step: the engine's step index.
        prefills / decodes: request counts per phase this step (a
            prefill here is one admitted chunk — a whole prompt when
            chunking is off or the budget covers it).
        new_tokens: tokens emitted (completed prefills produce their
            first token).
        batch_tokens: scheduler budget consumed (chunk grants + decodes).
        prefill_tokens: prompt positions actually computed this step.
        partial_prefills: chunks that did not complete their prompt
            (the request stays in the waiting queue, half-prefilled).
        elapsed_seconds: wall-clock duration of the step.
        traffic: simulated DRAM traffic of the step.
        preemptions: running or half-prefilled requests evicted for
            blocks this step.
        evicted_blocks: prefix-cache blocks reclaimed this step.
        prefix_hit_tokens: prompt positions served from shared blocks.
        prefix_saved_bytes: simulated DRAM bytes those hits avoided.
        kv_copy_bytes: host bytes memcpy'd re-materializing KV history
            this step (buffer/scratch growth; O(history) per step on
            the reference storage, amortized O(new tokens) on the
            preallocated path).
        kv_dequant_bytes: host bytes converted float16 -> float32 for
            attention reads this step (the incremental views convert
            only the appended tail).
        attention_dispatches: attention pipeline launches this step —
            one per per-request core call plus one per grouped bucket.
            O(layers x batch) per decode step ungrouped, O(layers x
            buckets) with grouped attention on.
        attention_grouped_requests: decode requests served through a
            multi-request bucket this step (summed over layers).
        attention_padded_reads: wasted KV positions scored by padded
            buckets this step (per layer group, i.e. divided by
            n_layers — the unit ``decode_step_traffic`` charges
            as padded KV reads).
        kv_format_bytes: per-format split of the step's simulated KV
            traffic — ``((format_label, bytes), ...)`` sorted by label,
            where each request's KV reads+writes are attributed to its
            resolved :class:`~repro.llm.kv_quant.KVFormat` (padded
            reads belong to no request and are excluded).  Empty when
            the step moved no KV bytes.
    """

    step: int
    prefills: int
    decodes: int
    new_tokens: int
    batch_tokens: int
    elapsed_seconds: float
    traffic: StepTraffic
    prefill_tokens: int = 0
    partial_prefills: int = 0
    preemptions: int = 0
    evicted_blocks: int = 0
    prefix_hit_tokens: int = 0
    prefix_saved_bytes: float = 0.0
    kv_copy_bytes: int = 0
    kv_dequant_bytes: int = 0
    attention_dispatches: int = 0
    attention_grouped_requests: int = 0
    attention_padded_reads: int = 0
    kv_format_bytes: tuple[tuple[str, float], ...] = ()


@dataclass(frozen=True)
class EngineMetrics:
    """Aggregate view over an engine's lifetime.

    Attributes:
        steps: engine steps executed.
        total_new_tokens: continuation tokens emitted overall.
        total_seconds: wall-clock time spent inside steps.
        tokens_per_second: aggregate decode throughput.
        mean_batch_size: average requests per non-empty step.
        traffic: summed simulated DRAM traffic.
        prefill_tokens: prompt positions computed across all steps.
        partial_prefills: chunk admissions that left a prompt in
            flight (0 everywhere when chunking is off).
        preemptions: total recompute-on-resume evictions.
        evicted_blocks: total prefix-cache blocks reclaimed.
        prefix_hit_tokens: total prompt positions shared, not computed.
        prefix_saved_bytes: total simulated DRAM bytes avoided by hits.
        kv_copy_bytes: total host bytes memcpy'd re-materializing KV
            history (the decode hot path's waste metric — amortized
            O(1) per token on the preallocated storage).
        kv_dequant_bytes: total host bytes converted float16 ->
            float32 for attention reads (incremental views convert
            each stored position once, not once per step).
        attention_dispatches: total attention pipeline launches —
            grouped attention's headline metric, dropping from
            O(layers x batch) to O(layers x buckets) per decode step.
        attention_grouped_requests: total requests served through
            multi-request buckets (summed over layers and steps).
        attention_padded_reads: total wasted KV positions padded
            buckets scored (per layer group; what the pad-waste cap
            bounds).
        kv_format_bytes: lifetime per-format split of simulated KV
            traffic, merged across steps (sorted by format label).
        aborted: requests cancelled via ``abort()`` (they release their
            KV residency immediately and never produce a request
            record, so they appear here and nowhere in ``requests``).
        failed: requests the engine quarantined into the terminal
            FAILED status — permanent faults, exhausted retries,
            deadline expiries and shed admissions all land here (like
            aborts, they produce no request record).
        fault_retries: transient-fault recoveries — per-request
            backoff retries plus batch-level step rollbacks (each
            replays bitwise through recompute-on-resume).
        deadline_expired: requests failed because their
            ``SamplingParams.deadline_s`` budget elapsed (a subset of
            ``failed``).
        shed: admissions refused under KV-pool pressure (a subset of
            ``failed``).
        degraded: admissions downgraded to the pressure policy's
            lower-bit KV format (these still finish normally).
        requests: per-request latency records (finished requests only).
    """

    steps: int
    total_new_tokens: int
    total_seconds: float
    tokens_per_second: float
    mean_batch_size: float
    traffic: StepTraffic
    prefill_tokens: int = 0
    partial_prefills: int = 0
    preemptions: int = 0
    evicted_blocks: int = 0
    prefix_hit_tokens: int = 0
    prefix_saved_bytes: float = 0.0
    kv_copy_bytes: int = 0
    kv_dequant_bytes: int = 0
    attention_dispatches: int = 0
    attention_grouped_requests: int = 0
    attention_padded_reads: int = 0
    kv_format_bytes: tuple[tuple[str, float], ...] = ()
    aborted: int = 0
    failed: int = 0
    fault_retries: int = 0
    deadline_expired: int = 0
    shed: int = 0
    degraded: int = 0
    requests: list[RequestMetrics] = field(default_factory=list)

    @property
    def mean_latency_seconds(self) -> float:
        if not self.requests:
            return 0.0
        return sum(r.latency_seconds for r in self.requests) / len(self.requests)

    @property
    def mean_ttft_seconds(self) -> float:
        if not self.requests:
            return 0.0
        return sum(r.ttft_seconds for r in self.requests) / len(self.requests)

    def _ttfts(self) -> list[float]:
        return [r.ttft_seconds for r in self.requests]

    def _itl_gaps(self) -> list[float]:
        return [gap for r in self.requests for gap in r.itl_seconds]

    @property
    def ttft_p50_seconds(self) -> float:
        """Median time-to-first-token across finished requests."""
        return percentile(self._ttfts(), 0.50)

    @property
    def ttft_p95_seconds(self) -> float:
        """Tail time-to-first-token across finished requests."""
        return percentile(self._ttfts(), 0.95)

    @property
    def itl_p50_seconds(self) -> float:
        """Median inter-token gap across every request's token stream."""
        return percentile(self._itl_gaps(), 0.50)

    @property
    def itl_p95_seconds(self) -> float:
        """Tail inter-token gap — the stall a monolithic prefill causes."""
        return percentile(self._itl_gaps(), 0.95)


def summarize(
    reports: list[StepReport],
    requests: list[RequestMetrics],
    aborted: int = 0,
    failed: int = 0,
    fault_retries: int = 0,
    deadline_expired: int = 0,
    shed: int = 0,
    degraded: int = 0,
) -> EngineMetrics:
    """Fold step reports and request records into one summary."""
    total_tokens = sum(report.new_tokens for report in reports)
    total_seconds = sum(report.elapsed_seconds for report in reports)
    active = [
        report.prefills + report.decodes
        for report in reports
        if report.prefills + report.decodes > 0
    ]
    traffic = StepTraffic()
    for report in reports:
        traffic = traffic + report.traffic
    format_bytes: dict[str, float] = {}
    for report in reports:
        for label, nbytes in report.kv_format_bytes:
            format_bytes[label] = format_bytes.get(label, 0.0) + nbytes
    return EngineMetrics(
        steps=len(reports),
        total_new_tokens=total_tokens,
        total_seconds=total_seconds,
        tokens_per_second=(total_tokens / total_seconds if total_seconds > 0 else 0.0),
        mean_batch_size=sum(active) / len(active) if active else 0.0,
        traffic=traffic,
        prefill_tokens=sum(report.prefill_tokens for report in reports),
        partial_prefills=sum(report.partial_prefills for report in reports),
        preemptions=sum(report.preemptions for report in reports),
        evicted_blocks=sum(report.evicted_blocks for report in reports),
        prefix_hit_tokens=sum(report.prefix_hit_tokens for report in reports),
        prefix_saved_bytes=sum(report.prefix_saved_bytes for report in reports),
        kv_copy_bytes=sum(report.kv_copy_bytes for report in reports),
        kv_dequant_bytes=sum(report.kv_dequant_bytes for report in reports),
        attention_dispatches=sum(report.attention_dispatches for report in reports),
        attention_grouped_requests=sum(
            report.attention_grouped_requests for report in reports
        ),
        attention_padded_reads=sum(
            report.attention_padded_reads for report in reports
        ),
        kv_format_bytes=tuple(sorted(format_bytes.items())),
        aborted=aborted,
        failed=failed,
        fault_retries=fault_retries,
        deadline_expired=deadline_expired,
        shed=shed,
        degraded=degraded,
        requests=list(requests),
    )
