"""Block-table-backed KV caches: the paged counterpart of ``KVCache``.

A :class:`SequenceKV` is one request's view of the pool: an ordered
block table (shared across layers — a block holds every layer's K/V
for its token positions) plus one :class:`PagedKVCache` per layer that
plugs into the existing attention ``step`` / ``step_batch`` paths.
Writes scatter new positions into blocks (allocating or copy-on-write
forking as needed); reads gather the non-contiguous blocks back into
one contiguous history.  Stored bytes are identical to the unpaged
``KVCache`` — float16 rows, compressed per position — so paged decode
is bitwise identical to unpaged decode.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ModelError
from repro.llm.attention import KVCache

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pool -> paged)
    from repro.serve.kvpool.pool import KVPool


class PagedKVCache(KVCache):
    """One layer's KV history stored in pool blocks.

    Drop-in for :class:`~repro.llm.attention.KVCache`: ``append`` /
    ``append_precompressed`` write through the sequence's block table
    and return the gathered float32 history, and ``compress`` /
    ``compression_key`` delegate to the pool's codec so the batched
    decode path can precompress a whole batch in one call exactly as it
    does for unpaged caches.
    """

    def __init__(self, sequence: "SequenceKV", layer: int) -> None:
        self._sequence = sequence
        self._layer = layer
        self._length = sequence.shared_tokens

    def compress(self, tensor: np.ndarray) -> np.ndarray:
        return self._sequence.pool.codec.compress(tensor)

    def compression_key(self) -> tuple:
        return self._sequence.pool.codec.compression_key()

    def _store(self, k16: np.ndarray, v16: np.ndarray) -> None:
        if k16.shape[0] != 1:
            raise ModelError(f"paged caches hold one request, got batch {k16.shape[0]}")
        self._sequence.write(self._layer, self._length, k16, v16)
        self._length += k16.shape[2]

    def view(self) -> tuple[np.ndarray, np.ndarray]:
        return self._sequence.gather(self._layer, self._length)

    @property
    def length(self) -> int:
        return self._length


class SequenceKV:
    """One request's block table plus its per-layer paged caches.

    Created by :meth:`~repro.serve.kvpool.pool.KVPool.create_sequence`,
    possibly seeded with shared prefix blocks (``shared_tokens`` cached
    positions the request never recomputes).  The table is append-only
    from the writer's point of view; the only in-place mutation is the
    copy-on-write fork that replaces a shared block with a private copy
    the first time this request writes into it.
    """

    def __init__(
        self, pool: "KVPool", block_table: list[int], shared_tokens: int
    ) -> None:
        self.pool = pool
        self.block_table = block_table
        self.shared_tokens = shared_tokens
        self.caches = [PagedKVCache(self, layer) for layer in range(pool.n_layers)]
        self._released = False

    @property
    def length(self) -> int:
        """Positions written (layer 0 leads during a forward pass)."""
        return self.caches[0].length

    @property
    def capacity(self) -> int:
        return len(self.block_table) * self.pool.block_size

    def blocks_for_append(self, n_new: int) -> int:
        """Upper bound on fresh blocks appending ``n_new`` positions needs.

        Counts capacity growth plus one block when the first write
        would land in a shared block (the copy-on-write fork allocates
        a private copy while other owners keep the original).
        """
        size = self.pool.block_size
        start, end = self.length, self.length + n_new
        needed = max(0, -(-end // size) - len(self.block_table))
        if start < self.capacity and self.pool.allocator.is_shared(
            self.block_table[start // size]
        ):
            needed += 1
        return needed

    # -- write path -------------------------------------------------------

    def _ensure_writable(self, start: int, end: int) -> None:
        """Grow the table to ``end`` and privatize touched shared blocks."""
        size = self.pool.block_size
        while self.capacity < end:
            self.block_table.append(self.pool.take_block())
        allocator = self.pool.allocator
        for index in range(start // size, -(-end // size)):
            if allocator.is_shared(self.block_table[index]):
                self._fork(index)

    def _fork(self, index: int) -> None:
        """Copy-on-write: replace a shared block with a private copy."""
        old = self.block_table[index]
        new = self.pool.take_block()
        # A block carries every layer's K/V for its positions, so one
        # fork copies the whole position range across layers.
        self.pool.keys[:, new] = self.pool.keys[:, old]
        self.pool.values[:, new] = self.pool.values[:, old]
        self.pool.allocator.decref(old)
        self.block_table[index] = new
        self.pool.cow_forks += 1

    def write(self, layer: int, start: int, k16: np.ndarray, v16: np.ndarray) -> None:
        """Scatter ``(1, H, T, hd)`` float16 rows into blocks."""
        new_len = k16.shape[2]
        self._ensure_writable(start, start + new_len)
        size = self.pool.block_size
        position, offset = start, 0
        while offset < new_len:
            block = self.block_table[position // size]
            row = position % size
            count = min(size - row, new_len - offset)
            self.pool.keys[layer, block, :, row : row + count] = k16[
                0, :, offset : offset + count
            ]
            self.pool.values[layer, block, :, row : row + count] = v16[
                0, :, offset : offset + count
            ]
            position += count
            offset += count

    # -- read path --------------------------------------------------------

    def gather(self, layer: int, length: int) -> tuple[np.ndarray, np.ndarray]:
        """Contiguous float32 ``(1, H, length, hd)`` K/V history."""
        size = self.pool.block_size
        k_parts, v_parts = [], []
        remaining = length
        for block in self.block_table:
            if remaining <= 0:
                break
            rows = min(size, remaining)
            k_parts.append(self.pool.keys[layer, block, :, :rows])
            v_parts.append(self.pool.values[layer, block, :, :rows])
            remaining -= rows
        keys = np.concatenate(k_parts, axis=1)[None].astype(np.float32)
        values = np.concatenate(v_parts, axis=1)[None].astype(np.float32)
        return keys, values

    # -- teardown ---------------------------------------------------------

    def release(self) -> None:
        """Drop this sequence's references (blocks may live on, shared)."""
        if self._released:
            return
        for block in self.block_table:
            self.pool.allocator.decref(block)
        self.block_table = []
        self._released = True
