"""Block-table-backed KV caches: the paged counterpart of ``KVCache``.

A :class:`SequenceKV` is one request's view of the pool: an ordered
block table (shared across layers — a block holds every layer's K/V
for its token positions) plus one :class:`PagedKVCache` per layer that
plugs into the existing attention ``step`` / ``step_batch`` paths.
Writes scatter new positions into blocks (allocating or copy-on-write
forking as needed); reads gather the non-contiguous blocks back into
one contiguous history.  Stored bytes are identical to the unpaged
``KVCache`` — float16 rows, compressed per position — so paged decode
is bitwise identical to unpaged decode.

The gather is the decode hot path: every layer of every step reads a
request's whole history.  :meth:`SequenceKV.gather` therefore keeps a
persistent per-layer float32 scratch per sequence and extends it
incrementally — one vectorized fancy-index gather over the block table
covers exactly the positions appended since the last step, so a decode
step costs O(new tokens), not O(history).  Copy-on-write forks copy
bytes verbatim, so they never invalidate the scratch; a write below
the dequantized watermark (only possible through direct
:meth:`SequenceKV.write` calls, e.g. in tests) rolls the watermark
back.  :meth:`SequenceKV.gather_reference` keeps the original
per-block-loop gather as the parity oracle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ModelError
from repro.llm.attention import KVCache, active_scope, grow_buffer
from repro.serve.faults.injector import inject

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pool -> paged)
    from repro.serve.kvpool.pool import KVPool


class PagedKVCache(KVCache):
    """One layer's KV history stored in pool blocks.

    Drop-in for :class:`~repro.llm.attention.KVCache`: ``append`` /
    ``append_precompressed`` write through the sequence's block table
    and return the gathered float32 history, and ``compress`` /
    ``compression_key`` delegate to the pool's codec so the batched
    decode path can precompress a whole batch in one call exactly as it
    does for unpaged caches.
    """

    __slots__ = ("_sequence", "_layer", "_length")

    def __init__(self, sequence: "SequenceKV", layer: int) -> None:
        # Initialize the base storage slots (left empty — rows live in
        # pool blocks) so the inherited keys/values properties keep
        # returning None, as the pre-paged cache did for no history.
        super().__init__()
        self._sequence = sequence
        self._layer = layer
        self._length = sequence.shared_tokens

    def compress(self, tensor: np.ndarray) -> np.ndarray:
        # Attribution caveat: a stacked-group compress call reaches
        # here through one member cache on behalf of the whole group;
        # the owner id is still the right attribution because the
        # engine rolls the entire step back on any mid-forward fault
        # before quarantining/retrying the attributed request.
        inject("codec.encode", self._sequence.owner)
        return self._sequence.codec_for(self._layer).compress(tensor)

    def compression_key(self) -> tuple:
        return self._sequence.codec_for(self._layer).compression_key()

    def _store(self, k16: np.ndarray, v16: np.ndarray) -> None:
        if k16.shape[0] != 1:
            raise ModelError(f"paged caches hold one request, got batch {k16.shape[0]}")
        self._sequence.write(self._layer, self._length, k16, v16)
        self._length += k16.shape[2]

    def view(self) -> tuple[np.ndarray, np.ndarray]:
        return self._sequence.gather(self._layer, self._length)

    @property
    def length(self) -> int:
        return self._length

    def truncate(self, length: int) -> None:
        """Roll this layer back to ``length`` positions (fault rollback).

        Positions beyond ``length`` stay in their blocks but are
        logically dropped; the sequence-level gather watermark is
        clamped so re-appended positions are re-dequantized.  Block
        trimming is the sequence's job (:meth:`SequenceKV.rollback`).
        """
        if not 0 <= length <= self._length:
            raise ModelError(
                f"truncate({length}) outside stored length {self._length}"
            )
        self._length = length
        deq = self._sequence._deq_len
        deq[self._layer] = min(deq[self._layer], length)


class SequenceKV:
    """One request's block table plus its per-layer paged caches.

    Created by :meth:`~repro.serve.kvpool.pool.KVPool.create_sequence`,
    possibly seeded with shared prefix blocks (``shared_tokens`` cached
    positions the request never recomputes).  The table is append-only
    from the writer's point of view; the only in-place mutation is the
    copy-on-write fork that replaces a shared block with a private copy
    the first time this request writes into it.
    """

    __slots__ = (
        "pool",
        "block_table",
        "shared_tokens",
        "caches",
        "codecs",
        "owner",
        "_released",
        "_deq_k",
        "_deq_v",
        "_deq_len",
    )

    def __init__(
        self,
        pool: "KVPool",
        block_table: list[int],
        shared_tokens: int,
        codecs: "list[KVCache] | None" = None,
    ) -> None:
        self.pool = pool
        self.block_table = block_table
        self.shared_tokens = shared_tokens
        #: Per-layer write-side codec overrides for requests whose KV
        #: format differs from the pool's engine-wide default; None
        #: delegates every layer to ``pool.codec``.  A sequence with
        #: overrides stores bytes other sequences cannot interpret, so
        #: the pool refuses to register its blocks for prefix sharing.
        if codecs is not None and len(codecs) != pool.n_layers:
            raise ModelError(
                f"per-layer codecs cover {len(codecs)} layers, pool has "
                f"{pool.n_layers}"
            )
        self.codecs = codecs
        #: Owning request id for fault attribution; set by the engine
        #: when it binds this sequence to a request, None for
        #: free-standing sequences (tests, benchmarks).
        self.owner: int | None = None
        self.caches = [PagedKVCache(self, layer) for layer in range(pool.n_layers)]
        self._released = False
        # Per-layer float32 gather scratch: dequantized history prefix
        # [0, _deq_len[layer]) lives in _deq_k/_deq_v[layer], shaped
        # (heads, capacity, head_dim) and grown by doubling.
        self._deq_k: list[np.ndarray | None] = [None] * pool.n_layers
        self._deq_v: list[np.ndarray | None] = [None] * pool.n_layers
        self._deq_len = [0] * pool.n_layers

    def codec_for(self, layer: int) -> KVCache:
        """The write-side codec governing one layer of this sequence."""
        if self.codecs is not None:
            return self.codecs[layer]
        if self.pool.codecs is not None:
            return self.pool.codecs[layer]
        return self.pool.codec

    @property
    def length(self) -> int:
        """Positions written (layer 0 leads during a forward pass)."""
        return self.caches[0].length

    @property
    def capacity(self) -> int:
        return len(self.block_table) * self.pool.block_size

    def blocks_for_append(self, n_new: int) -> int:
        """Upper bound on fresh blocks appending ``n_new`` positions needs.

        Counts capacity growth plus one block when the first write
        would land in a shared block (the copy-on-write fork allocates
        a private copy while other owners keep the original).
        """
        size = self.pool.block_size
        start, end = self.length, self.length + n_new
        needed = max(0, -(-end // size) - len(self.block_table))
        if start < self.capacity and self.pool.allocator.is_shared(
            self.block_table[start // size]
        ):
            needed += 1
        return needed

    # -- write path -------------------------------------------------------

    def _ensure_writable(self, start: int, end: int) -> None:
        """Grow the table to ``end`` and privatize touched shared blocks."""
        size = self.pool.block_size
        missing = -(-end // size) - len(self.block_table)
        if missing > 0:
            self.block_table.extend(self.pool.take_blocks(missing))
        allocator = self.pool.allocator
        for index in range(start // size, -(-end // size)):
            if allocator.is_shared(self.block_table[index]):
                self._fork(index)

    def _fork(self, index: int) -> None:
        """Copy-on-write: replace a shared block with a private copy."""
        old = self.block_table[index]
        new = self.pool.take_block()
        # A block carries every layer's K/V for its positions, so one
        # fork copies the whole position range across layers.
        self.pool.keys[:, new] = self.pool.keys[:, old]
        self.pool.values[:, new] = self.pool.values[:, old]
        self.pool.allocator.decref(old)
        self.block_table[index] = new
        self.pool.cow_forks += 1

    def write(self, layer: int, start: int, k16: np.ndarray, v16: np.ndarray) -> None:
        """Scatter ``(1, H, T, hd)`` float16 rows into blocks."""
        new_len = k16.shape[2]
        self._ensure_writable(start, start + new_len)
        if start < self._deq_len[layer]:
            # Rewriting already-dequantized positions (direct write()
            # callers only; the engine path is append-only): roll the
            # scratch watermark back so gather re-reads them.
            self._deq_len[layer] = start
        size = self.pool.block_size
        position, offset = start, 0
        while offset < new_len:
            block = self.block_table[position // size]
            row = position % size
            count = min(size - row, new_len - offset)
            self.pool.keys[layer, block, :, row : row + count] = k16[
                0, :, offset : offset + count
            ]
            self.pool.values[layer, block, :, row : row + count] = v16[
                0, :, offset : offset + count
            ]
            position += count
            offset += count

    # -- read path --------------------------------------------------------

    def gather(self, layer: int, length: int) -> tuple[np.ndarray, np.ndarray]:
        """Contiguous float32 ``(1, H, length, hd)`` K/V history.

        Incremental: positions below the layer's dequant watermark are
        served straight from the persistent scratch; the tail is
        fetched with one fancy-index gather over the block table
        (``O(new positions)``, including the table slice converted —
        never the whole table), not a per-block Python loop over the
        whole history.
        """
        if length < 1:
            raise ModelError("gather needs at least one cached position")
        inject("paged.gather", self.owner)
        kept = self._deq_len[layer]
        k = self._deq_k[layer]
        v = self._deq_v[layer]
        if k is None or k.shape[1] < length:
            capacity = max(
                length, self.pool.block_size, 2 * (0 if k is None else k.shape[1])
            )
            shape = (self.pool.keys.shape[2], capacity, self.pool.keys.shape[4])
            k = grow_buffer(k, shape, 1, kept, np.float32)
            v = grow_buffer(v, shape, 1, kept, np.float32)
            self._deq_k[layer] = k
            self._deq_v[layer] = v
        if kept < length:
            size = self.pool.block_size
            positions = np.arange(kept, length)
            first = kept // size
            table = np.asarray(
                self.block_table[first : -(-length // size)], dtype=np.intp
            )
            blocks = table[positions // size - first]
            rows = positions % size
            # (tail, H, hd) fancy gather, dequantized on assignment.
            k[:, kept:length] = self.pool.keys[layer, blocks, :, rows].transpose(
                1, 0, 2
            )
            v[:, kept:length] = self.pool.values[layer, blocks, :, rows].transpose(
                1, 0, 2
            )
            active_scope().hot.dequant_bytes += 2 * k[:, kept:length].nbytes
            self._deq_len[layer] = length
        keys = k[None, :, :length]
        values = v[None, :, :length]
        # Read-only views: these alias the persistent scratch (the old
        # gather returned private copies).
        keys.setflags(write=False)
        values.setflags(write=False)
        return keys, values

    def gather_reference(
        self, layer: int, length: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """The pre-optimization gather: per-block loop + concatenate.

        Re-materializes and re-dequantizes the entire history on every
        call — kept as the bitwise oracle for the growth property tests
        and the decode hot-path benchmark.
        """
        size = self.pool.block_size
        k_parts, v_parts = [], []
        remaining = length
        for block in self.block_table:
            if remaining <= 0:
                break
            rows = min(size, remaining)
            k_parts.append(self.pool.keys[layer, block, :, :rows])
            v_parts.append(self.pool.values[layer, block, :, :rows])
            remaining -= rows
        keys = np.concatenate(k_parts, axis=1)[None].astype(np.float32)
        values = np.concatenate(v_parts, axis=1)[None].astype(np.float32)
        scope = active_scope()
        scope.hot.copy_bytes += (keys.nbytes + values.nbytes) // 2
        scope.hot.dequant_bytes += keys.nbytes + values.nbytes
        return keys, values

    # -- teardown ---------------------------------------------------------

    def rollback(self, length: int) -> None:
        """Roll the whole sequence back to ``length`` positions.

        The engine's batch-level fault recovery: every layer cache is
        truncated to ``length`` (layers the aborted forward never
        reached are already there) and blocks past the kept range are
        returned to the pool.  Copy-on-write forks taken during the
        aborted step are kept — a fork copies its block's bytes
        verbatim, so the kept prefix is bitwise intact and replaying
        the dropped positions reproduces the pre-fault bytes exactly.
        """
        if self._released:
            raise ModelError("rollback() on a released sequence")
        if length < self.shared_tokens:
            raise ModelError(
                f"rollback({length}) below the shared prefix "
                f"({self.shared_tokens} tokens)"
            )
        for cache in self.caches:
            if cache.length > length:
                cache.truncate(length)
        size = self.pool.block_size
        keep = -(-length // size)
        for block in self.block_table[keep:]:
            self.pool.allocator.decref(block)
        del self.block_table[keep:]

    def release(self) -> None:
        """Drop this sequence's references (blocks may live on, shared)."""
        if self._released:
            return
        for block in self.block_table:
            self.pool.allocator.decref(block)
        self.block_table = []
        self._released = True
        # Free the gather scratch with the residency it mirrors.
        self._deq_k = [None] * self.pool.n_layers
        self._deq_v = [None] * self.pool.n_layers
        self._deq_len = [0] * self.pool.n_layers
