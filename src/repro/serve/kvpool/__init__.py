"""Paged KV-cache memory subsystem for the serving engine.

vLLM-style KV paging over the numpy substrate: a fixed pool of
physical blocks (:class:`~repro.serve.kvpool.pool.KVPool`) managed by
a refcounted free-list allocator with copy-on-write
(:class:`~repro.serve.kvpool.allocator.BlockAllocator`), block-backed
per-request caches that plug into the existing attention paths
(:class:`~repro.serve.kvpool.paged.PagedKVCache` /
:class:`~repro.serve.kvpool.paged.SequenceKV`), a radix-trie prefix
cache that maps shared prompt prefixes onto shared physical blocks
(:class:`~repro.serve.kvpool.prefix.PrefixCache`), and a preemption
policy for recompute-on-resume eviction under pool pressure
(:class:`~repro.serve.kvpool.preempt.Preemptor`).

Enable it per engine with ``EngineConfig(kv_pool=True)``; see
``src/repro/serve/README.md`` for sizing and policy notes.
"""

from repro.serve.kvpool.allocator import BlockAllocator, OutOfBlocksError
from repro.serve.kvpool.paged import PagedKVCache, SequenceKV
from repro.serve.kvpool.pool import DEFAULT_BLOCK_SIZE, KVPool, PoolPlanner
from repro.serve.kvpool.preempt import Preemptor
from repro.serve.kvpool.prefix import PrefixCache

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "BlockAllocator",
    "KVPool",
    "OutOfBlocksError",
    "PagedKVCache",
    "PoolPlanner",
    "Preemptor",
    "PrefixCache",
    "SequenceKV",
]
