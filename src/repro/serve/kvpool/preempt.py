"""Preemption policy: who loses KV residency under pool pressure.

When a step needs more blocks than the pool can free (even after
reclaiming unreferenced prefix-cache blocks), some resident request
must give its blocks back.  The :class:`Preemptor` picks the victims
from every block holder — running decodes *and* half-prefilled chunked
prompts — and the engine evicts them with *recompute-on-resume*
semantics.  A decoding victim keeps its emitted tokens and RNG state,
returns to the waiting queue, and on re-admission replays its exact
original call pattern (whole-prompt prefill, then one single-token
step per decoded token) so the rebuilt cache, and every later token,
is bitwise identical to an uninterrupted run.  A half-prefilled victim
has emitted nothing yet; it simply drops its partial cache and
restarts its chunked prefill from scratch (re-mapping any prompt
blocks the prefix cache still holds).

Evicting the *latest* arrival first keeps the policy FCFS-fair: the
oldest requests — the ones closest to finishing, holding the most
already-paid-for KV — are the last to lose their residency, so
admission pressure never deadlocks and early requests always drain.
"""

from __future__ import annotations

from repro.errors import ModelError
from repro.serve.request import RequestState


class Preemptor:
    """Latest-arrival-first victim selection (lowest priority = newest)."""

    name = "latest-arrival"

    def select_victim(self, candidates: list[RequestState]) -> RequestState:
        """Pick the running request to evict from ``candidates``."""
        if not candidates:
            raise ModelError("no preemption candidates: pool sizing bug")
        return max(
            candidates,
            key=lambda state: (state.arrival_step, state.request.request_id),
        )
