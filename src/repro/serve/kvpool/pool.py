"""The paged KV pool: physical storage, allocation, sharing, planning.

One :class:`KVPool` turns KV memory into a schedulable resource: a
fixed number of physical blocks (each holding ``block_size`` token
positions of every layer's K/V in float16), a refcounted
:class:`~repro.serve.kvpool.allocator.BlockAllocator` over them, and an
optional :class:`~repro.serve.kvpool.prefix.PrefixCache` that lets
requests sharing a prompt prefix map the same blocks.  The engine
plans admission against the pool's free-block budget (through
:class:`PoolPlanner`) and preempts running requests when decode growth
would otherwise exhaust it.

The default block size is 64 — the Anda group size, so one block row
is exactly one compression group along the time axis.  Bitwise
identity with the unpaged path does not actually require alignment
(Anda groups along the head dimension, per position), and the parity
tests pin that down for unaligned sizes too; 64 keeps block granules
matched to the hardware word the rest of the stack models.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ModelError
from repro.llm.attention import KVCache
from repro.llm.config import ModelConfig
from repro.serve.faults.injector import inject
from repro.serve.kvpool.allocator import BlockAllocator, OutOfBlocksError
from repro.serve.kvpool.paged import SequenceKV
from repro.serve.kvpool.prefix import PrefixCache
from repro.serve.scheduler import KVBlockPlanner

if TYPE_CHECKING:
    from repro.serve.request import RequestState

#: Default positions per block: the Anda group size / hardware word.
DEFAULT_BLOCK_SIZE = 64


class KVPool:
    """Fixed-size paged KV storage shared by all of an engine's requests.

    Args:
        config: model architecture (layer/head geometry of the blocks).
        num_blocks: physical blocks in the pool.
        block_size: token positions per block.
        codec: write-side compressor — an unpaged cache instance
            (:class:`~repro.llm.attention.KVCache` for FP16,
            :class:`~repro.llm.kv_quant.AndaKVCache` for Anda) whose
            ``compress`` / ``compression_key`` the paged caches
            delegate to, keeping stored bytes identical to the unpaged
            path.
        codecs: per-layer default codecs for a pool whose engine runs a
            per-layer :class:`~repro.llm.kv_quant.KVFormat`; overrides
            ``codec`` layer-by-layer for every sequence that does not
            carry its own per-request overrides.
        enable_prefix_cache: share prompt-prefix blocks across requests.
    """

    def __init__(
        self,
        config: ModelConfig,
        num_blocks: int,
        block_size: int = DEFAULT_BLOCK_SIZE,
        codec: KVCache | None = None,
        codecs: list[KVCache] | None = None,
        enable_prefix_cache: bool = True,
    ) -> None:
        if block_size < 1:
            raise ModelError(f"block_size must be >= 1, got {block_size}")
        if codecs is not None and len(codecs) != config.n_layers:
            raise ModelError(
                f"pool codecs must cover all {config.n_layers} layers, "
                f"got {len(codecs)}"
            )
        self.n_layers = config.n_layers
        self.block_size = block_size
        self.num_blocks = num_blocks
        self.codec = codec if codec is not None else KVCache()
        self.codecs = codecs
        self.allocator = BlockAllocator(num_blocks)
        shape = (
            config.n_layers,
            num_blocks,
            config.n_heads,
            block_size,
            config.head_dim,
        )
        self.keys = np.zeros(shape, dtype=np.float16)
        self.values = np.zeros(shape, dtype=np.float16)
        self.prefix_cache = (
            PrefixCache(self.allocator, block_size) if enable_prefix_cache else None
        )
        self.cow_forks = 0  # lifetime copy-on-write fork counter
        self._clock = 0  # recency clock for prefix-cache LRU

    # -- capacity queries -------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return self.allocator.free_blocks

    @property
    def reclaimable_blocks(self) -> int:
        """Cache-only blocks evictable under pressure (refcount 1)."""
        if self.prefix_cache is None:
            return 0
        return self.prefix_cache.reclaimable_blocks()

    @property
    def evicted_blocks(self) -> int:
        return 0 if self.prefix_cache is None else self.prefix_cache.evicted_blocks

    def blocks_for_tokens(self, tokens: int) -> int:
        """Blocks a private sequence of ``tokens`` positions occupies."""
        return -(-tokens // self.block_size)

    def leaked_blocks(self) -> int:
        """Blocks still referenced beyond the prefix cache's own hold.

        Once every live sequence has released — finish, preemption
        rollback, or a client ``abort()`` — each pool block must be
        either on the free list or a *reclaimable* (refcount-1)
        prefix-cache resident.  Two leak classes are counted: blocks
        held by no cache node at all (a sequence that never released),
        and cache residents stuck at refcount > 1 (a release path that
        forgot a decref — such a block can never be evicted, so it is
        leaked even though the cache still names it).  The abort test
        suite and the serving benchmark's abort workload assert this
        is zero after drain.
        """
        cached = 0
        stuck = 0
        if self.prefix_cache is not None:
            cached = len(self.prefix_cache)
            stuck = cached - self.prefix_cache.reclaimable_blocks()
        return self.allocator.used_blocks - cached + stuck

    def max_sequence_blocks(self) -> int:
        """Largest block footprint one request may claim (admission cap).

        One block of slack is reserved for the copy-on-write fork a
        prefix-sharing request may need while the donor block is still
        referenced elsewhere.
        """
        return self.num_blocks - 1

    # -- allocation -------------------------------------------------------

    def take_block(self) -> int:
        """Allocate one block, reclaiming LRU prefix-cache blocks if dry."""
        # Attribution comes from the engine's ambient request scope
        # (set around per-request cache setup); mid-forward growth
        # allocations probe unattributed and fault batch-level.
        inject("pool.allocate")
        while self.allocator.free_blocks == 0:
            if self.prefix_cache is None or self.prefix_cache.evict_lru() is None:
                raise OutOfBlocksError(
                    f"KV pool exhausted: {self.num_blocks} blocks all "
                    "referenced by live requests; the scheduler should have "
                    "preempted before this allocation"
                )
        return self.allocator.allocate()

    def take_blocks(self, count: int) -> list[int]:
        """Allocate ``count`` blocks at once (chunk-write growth).

        Same eviction-on-dry behavior as :meth:`take_block`, but
        all-or-nothing: if the pool runs dry mid-way, the blocks
        already taken are returned to the free list before the error
        propagates, so a failed multi-block grow leaks nothing.
        """
        blocks: list[int] = []
        try:
            for _ in range(count):
                blocks.append(self.take_block())
        except OutOfBlocksError:
            for block in blocks:
                self.allocator.decref(block)
            raise
        return blocks

    # -- sequence lifecycle -----------------------------------------------

    def _shared_cap(self, prompt_tokens: np.ndarray, reserve_logits: bool) -> int:
        # A fresh request must recompute at least its final prompt
        # position to produce first-token logits; a resumed request
        # already holds its first tokens, so its whole prompt may hit.
        length = int(len(prompt_tokens))
        return max(0, length - 1) if reserve_logits else length

    def peek_shared(
        self,
        prompt_tokens: np.ndarray,
        reserve_logits: bool = True,
        shareable: bool = True,
    ) -> int:
        """Prefix-cache hit length (tokens) without taking references."""
        if self.prefix_cache is None or not shareable:
            return 0
        self._clock += 1
        cap = self._shared_cap(prompt_tokens, reserve_logits)
        return self.prefix_cache.peek(prompt_tokens, cap, self._clock)

    def create_sequence(
        self,
        prompt_tokens: np.ndarray,
        reserve_logits: bool = True,
        codecs: list[KVCache] | None = None,
        shareable: bool = True,
    ) -> SequenceKV:
        """New request view, seeded with any cached prompt prefix.

        ``codecs`` installs per-layer write-side codec overrides for a
        request whose KV format differs from the pool default;
        ``shareable=False`` opts the sequence out of prefix-cache
        matching — cached blocks hold the *default* format's bytes,
        which a different format must neither read nor contribute to.
        """
        blocks: list[int] = []
        shared_tokens = 0
        if self.prefix_cache is not None and shareable:
            self._clock += 1
            cap = self._shared_cap(prompt_tokens, reserve_logits)
            blocks, shared_tokens = self.prefix_cache.match(
                prompt_tokens, cap, self._clock
            )
        return SequenceKV(self, list(blocks), shared_tokens, codecs=codecs)

    def register_prefix(self, sequence: SequenceKV, prompt_tokens: np.ndarray) -> int:
        """Cache a prefilled prompt's full blocks for future sharing.

        Sequences carrying per-layer codec overrides are refused (they
        return 0 registered blocks): their bytes are not what the
        pool's default codec would have written, so a later sharer
        would silently read the wrong format.
        """
        if self.prefix_cache is None or sequence.codecs is not None:
            return 0
        self._clock += 1
        return self.prefix_cache.insert(
            prompt_tokens, sequence.block_table, self._clock
        )

    # -- scheduler integration --------------------------------------------

    def prefill_block_cost(
        self,
        prompt_tokens: np.ndarray,
        total_positions: int,
        reserve_logits: bool = True,
        shareable: bool = True,
    ) -> int:
        """Pool-budget cost (blocks) of admitting one prefill.

        ``total_positions`` is the sequence length after the prefill
        step (prompt plus any replayed decode tokens on resume).  The
        cost counts *fresh* blocks beyond the shared prefix, one slack
        block for a copy-on-write fork when the hit ends mid-block, and
        — crucially — every matched block the admission would *pin*:
        a cache-only (refcount 1) block counted in the reclaimable
        budget stops being reclaimable the moment this request maps it,
        so it must be charged against the same budget.

        ``shareable=False`` (a request whose KV format differs from the
        pool default) prices the prefill with no prefix sharing at all
        — its full fresh-block footprint — matching what
        :meth:`create_sequence` will actually allocate for it.
        """
        return self._admission_cost(
            prompt_tokens, total_positions, reserve_logits, shareable
        )

    def chunk_block_cost(
        self,
        prompt_tokens: np.ndarray,
        chunk_tokens: int,
        shareable: bool = True,
    ) -> int:
        """Pool-budget cost (blocks) of a fresh request's *first chunk*.

        Chunked admissions only commit the chunk's footprint: blocks to
        hold the positions written this step (beyond any shared
        prefix), plus the same CoW-slack and pinning charges as a full
        prefill.  Later chunks of a half-prefilled request are costed
        by the planner as plain cache growth
        (:meth:`SequenceKV.blocks_for_append`).
        """
        shared = self.peek_shared(
            prompt_tokens, reserve_logits=True, shareable=shareable
        )
        end = min(int(len(prompt_tokens)), shared + chunk_tokens)
        return self._admission_cost(
            prompt_tokens, end, reserve_logits=True, shareable=shareable
        )

    def _admission_cost(
        self,
        prompt_tokens: np.ndarray,
        total_positions: int,
        reserve_logits: bool,
        shareable: bool = True,
    ) -> int:
        shared_blocks: list[int] = []
        shared = 0
        if self.prefix_cache is not None and shareable:
            self._clock += 1
            cap = self._shared_cap(prompt_tokens, reserve_logits)
            shared_blocks, shared = self.prefix_cache.peek_blocks(
                prompt_tokens, cap, self._clock
            )
        fresh = max(0, self.blocks_for_tokens(total_positions) - len(shared_blocks))
        if shared % self.block_size:
            fresh += 1
        pinned = sum(
            1 for block in shared_blocks if self.allocator.refcount(block) == 1
        )
        return fresh + pinned

    def planner(self, running: list[RequestState]) -> "PoolPlanner":
        return PoolPlanner(self, running)


class PoolPlanner(KVBlockPlanner):
    """Adapts one pool + the running set to the scheduler's block budget.

    The budget offered to admissions is what is free or reclaimable
    *after* reserving the running requests' decode growth — running
    requests are never starved of blocks by new admissions.
    """

    def __init__(self, pool: KVPool, running: list[RequestState]) -> None:
        self._pool = pool
        decode_growth = sum(
            state.kv.blocks_for_append(1) for state in running if state.kv is not None
        )
        self._available = pool.free_blocks + pool.reclaimable_blocks - decode_growth

    def available_blocks(self) -> int:
        return self._available

    def prefill_blocks(self, state: RequestState) -> int:
        return self._pool.prefill_block_cost(
            state.request.prompt,
            state.prefill_tokens,
            reserve_logits=not state.generated,
            shareable=not getattr(state, "kv_private", False),
        )

    def chunk_blocks(self, state: RequestState, tokens: int) -> int:
        if state.kv is not None:
            # Half-prefilled: the chunk is plain growth of its cache.
            return state.kv.blocks_for_append(tokens)
        return self._pool.chunk_block_cost(
            state.request.prompt,
            tokens,
            shareable=not getattr(state, "kv_private", False),
        )

    def admit(self, blocks_needed: int) -> None:
        self._available -= blocks_needed
