"""Fixed-size physical block allocator for the paged KV pool.

The allocator manages *block ids* only — the :class:`~repro.serve.
kvpool.pool.KVPool` owns the physical K/V storage those ids index.
Blocks are reference counted so one physical block can back many
logical owners at once: a prefix-cache entry, the request that wrote
it, and any number of requests sharing that prompt prefix.  Frees are
deferred until the last reference drops, and copy-on-write forks keep
writers from ever mutating a block another owner can still read.
"""

from __future__ import annotations

from repro.errors import ModelError


class OutOfBlocksError(ModelError):
    """The pool has no free block and nothing left to reclaim."""


class BlockAllocator:
    """Free-list allocator with reference counts over a fixed pool.

    Invariants (pinned by the property tests):

    * every block id is either on the free list (refcount 0) or held
      (refcount >= 1) — never both;
    * ``free_blocks + used_blocks == num_blocks`` at all times;
    * a block returns to the free list exactly when its refcount drops
      to zero.

    Args:
        num_blocks: physical blocks in the pool.
    """

    def __init__(self, num_blocks: int) -> None:
        if num_blocks < 1:
            raise ModelError(f"num_blocks must be >= 1, got {num_blocks}")
        self.num_blocks = num_blocks
        # LIFO free list: recently freed blocks are reused first, which
        # keeps the working set compact under churn.
        self._free: list[int] = list(range(num_blocks - 1, -1, -1))
        self._refcounts: list[int] = [0] * num_blocks

    # -- queries ----------------------------------------------------------

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def used_blocks(self) -> int:
        return self.num_blocks - len(self._free)

    def refcount(self, block_id: int) -> int:
        self._check_id(block_id)
        return self._refcounts[block_id]

    def is_shared(self, block_id: int) -> bool:
        """True when more than one owner references the block (CoW gate)."""
        return self.refcount(block_id) > 1

    # -- lifecycle --------------------------------------------------------

    def allocate(self) -> int:
        """Take one free block (refcount 1); raises when exhausted."""
        if not self._free:
            raise OutOfBlocksError(
                f"KV pool exhausted: all {self.num_blocks} blocks are in use"
            )
        block_id = self._free.pop()
        self._refcounts[block_id] = 1
        return block_id

    def incref(self, block_id: int) -> None:
        """Add an owner to a held block (prefix sharing, cache pinning)."""
        self._check_held(block_id)
        self._refcounts[block_id] += 1

    def decref(self, block_id: int) -> bool:
        """Drop one owner; returns True when the block became free."""
        self._check_held(block_id)
        self._refcounts[block_id] -= 1
        if self._refcounts[block_id] == 0:
            self._free.append(block_id)
            return True
        return False

    # -- helpers ----------------------------------------------------------

    def _check_id(self, block_id: int) -> None:
        if not 0 <= block_id < self.num_blocks:
            raise ModelError(f"block id {block_id} out of range [0, {self.num_blocks})")

    def _check_held(self, block_id: int) -> None:
        self._check_id(block_id)
        if self._refcounts[block_id] == 0:
            raise ModelError(f"block {block_id} is not allocated")
