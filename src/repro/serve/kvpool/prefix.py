"""Radix-trie prefix cache mapping prompt prefixes to physical blocks.

Requests that share a prompt prefix can map the *same* physical KV
blocks instead of recomputing and re-storing them: a system prompt
prefilled once is read by every request that starts with it.  The trie
is block-granular — each edge is the token tuple of one full block —
so a match covers whole blocks; the pool additionally shares the last
matched block *partially* (copy-on-write protects it) when the sharing
cap cuts mid-block.

The cache holds one allocator reference per trie node, which keeps a
finished request's prompt blocks resident after the request itself is
freed.  Under pool pressure those cache-only blocks (refcount 1) are
reclaimed leaf-first in LRU order — a parent block is never evicted
while a child below it survives, so every path from the root always
describes contiguous, resident prefix KV.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ModelError
from repro.serve.kvpool.allocator import BlockAllocator


@dataclass(slots=True)
class TrieNode:
    """One full block of a cached prompt prefix."""

    block_id: int
    last_use: int = 0
    parent: "TrieNode | None" = None
    children: dict[tuple, "TrieNode"] = field(default_factory=dict)


class PrefixCache:
    """Block-granular radix trie over cached prompt prefixes.

    Args:
        allocator: the pool's allocator; the cache holds one reference
            per node so cached blocks survive their writer.
        block_size: token positions per block (the chunking unit).
    """

    def __init__(self, allocator: BlockAllocator, block_size: int) -> None:
        if block_size < 1:
            raise ModelError(f"block_size must be >= 1, got {block_size}")
        self._allocator = allocator
        self._block_size = block_size
        self._root = TrieNode(block_id=-1)  # sentinel, holds no block
        self._nodes: dict[int, TrieNode] = {}  # block_id -> node
        self.evicted_blocks = 0  # lifetime eviction counter

    def __len__(self) -> int:
        return len(self._nodes)

    def _chunks(self, tokens: np.ndarray) -> Iterator[tuple[int, ...]]:
        """Full-block token tuples, lazily — walks usually break early."""
        size = self._block_size
        for i in range(len(tokens) // size):
            yield tuple(int(t) for t in tokens[i * size : (i + 1) * size])

    # -- lookup -----------------------------------------------------------

    def _walk(self, tokens: np.ndarray, clock: int) -> list[TrieNode]:
        node = self._root
        path: list[TrieNode] = []
        for chunk in self._chunks(tokens):
            child = node.children.get(chunk)
            if child is None:
                break
            child.last_use = clock  # refresh recency even on peek, so a
            path.append(child)  # planned match is evicted last
            node = child
        return path

    def peek(self, tokens: np.ndarray, max_tokens: int, clock: int) -> int:
        """Shareable prefix length (tokens) without taking references."""
        return self.peek_blocks(tokens, max_tokens, clock)[1]

    def peek_blocks(
        self, tokens: np.ndarray, max_tokens: int, clock: int
    ) -> tuple[list[int], int]:
        """Like :meth:`match` but without taking references (planning)."""
        path = self._walk(tokens, clock)
        shared_tokens = min(len(path) * self._block_size, max_tokens)
        if shared_tokens <= 0:
            return [], 0
        keep = -(-shared_tokens // self._block_size)
        return [node.block_id for node in path[:keep]], shared_tokens

    def match(
        self, tokens: np.ndarray, max_tokens: int, clock: int
    ) -> tuple[list[int], int]:
        """Longest cached prefix of ``tokens``, capped at ``max_tokens``.

        Returns ``(block_ids, shared_tokens)`` with one allocator
        reference taken per returned block (the caller owns them).  The
        final block may be only partially covered by ``shared_tokens``
        when the cap cuts mid-block; the caller's first write into it
        must copy-on-write.
        """
        path = self._walk(tokens, clock)
        shared_tokens = min(len(path) * self._block_size, max_tokens)
        if shared_tokens <= 0:
            return [], 0
        keep = -(-shared_tokens // self._block_size)  # ceil division
        blocks = [node.block_id for node in path[:keep]]
        for block_id in blocks:
            self._allocator.incref(block_id)
        return blocks, shared_tokens

    # -- insertion --------------------------------------------------------

    def insert(self, tokens: np.ndarray, block_table: list[int], clock: int) -> int:
        """Register a prompt's full blocks; returns blocks newly cached.

        Walks the trie along the prompt's full-block chunks, reusing
        existing nodes (first writer wins — a duplicate prompt does not
        replace the cached block) and adding nodes backed by the
        request's own blocks where the path runs out.  Each new node
        takes one allocator reference owned by the cache.
        """
        full = len(tokens) // self._block_size
        if full > len(block_table):
            raise ModelError(
                f"prompt spans {full} full blocks but the table holds "
                f"{len(block_table)}"
            )
        node = self._root
        added = 0
        for index, chunk in enumerate(self._chunks(tokens)):
            child = node.children.get(chunk)
            if child is None:
                block_id = block_table[index]
                if block_id in self._nodes:
                    # One physical block cannot sit at two trie
                    # positions; stop extending this path.
                    break
                child = TrieNode(block_id=block_id, parent=node)
                node.children[chunk] = child
                self._nodes[block_id] = child
                self._allocator.incref(block_id)
                added += 1
            child.last_use = clock
            node = child
        return added

    # -- reclamation ------------------------------------------------------

    def _evictable(self) -> list[TrieNode]:
        """Leaf nodes whose block only the cache still references."""
        return [
            node
            for node in self._nodes.values()
            if not node.children and self._allocator.refcount(node.block_id) == 1
        ]

    def reclaimable_blocks(self) -> int:
        """Blocks the cache could release under pressure (refcount 1).

        Prefix sharing increfs a whole root path, so refcounts are
        monotone non-increasing down the trie: every refcount-1 node is
        transitively reachable through refcount-1 ancestors and will be
        freed leaf-first.
        """
        return sum(
            1
            for node in self._nodes.values()
            if self._allocator.refcount(node.block_id) == 1
        )

    def evict_lru(self) -> int | None:
        """Free the least-recently-used evictable leaf; returns its id."""
        candidates = self._evictable()
        if not candidates:
            return None
        victim = min(candidates, key=lambda node: (node.last_use, node.block_id))
        self._detach(victim)
        self._allocator.decref(victim.block_id)
        self.evicted_blocks += 1
        return victim.block_id

    def _detach(self, node: TrieNode) -> None:
        assert node.parent is not None
        for chunk, child in list(node.parent.children.items()):
            if child is node:
                del node.parent.children[chunk]
                break
        del self._nodes[node.block_id]
