"""Streaming request handles and structured per-step outputs.

The pre-redesign engine was fire-and-forget: ``submit`` returned a bare
id and tokens only became visible when ``drain()`` returned the
finished batch.  This module is the observable half of the new front
end:

* every :meth:`Engine.step` returns a :class:`StepOutputs` — the step's
  :class:`~repro.serve.metrics.StepReport` plus one :class:`TokenDelta`
  per token emitted that step, so callers see tokens the step they are
  produced (per-request TTFT falls straight out of the first delta);
* every :meth:`Engine.submit` returns a :class:`RequestHandle` — the
  client's view of one in-flight request, with incremental token
  iteration (:meth:`RequestHandle.tokens`), :meth:`~RequestHandle.status`,
  a blocking :meth:`~RequestHandle.result`, and
  :meth:`~RequestHandle.abort` (cancel and release KV residency).

Handles drive the engine cooperatively: iterating tokens or demanding a
result steps the engine until the request progresses, so one handle can
be consumed while other requests keep decoding in the same steps —
continuous batching observed one request at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator
from typing import TYPE_CHECKING

from repro.errors import ModelError, RequestAbortedError, RequestFailedError
from repro.serve.metrics import StepReport
from repro.serve.request import CompletedRequest, RequestState, RequestStatus

if TYPE_CHECKING:  # pragma: no cover - engine imports this module
    from repro.serve.engine import Engine


@dataclass(frozen=True, slots=True)
class TokenDelta:
    """One token, the step it was emitted.

    ``slots=True``: one delta is allocated per emitted token per step
    (plus its handle-buffer reference), so the steady-state decode
    loop keeps these as light as a plain tuple.

    Attributes:
        request_id: the emitting request.
        index: position in the continuation (0 = first token; its
            delta is the request's time-to-first-token mark).
        token: the emitted token id.
        finished: this token ended the request.
        finish_reason: ``"length"`` or ``"stop"`` when ``finished``,
            else None.
        time: ``perf_counter`` stamp of the emission — streaming
            consumers compute per-request TTFT/ITL from these directly
            instead of reconstructing them after ``drain``.
    """

    request_id: int
    index: int
    token: int
    finished: bool
    finish_reason: str | None
    time: float

    @property
    def is_first(self) -> bool:
        return self.index == 0


@dataclass(frozen=True, slots=True)
class StepOutputs:
    """Everything one engine step produced.

    Attributes:
        report: the step's aggregate counters and simulated traffic
            (the pre-redesign return value of ``Engine.step``).
        deltas: per-request token emissions, in emission order.
    """

    report: StepReport
    deltas: tuple[TokenDelta, ...] = field(default_factory=tuple)

    def for_request(self, request_id: int) -> tuple[TokenDelta, ...]:
        """This step's deltas belonging to one request."""
        return tuple(d for d in self.deltas if d.request_id == request_id)


class RequestHandle:
    """The client's view of one submitted request.

    Returned by :meth:`Engine.submit` (and :meth:`LLM.submit`).  A
    handle never holds model state — it observes the engine-side
    :class:`~repro.serve.request.RequestState` and buffers the deltas
    the engine emits for it, so reading a handle is cheap and aborting
    it releases every engine resource the request held.
    """

    def __init__(self, engine: "Engine", state: RequestState) -> None:
        self._engine = engine
        self._state = state
        self._deltas: list[TokenDelta] = []
        self._result: CompletedRequest | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestHandle(id={self.request_id}, "
            f"status={self.status().value}, "
            f"tokens={len(self._deltas)})"
        )

    # -- identity & status -------------------------------------------------

    @property
    def request_id(self) -> int:
        return self._state.request.request_id

    def __int__(self) -> int:
        return self.request_id

    @property
    def arrival_time(self) -> float:
        """``perf_counter`` stamp of submission (TTFT zero point)."""
        return self._state.arrival_time

    def status(self) -> RequestStatus:
        """Current lifecycle state (WAITING … FINISHED/ABORTED)."""
        return self._state.status

    @property
    def finished(self) -> bool:
        return self._state.status is RequestStatus.FINISHED

    @property
    def aborted(self) -> bool:
        return self._state.status is RequestStatus.ABORTED

    @property
    def failed(self) -> bool:
        """The engine quarantined this request (fault/deadline/shed)."""
        return self._state.status is RequestStatus.FAILED

    def failure(self) -> BaseException | None:
        """The exception that failed this request, if it has failed.

        None while in flight, after a clean finish, and for failures
        that carry no exception (load shedding records only the
        ``finish_reason``).
        """
        return self._state.failure

    @property
    def terminal(self) -> bool:
        return self._state.status.terminal

    # -- engine-side feed --------------------------------------------------

    def _push(self, delta: TokenDelta) -> None:
        """Engine hook: record one emitted token."""
        self._deltas.append(delta)

    def _complete(self, result: CompletedRequest) -> None:
        """Engine hook: the request finished; cache its frozen result."""
        self._result = result

    # -- client surface ----------------------------------------------------

    @property
    def delta_count(self) -> int:
        """Deltas emitted so far — cheap progress probe (no copying)."""
        return len(self._deltas)

    def deltas(self, start: int = 0) -> tuple[TokenDelta, ...]:
        """Deltas emitted so far, optionally from ``start`` (no stepping)."""
        return tuple(self._deltas[start:])

    def generated_tokens(self) -> list[int]:
        """Continuation tokens emitted so far (no stepping).

        Readable in every state — including after ``abort()``, where it
        is the partial output the request produced before cancellation.
        """
        return list(self._state.generated)

    def tokens(self, max_steps: int | None = None) -> Iterator[TokenDelta]:
        """Iterate this request's deltas, stepping the engine as needed.

        Yields each emitted token exactly once, in order, driving
        :meth:`Engine.step` whenever the buffer runs dry and the
        request is still in flight (other requests in the engine make
        progress in those same steps).  The iterator ends when the
        request finishes — or silently when it is aborted, including
        an ``abort()`` issued from inside the loop.

        Args:
            max_steps: bound on engine steps per dry spell (the wait
                for one more delta); raises
                :class:`~repro.errors.ModelError` when exceeded — the
                same guard against preemption thrash in an undersized
                pool that ``drain``/``result`` take.  None waits
                unboundedly.
        """
        index = 0
        while True:
            if index < len(self._deltas):
                delta = self._deltas[index]
                index += 1
                yield delta
                continue
            if self.terminal:
                return
            self._engine.run_until(
                lambda: len(self._deltas) > index or self.terminal,
                max_steps=max_steps,
                what=f"token iteration for request {self.request_id}",
            )

    def __iter__(self) -> Iterator[TokenDelta]:
        return self.tokens()

    def result(self, max_steps: int | None = None) -> CompletedRequest:
        """Block (stepping the engine) until finished; return the result.

        Raises :class:`~repro.errors.RequestAbortedError` if the
        request was aborted, :class:`~repro.errors.RequestFailedError`
        (carrying the original fault, when there is one) if the engine
        failed it — quarantine, deadline expiry, or load shedding —
        and :class:`~repro.errors.ModelError` if ``max_steps`` elapse
        first.  Collect-once semantics compose with
        :meth:`Engine.pop_finished`/``drain``: claiming a result
        through its handle removes it from the engine's finished set.
        """
        if not self.terminal:
            self._engine.run_until(
                lambda: self.terminal,
                max_steps=max_steps,
                what=f"result() for request {self.request_id}",
            )
        if self.aborted:
            raise RequestAbortedError(
                f"request {self.request_id} was aborted after "
                f"{len(self._state.generated)} tokens"
            )
        if self.failed:
            fault = self._state.failure
            reason = self._state.finish_reason or "error"
            raise RequestFailedError(
                f"request {self.request_id} failed ({reason}) after "
                f"{len(self._state.generated)} tokens"
                + (f": {fault}" if fault is not None else ""),
                fault=fault,
            ) from fault
        self._engine._finished.pop(self.request_id, None)
        if self._result is None:  # pragma: no cover - engine invariant
            raise ModelError(
                f"request {self.request_id} finished without a result"
            )
        return self._result

    def abort(self) -> bool:
        """Cancel the request; returns True if it was still in flight.

        Releases the request's KV residency immediately — paged blocks
        and prefix-cache references return to the pool through the same
        rollback path preemption uses, so an abort mid-chunked-prefill
        leaks nothing.  Aborting a terminal request is a no-op.
        """
        return self._engine.abort(self.request_id)
