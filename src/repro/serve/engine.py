"""The continuous-batching inference engine.

One :class:`Engine` owns a model and serves many requests concurrently:

* :meth:`Engine.submit` enqueues a request (admission is the
  scheduler's job, so submissions are cheap and can arrive mid-stream);
* :meth:`Engine.step` runs one scheduler-planned model step — newly
  admitted requests prefill (producing their first token), and every
  running request decodes its next token in a *single* batched model
  call (:meth:`repro.llm.transformer.CausalLM.forward_decode_batch`);
* :meth:`Engine.drain` steps until the queue is empty and returns the
  finished requests.

Decode batching keeps per-request KV caches at their exact lengths (no
cross-request padding): request tokens are gathered into a ``(batch,
1)`` array, the big GeMMs run once over the batch, and logits scatter
back to the per-request states.  Every emitted token is bitwise
identical to what a sequential :func:`repro.llm.generation.generate`
call would produce — the parity tests pin this down for FP16 and
Anda-compressed KV caches.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.hw.traffic import StepTraffic, decode_step_traffic, prefill_traffic
from repro.llm.generation import select_next_token
from repro.llm.kv_quant import kv_bits_per_element, make_cache_factory
from repro.llm.transformer import CausalLM
from repro.serve.metrics import EngineMetrics, StepReport, summarize
from repro.serve.request import (
    CompletedRequest,
    Request,
    RequestMetrics,
    RequestState,
    RequestStatus,
    complete,
)
from repro.serve.scheduler import SchedulerPolicy, get_policy, plan_step


@dataclass(frozen=True)
class EngineConfig:
    """Serving knobs of one engine instance.

    Args:
        max_batch_size: concurrent requests resident in KV memory.
        max_batch_tokens: scheduler token budget per step (decodes cost
            1, prefills cost their prompt length).
        policy: admission order — ``"fcfs"`` or
            ``"shortest-prompt-first"``.
        kv_mode: ``"fp16"`` (paper baseline) or ``"anda"`` (compressed
            KV through :mod:`repro.llm.kv_quant`).
        kv_mantissa_bits: Anda mantissa length when ``kv_mode="anda"``.
    """

    max_batch_size: int = 8
    max_batch_tokens: int = 256
    policy: str = "fcfs"
    kv_mode: str = "fp16"
    kv_mantissa_bits: int = 8

    def __post_init__(self) -> None:
        # A bad config must fail at construction, never mid-step with
        # requests already accepted.
        if self.max_batch_size < 1:
            raise ModelError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_batch_tokens < 1:
            raise ModelError(
                f"max_batch_tokens must be >= 1, got {self.max_batch_tokens}"
            )
        kv_bits_per_element(self.kv_mode, self.kv_mantissa_bits)

    @property
    def kv_bits(self) -> float:
        """Stored bits per cached K/V element under this config."""
        return kv_bits_per_element(self.kv_mode, self.kv_mantissa_bits)


class Engine:
    """Continuous-batching serving engine over one :class:`CausalLM`."""

    def __init__(self, model: CausalLM, config: EngineConfig | None = None) -> None:
        self.model = model
        self.config = config or EngineConfig()
        self._policy: SchedulerPolicy = get_policy(self.config.policy)
        self._cache_factory = make_cache_factory(
            model, self.config.kv_mode, self.config.kv_mantissa_bits
        )
        self._ids = itertools.count()
        self._waiting: list[RequestState] = []
        self._running: list[RequestState] = []
        self._finished: dict[int, CompletedRequest] = {}
        self._request_records: list[RequestMetrics] = []
        self._reports: list[StepReport] = []
        self._step_index = 0

    # -- admission --------------------------------------------------------

    def submit(
        self,
        prompt_tokens: np.ndarray,
        max_new_tokens: int,
        temperature: float = 0.0,
        top_k: int = 20,
        seed: int = 0,
    ) -> int:
        """Enqueue one request; returns its engine-assigned id.

        Validation mirrors :func:`repro.llm.generation.generate`, so a
        request the engine accepts is one ``generate`` would accept.
        """
        request = Request(
            request_id=next(self._ids),
            prompt=np.asarray(prompt_tokens),
            max_new_tokens=max_new_tokens,
            temperature=temperature,
            top_k=top_k,
            seed=seed,
        )
        total = request.prompt_length + max_new_tokens
        if total > self.model.config.max_seq_len:
            raise ModelError(
                f"prompt + continuation ({request.prompt_length} + "
                f"{max_new_tokens}) exceeds max_seq_len "
                f"{self.model.config.max_seq_len}"
            )
        vocab = self.model.config.vocab_size
        if int(request.prompt.min()) < 0 or int(request.prompt.max()) >= vocab:
            raise ModelError(
                f"prompt token ids must lie in [0, {vocab}); a deferred "
                "prefill failure would lose the request"
            )
        state = RequestState(
            request=request,
            arrival_step=self._step_index,
            arrival_time=time.perf_counter(),
        )
        self._waiting.append(state)
        return request.request_id

    # -- stepping ---------------------------------------------------------

    def has_work(self) -> bool:
        return bool(self._waiting or self._running)

    def step(self) -> StepReport:
        """Run one scheduler-planned model step (prefills + one decode).

        Decodes run first against the step's starting context lengths,
        then admitted prefills run; a freshly prefilled request joins
        the decode batch from the *next* step.
        """
        started = time.perf_counter()  # include scheduling in step cost
        plan = plan_step(
            self._waiting,
            self._running,
            self._policy,
            self.config.max_batch_size,
            self.config.max_batch_tokens,
        )
        traffic = StepTraffic()
        new_tokens = 0

        if plan.decodes:
            traffic = traffic + decode_step_traffic(
                self.model.config,
                [state.context_length for state in plan.decodes],
                kv_bits_per_element=self.config.kv_bits,
                batched=True,
            )
            tokens = np.array([[state.last_token] for state in plan.decodes])
            logits = self.model.forward_decode_batch(
                tokens, [state.caches for state in plan.decodes]
            )
            for index, state in enumerate(plan.decodes):
                self._emit(state, logits[index, -1, :])
                new_tokens += 1

        for state in plan.prefills:
            # Run the fallible work (cache build, model prefill) before
            # dequeuing: if either raises, the request stays queued
            # instead of vanishing.
            state.caches = self._cache_factory()
            logits = self.model.forward_step(
                state.request.prompt.reshape(1, -1), state.caches
            )
            self._waiting.remove(state)
            state.status = RequestStatus.RUNNING
            traffic = traffic + prefill_traffic(
                self.model.config,
                state.request.prompt_length,
                kv_bits_per_element=self.config.kv_bits,
            )
            self._running.append(state)
            self._emit(state, logits[0, -1, :], first=True)
            new_tokens += 1

        self._running = [
            state for state in self._running if state.status is RequestStatus.RUNNING
        ]
        report = StepReport(
            step=self._step_index,
            prefills=len(plan.prefills),
            decodes=len(plan.decodes),
            new_tokens=new_tokens,
            batch_tokens=plan.budget_tokens,
            elapsed_seconds=time.perf_counter() - started,
            traffic=traffic,
        )
        self._reports.append(report)
        self._step_index += 1
        return report

    def _emit(
        self, state: RequestState, logits: np.ndarray, first: bool = False
    ) -> None:
        """Select one token for a request and update its lifecycle."""
        request = state.request
        token = select_next_token(
            logits,
            request.temperature,
            request.top_k,
            state.rng,
        )
        state.generated.append(token)
        if first:
            state.first_token_step = self._step_index
            state.first_token_time = time.perf_counter()
        if state.done:
            state.status = RequestStatus.FINISHED
            state.finish_step = self._step_index
            state.finish_time = time.perf_counter()
            state.caches = None  # release KV memory
            done = complete(state)
            self._finished[request.request_id] = done
            self._request_records.append(done.metrics)

    # -- collection -------------------------------------------------------

    def drain(self) -> list[CompletedRequest]:
        """Step until idle; return uncollected finished requests by id.

        Collect-once semantics (like :meth:`pop_finished`): returned
        results are released, so a long-lived engine reused across many
        batches does not retain every token array ever served.
        Aggregate metrics keep accumulating regardless.
        """
        while self.has_work():
            self.step()
        return self.pop_finished()

    def pop_finished(self) -> list[CompletedRequest]:
        """Return and clear currently finished requests (id order)."""
        done = [self._finished[key] for key in sorted(self._finished)]
        self._finished.clear()
        return done

    def metrics(self) -> EngineMetrics:
        """Aggregate throughput/latency/traffic over the engine's life.

        Request records accumulate independently of
        :meth:`pop_finished`, so streaming consumers keep full latency
        statistics.
        """
        return summarize(self._reports, self._request_records)


def serve_batch(
    model: CausalLM,
    prompts: list[np.ndarray],
    max_new_tokens: int,
    temperature: float = 0.0,
    top_k: int = 20,
    seed: int = 0,
    config: EngineConfig | None = None,
    engine: Engine | None = None,
) -> list[CompletedRequest]:
    """Serve a fixed batch of prompts to completion (sync wrapper).

    Submits every prompt up front, drains the engine, and returns
    results aligned with the input order.  Each request gets the same
    decoding recipe (including the seed — requests draw from
    independent per-request RNG streams, as ``generate`` would).

    Pass a pre-built ``engine`` to keep a handle on it afterwards
    (e.g. for :meth:`Engine.metrics`); ``config`` is ignored then.
    """
    if engine is None:
        engine = Engine(model, config)
    ids = [
        engine.submit(
            prompt,
            max_new_tokens,
            temperature=temperature,
            top_k=top_k,
            seed=seed,
        )
        for prompt in prompts
    ]
    wanted = set(ids)
    by_id = {}
    for done in engine.drain():
        if done.request_id in wanted:
            by_id[done.request_id] = done
        else:
            # A shared engine may finish requests submitted elsewhere;
            # leave those collectable instead of swallowing them.
            engine._finished[done.request_id] = done
    return [by_id[request_id] for request_id in ids]
