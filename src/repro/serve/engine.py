"""The continuous-batching inference engine.

One :class:`Engine` owns a model and serves many requests concurrently.
It is the *internal* layer of the serving stack — clients normally talk
to the :class:`repro.serve.llm.LLM` facade — but its surface is fully
usable on its own:

* :meth:`Engine.submit` enqueues a request under a per-request
  :class:`~repro.serve.params.SamplingParams` recipe and returns a
  :class:`~repro.serve.handle.RequestHandle` (admission is the
  scheduler's job, so submissions are cheap and can arrive mid-stream);
* :meth:`Engine.step` runs one scheduler-planned model step — every
  running request decodes its next token, and waiting requests prefill
  *prompt chunks* sized to the budget left after decodes, both inside
  one mixed model invocation
  (:meth:`repro.llm.transformer.CausalLM.forward_mixed_step`) — and
  returns a :class:`~repro.serve.handle.StepOutputs`: the step's
  aggregate report plus one :class:`~repro.serve.handle.TokenDelta` per
  token emitted, so tokens are observable the step they are produced;
* :meth:`Engine.abort` cancels an in-flight request, releasing its
  paged blocks / prefix-cache references through the same rollback path
  preemption uses (a half-done chunked prefill leaks nothing);
* :meth:`Engine.drain` steps until the queue is empty and returns the
  finished requests.

**Chunked prefill** (``EngineConfig.chunked_prefill``, on by default)
is what bounds latency under long-prompt traffic: instead of stalling
the whole decode batch for one monolithic prompt forward, a long
prompt prefills across several steps — each step reserves one token of
budget per running decode and gives the remainder to the prompt as a
chunk.  ``RequestState.prefill_pos`` tracks progress; a half-prefilled
request waits in the queue holding its partial cache until its final
chunk completes and emits its first token.  Chunked output is
token-bitwise-identical to unchunked prefill: multi-row GeMMs are
row-local, attention masks span ``cache_len + chunk``, and decode
tokens keep their own batched lane (see ``forward_mixed_step`` for why
the lanes must not share one GeMM).

Decode batching keeps per-request KV caches at their exact lengths (no
cross-request padding): request tokens are gathered into a ``(batch,
1)`` array, the big GeMMs run once over the batch, and logits scatter
back to the per-request states.  Every emitted token is bitwise
identical to what a sequential :func:`repro.llm.generation.generate`
call would produce — the parity tests pin this down for FP16 and
Anda-compressed KV caches, chunked and unchunked.

With ``kv_pool=True`` the engine swaps per-request exact-length caches
for the paged memory subsystem (:mod:`repro.serve.kvpool`): KV lives
in a fixed pool of refcounted blocks, requests sharing a prompt prefix
map the same physical blocks (skipping the shared prefill compute and
KV writes), admission is planned against the free-block budget — for a
chunk, only the chunk's block growth — and under pool pressure the
engine preempts the latest-arrived request, running *or*
half-prefilled (recompute-on-resume), so admission never deadlocks.
Paged decode stores the same float16 bytes the unpaged path stores, so
token parity is preserved bitwise in both KV modes.
"""

from __future__ import annotations

import bisect
import itertools
import time
import warnings
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import DeadlineExceededError, ModelError, RequestError
from repro.hw.traffic import (
    StepTraffic,
    decode_request_kv_bytes,
    decode_step_traffic,
    prefill_chunk_traffic,
    prefill_traffic,
    prefix_cache_savings,
)
from repro.llm.attention import (
    AttentionDispatchStats,
    BucketedAttention,
    KVCache,
    KVHotPathStats,
    stats_scope,
)
from repro.llm.generation import select_next_token
from repro.llm.kv_quant import (
    KVFormat,
    kv_bits_per_element,
    make_cache_factory,
)
from repro.llm.transformer import CausalLM
from repro.serve.faults import (
    FaultInjector,
    FaultPlan,
    InjectedFault,
    PressurePolicy,
    RetryPolicy,
    TransientFault,
    inject,
    injection_scope,
    request_scope,
)
from repro.serve.handle import RequestHandle, StepOutputs, TokenDelta
from repro.serve.kvpool.paged import SequenceKV
from repro.serve.kvpool.pool import DEFAULT_BLOCK_SIZE, KVPool
from repro.serve.kvpool.preempt import Preemptor
from repro.serve.metrics import EngineMetrics, StepReport, summarize
from repro.serve.params import SamplingParams
from repro.serve.request import (
    CompletedRequest,
    Request,
    RequestMetrics,
    RequestState,
    RequestStatus,
    complete,
)
from repro.serve.scheduler import (
    PrefillChunk,
    SchedulerPolicy,
    get_policy,
    plan_step,
    validate_admission,
)
from repro.serve.telemetry import EngineTelemetry, TelemetryConfig
from repro.serve.telemetry.export import log_step_summary

#: Process-wide engine numbering for default telemetry labels.
_ENGINE_LABELS = itertools.count()


@dataclass(frozen=True, slots=True)
class EngineConfig:
    """Serving knobs of one engine instance.

    Args:
        max_batch_size: concurrent requests resident in KV memory
            (running decodes plus half-prefilled prompts).
        max_batch_tokens: scheduler token budget per step (decodes cost
            1, prefill chunks cost their length).  With chunked prefill
            this is *the* time-to-first-token vs throughput dial: small
            budgets bound every step's work (tight inter-token latency,
            more chunk steps per prompt), large budgets prefill prompts
            in fewer, longer steps.
        policy: admission order — ``"fcfs"``,
            ``"shortest-prompt-first"`` or ``"decode-first"`` (finish
            in-flight chunked prefills before admitting new requests).
        chunked_prefill: admit waiting prompts for budget-sized chunks
            that ride along with the decode batch (mixed steps) instead
            of requiring the whole prompt to fit one step.  Token
            output is bitwise identical either way; chunking only
            changes step composition — and therefore latency.
        kv_format: the engine-wide KV-cache format
            (:class:`repro.llm.kv_quant.KVFormat`): ``KVFormat.fp16()``
            (paper baseline, the default), ``KVFormat.anda(M)``,
            ``KVFormat.bfp(M)``, ``KVFormat.mx(M)``, or a
            ``KVFormat.per_layer([...])`` stack.  Requests may override
            it individually via ``SamplingParams.kv_format``.
        kv_mode: deprecated spelling of the format's mode string; use
            ``kv_format``.  Passing it (or ``kv_mantissa_bits``) emits
            a :class:`DeprecationWarning` and builds the equivalent
            ``kv_format``; both fields remain readable as mirrors of
            the resolved format.
        kv_mantissa_bits: deprecated Anda/BFP/MX mantissa length; use
            ``kv_format``.
        kv_pool: store KV in the paged block pool
            (:mod:`repro.serve.kvpool`) instead of per-request
            exact-length caches.
        kv_pool_blocks: physical blocks in the pool (kv_pool mode).
        kv_block_size: token positions per block; defaults to 64, the
            Anda group size (any size stays bitwise exact — grouping is
            per position along the head dimension).
        prefix_caching: share prompt-prefix blocks across requests
            (kv_pool mode).
        grouped_attention: bucket the decode batch by KV length and run
            one batched attention launch per (layer, bucket) instead of
            one per (layer, request)
            (:class:`repro.llm.attention.BucketedAttention`).  Token
            output is bitwise identical either way; grouping only cuts
            Python/BLAS dispatch count from O(batch) to O(buckets) per
            layer.
        attention_pad_waste: padded-bucket waste cap in [0, 1): the
            maximum fraction of scored key positions that may be
            padding when merging near-equal-length singletons into one
            padded bucket.  0 disables padded merging (exact-length
            grouping only).
        telemetry: optional instruments
            (:class:`~repro.serve.telemetry.TelemetryConfig`) — phase
            span tracing for Chrome-trace export and per-step summary
            logging.  The per-engine counter registry exists regardless
            of this config; only the tracer and log lines are optional.
        faults: optional seeded
            :class:`~repro.serve.faults.FaultPlan` evaluated at the
            named injection points threaded through the stack
            (chaos testing).  None (the default) makes every probe a
            no-op.
        retry: bounded-backoff
            :class:`~repro.serve.faults.RetryPolicy` applied to
            transient faults — retried requests replay through the
            bitwise recompute-on-resume path.
        pressure: :class:`~repro.serve.faults.PressurePolicy` for
            graceful degradation under KV-pool exhaustion (load
            shedding / KV-format downgrade at admission); inert by
            default and outside kv_pool mode.
    """

    max_batch_size: int = 8
    max_batch_tokens: int = 256
    policy: str = "fcfs"
    chunked_prefill: bool = True
    kv_mode: str | None = None
    kv_mantissa_bits: int | None = None
    kv_pool: bool = False
    kv_pool_blocks: int = 64
    kv_block_size: int = DEFAULT_BLOCK_SIZE
    prefix_caching: bool = True
    grouped_attention: bool = True
    attention_pad_waste: float = 0.125
    telemetry: TelemetryConfig = TelemetryConfig()
    kv_format: KVFormat | None = None
    faults: FaultPlan | None = None
    retry: RetryPolicy = RetryPolicy()
    pressure: PressurePolicy = PressurePolicy()

    def __post_init__(self) -> None:
        # A bad config must fail at construction, never mid-step with
        # requests already accepted.
        if self.max_batch_size < 1:
            raise ModelError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_batch_tokens < 1:
            raise ModelError(
                f"max_batch_tokens must be >= 1, got {self.max_batch_tokens}"
            )
        if self.kv_pool_blocks < 2:
            # One block of CoW slack is always reserved, so a 1-block
            # pool could not hold even a 1-token request.
            raise ModelError(f"kv_pool_blocks must be >= 2, got {self.kv_pool_blocks}")
        if self.kv_block_size < 1:
            raise ModelError(f"kv_block_size must be >= 1, got {self.kv_block_size}")
        if not 0.0 <= self.attention_pad_waste < 1.0:
            raise ModelError(
                f"attention_pad_waste must lie in [0, 1), got "
                f"{self.attention_pad_waste}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ModelError(
                "faults must be a repro.serve.faults.FaultPlan or None, "
                f"got {type(self.faults).__name__}"
            )
        if not isinstance(self.retry, RetryPolicy):
            raise ModelError(
                "retry must be a repro.serve.faults.RetryPolicy, "
                f"got {type(self.retry).__name__}"
            )
        if not isinstance(self.pressure, PressurePolicy):
            raise ModelError(
                "pressure must be a repro.serve.faults.PressurePolicy, "
                f"got {type(self.pressure).__name__}"
            )
        # kv_format is canonical; the legacy kv_mode/kv_mantissa_bits
        # kwargs are deprecation shims that build the equivalent format
        # (same pattern as the serve_batch shim).  After resolution both
        # scalar fields hold read mirrors of the format, so pre-redesign
        # readers of config.kv_mode keep seeing the same values.
        if self.kv_mode is not None or self.kv_mantissa_bits is not None:
            warnings.warn(
                "EngineConfig.kv_mode / kv_mantissa_bits are deprecated; "
                "pass EngineConfig(kv_format=KVFormat.anda(8)) (or "
                ".fp16()/.bfp()/.mx()/.per_layer()) instead",
                DeprecationWarning,
                stacklevel=3,
            )
            if self.kv_format is not None:
                raise ModelError(
                    "kv_format conflicts with the legacy kv_mode/"
                    "kv_mantissa_bits kwargs; pass only kv_format"
                )
            resolved = KVFormat(
                mode=self.kv_mode if self.kv_mode is not None else "fp16",
                mantissa_bits=(
                    self.kv_mantissa_bits
                    if self.kv_mantissa_bits is not None
                    else 8
                ),
            )
            object.__setattr__(self, "kv_format", resolved)
        elif self.kv_format is None:
            object.__setattr__(self, "kv_format", KVFormat.fp16())
        elif not isinstance(self.kv_format, KVFormat):
            raise ModelError(
                "kv_format must be a repro.llm.kv_quant.KVFormat, got "
                f"{type(self.kv_format).__name__}"
            )
        object.__setattr__(self, "kv_mode", self.kv_format.mode)
        object.__setattr__(self, "kv_mantissa_bits", self.kv_format.mantissa_bits)
        kv_bits_per_element(self.kv_format)

    @property
    def kv_bits(self) -> float:
        """Stored bits per cached K/V element under this config.

        For a per-layer format this is the mean across layers — the
        width the analytic traffic model charges per element.
        """
        return kv_bits_per_element(self.kv_format)


def _common_prefix(first: np.ndarray, second: np.ndarray) -> int:
    """Length of the shared leading run of two token arrays."""
    limit = min(first.shape[0], second.shape[0])
    mismatch = np.nonzero(first[:limit] != second[:limit])[0]
    return int(mismatch[0]) if mismatch.size else limit


@dataclass(slots=True)
class _ChunkRun:
    """One prompt chunk scheduled for execution in this step.

    ``tokens`` is the positions actually executed (the scheduler's
    grant, shrunk by any prefix-cache hit); ``prefix_hit`` the cached
    positions a fresh paged request mapped instead of computing.
    """

    state: RequestState
    tokens: int
    prefix_hit: int = 0


class Engine:
    """Continuous-batching serving engine over one :class:`CausalLM`."""

    def __init__(self, model: CausalLM, config: EngineConfig | None = None) -> None:
        self.model = model
        self.config = config or EngineConfig()
        self._policy: SchedulerPolicy = get_policy(self.config.policy)
        fmt = self.config.kv_format
        self._cache_factory = make_cache_factory(model, fmt)
        self._n_layers = model.config.n_layers
        self._default_signature = fmt.signature(self._n_layers)
        self._pool: KVPool | None = None
        self._preemptor = Preemptor()
        if self.config.kv_pool:
            self._pool = KVPool(
                model.config,
                num_blocks=self.config.kv_pool_blocks,
                block_size=self.config.kv_block_size,
                codec=fmt.codec() if fmt.uniform else None,
                codecs=None if fmt.uniform else fmt.codecs(self._n_layers),
                enable_prefix_cache=self.config.prefix_caching,
            )
        self._dispatcher: BucketedAttention | None = (
            BucketedAttention(pad_waste_cap=self.config.attention_pad_waste)
            if self.config.grouped_attention
            else None
        )
        # Per-engine hot-path stats: installed around every step via
        # stats_scope, so two engines in one process (or one per
        # thread) never bleed kv_copy_bytes / attention_dispatches into
        # each other through the module globals.  The globals remain
        # the default sink for direct model calls outside any engine.
        self._hot_stats = KVHotPathStats()
        self._attn_stats = AttentionDispatchStats()
        self.telemetry = EngineTelemetry(
            self.config.telemetry, f"engine{next(_ENGINE_LABELS)}", self.metrics
        )
        self._tracer = self.telemetry.tracer
        self._ids = itertools.count()
        self._waiting: list[RequestState] = []
        self._running: list[RequestState] = []
        self._finished: dict[int, CompletedRequest] = {}
        self._handles: dict[int, RequestHandle] = {}
        self._request_records: list[RequestMetrics] = []
        self._reports: list[StepReport] = []
        self._step_deltas: list[TokenDelta] = []
        self._step_index = 0
        self._aborted = 0
        # Failure-semantics state: the seeded injector (None without a
        # plan) and the engine-level failure counters summarize() folds
        # in alongside `aborted`.
        self._injector: FaultInjector | None = (
            FaultInjector(self.config.faults)
            if self.config.faults is not None
            else None
        )
        self._failed = 0
        self._fault_retries = 0
        self._deadline_expired = 0
        self._shed = 0
        self._degraded = 0
        # Reusable (capacity, 1) decode-token scratch; grown by
        # doubling, filled in place each step instead of building a
        # fresh (batch, 1) array per step.
        self._decode_token_buf: np.ndarray | None = None

    @property
    def fault_injector(self) -> FaultInjector | None:
        """The engine's seeded injector (None without a fault plan)."""
        return self._injector

    # -- admission --------------------------------------------------------

    def submit(
        self,
        prompt_tokens: np.ndarray,
        params: "SamplingParams | int | None" = None,
        *,
        max_new_tokens: int | None = None,
        temperature: float | None = None,
        top_k: int | None = None,
        seed: int | None = None,
    ) -> RequestHandle:
        """Enqueue one request; returns its :class:`RequestHandle`.

        The decoding recipe is a per-request
        :class:`~repro.serve.params.SamplingParams`.  For migration, a
        bare int in the ``params`` position (the pre-redesign
        ``max_new_tokens`` argument) or the legacy scalar kwargs build
        a default recipe; combining a full ``params`` with any scalar
        kwarg is a contradiction and raises (nothing is silently
        dropped).

        Validation happens *here*, with ``errors``-module exceptions —
        empty prompts, non-positive ``max_new_tokens``, out-of-vocab
        ids and pool-overflowing requests are rejected before they can
        fail deep in a scheduler step (mirroring what
        :func:`repro.llm.generation.generate` would accept).
        """
        if params is not None and not isinstance(params, SamplingParams):
            if not isinstance(params, (int, np.integer)):
                raise RequestError(
                    "params must be a SamplingParams (or a legacy "
                    f"max_new_tokens int), got {type(params).__name__}"
                )
            if max_new_tokens is not None:
                raise RequestError(
                    "pass max_new_tokens positionally or by keyword, not both"
                )
            max_new_tokens = int(params)
            params = None
        if isinstance(params, SamplingParams):
            conflicts = {
                "max_new_tokens": max_new_tokens,
                "temperature": temperature,
                "top_k": top_k,
                "seed": seed,
            }
            given = sorted(k for k, v in conflicts.items() if v is not None)
            if given:
                raise RequestError(
                    f"scalar kwargs {given} conflict with the explicit "
                    "SamplingParams; put them in the params instead"
                )
        else:
            if max_new_tokens is None:
                raise RequestError(
                    "submit needs a SamplingParams (or max_new_tokens)"
                )
            params = SamplingParams(
                max_new_tokens=max_new_tokens,
                temperature=0.0 if temperature is None else temperature,
                top_k=20 if top_k is None else top_k,
                seed=0 if seed is None else seed,
            )
        prompt = np.asarray(prompt_tokens).reshape(-1)
        validate_admission(prompt, params, self.model.config, pool=self._pool)
        # Resolve the request's KV format once at admission: an explicit
        # per-request override, else the engine default.  A request is
        # "private" when its resolved byte layout differs from the
        # default — it then opts out of prefix sharing entirely.
        fmt = params.kv_format if params.kv_format is not None else self.config.kv_format
        # Graceful degradation under KV pressure: headroom below the
        # shed threshold refuses the admission outright (a FAILED
        # handle, not an exception — the caller still observes it);
        # below the degrade threshold, a request without an explicit
        # format override is admitted at the policy's lower-bit format
        # instead (prefix-signature privacy keeps it out of shared
        # prefixes automatically when the layouts differ).
        shed = False
        degraded = False
        pressure = self.config.pressure
        if self._pool is not None and pressure.active:
            headroom = (
                self._pool.free_blocks + self._pool.reclaimable_blocks
            ) / self._pool.num_blocks
            if headroom < pressure.shed_below_free_fraction:
                shed = True
            elif (
                params.kv_format is None
                and pressure.degrade_below_free_fraction > 0.0
                and headroom < pressure.degrade_below_free_fraction
            ):
                assert pressure.degraded_format is not None  # validated
                fmt = pressure.degraded_format
                degraded = True
        kv_private = (
            (params.kv_format is not None or degraded)
            and fmt.signature(self._n_layers) != self._default_signature
        )
        request = Request(
            request_id=next(self._ids),
            prompt=prompt,
            params=params,
        )
        arrival = time.perf_counter()
        state = RequestState(
            request=request,
            arrival_step=self._step_index,
            arrival_time=arrival,
            kv_format=fmt,
            kv_bits=fmt.bits_per_element(self._n_layers),
            kv_private=kv_private,
            deadline=(
                None if params.deadline_s is None else arrival + params.deadline_s
            ),
        )
        self._waiting.append(state)
        handle = RequestHandle(self, state)
        self._handles[request.request_id] = handle
        if self._tracer is not None:
            self._tracer.lifecycle(
                request.request_id, "QUEUED", prompt_tokens=int(prompt.shape[0])
            )
        if degraded:
            self._degraded += 1
            if self._tracer is not None:
                self._tracer.lifecycle(
                    request.request_id, "DEGRADED", format=fmt.label
                )
        if shed:
            self._waiting.remove(state)
            self._release_residency(state)
            self._shed += 1
            self._fail_terminal(state, None, reason="shed")
            return handle
        if self._injector is not None:
            # The admission injection site: a transient fault re-queues
            # the request with backoff, a permanent one fails it at the
            # gate.  Either way the handle is returned to the caller.
            try:
                self._injector.begin_step(self._step_index)
                self._injector.probe("admission", request.request_id)
            except InjectedFault as fault:
                self._handle_request_fault(state, fault)
        return handle

    # -- cancellation ------------------------------------------------------

    def abort(self, request_id: int) -> bool:
        """Cancel an in-flight request; returns True if it was active.

        The request's KV residency — paged blocks, prefix-cache
        references, a half-done chunked prefill's partial cache — is
        released through the same rollback path preemption uses, so
        allocator refcounts stay balanced whatever state the request
        was aborted in.  Its partial tokens stay readable on the
        handle; it never produces a :class:`CompletedRequest`.
        Aborting a finished or unknown id is a no-op returning False.
        """
        state = next(
            (
                candidate
                for candidate in itertools.chain(self._running, self._waiting)
                if candidate.request.request_id == request_id
            ),
            None,
        )
        if state is None:
            return False
        if state in self._running:
            self._running.remove(state)
        else:
            self._waiting.remove(state)
        self._release_residency(state)
        state.status = RequestStatus.ABORTED
        state.finish_reason = "abort"
        state.finish_step = self._step_index
        state.finish_time = time.perf_counter()
        self._aborted += 1
        self._handles.pop(request_id, None)
        if self._tracer is not None:
            self._tracer.lifecycle(
                request_id, "ABORTED", tokens=len(state.generated)
            )
        return True

    # -- stepping ---------------------------------------------------------

    def has_work(self) -> bool:
        return bool(self._waiting or self._running)

    def step(self) -> StepOutputs:
        """Run one scheduler-planned mixed step (decodes + prompt chunks).

        Fresh prompt chunks and the decode batch execute in one
        :meth:`~repro.llm.transformer.CausalLM.forward_mixed_step`
        invocation; a chunk that completes its prompt emits the
        request's first token (that is the moment TTFT is recorded),
        an incomplete chunk leaves the request half-prefilled in the
        waiting queue.  Resumed (previously preempted, mid-decode)
        requests replay their whole call pattern in one legacy
        admission so the rebuilt cache stays bitwise.  In kv_pool mode
        the step first reserves its block growth — preempting the
        latest-arrived request, running or half-prefilled, when the
        pool cannot cover it — and fresh prefills go through the
        prefix cache.

        Returns a :class:`~repro.serve.handle.StepOutputs`: the step's
        aggregate :class:`StepReport` plus one
        :class:`~repro.serve.handle.TokenDelta` per token emitted this
        step (also fed to the emitting requests'
        :class:`RequestHandle` buffers), so streaming consumers observe
        tokens — and measure TTFT — the step they are produced.
        """
        # Route every hot-path counter (and span) this step produces
        # into the engine's own stats; the module globals only ever see
        # direct model calls made outside an engine.
        with stats_scope(self._hot_stats, self._attn_stats, self._tracer):
            if self._injector is None:
                return self._step_scoped()
            self._injector.begin_step(self._step_index)
            with injection_scope(self._injector):
                return self._step_scoped()

    def _step_scoped(self) -> StepOutputs:
        started = time.perf_counter()  # include scheduling in step cost
        tracer = self._tracer
        if tracer is not None:
            # The root span reuses the exact perf_counter readings that
            # define StepReport.elapsed_seconds, so its duration and
            # the report agree to the clock tick.
            tracer.begin("step", ts=tracer.to_us(started), step=self._step_index)
        self._step_deltas = []
        copy_before, dequant_before = self._hot_stats.snapshot()
        dispatches_before, grouped_before, _ = self._attn_stats.snapshot()
        n_layers = self.model.config.n_layers
        padded_reads = 0
        # Deadlines are enforced at step boundaries: sweep before
        # planning so an expired request never costs another forward.
        self._expire_deadlines(started)
        if tracer is not None:
            tracer.begin(
                "step.schedule",
                waiting=len(self._waiting),
                running=len(self._running),
            )
        # Requests backing off after a transient fault keep their queue
        # slot but are hidden from the planner until their retry step
        # (they hold no residency, so inflight accounting is unchanged).
        eligible = [
            state
            for state in self._waiting
            if state.retry_at_step <= self._step_index
        ]
        plan = plan_step(
            eligible,
            self._running,
            self._policy,
            self.config.max_batch_size,
            self.config.max_batch_tokens,
            blocks=(None if self._pool is None else self._pool.planner(self._running)),
            chunking=self.config.chunked_prefill,
        )
        if tracer is not None:
            tracer.end("step.schedule")
        traffic = StepTraffic()
        new_tokens = 0
        preemptions = 0
        prefill_done = 0
        partial = 0
        prefix_hit_tokens = 0
        saved = StepTraffic()
        evicted_before = 0 if self._pool is None else self._pool.evicted_blocks
        # Per-format attribution of the step's KV bytes.  Padded decode
        # reads belong to no request and stay in the aggregate only.
        fmt_bytes: dict[str, float] = {}

        def charge_format(state: RequestState, nbytes: float) -> None:
            if nbytes <= 0.0:
                return
            label = state.kv_format.label if state.kv_format is not None else "fp16"
            fmt_bytes[label] = fmt_bytes.get(label, 0.0) + nbytes

        chunked: list[PrefillChunk] = []
        legacy: list[PrefillChunk] = []
        for chunk in plan.prefills:
            if self.config.chunked_prefill and not chunk.state.generated:
                chunked.append(chunk)
            else:
                legacy.append(chunk)

        decodes = list(plan.decodes)
        waves = self._plan_waves(chunked)
        executed_chunks = 0
        first_wave = True
        # Set when an injected fault aborts the forward lanes: the rest
        # of the step (later waves, decode-only lane, legacy prefills)
        # is skipped; every participant was rolled back to its pre-step
        # KV state, so the next step replays it bitwise.
        faulted = False
        # The weight stream is charged once per *step*: the mixed step
        # is the fusion quantum of the analytic traffic model, so the
        # decode lane's charge covers every chunk riding along, and an
        # all-prefill step pays it exactly once however its waves fall.
        weights_charged = False
        for wave in waves:
            runs = self._begin_chunks(wave)
            if self._pool is not None:
                step_decodes = decodes if first_wave else []
                step_decodes, runs, evicted = self._reserve_step_blocks(
                    step_decodes, runs
                )
                if first_wave:
                    decodes = step_decodes
                preemptions += evicted
            wave_decodes = decodes if first_wave else []
            if not runs and not wave_decodes:
                first_wave = False
                continue
            decode_contexts = [state.context_length for state in wave_decodes]
            padded_before = self._attn_stats.padded_slots
            try:
                for state in wave_decodes:
                    inject("model.decode", state.request.request_id)
                chunk_logits, decode_logits = self.model.forward_mixed_step(
                    [
                        run.state.request.prompt[
                            run.state.prefill_pos : run.state.prefill_pos + run.tokens
                        ]
                        for run in runs
                    ],
                    [run.state.caches for run in runs],
                    decode_tokens=(
                        self._decode_tokens(wave_decodes) if wave_decodes else None
                    ),
                    decode_caches=[state.caches for state in wave_decodes],
                    dispatcher=self._dispatcher,
                )
            except InjectedFault as fault:
                # Injected faults have precise rollback semantics: every
                # participant's KV returns to its pre-step watermark, an
                # attributed victim is quarantined or retried, and the
                # step is abandoned (the survivors replay bitwise next
                # step).  The engine stays serviceable.
                self._recover_step_fault(fault, runs, wave_decodes, decode_contexts)
                decodes = []
                faulted = True
                break
            except Exception:
                # Blanket-with-reraise, deliberately: an *unknown*
                # failure class mid-forward may have corrupted shared
                # engine state, so the engine must not absorb it — but
                # it still rolls back what it provably can before
                # propagating.  The chunk lane runs before the decode
                # lane, so a failure there leaves decode caches
                # untouched; releasing the chunk participants' partial
                # caches puts them back to a clean un-prefilled waiting
                # state (no pool blocks leak).  Earlier waves already
                # committed consistent states (completed or
                # half-prefilled).
                for run in runs:
                    self._rollback_chunk(run.state)
                raise
            first_wave = False
            executed_chunks += len(runs)

            if wave_decodes:
                # Only the decode lane can pad (the chunk lane always
                # runs per segment), so the step's padded-slot delta is
                # the lane's waste; one layer group's worth is the unit
                # the traffic model charges.
                lane_padded = (self._attn_stats.padded_slots - padded_before) // (
                    n_layers
                )
                padded_reads += lane_padded
                traffic = traffic + decode_step_traffic(
                    self.model.config,
                    decode_contexts,
                    kv_bits_per_element=[state.kv_bits for state in wave_decodes],
                    batched=True,
                    padded_read_positions=lane_padded,
                )
                weights_charged = True
                for index, state in enumerate(wave_decodes):
                    charge_format(
                        state,
                        decode_request_kv_bytes(
                            self.model.config, decode_contexts[index], state.kv_bits
                        ),
                    )
                    self._emit(state, decode_logits[index, -1, :])
                    new_tokens += 1

            for run, logits in zip(runs, chunk_logits):
                state = run.state
                chunk_traffic = prefill_chunk_traffic(
                    self.model.config,
                    run.tokens,
                    cached_context_tokens=state.prefill_pos,
                    kv_bits_per_element=state.kv_bits,
                    include_weights=not weights_charged,
                )
                traffic = traffic + chunk_traffic
                charge_format(
                    state,
                    chunk_traffic.kv_read_bytes + chunk_traffic.kv_write_bytes,
                )
                weights_charged = True
                state.prefill_pos += run.tokens
                prefill_done += run.tokens
                if run.prefix_hit:
                    prefix_hit_tokens += run.prefix_hit
                    saved = saved + prefix_cache_savings(
                        self.model.config,
                        run.prefix_hit,
                        kv_bits_per_element=state.kv_bits,
                    )
                if state.prefill_pos >= state.request.prompt_length:
                    self._waiting.remove(state)
                    state.status = RequestStatus.RUNNING
                    if self._tracer is not None:
                        self._tracer.lifecycle(
                            state.request.request_id, "RUNNING"
                        )
                    if self._pool is not None:
                        self._pool.register_prefix(state.kv, state.request.prompt)
                    self._running.append(state)
                    self._emit(state, logits[-1, :], first=True)
                    new_tokens += 1
                else:
                    if (
                        self._tracer is not None
                        and state.status is not RequestStatus.PREFILLING
                    ):
                        self._tracer.lifecycle(
                            state.request.request_id,
                            "PREFILLING",
                            prefill_pos=state.prefill_pos,
                        )
                    state.status = RequestStatus.PREFILLING
                    partial += 1

        if first_wave and decodes and not faulted:
            # No chunks this step: plain batched decode (still reserving
            # its block growth first in pool mode).
            if self._pool is not None:
                decodes, _, evicted = self._reserve_step_blocks(decodes, [])
                preemptions += evicted
            if decodes:
                decode_contexts = [state.context_length for state in decodes]
                padded_before = self._attn_stats.padded_slots
                try:
                    for state in decodes:
                        inject("model.decode", state.request.request_id)
                    decode_logits = self.model.forward_decode_batch(
                        self._decode_tokens(decodes),
                        [state.caches for state in decodes],
                        dispatcher=self._dispatcher,
                    )
                except InjectedFault as fault:
                    # Same recovery as the mixed lane: caches back to
                    # their pre-step watermarks, victim handled, step
                    # abandoned.
                    self._recover_step_fault(fault, [], decodes, decode_contexts)
                    decodes = []
                    faulted = True
            if decodes:
                lane_padded = (self._attn_stats.padded_slots - padded_before) // (
                    n_layers
                )
                padded_reads += lane_padded
                traffic = traffic + decode_step_traffic(
                    self.model.config,
                    decode_contexts,
                    kv_bits_per_element=[state.kv_bits for state in decodes],
                    batched=True,
                    padded_read_positions=lane_padded,
                )
                for index, state in enumerate(decodes):
                    charge_format(
                        state,
                        decode_request_kv_bytes(
                            self.model.config, decode_contexts[index], state.kv_bits
                        ),
                    )
                    self._emit(state, decode_logits[index, -1, :])
                    new_tokens += 1

        if faulted:
            # A batch-level rollback already abandoned this step; the
            # legacy prefills stay queued and run next step.
            legacy = []
        if legacy and tracer is not None:
            tracer.begin("step.prefill", requests=len(legacy))
        for chunk in legacy:
            state = chunk.state
            request_id = state.request.request_id
            try:
                # The legacy lane is per-request, so faults here are
                # always attributable; the ambient scope additionally
                # attributes pool/codec/gather probes fired inside.
                with request_scope(request_id):
                    inject("model.prefill", request_id)
                    if self._pool is None:
                        # Run the fallible work (cache build, model
                        # prefill) before dequeuing: if either raises,
                        # the request stays queued instead of vanishing.
                        # A resumed request (re-queued mid-decode by a
                        # transient-fault backoff) replays its exact
                        # original call pattern — prompt prefill, then
                        # one single-token step per already-emitted
                        # token — so the rebuilt cache is bitwise and
                        # it emits nothing until it rejoins decode.
                        resumed = bool(state.generated)
                        state.caches = self._caches_for(state)
                        logits = self.model.forward_step(
                            state.request.prompt.reshape(1, -1), state.caches
                        )
                        request_traffic = prefill_traffic(
                            self.model.config,
                            state.request.prompt_length,
                            kv_bits_per_element=state.kv_bits,
                        )
                        for token in state.generated[:-1]:
                            context = state.context_length
                            self.model.forward_step(
                                np.array([[token]]), state.caches
                            )
                            request_traffic = request_traffic + decode_step_traffic(
                                self.model.config,
                                [context],
                                kv_bits_per_element=state.kv_bits,
                            )
                        self._waiting.remove(state)
                        state.status = RequestStatus.RUNNING
                        if tracer is not None:
                            tracer.lifecycle(request_id, "RUNNING", resumed=resumed)
                        state.prefill_pos = state.request.prompt_length
                        traffic = traffic + request_traffic
                        charge_format(
                            state,
                            request_traffic.kv_read_bytes
                            + request_traffic.kv_write_bytes,
                        )
                        prefill_done += state.request.prompt_length
                        self._running.append(state)
                        if not resumed:
                            self._emit(state, logits[0, -1, :], first=True)
                            new_tokens += 1
                    else:
                        cost = state.prefill_tokens
                        hit, prefill_cost, emitted = self._prefill_paged(state)
                        traffic = traffic + prefill_cost
                        charge_format(
                            state,
                            prefill_cost.kv_read_bytes
                            + prefill_cost.kv_write_bytes,
                        )
                        new_tokens += emitted
                        prefix_hit_tokens += hit
                        prefill_done += cost - hit
                        if hit:
                            saved = saved + prefix_cache_savings(
                                self.model.config,
                                hit,
                                kv_bits_per_element=state.kv_bits,
                            )
            except InjectedFault as fault:
                # Per-request isolation: the inner rollback paths have
                # already released this request's partial residency
                # (release is idempotent); quarantine or back off just
                # this request and keep serving the rest of the lane.
                self._release_residency(state)
                self._handle_request_fault(state, fault)
        if legacy and tracer is not None:
            tracer.end("step.prefill")

        ended = time.perf_counter()
        report = StepReport(
            step=self._step_index,
            prefills=executed_chunks + len(legacy),
            decodes=len(decodes),
            new_tokens=new_tokens,
            batch_tokens=len(decodes) + sum(chunk.tokens for chunk in plan.prefills),
            prefill_tokens=prefill_done,
            partial_prefills=partial,
            elapsed_seconds=ended - started,
            traffic=traffic,
            preemptions=preemptions,
            evicted_blocks=(
                0
                if self._pool is None
                else self._pool.evicted_blocks - evicted_before
            ),
            prefix_hit_tokens=prefix_hit_tokens,
            prefix_saved_bytes=saved.total_bytes,
            kv_copy_bytes=self._hot_stats.copy_bytes - copy_before,
            kv_dequant_bytes=self._hot_stats.dequant_bytes - dequant_before,
            attention_dispatches=self._attn_stats.dispatches - dispatches_before,
            attention_grouped_requests=(
                self._attn_stats.grouped_requests - grouped_before
            ),
            attention_padded_reads=padded_reads,
            kv_format_bytes=tuple(sorted(fmt_bytes.items())),
        )
        self._reports.append(report)
        self._step_index += 1
        if tracer is not None:
            tracer.end("step", ts=tracer.to_us(ended))
        telemetry_config = self.config.telemetry
        if telemetry_config.log_steps and (
            report.step % telemetry_config.log_every == 0
        ):
            log_step_summary(self.telemetry.engine_label, report)
        return StepOutputs(report=report, deltas=tuple(self._step_deltas))

    def _decode_tokens(self, states: list[RequestState]) -> np.ndarray:
        """Gather the decode batch's next-token ids into reused scratch.

        The model's embedding lookup copies out of the array, so the
        engine-held buffer can be refilled in place next step.
        """
        batch = len(states)
        buf = self._decode_token_buf
        if buf is None or buf.shape[0] < batch:
            capacity = max(batch, self.config.max_batch_size)
            buf = np.empty((capacity, 1), dtype=np.int64)
            self._decode_token_buf = buf
        for index, state in enumerate(states):
            buf[index, 0] = state.last_token
        return buf[:batch]

    # -- per-request KV formats -------------------------------------------

    def _caches_for(self, state: RequestState) -> list[KVCache]:
        """Unpaged per-layer caches honoring the request's KV format.

        Non-private requests (no override, or an override whose byte
        layout matches the engine default) share the engine's memoized
        factory; private requests build their own codec stack.
        """
        if not state.kv_private:
            return self._cache_factory()
        assert state.kv_format is not None  # kv_private implies an override
        return state.kv_format.codecs(self._n_layers)

    def _sequence_for(
        self, state: RequestState, reserve_logits: bool = True
    ) -> "SequenceKV":
        """Paged sequence for one request, honoring its KV format.

        A private request carries per-layer codec overrides and opts
        out of prefix sharing — cached blocks hold default-format
        bytes it can neither read nor contribute to.
        """
        assert self._pool is not None
        codecs = None
        if state.kv_private:
            assert state.kv_format is not None  # kv_private implies an override
            codecs = state.kv_format.codecs(self._n_layers)
        return self._pool.create_sequence(
            state.request.prompt,
            reserve_logits=reserve_logits,
            codecs=codecs,
            shareable=not state.kv_private,
        )

    # -- chunked prefill --------------------------------------------------

    def _plan_waves(self, chunks: list[PrefillChunk]) -> list[list[PrefillChunk]]:
        """Partition one step's chunks into prefix-ordered waves.

        The chunk lane fuses every chunk into one flat pass, but a
        fresh request can only map a prefix-cache hit *after* the
        donor's blocks are registered — which happens when the donor's
        prompt completes.  So a chunk whose prompt shares at least one
        whole block with an earlier same-step chunk that completes is
        deferred to a later wave: the earlier prompt registers first,
        and the deferred request maps its blocks instead of recomputing
        them (exactly what the sequential admission order used to
        give).  Requests with distinct prompts all land in wave one.
        """
        if (
            self._pool is None
            or self._pool.prefix_cache is None
            or len(chunks) <= 1
        ):
            return [chunks] if chunks else []
        block = self._pool.block_size
        waves: list[list[PrefillChunk]] = []
        committed: list[PrefillChunk] = []
        remaining = list(chunks)
        while remaining:
            wave: list[PrefillChunk] = []
            deferred: list[PrefillChunk] = []
            for chunk in remaining:
                if chunk.state.caches is not None:
                    # A continuation already holds its cache; its hit
                    # opportunity has passed.
                    wave.append(chunk)
                    continue
                prompt = chunk.request.prompt

                def blocks_from(
                    donors: list[PrefillChunk], prompt: np.ndarray = prompt
                ) -> int:
                    # `prompt` bound as a default: the closure is only
                    # called within this iteration, but binding keeps
                    # the capture explicit (and loop-safe).
                    return max(
                        (
                            _common_prefix(prompt, donor.request.prompt) // block
                            for donor in donors
                            if donor.completes
                        ),
                        default=0,
                    )

                # Defer only when waiting strictly improves on what the
                # pool (or an earlier wave) already offers this prompt.
                have = max(
                    self._pool.peek_shared(prompt) // block,
                    blocks_from(committed),
                )
                if blocks_from(wave) > have:
                    deferred.append(chunk)
                else:
                    wave.append(chunk)
            waves.append(wave)
            committed.extend(wave)
            remaining = deferred
        return waves

    def _begin_chunks(self, chunks: list[PrefillChunk]) -> list[_ChunkRun]:
        """Materialize caches for this step's chunks (fallible setup).

        A fresh request gets its cache here — through the prefix cache
        in pool mode, which may shrink the executed chunk (cached
        positions are mapped, not computed).  Setup runs per chunk
        inside that request's fault-attribution scope: an injected
        fault drops only the faulted chunk (quarantine or backoff) and
        the rest of the wave proceeds.  If setup raises anything
        *else*, every chunk already set up is rolled back and the error
        propagates (blanket-with-reraise: an unknown failure class must
        not be absorbed) so no request loses pool blocks or its queue
        slot.
        """
        runs: list[_ChunkRun] = []
        for chunk in chunks:
            state = chunk.state
            request_id = state.request.request_id
            try:
                with request_scope(request_id):
                    hit = 0
                    if state.caches is None:
                        if self._pool is not None:
                            seq = self._sequence_for(state)
                            seq.owner = request_id
                            state.kv = seq
                            state.caches = seq.caches
                            state.prefill_pos = seq.shared_tokens
                            hit = seq.shared_tokens
                        else:
                            state.caches = self._caches_for(state)
                    inject("model.chunk", request_id)
            except InjectedFault as fault:
                self._release_residency(state)
                self._handle_request_fault(state, fault)
                continue
            except Exception:
                for run in runs:
                    self._rollback_chunk(run.state)
                self._release_residency(state)
                raise
            tokens = min(
                chunk.tokens,
                state.request.prompt_length - state.prefill_pos,
            )
            runs.append(_ChunkRun(state=state, tokens=tokens, prefix_hit=hit))
        return runs

    def _release_residency(self, state: RequestState) -> None:
        """Give a request's KV memory back (shared rollback primitive).

        The one place residency is torn down — chunk-failure rollback,
        preemption of running or half-prefilled requests, and client
        aborts all release through here, so every path returns paged
        blocks (and the references taken on shared prefix blocks) to
        the pool identically.
        """
        if state.kv is not None:
            state.kv.release()
            state.kv = None
        state.caches = None
        state.prefill_pos = 0

    def _rollback_chunk(self, state: RequestState) -> None:
        """Undo a chunk participant: release its cache, stay queued."""
        self._release_residency(state)
        state.status = RequestStatus.WAITING

    # -- failure semantics ------------------------------------------------

    def _expire_deadlines(self, now: float) -> None:
        """Fail every queued/running request past its deadline."""
        expired = [
            state
            for state in itertools.chain(self._waiting, self._running)
            if state.deadline is not None and now >= state.deadline
        ]
        for state in expired:
            if state in self._running:
                self._running.remove(state)
            else:
                self._waiting.remove(state)
            self._release_residency(state)
            self._deadline_expired += 1
            self._fail_terminal(
                state,
                DeadlineExceededError(
                    f"request {state.request.request_id} exceeded "
                    f"deadline_s={state.request.params.deadline_s} after "
                    f"{len(state.generated)} tokens"
                ),
                reason="deadline",
            )

    def _handle_request_fault(
        self, state: RequestState, fault: InjectedFault
    ) -> None:
        """Route an attributed fault: bounded retry, else quarantine."""
        if (
            isinstance(fault, TransientFault)
            and state.retries < self.config.retry.max_retries
        ):
            self._backoff(state, fault)
        else:
            self._quarantine(state, fault)

    def _backoff(self, state: RequestState, fault: InjectedFault) -> None:
        """Re-queue a transiently faulted request with bounded backoff.

        Residency is released and the request re-enters the waiting
        queue in arrival order (exactly the preemption path), hidden
        from the planner until ``retry_at_step``; re-admission replays
        its cache bitwise, so a retried request's tokens are identical
        to an unfaulted run's.
        """
        if state in self._running:
            self._running.remove(state)
            index = bisect.bisect_left(
                [waiting.request.request_id for waiting in self._waiting],
                state.request.request_id,
            )
            self._waiting.insert(index, state)
        self._release_residency(state)
        state.status = RequestStatus.WAITING
        state.failure = fault
        state.retries += 1
        state.retry_at_step = (
            self._step_index + 1 + self.config.retry.delay_steps(state.retries)
        )
        self._fault_retries += 1
        if self._tracer is not None:
            self._tracer.lifecycle(
                state.request.request_id,
                "RETRY",
                site=fault.site,
                retries=state.retries,
                at_step=state.retry_at_step,
            )

    def _quarantine(self, state: RequestState, fault: InjectedFault) -> None:
        """Terminal isolation of one faulted request.

        The victim moves to FAILED and releases its residency through
        the shared rollback primitive; its batchmates' KV state is
        untouched (the caller already rolled any shared step work back
        to the pre-step watermarks).
        """
        if state in self._running:
            self._running.remove(state)
        elif state in self._waiting:
            self._waiting.remove(state)
        self._release_residency(state)
        self._fail_terminal(state, fault, reason="error")

    def _fail_terminal(
        self, state: RequestState, failure: BaseException | None, reason: str
    ) -> None:
        """Move a request to FAILED (residency already released)."""
        state.status = RequestStatus.FAILED
        state.finish_reason = reason
        state.failure = failure
        state.finish_step = self._step_index
        state.finish_time = time.perf_counter()
        self._failed += 1
        # The handle keeps its state reference, so result() raises the
        # typed failure; like aborts, the id leaves the live-handle map.
        self._handles.pop(state.request.request_id, None)
        if self._tracer is not None:
            self._tracer.lifecycle(
                state.request.request_id,
                "FAILED",
                reason=reason,
                tokens=len(state.generated),
            )

    def _truncate_caches(self, state: RequestState, length: int) -> None:
        """Roll one request's KV back to ``length`` positions."""
        if state.kv is not None:
            state.kv.rollback(length)
        elif state.caches is not None:
            for cache in state.caches:
                if cache.length > length:
                    cache.truncate(length)

    def _recover_step_fault(
        self,
        fault: InjectedFault,
        runs: list[_ChunkRun],
        decodes: list[RequestState],
        watermarks: list[int],
    ) -> None:
        """Batch-level rollback after a mid-forward injected fault.

        Every decode participant's KV is truncated back to its
        pre-step watermark (captured before the forward), every chunk
        participant returns to a clean waiting state, and the grouped-
        attention dispatcher is rebuilt (its workspaces track synced
        cache lengths that a truncation would invalidate; fresh
        workspaces re-sync bitwise).  An attributed victim is then
        quarantined or backed off; an unattributed fault counts as one
        batch retry — the whole step simply replays next tick, bitwise.
        """
        for state, length in zip(decodes, watermarks):
            self._truncate_caches(state, length)
        victim: RequestState | None = None
        if fault.request_id is not None:
            for state in itertools.chain(
                (run.state for run in runs), decodes
            ):
                if state.request.request_id == fault.request_id:
                    victim = state
                    break
        for run in runs:
            if run.state is not victim:
                self._rollback_chunk(run.state)
        if self._dispatcher is not None:
            self._dispatcher = BucketedAttention(
                pad_waste_cap=self.config.attention_pad_waste
            )
        if victim is None:
            self._fault_retries += 1
            return
        self._release_residency(victim)
        self._handle_request_fault(victim, fault)

    # -- paged KV pool paths ----------------------------------------------

    def _reserve_step_blocks(
        self, decodes: list[RequestState], runs: list[_ChunkRun]
    ) -> tuple[list[RequestState], list[_ChunkRun], int]:
        """Shrink the step until its block growth fits the pool.

        Every surviving decode appends one position and every chunk its
        token count; when the pool (free plus reclaimable prefix-cache
        blocks) cannot cover the worst-case growth, the latest-arrived
        request — running, chunked this step, or half-prefilled but
        unscheduled — is preempted: its blocks return to the pool and
        it recomputes from scratch on re-admission.
        """
        assert self._pool is not None
        preemptions = 0
        tracer = self._tracer
        if tracer is not None:
            tracer.begin("step.preempt", decodes=len(decodes), chunks=len(runs))
        while decodes or runs:
            demand = sum(state.kv.blocks_for_append(1) for state in decodes) + sum(
                run.state.kv.blocks_for_append(run.tokens) for run in runs
            )
            if demand <= self._pool.free_blocks + self._pool.reclaimable_blocks:
                break
            holders = [state for state in self._waiting if state.kv is not None]
            victim = self._preemptor.select_victim(decodes + holders)
            if victim in decodes:
                decodes.remove(victim)
                self._preempt(victim)
            else:
                runs = [run for run in runs if run.state is not victim]
                self._preempt_prefill(victim)
            preemptions += 1
        if tracer is not None:
            tracer.end("step.preempt")
        return decodes, runs, preemptions

    def _preempt(self, state: RequestState) -> None:
        """Evict a running request's KV residency (recompute-on-resume)."""
        self._running.remove(state)
        self._release_residency(state)
        state.status = RequestStatus.WAITING
        state.preemptions += 1
        if self._tracer is not None:
            self._tracer.lifecycle(state.request.request_id, "PREEMPTED")
        # Re-enter the waiting queue in arrival order so FCFS resumes
        # the oldest preempted request first.
        index = bisect.bisect_left(
            [waiting.request.request_id for waiting in self._waiting],
            state.request.request_id,
        )
        self._waiting.insert(index, state)

    def _preempt_prefill(self, state: RequestState) -> None:
        """Evict a half-prefilled request's partial cache.

        The request keeps its waiting-queue position (arrival order)
        but restarts its prefill from scratch when re-admitted; with
        prefix caching on, any blocks its earlier chunks registered
        may still be re-mapped instead of recomputed.
        """
        self._release_residency(state)
        state.status = RequestStatus.WAITING
        state.preemptions += 1
        if self._tracer is not None:
            self._tracer.lifecycle(state.request.request_id, "PREEMPTED")

    def _prefill_paged(self, state: RequestState) -> tuple[int, StepTraffic, int]:
        """Prefill (or resume) one request through the paged pool.

        The legacy whole-admission path, kept for resumed requests (a
        previously preempted, mid-decode request rebuilds its cache
        bitwise by replaying its exact original call pattern — suffix
        prefill, then one single-token step per already-emitted token —
        and emits nothing until it rejoins the decode batch) and for
        fresh prefills when chunking is off.

        Returns ``(prefix_hit_tokens, traffic, tokens_emitted)``.
        """
        assert self._pool is not None
        request = state.request
        prompt = request.prompt
        resumed = bool(state.generated)
        seq = self._sequence_for(state, reserve_logits=not resumed)
        seq.owner = request.request_id
        hit = seq.shared_tokens
        logits = None
        try:
            state.kv = seq
            state.caches = seq.caches
            traffic = StepTraffic()
            suffix = prompt[hit:]
            if suffix.size:
                logits = self.model.forward_step(suffix.reshape(1, -1), state.caches)
                traffic = traffic + prefill_traffic(
                    self.model.config,
                    request.prompt_length,
                    kv_bits_per_element=state.kv_bits,
                    cached_prefix_tokens=hit,
                )
            for token in state.generated[:-1]:
                context = state.context_length
                self.model.forward_step(np.array([[token]]), state.caches)
                traffic = traffic + decode_step_traffic(
                    self.model.config,
                    [context],
                    kv_bits_per_element=state.kv_bits,
                )
        except Exception:
            # The request stays queued; give its references back so a
            # failed prefill cannot leak pool blocks.
            seq.release()
            state.kv = None
            state.caches = None
            raise
        self._waiting.remove(state)
        state.status = RequestStatus.RUNNING
        if self._tracer is not None:
            self._tracer.lifecycle(request.request_id, "RUNNING", resumed=resumed)
        state.prefill_pos = request.prompt_length
        self._pool.register_prefix(seq, prompt)
        self._running.append(state)
        if resumed:
            return hit, traffic, 0
        if logits is None:
            # Unreachable by construction — reserve_logits caps prefix
            # sharing at prompt_length - 1, so a fresh prefill always
            # recomputes at least the final prompt position — but a
            # shared-cap regression must fail loudly here, not as an
            # AttributeError on None inside _emit.
            raise ModelError(
                "paged prefill produced no logits for a fresh request "
                "(prefix sharing must leave >= 1 position to compute)"
            )
        self._emit(state, logits[0, -1, :], first=True)
        return hit, traffic, 1

    def _emit(
        self, state: RequestState, logits: np.ndarray, first: bool = False
    ) -> None:
        """Select one token for a request and update its lifecycle.

        Every emission produces a :class:`TokenDelta` — appended to the
        step's outputs and pushed to the request's handle — so the
        token is observable immediately, not only after ``drain``.  A
        token in the request's ``stop_token_ids`` ends the request
        early (``finish_reason="stop"``); the length cap ends it with
        ``finish_reason="length"``.
        """
        request = state.request
        params = request.params
        tracer = self._tracer
        if tracer is None:
            token = select_next_token(
                logits,
                params.temperature,
                params.top_k,
                state.rng,
                top_p=params.top_p,
            )
        else:
            with tracer.span("step.sample", request=request.request_id):
                token = select_next_token(
                    logits,
                    params.temperature,
                    params.top_k,
                    state.rng,
                    top_p=params.top_p,
                )
        now = time.perf_counter()
        state.generated.append(token)
        state.token_times.append(now)
        if first:
            state.first_token_step = self._step_index
            state.first_token_time = now
        if params.is_stop(token):
            state.stopped = True
        finished = state.done
        if finished:
            state.finish_reason = "stop" if state.stopped else "length"
        delta = TokenDelta(
            request_id=request.request_id,
            index=len(state.generated) - 1,
            token=token,
            finished=finished,
            finish_reason=state.finish_reason if finished else None,
            time=now,
        )
        self._step_deltas.append(delta)
        handle = self._handles.get(request.request_id)
        if handle is not None:
            handle._push(delta)
        if finished:
            state.status = RequestStatus.FINISHED
            state.finish_step = self._step_index
            state.finish_time = now
            if tracer is not None:
                tracer.lifecycle(
                    request.request_id,
                    "FINISHED",
                    reason=state.finish_reason,
                    tokens=len(state.generated),
                )
            if state.kv is not None:
                # Drop the request's block references; blocks shared
                # through the prefix cache stay resident for future hits.
                state.kv.release()
                state.kv = None
            state.caches = None  # release KV memory
            # Leave the running set immediately (not at end of step): if
            # a later prefill in the same step raises, the request must
            # not linger in _running with its caches already released.
            if state in self._running:
                self._running.remove(state)
            done = complete(state)
            self._finished[request.request_id] = done
            self._request_records.append(done.metrics)
            if handle is not None:
                handle._complete(done)
            self._handles.pop(request.request_id, None)

    # -- collection -------------------------------------------------------

    def _stuck_summary(self) -> str:
        """Ids of every stuck request, with status/failure detail.

        The comma-separated id list stays contiguous (tooling greps
        ``stuck request ids: 0, 1``); per-request detail — status,
        retry count, and the last recorded failure — follows in
        brackets so a drain timeout explains *why* each request is
        stuck, not just that it is.
        """
        states = sorted(
            self._waiting + self._running,
            key=lambda state: state.request.request_id,
        )
        ids = ", ".join(str(state.request.request_id) for state in states)
        details = []
        for state in states:
            parts = [state.status.value]
            if state.retries:
                parts.append(f"{state.retries} retries")
            if state.failure is not None:
                parts.append(
                    f"last failure: {type(state.failure).__name__}: "
                    f"{state.failure}"
                )
            details.append(f"{state.request.request_id}: {', '.join(parts)}")
        return f"{ids} [{'; '.join(details)}]"

    def run_until(
        self,
        condition: Callable[[], bool],
        max_steps: int | None = None,
        what: str = "run_until",
    ) -> None:
        """Step the engine until ``condition()`` holds.

        The shared stepping loop under every blocking consumer —
        :meth:`drain`, :meth:`RequestHandle.result`, handle token
        iteration, and :meth:`LLM.generate` — with the engine's
        progress guards applied once, here:

        * ``max_steps`` bounds the wait (raising
          :class:`~repro.errors.ModelError` naming the stuck request
          ids) — the guard for preemption thrash in an undersized pool;
          ``what`` names the waiting operation in that error, so a
          timeout points at the call the client actually made;
        * a step that makes no progress at all (no prefill, no decode,
          no preemption) while requests are queued is a scheduler
          invariant violation and raises immediately;
        * an engine that goes idle before the condition holds raises
          (the condition can never become true by stepping further).
        """
        if max_steps is not None and max_steps < 1:
            raise ModelError(f"max_steps must be >= 1, got {max_steps}")
        steps = 0
        while not condition():
            if not self.has_work():
                raise ModelError(
                    "engine drained idle before the awaited condition held "
                    "(e.g. waiting on a request that can no longer emit)"
                )
            if max_steps is not None and steps >= max_steps:
                raise ModelError(
                    f"{what} did not finish within max_steps={max_steps}: "
                    f"{len(self._waiting)} waiting / {len(self._running)} "
                    f"running requests remain (stuck request ids: "
                    f"{self._stuck_summary()})"
                )
            # A step that only fails/retries requests, or that idles
            # because every waiting request is inside its retry backoff
            # window, still counts as progress.
            failures_before = self._failed + self._fault_retries
            backoff_pending = any(
                state.retry_at_step > self._step_index
                for state in self._waiting
            )
            report = self.step().report
            steps += 1
            no_progress = (
                report.prefills == 0
                and report.decodes == 0
                and report.preemptions == 0
                and self._failed + self._fault_retries == failures_before
                and not backoff_pending
            )
            if no_progress and self.has_work():
                raise ModelError(
                    "scheduler made no progress with requests queued "
                    f"({len(self._waiting)} waiting / {len(self._running)} "
                    f"running; stuck request ids: {self._stuck_summary()}); "
                    "this is a scheduling bug, not a capacity limit"
                )

    def run_until_idle(self, max_steps: int | None = None) -> None:
        """Step until no request is waiting or running.

        Unlike :meth:`drain` this does not collect: finished requests
        stay claimable through their handles or :meth:`pop_finished`,
        which is what lets :meth:`LLM.generate` drain a shared engine
        without swallowing results submitted elsewhere.
        """
        self.run_until(
            lambda: not self.has_work(), max_steps=max_steps, what="drain"
        )

    def drain(self, max_steps: int | None = None) -> list[CompletedRequest]:
        """Step until idle; return uncollected finished requests by id.

        Collect-once semantics (like :meth:`pop_finished`): returned
        results are released, so a long-lived engine reused across many
        batches does not retain every token array ever served.
        Aggregate metrics keep accumulating regardless.

        Args:
            max_steps: optional guard — raise
                :class:`~repro.errors.ModelError` instead of looping
                forever if the queue has not drained after this many
                steps (e.g. a scheduler bug starving a request, or
                preemption thrash in an undersized KV pool).  The error
                names the stuck request ids.
        """
        self.run_until_idle(max_steps=max_steps)
        return self.pop_finished()

    def pop_finished(self) -> list[CompletedRequest]:
        """Return and clear currently finished requests (id order)."""
        done = [self._finished[key] for key in sorted(self._finished)]
        self._finished.clear()
        return done

    def metrics(self) -> EngineMetrics:
        """Aggregate throughput/latency/traffic over the engine's life.

        Request records accumulate independently of
        :meth:`pop_finished`, so streaming consumers keep full latency
        statistics.
        """
        return summarize(
            self._reports,
            self._request_records,
            aborted=self._aborted,
            failed=self._failed,
            fault_retries=self._fault_retries,
            deadline_expired=self._deadline_expired,
            shed=self._shed,
            degraded=self._degraded,
        )
