"""The continuous-batching inference engine.

One :class:`Engine` owns a model and serves many requests concurrently:

* :meth:`Engine.submit` enqueues a request (admission is the
  scheduler's job, so submissions are cheap and can arrive mid-stream);
* :meth:`Engine.step` runs one scheduler-planned model step — newly
  admitted requests prefill (producing their first token), and every
  running request decodes its next token in a *single* batched model
  call (:meth:`repro.llm.transformer.CausalLM.forward_decode_batch`);
* :meth:`Engine.drain` steps until the queue is empty and returns the
  finished requests.

Decode batching keeps per-request KV caches at their exact lengths (no
cross-request padding): request tokens are gathered into a ``(batch,
1)`` array, the big GeMMs run once over the batch, and logits scatter
back to the per-request states.  Every emitted token is bitwise
identical to what a sequential :func:`repro.llm.generation.generate`
call would produce — the parity tests pin this down for FP16 and
Anda-compressed KV caches.

With ``kv_pool=True`` the engine swaps per-request exact-length caches
for the paged memory subsystem (:mod:`repro.serve.kvpool`): KV lives
in a fixed pool of refcounted blocks, requests sharing a prompt prefix
map the same physical blocks (skipping the shared prefill compute and
KV writes), admission is planned against the free-block budget, and
under pool pressure the engine preempts the latest-arrived running
requests (recompute-on-resume) so admission never deadlocks.  Paged
decode stores the same float16 bytes the unpaged path stores, so token
parity is preserved bitwise in both KV modes.
"""

from __future__ import annotations

import bisect
import itertools
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ModelError
from repro.hw.traffic import (
    StepTraffic,
    decode_step_traffic,
    prefill_traffic,
    prefix_cache_savings,
)
from repro.llm.generation import select_next_token
from repro.llm.kv_quant import kv_bits_per_element, make_cache_factory, make_kv_codec
from repro.llm.transformer import CausalLM
from repro.serve.kvpool.pool import DEFAULT_BLOCK_SIZE, KVPool
from repro.serve.kvpool.preempt import Preemptor
from repro.serve.metrics import EngineMetrics, StepReport, summarize
from repro.serve.request import (
    CompletedRequest,
    Request,
    RequestMetrics,
    RequestState,
    RequestStatus,
    complete,
)
from repro.serve.scheduler import SchedulerPolicy, get_policy, plan_step


@dataclass(frozen=True)
class EngineConfig:
    """Serving knobs of one engine instance.

    Args:
        max_batch_size: concurrent requests resident in KV memory.
        max_batch_tokens: scheduler token budget per step (decodes cost
            1, prefills cost their prompt length).
        policy: admission order — ``"fcfs"`` or
            ``"shortest-prompt-first"``.
        kv_mode: ``"fp16"`` (paper baseline) or ``"anda"`` (compressed
            KV through :mod:`repro.llm.kv_quant`).
        kv_mantissa_bits: Anda mantissa length when ``kv_mode="anda"``.
        kv_pool: store KV in the paged block pool
            (:mod:`repro.serve.kvpool`) instead of per-request
            exact-length caches.
        kv_pool_blocks: physical blocks in the pool (kv_pool mode).
        kv_block_size: token positions per block; defaults to 64, the
            Anda group size (any size stays bitwise exact — grouping is
            per position along the head dimension).
        prefix_caching: share prompt-prefix blocks across requests
            (kv_pool mode).
    """

    max_batch_size: int = 8
    max_batch_tokens: int = 256
    policy: str = "fcfs"
    kv_mode: str = "fp16"
    kv_mantissa_bits: int = 8
    kv_pool: bool = False
    kv_pool_blocks: int = 64
    kv_block_size: int = DEFAULT_BLOCK_SIZE
    prefix_caching: bool = True

    def __post_init__(self) -> None:
        # A bad config must fail at construction, never mid-step with
        # requests already accepted.
        if self.max_batch_size < 1:
            raise ModelError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_batch_tokens < 1:
            raise ModelError(
                f"max_batch_tokens must be >= 1, got {self.max_batch_tokens}"
            )
        if self.kv_pool_blocks < 2:
            # One block of CoW slack is always reserved, so a 1-block
            # pool could not hold even a 1-token request.
            raise ModelError(f"kv_pool_blocks must be >= 2, got {self.kv_pool_blocks}")
        if self.kv_block_size < 1:
            raise ModelError(f"kv_block_size must be >= 1, got {self.kv_block_size}")
        kv_bits_per_element(self.kv_mode, self.kv_mantissa_bits)

    @property
    def kv_bits(self) -> float:
        """Stored bits per cached K/V element under this config."""
        return kv_bits_per_element(self.kv_mode, self.kv_mantissa_bits)


class Engine:
    """Continuous-batching serving engine over one :class:`CausalLM`."""

    def __init__(self, model: CausalLM, config: EngineConfig | None = None) -> None:
        self.model = model
        self.config = config or EngineConfig()
        self._policy: SchedulerPolicy = get_policy(self.config.policy)
        self._cache_factory = make_cache_factory(
            model, self.config.kv_mode, self.config.kv_mantissa_bits
        )
        self._pool: KVPool | None = None
        self._preemptor = Preemptor()
        if self.config.kv_pool:
            self._pool = KVPool(
                model.config,
                num_blocks=self.config.kv_pool_blocks,
                block_size=self.config.kv_block_size,
                codec=make_kv_codec(self.config.kv_mode, self.config.kv_mantissa_bits),
                enable_prefix_cache=self.config.prefix_caching,
            )
        self._ids = itertools.count()
        self._waiting: list[RequestState] = []
        self._running: list[RequestState] = []
        self._finished: dict[int, CompletedRequest] = {}
        self._request_records: list[RequestMetrics] = []
        self._reports: list[StepReport] = []
        self._step_index = 0

    # -- admission --------------------------------------------------------

    def submit(
        self,
        prompt_tokens: np.ndarray,
        max_new_tokens: int,
        temperature: float = 0.0,
        top_k: int = 20,
        seed: int = 0,
    ) -> int:
        """Enqueue one request; returns its engine-assigned id.

        Validation mirrors :func:`repro.llm.generation.generate`, so a
        request the engine accepts is one ``generate`` would accept.
        """
        request = Request(
            request_id=next(self._ids),
            prompt=np.asarray(prompt_tokens),
            max_new_tokens=max_new_tokens,
            temperature=temperature,
            top_k=top_k,
            seed=seed,
        )
        total = request.prompt_length + max_new_tokens
        if total > self.model.config.max_seq_len:
            raise ModelError(
                f"prompt + continuation ({request.prompt_length} + "
                f"{max_new_tokens}) exceeds max_seq_len "
                f"{self.model.config.max_seq_len}"
            )
        vocab = self.model.config.vocab_size
        if int(request.prompt.min()) < 0 or int(request.prompt.max()) >= vocab:
            raise ModelError(
                f"prompt token ids must lie in [0, {vocab}); a deferred "
                "prefill failure would lose the request"
            )
        if self._pool is not None:
            needed = self._pool.blocks_for_tokens(total)
            limit = self._pool.max_sequence_blocks()
            if needed > limit:
                raise ModelError(
                    f"request needs {needed} KV blocks "
                    f"({total} tokens at block size "
                    f"{self._pool.block_size}) but the pool guarantees "
                    f"only {limit}; raise kv_pool_blocks"
                )
        state = RequestState(
            request=request,
            arrival_step=self._step_index,
            arrival_time=time.perf_counter(),
        )
        self._waiting.append(state)
        return request.request_id

    # -- stepping ---------------------------------------------------------

    def has_work(self) -> bool:
        return bool(self._waiting or self._running)

    def step(self) -> StepReport:
        """Run one scheduler-planned model step (prefills + one decode).

        Decodes run first against the step's starting context lengths,
        then admitted prefills run; a freshly prefilled request joins
        the decode batch from the *next* step.  In kv_pool mode the
        decode batch first reserves its block growth — preempting the
        latest-arrived running requests when the pool cannot cover it —
        and prefills go through the prefix cache.
        """
        started = time.perf_counter()  # include scheduling in step cost
        plan = plan_step(
            self._waiting,
            self._running,
            self._policy,
            self.config.max_batch_size,
            self.config.max_batch_tokens,
            blocks=(None if self._pool is None else self._pool.planner(self._running)),
        )
        traffic = StepTraffic()
        new_tokens = 0
        preemptions = 0
        prefix_hit_tokens = 0
        saved = StepTraffic()
        evicted_before = 0 if self._pool is None else self._pool.evicted_blocks

        decodes = list(plan.decodes)
        if self._pool is not None:
            decodes, preemptions = self._reserve_decode_blocks(decodes)

        if decodes:
            traffic = traffic + decode_step_traffic(
                self.model.config,
                [state.context_length for state in decodes],
                kv_bits_per_element=self.config.kv_bits,
                batched=True,
            )
            tokens = np.array([[state.last_token] for state in decodes])
            logits = self.model.forward_decode_batch(
                tokens, [state.caches for state in decodes]
            )
            for index, state in enumerate(decodes):
                self._emit(state, logits[index, -1, :])
                new_tokens += 1

        for state in plan.prefills:
            if self._pool is None:
                # Run the fallible work (cache build, model prefill)
                # before dequeuing: if either raises, the request stays
                # queued instead of vanishing.
                state.caches = self._cache_factory()
                logits = self.model.forward_step(
                    state.request.prompt.reshape(1, -1), state.caches
                )
                self._waiting.remove(state)
                state.status = RequestStatus.RUNNING
                traffic = traffic + prefill_traffic(
                    self.model.config,
                    state.request.prompt_length,
                    kv_bits_per_element=self.config.kv_bits,
                )
                self._running.append(state)
                self._emit(state, logits[0, -1, :], first=True)
                new_tokens += 1
            else:
                hit, prefill_cost, emitted = self._prefill_paged(state)
                traffic = traffic + prefill_cost
                new_tokens += emitted
                prefix_hit_tokens += hit
                if hit:
                    saved = saved + prefix_cache_savings(
                        self.model.config,
                        hit,
                        kv_bits_per_element=self.config.kv_bits,
                    )

        report = StepReport(
            step=self._step_index,
            prefills=len(plan.prefills),
            decodes=len(decodes),
            new_tokens=new_tokens,
            batch_tokens=len(decodes)
            + sum(state.prefill_tokens for state in plan.prefills),
            elapsed_seconds=time.perf_counter() - started,
            traffic=traffic,
            preemptions=preemptions,
            evicted_blocks=(
                0
                if self._pool is None
                else self._pool.evicted_blocks - evicted_before
            ),
            prefix_hit_tokens=prefix_hit_tokens,
            prefix_saved_bytes=saved.total_bytes,
        )
        self._reports.append(report)
        self._step_index += 1
        return report

    # -- paged KV pool paths ----------------------------------------------

    def _reserve_decode_blocks(
        self, decodes: list[RequestState]
    ) -> tuple[list[RequestState], int]:
        """Shrink the decode batch until its block growth fits the pool.

        Every surviving decode appends one position this step; when the
        pool (free plus reclaimable prefix-cache blocks) cannot cover
        the worst-case growth, the latest-arrived request is preempted —
        its blocks return to the pool and it re-enters the waiting
        queue for recompute-on-resume.
        """
        assert self._pool is not None
        preemptions = 0
        while decodes:
            demand = sum(state.kv.blocks_for_append(1) for state in decodes)
            if demand <= self._pool.free_blocks + self._pool.reclaimable_blocks:
                break
            victim = self._preemptor.select_victim(decodes)
            decodes.remove(victim)
            self._preempt(victim)
            preemptions += 1
        return decodes, preemptions

    def _preempt(self, state: RequestState) -> None:
        """Evict a running request's KV residency (recompute-on-resume)."""
        self._running.remove(state)
        state.kv.release()
        state.kv = None
        state.caches = None
        state.status = RequestStatus.WAITING
        state.preemptions += 1
        # Re-enter the waiting queue in arrival order so FCFS resumes
        # the oldest preempted request first.
        index = bisect.bisect_left(
            [waiting.request.request_id for waiting in self._waiting],
            state.request.request_id,
        )
        self._waiting.insert(index, state)

    def _prefill_paged(self, state: RequestState) -> tuple[int, StepTraffic, int]:
        """Prefill (or resume) one request through the paged pool.

        A fresh request maps any cached prompt prefix, prefills only
        the uncached suffix, and emits its first token.  A resumed
        (previously preempted) request rebuilds its cache bitwise by
        replaying its exact original call pattern — suffix prefill,
        then one single-token step per already-emitted token — and
        emits nothing until it rejoins the decode batch.

        Returns ``(prefix_hit_tokens, traffic, tokens_emitted)``.
        """
        assert self._pool is not None
        request = state.request
        prompt = request.prompt
        resumed = bool(state.generated)
        seq = self._pool.create_sequence(prompt, reserve_logits=not resumed)
        hit = seq.shared_tokens
        logits = None
        try:
            state.kv = seq
            state.caches = seq.caches
            traffic = StepTraffic()
            suffix = prompt[hit:]
            if suffix.size:
                logits = self.model.forward_step(suffix.reshape(1, -1), state.caches)
                traffic = traffic + prefill_traffic(
                    self.model.config,
                    request.prompt_length,
                    kv_bits_per_element=self.config.kv_bits,
                    cached_prefix_tokens=hit,
                )
            for token in state.generated[:-1]:
                context = state.context_length
                self.model.forward_step(np.array([[token]]), state.caches)
                traffic = traffic + decode_step_traffic(
                    self.model.config,
                    [context],
                    kv_bits_per_element=self.config.kv_bits,
                )
        except Exception:
            # The request stays queued; give its references back so a
            # failed prefill cannot leak pool blocks.
            seq.release()
            state.kv = None
            state.caches = None
            raise
        self._waiting.remove(state)
        state.status = RequestStatus.RUNNING
        self._pool.register_prefix(seq, prompt)
        self._running.append(state)
        if resumed:
            return hit, traffic, 0
        self._emit(state, logits[0, -1, :], first=True)
        return hit, traffic, 1

    def _emit(
        self, state: RequestState, logits: np.ndarray, first: bool = False
    ) -> None:
        """Select one token for a request and update its lifecycle."""
        request = state.request
        token = select_next_token(
            logits,
            request.temperature,
            request.top_k,
            state.rng,
        )
        state.generated.append(token)
        if first:
            state.first_token_step = self._step_index
            state.first_token_time = time.perf_counter()
        if state.done:
            state.status = RequestStatus.FINISHED
            state.finish_step = self._step_index
            state.finish_time = time.perf_counter()
            if state.kv is not None:
                # Drop the request's block references; blocks shared
                # through the prefix cache stay resident for future hits.
                state.kv.release()
                state.kv = None
            state.caches = None  # release KV memory
            # Leave the running set immediately (not at end of step): if
            # a later prefill in the same step raises, the request must
            # not linger in _running with its caches already released.
            if state in self._running:
                self._running.remove(state)
            done = complete(state)
            self._finished[request.request_id] = done
            self._request_records.append(done.metrics)

    # -- collection -------------------------------------------------------

    def drain(self, max_steps: int | None = None) -> list[CompletedRequest]:
        """Step until idle; return uncollected finished requests by id.

        Collect-once semantics (like :meth:`pop_finished`): returned
        results are released, so a long-lived engine reused across many
        batches does not retain every token array ever served.
        Aggregate metrics keep accumulating regardless.

        Args:
            max_steps: optional guard — raise
                :class:`~repro.errors.ModelError` instead of looping
                forever if the queue has not drained after this many
                steps (e.g. a scheduler bug starving a request, or
                preemption thrash in an undersized KV pool).

        A step that makes no progress at all (no prefill, no decode, no
        preemption) while requests are still queued is a scheduler
        invariant violation and raises immediately, ``max_steps`` or
        not.
        """
        if max_steps is not None and max_steps < 1:
            raise ModelError(f"max_steps must be >= 1, got {max_steps}")
        steps = 0
        while self.has_work():
            if max_steps is not None and steps >= max_steps:
                raise ModelError(
                    f"drain did not finish within max_steps={max_steps}: "
                    f"{len(self._waiting)} waiting / {len(self._running)} "
                    "running requests remain"
                )
            report = self.step()
            steps += 1
            no_progress = (
                report.prefills == 0
                and report.decodes == 0
                and report.preemptions == 0
            )
            if no_progress and self.has_work():
                raise ModelError(
                    "scheduler made no progress with requests queued "
                    f"({len(self._waiting)} waiting / {len(self._running)} "
                    "running); this is a scheduling bug, not a capacity "
                    "limit"
                )
        return self.pop_finished()

    def pop_finished(self) -> list[CompletedRequest]:
        """Return and clear currently finished requests (id order)."""
        done = [self._finished[key] for key in sorted(self._finished)]
        self._finished.clear()
        return done

    def metrics(self) -> EngineMetrics:
        """Aggregate throughput/latency/traffic over the engine's life.

        Request records accumulate independently of
        :meth:`pop_finished`, so streaming consumers keep full latency
        statistics.
        """
        return summarize(self._reports, self._request_records)


def serve_batch(
    model: CausalLM,
    prompts: list[np.ndarray],
    max_new_tokens: int,
    temperature: float = 0.0,
    top_k: int = 20,
    seed: int = 0,
    config: EngineConfig | None = None,
    engine: Engine | None = None,
) -> list[CompletedRequest]:
    """Serve a fixed batch of prompts to completion (sync wrapper).

    Submits every prompt up front, drains the engine, and returns
    results aligned with the input order.  Each request gets the same
    decoding recipe (including the seed — requests draw from
    independent per-request RNG streams, as ``generate`` would).

    Pass a pre-built ``engine`` to keep a handle on it afterwards
    (e.g. for :meth:`Engine.metrics`); ``config`` is ignored then.
    """
    if engine is None:
        engine = Engine(model, config)
    ids = [
        engine.submit(
            prompt,
            max_new_tokens,
            temperature=temperature,
            top_k=top_k,
            seed=seed,
        )
        for prompt in prompts
    ]
    wanted = set(ids)
    by_id = {}
    for done in engine.drain():
        if done.request_id in wanted:
            by_id[done.request_id] = done
        else:
            # A shared engine may finish requests submitted elsewhere;
            # leave those collectable instead of swallowing them.
            engine._finished[done.request_id] = done
    return [by_id[request_id] for request_id in ids]
