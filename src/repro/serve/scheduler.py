"""Step-level scheduling: which requests prefill or decode this step.

Every engine step is planned under a *token budget*: running requests
each consume one decode token, and waiting requests consume their whole
prompt length when admitted for prefill.  The budget
(``max_batch_tokens``) bounds the work of one model step — the knob
that trades time-to-first-token against decode throughput — while
``max_batch_size`` bounds concurrent KV-cache residency.

Admission *order* is a policy:

* **fcfs** — first come, first served (arrival order, the latency-fair
  default);
* **shortest-prompt-first** — admit cheap prompts first, maximizing how
  many requests reach the decode batch per unit of prefill budget
  (throughput-greedy, can starve long prompts under load).

Policies only order the waiting queue; the budget walk below is shared.
One guarantee is unconditional: if nothing is running and nothing fits,
the first candidate is admitted anyway (a prompt longer than the budget
must not deadlock the engine).

When the engine runs a paged KV pool, admission is additionally planned
against the pool's *free-block budget* (a :class:`KVBlockPlanner`):
a waiting request is only admitted when its prefill's block footprint —
after prefix-cache sharing — fits in what is free or reclaimable once
the running requests' decode growth is reserved.  Token budget bounds
the *work* of a step; block budget bounds the *memory* it commits.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ModelError
from repro.serve.request import RequestState


class KVBlockPlanner:
    """Block-budget view the engine hands the scheduler in pool mode.

    ``available_blocks`` is the pool headroom admissions may claim
    (free plus reclaimable prefix-cache blocks, minus the running
    requests' reserved decode growth); ``prefill_blocks`` is one
    candidate's fresh-block footprint after prefix sharing; ``admit``
    commits an already-computed footprint against the budget.
    """

    def available_blocks(self) -> int:
        raise NotImplementedError

    def prefill_blocks(self, state: RequestState) -> int:
        raise NotImplementedError

    def admit(self, blocks_needed: int) -> None:
        raise NotImplementedError


class SchedulerPolicy:
    """Orders the waiting queue for admission (subclass hook)."""

    name = "base"

    def order(self, waiting: list[RequestState]) -> list[RequestState]:
        raise NotImplementedError


class FcfsPolicy(SchedulerPolicy):
    """Admit in arrival order."""

    name = "fcfs"

    def order(self, waiting: list[RequestState]) -> list[RequestState]:
        return list(waiting)


class ShortestPromptFirstPolicy(SchedulerPolicy):
    """Admit cheapest prefills first (ties broken by arrival)."""

    name = "shortest-prompt-first"

    def order(self, waiting: list[RequestState]) -> list[RequestState]:
        return sorted(
            waiting,
            key=lambda state: (
                state.request.prompt_length,
                state.request.request_id,
            ),
        )


#: Registry of scheduler policies by name.
POLICIES: dict[str, type[SchedulerPolicy]] = {
    FcfsPolicy.name: FcfsPolicy,
    ShortestPromptFirstPolicy.name: ShortestPromptFirstPolicy,
}


def get_policy(name: str) -> SchedulerPolicy:
    """Instantiate a scheduler policy by registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ModelError(
            f"unknown scheduler policy {name!r}; known: {', '.join(sorted(POLICIES))}"
        ) from None


@dataclass(frozen=True)
class StepPlan:
    """The scheduler's decision for one engine step.

    Attributes:
        decodes: running requests decoding one token each.
        prefills: waiting requests admitted for prefill this step.
        budget_tokens: tokens of model work the plan consumes.
    """

    decodes: list[RequestState] = field(default_factory=list)
    prefills: list[RequestState] = field(default_factory=list)

    @property
    def budget_tokens(self) -> int:
        return len(self.decodes) + sum(state.prefill_tokens for state in self.prefills)

    @property
    def empty(self) -> bool:
        return not self.decodes and not self.prefills


def plan_step(
    waiting: list[RequestState],
    running: list[RequestState],
    policy: SchedulerPolicy,
    max_batch_size: int,
    max_batch_tokens: int,
    blocks: KVBlockPlanner | None = None,
) -> StepPlan:
    """Plan one step: decodes keep their slots, prefills fill the rest.

    Running requests are never displaced by admissions — each reserves
    one token of budget and one batch slot (preemption, when a paged
    pool runs dry mid-decode, is the engine's move, not the planner's).
    Waiting requests are then admitted in policy order while the token
    budget, the slot count and (when ``blocks`` is given) the pool's
    free-block budget all hold out.  Admission stops at the first
    request that does not fit (head-of-line blocking is deliberate:
    skipping over a big request forever would starve it).

    A resumed request's prefill cost covers its whole replay — prompt
    plus already-emitted tokens (``RequestState.prefill_tokens``) — so
    recompute-on-resume work is budgeted like any other prefill.
    """
    if max_batch_size < 1:
        raise ModelError(f"max_batch_size must be >= 1, got {max_batch_size}")
    if max_batch_tokens < 1:
        raise ModelError(f"max_batch_tokens must be >= 1, got {max_batch_tokens}")

    decodes = list(running)
    budget = max_batch_tokens - len(decodes)
    slots = max_batch_size - len(decodes)
    prefills: list[RequestState] = []
    for state in policy.order(waiting):
        if slots < 1:
            break
        cost = state.prefill_tokens
        block_cost = 0 if blocks is None else blocks.prefill_blocks(state)
        fits_tokens = cost <= budget
        fits_blocks = blocks is None or block_cost <= blocks.available_blocks()
        if not (fits_tokens and fits_blocks):
            if not decodes and not prefills:
                # Forward-progress override: with nothing running, an
                # oversized prompt runs alone rather than deadlocking
                # the queue (with nothing running, the whole pool is
                # free or reclaimable, so submit-time validation
                # guarantees the blocks exist).
                prefills.append(state)
                if blocks is not None:
                    blocks.admit(block_cost)
            break
        prefills.append(state)
        budget -= cost
        slots -= 1
        if blocks is not None:
            blocks.admit(block_cost)
    return StepPlan(decodes=decodes, prefills=prefills)
