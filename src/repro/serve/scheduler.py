"""Step-level scheduling: which requests prefill or decode this step.

Every engine step is planned under a *token budget*: running requests
each consume one decode token, and waiting requests consume prompt
positions when admitted for prefill.  The budget (``max_batch_tokens``)
bounds the work of one model step — the knob that trades
time-to-first-token against decode throughput — while
``max_batch_size`` bounds concurrent KV-cache residency.

With **chunked prefill** (the engine's default), a waiting request no
longer has to fit its whole prompt into one step: the budget walk
reserves one token per running decode first, then hands whatever
budget is left to prefill work as a *chunk* — so a long prompt
prefills across several steps while every running request keeps
decoding (Sarathi/vLLM-style mixed steps).  A half-prefilled request
(``RequestState.prefill_pos`` > 0) stays in the waiting queue holding
its partial cache; it keeps its residency slot, and admitting its next
chunk never consumes a new one.

Admission *order* is a policy:

* **fcfs** — first come, first served (arrival order, the latency-fair
  default);
* **shortest-prompt-first** — admit cheap prompts first, maximizing how
  many requests reach the decode batch per unit of prefill budget
  (throughput-greedy, can starve long prompts under load);
* **decode-first** — continue in-flight chunked prefills before
  admitting new requests, FCFS otherwise.  Decode tokens are reserved
  off the top of the budget structurally; this policy additionally
  keeps the prefill side of the budget focused on one prompt at a
  time, so a chunked prefill finishes (and starts decoding) as early
  as possible instead of smearing several partial caches across steps.

Policies only order the waiting queue; the budget walk below is shared.
One guarantee is unconditional: if nothing is running and nothing fits,
the first candidate is admitted anyway (a prompt longer than the budget
must not deadlock the engine — with chunking on, it simply gets a
budget-sized chunk).

When the engine runs a paged KV pool, admission is additionally planned
against the pool's *free-block budget* (a :class:`KVBlockPlanner`):
a waiting request is only admitted when its prefill's block footprint —
after prefix-cache sharing, and for a chunk only the chunk's growth —
fits in what is free or reclaimable once the running requests' decode
growth is reserved.  Token budget bounds the *work* of a step; block
budget bounds the *memory* it commits.

Admission-time request costing also lives here
(:func:`validate_admission`): each request is costed against its own
``SamplingParams.max_new_tokens`` — worst-case sequence length and
worst-case pool footprint are per-request quantities now that the
decoding recipe is no longer an engine-wide setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ModelError, RequestError
from repro.serve.params import SamplingParams
from repro.serve.request import Request, RequestState

if TYPE_CHECKING:
    from repro.llm.config import ModelConfig
    from repro.serve.kvpool.pool import KVPool


def validate_admission(
    prompt: np.ndarray,
    params: SamplingParams,
    model_config: ModelConfig,
    pool: KVPool | None = None,
) -> None:
    """Per-request worst-case token costing at the admission boundary.

    A request's schedulable footprint is ``prompt_length +
    params.max_new_tokens`` — its own cap, not an engine-wide one
    (stop tokens may end it earlier; admission must still plan for the
    worst case).  Rejects, with :class:`~repro.errors.RequestError`
    *before* the request enters the queue:

    * a prompt that is not a 1-D array of an integer dtype (a float
      prompt passes every range check, then blows up steps later as a
      fancy-index failure inside the embedding — wedging the engine,
      since the failed request would stay queued and re-raise on every
      subsequent step);
    * an empty prompt;
    * a total exceeding the model's ``max_seq_len``;
    * prompt token ids outside ``[0, vocab_size)`` (a deferred prefill
      failure would lose the request);
    * a per-request ``params.kv_format`` whose per-layer stack does not
      cover the model's layer count (bits-per-element costing and cache
      construction both need one format per layer);
    * in paged mode (``pool`` given, duck-typed to
      :class:`~repro.serve.kvpool.pool.KVPool`), a block footprint the
      pool could never guarantee even with every other request evicted.
    """
    if prompt.ndim != 1:
        raise RequestError(
            f"prompt must be a 1-D token array, got shape {prompt.shape}"
        )
    if int(prompt.shape[0]) < 1:
        raise RequestError("prompt must contain at least one token")
    if not np.issubdtype(prompt.dtype, np.integer):
        # Checked after emptiness: np.asarray([]) defaults to float64.
        raise RequestError(
            f"prompt token ids must have an integer dtype, got {prompt.dtype}; "
            "a non-integer prompt fails as a deferred indexing error inside "
            "the embedding and would wedge the engine"
        )
    if params.kv_format is not None:
        try:
            params.kv_format.bits_per_element(model_config.n_layers)
        except ModelError as exc:
            raise RequestError(f"kv_format does not fit the model: {exc}") from exc
    total = int(prompt.shape[0]) + params.max_new_tokens
    if total > model_config.max_seq_len:
        raise RequestError(
            f"prompt + continuation ({int(prompt.shape[0])} + "
            f"{params.max_new_tokens}) exceeds max_seq_len "
            f"{model_config.max_seq_len}"
        )
    vocab = model_config.vocab_size
    if int(prompt.min()) < 0 or int(prompt.max()) >= vocab:
        raise RequestError(
            f"prompt token ids must lie in [0, {vocab}); a deferred "
            "prefill failure would lose the request"
        )
    if pool is not None:
        needed = pool.blocks_for_tokens(total)
        limit = pool.max_sequence_blocks()
        if needed > limit:
            raise RequestError(
                f"request needs {needed} KV blocks "
                f"({total} tokens at block size "
                f"{pool.block_size}) but the pool guarantees "
                f"only {limit}; raise kv_pool_blocks"
            )


class KVBlockPlanner:
    """Block-budget view the engine hands the scheduler in pool mode.

    ``available_blocks`` is the pool headroom admissions may claim
    (free plus reclaimable prefix-cache blocks, minus the running
    requests' reserved decode growth); ``prefill_blocks`` is one
    candidate's fresh-block footprint after prefix sharing;
    ``chunk_blocks`` is the footprint of prefilling just the next
    ``tokens`` positions of a candidate (its partial cache's block
    growth); ``admit`` commits an already-computed footprint against
    the budget.
    """

    def available_blocks(self) -> int:
        raise NotImplementedError

    def prefill_blocks(self, state: RequestState) -> int:
        raise NotImplementedError

    def chunk_blocks(self, state: RequestState, tokens: int) -> int:
        raise NotImplementedError

    def admit(self, blocks_needed: int) -> None:
        raise NotImplementedError


class SchedulerPolicy:
    """Orders the waiting queue for admission (subclass hook)."""

    name = "base"

    def order(self, waiting: list[RequestState]) -> list[RequestState]:
        raise NotImplementedError


class FcfsPolicy(SchedulerPolicy):
    """Admit in arrival order."""

    name = "fcfs"

    def order(self, waiting: list[RequestState]) -> list[RequestState]:
        return list(waiting)


class ShortestPromptFirstPolicy(SchedulerPolicy):
    """Admit cheapest prefills first (ties broken by arrival)."""

    name = "shortest-prompt-first"

    def order(self, waiting: list[RequestState]) -> list[RequestState]:
        return sorted(
            waiting,
            key=lambda state: (
                state.request.prompt_length,
                state.request.request_id,
            ),
        )


class DecodeFirstPolicy(SchedulerPolicy):
    """Finish in-flight chunked prefills before admitting new work.

    A half-prefilled request holds KV memory but produces nothing
    until its prompt completes; front-running it with fresh admissions
    both delays its first token and multiplies the number of partial
    caches resident at once.  This policy pins in-flight prefills to
    the head of the queue (FCFS among themselves and among the rest),
    which bounds partial-cache residency to one prompt at a time under
    steady traffic.
    """

    name = "decode-first"

    def order(self, waiting: list[RequestState]) -> list[RequestState]:
        return sorted(
            waiting,
            key=lambda state: (
                0 if state.prefill_pos > 0 else 1,
                state.request.request_id,
            ),
        )


#: Registry of scheduler policies by name.
POLICIES: dict[str, type[SchedulerPolicy]] = {
    FcfsPolicy.name: FcfsPolicy,
    ShortestPromptFirstPolicy.name: ShortestPromptFirstPolicy,
    DecodeFirstPolicy.name: DecodeFirstPolicy,
}


def get_policy(name: str) -> SchedulerPolicy:
    """Instantiate a scheduler policy by registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ModelError(
            f"unknown scheduler policy {name!r}; known: {', '.join(sorted(POLICIES))}"
        ) from None


@dataclass(frozen=True)
class PrefillChunk:
    """One admitted slice of prefill work: a request and a token count.

    ``tokens`` is the scheduler's budget grant; the engine may execute
    fewer positions when a prefix-cache hit shortens the fresh request
    (the grant is an upper bound, never a shortfall).  An unchunked
    admission is simply a chunk spanning the request's whole remaining
    prefill.
    """

    state: RequestState
    tokens: int

    @property
    def request(self) -> Request:
        """The underlying request (convenience passthrough)."""
        return self.state.request

    @property
    def completes(self) -> bool:
        """Whether this grant covers the rest of the prefill."""
        return self.tokens >= self.state.prefill_tokens


@dataclass(frozen=True)
class StepPlan:
    """The scheduler's decision for one engine step.

    Attributes:
        decodes: running requests decoding one token each.
        prefills: prefill chunks admitted this step (full prompts when
            chunking is off or the budget covers them).
        budget_tokens: tokens of model work the plan consumes.
    """

    decodes: list[RequestState] = field(default_factory=list)
    prefills: list[PrefillChunk] = field(default_factory=list)

    @property
    def budget_tokens(self) -> int:
        return len(self.decodes) + sum(chunk.tokens for chunk in self.prefills)

    @property
    def empty(self) -> bool:
        return not self.decodes and not self.prefills


def plan_step(
    waiting: list[RequestState],
    running: list[RequestState],
    policy: SchedulerPolicy,
    max_batch_size: int,
    max_batch_tokens: int,
    blocks: KVBlockPlanner | None = None,
    chunking: bool = False,
) -> StepPlan:
    """Plan one step: decodes keep their slots, prefills fill the rest.

    Running requests are never displaced by admissions — each reserves
    one token of budget and one batch slot (preemption, when a paged
    pool runs dry mid-decode, is the engine's move, not the planner's).
    Waiting requests are then admitted in policy order while the token
    budget, the slot count and (when ``blocks`` is given) the pool's
    free-block budget all hold out.  Admission stops at the first
    request that does not fit (head-of-line blocking is deliberate:
    skipping over a big request forever would starve it).

    With ``chunking`` on, a fresh request that does not fit whole is
    admitted for a *partial* chunk — whatever token budget remains
    after decodes — and continues across steps; a half-prefilled
    request already holds its residency slot, so continuing it never
    consumes a new one.  A resumed (previously preempted, mid-decode)
    request is never chunked: its prefill cost covers its whole bitwise
    replay — prompt plus already-emitted tokens
    (``RequestState.prefill_tokens``) — in one admission.
    """
    if max_batch_size < 1:
        raise ModelError(f"max_batch_size must be >= 1, got {max_batch_size}")
    if max_batch_tokens < 1:
        raise ModelError(f"max_batch_tokens must be >= 1, got {max_batch_tokens}")

    decodes = list(running)
    budget = max_batch_tokens - len(decodes)
    # Half-prefilled requests hold KV residency from the waiting queue;
    # count them against the slot cap so fresh admissions cannot strand
    # them, but let their own continuation through for free.
    inflight = sum(1 for state in waiting if state.prefill_pos > 0)
    slots = max_batch_size - len(decodes) - inflight
    prefills: list[PrefillChunk] = []
    for state in policy.order(waiting):
        continuing = state.prefill_pos > 0
        if not continuing and slots < 1:
            # Skip, don't stop: a slot-exempt in-flight continuation
            # later in policy order (e.g. a long prompt under
            # shortest-prompt-first) must still get its chunk, or it
            # would pin its KV blocks while never progressing.
            continue
        remaining = state.prefill_tokens
        chunkable = chunking and not state.generated
        cost = min(remaining, budget) if chunkable else remaining
        if cost < 1:
            break  # decodes (or earlier chunks) consumed the budget
        block_cost = 0
        if blocks is not None:
            block_cost = (
                blocks.chunk_blocks(state, cost)
                if chunkable
                else blocks.prefill_blocks(state)
            )
        fits_tokens = cost <= budget
        fits_blocks = blocks is None or block_cost <= blocks.available_blocks()
        if not (fits_tokens and fits_blocks):
            if not decodes and not prefills:
                # Forward-progress override: with nothing running, an
                # oversized prompt runs alone rather than deadlocking
                # the queue (with nothing running, the whole pool is
                # free or reclaimable, so submit-time validation
                # guarantees the blocks exist).
                prefills.append(PrefillChunk(state, cost))
                if blocks is not None:
                    blocks.admit(block_cost)
            break
        prefills.append(PrefillChunk(state, cost))
        budget -= cost
        if not continuing:
            slots -= 1
        if blocks is not None:
            blocks.admit(block_cost)
    return StepPlan(decodes=decodes, prefills=prefills)
