"""Declarative fault plans and failure-handling policies.

A :class:`FaultPlan` is a seeded, declarative description of which
faults to inject where: each :class:`FaultRule` names an injection
site (see :data:`repro.serve.faults.injector.SITES`), selects a fault
class (transient vs permanent), and optionally narrows to a step
index, a target request, or a seeded per-probe probability.  Plans are
deterministic by construction — two engines built from the same plan
and fed the same traffic fire the same faults at the same probes — so
the chaos suite can compare a faulted run against its fault-free twin
bitwise.

This module also holds the two failure-handling policies the engine
consumes:

* :class:`RetryPolicy` — bounded exponential backoff for transient
  faults, measured in scheduler steps (deterministic, no wall clock).
  Retries reuse the recompute-on-resume path, so a retried request's
  tokens are bitwise identical to an unfaulted run.
* :class:`PressurePolicy` — graceful degradation under KV-pool
  exhaustion: shed new admissions outright below one free-fraction
  threshold, or downgrade them to a lower-bit
  :class:`~repro.llm.kv_quant.KVFormat` below another (prefix-signature
  privacy keeps degraded requests out of shared prefixes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelError
from repro.llm.kv_quant import KVFormat


class InjectedFault(ModelError):
    """Base class for faults raised by the injection layer.

    Attributes:
        site: the injection point that fired.
        request_id: the request the fault is attributable to, or None
            for a batch-level fault (the probe ran outside any single
            request's scope) — the engine quarantines/retries the
            former and rolls the whole step back for the latter.
        rule_index: index of the firing rule in its plan.
    """

    def __init__(
        self,
        message: str,
        *,
        site: str = "",
        request_id: int | None = None,
        rule_index: int = -1,
    ) -> None:
        super().__init__(message)
        self.site = site
        self.request_id = request_id
        self.rule_index = rule_index


class TransientFault(InjectedFault):
    """A fault worth retrying (think: transient link/ECC hiccup).

    The engine releases the victim's residency and re-queues it with
    bounded backoff; recompute-on-resume makes the retry bitwise.
    """


class PermanentFault(InjectedFault):
    """A fault that is not worth retrying (think: poisoned input).

    The engine quarantines the victim: terminal ``FAILED`` status,
    ``finish_reason="error"``, residency released.
    """


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One declarative injection rule.

    Args:
        site: injection-point name to match (one of
            :data:`~repro.serve.faults.injector.SITES`, or ``"*"`` to
            match every site).
        kind: ``"transient"`` (raises :class:`TransientFault`) or
            ``"permanent"`` (raises :class:`PermanentFault`).
        step: fire only on this engine step index; None matches any.
        request_id: fire only on probes attributed to this request;
            None matches any probe.  Targeted rules never fire at
            unattributed probes, so they cannot misfire onto an
            innocent batchmate.
        probability: when > 0, fire with this seeded per-probe
            probability (each rule draws from its own
            ``default_rng((plan.seed, rule_index))`` stream); when 0,
            fire deterministically at the first matching probe.
        max_fires: cap on total firings (None = unbounded).  The
            default of 1 keeps plans finite so a faulted engine always
            converges.
    """

    site: str
    kind: str = "transient"
    step: int | None = None
    request_id: int | None = None
    probability: float = 0.0
    max_fires: int | None = 1

    def __post_init__(self) -> None:
        if not self.site:
            raise ModelError("FaultRule.site must be a non-empty string")
        if self.kind not in ("transient", "permanent"):
            raise ModelError(
                f"FaultRule.kind must be 'transient' or 'permanent', "
                f"got {self.kind!r}"
            )
        if self.step is not None and self.step < 0:
            raise ModelError(f"FaultRule.step must be >= 0, got {self.step}")
        if not 0.0 <= self.probability <= 1.0:
            raise ModelError(
                f"FaultRule.probability must lie in [0, 1], "
                f"got {self.probability}"
            )
        if self.max_fires is not None and self.max_fires < 1:
            raise ModelError(
                f"FaultRule.max_fires must be >= 1 or None, "
                f"got {self.max_fires}"
            )


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """A seeded set of fault rules, evaluated by a
    :class:`~repro.serve.faults.injector.FaultInjector`.

    Args:
        rules: the :class:`FaultRule` members, matched in order at
            every probe.
        seed: base seed for the per-rule probability streams.
    """

    rules: tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        rules = tuple(self.rules)
        for rule in rules:
            if not isinstance(rule, FaultRule):
                raise ModelError(
                    f"FaultPlan.rules must contain FaultRule instances, "
                    f"got {type(rule).__name__}"
                )
        object.__setattr__(self, "rules", rules)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded-backoff retry policy for transient faults.

    Backoff is measured in scheduler steps, not wall clock, so retry
    timing is deterministic and replayable.  The n-th retry of a
    request waits ``min(backoff_steps * 2**(n-1), max_backoff_steps)``
    steps before it becomes schedulable again.

    Args:
        max_retries: transient faults tolerated per request before it
            is quarantined like a permanent one.
        backoff_steps: base delay of the exponential backoff (0
            retries immediately on the next step).
        max_backoff_steps: cap on any single backoff delay.
    """

    max_retries: int = 2
    backoff_steps: int = 1
    max_backoff_steps: int = 8

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ModelError(
                f"RetryPolicy.max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_steps < 0:
            raise ModelError(
                f"RetryPolicy.backoff_steps must be >= 0, "
                f"got {self.backoff_steps}"
            )
        if self.max_backoff_steps < 0:
            raise ModelError(
                f"RetryPolicy.max_backoff_steps must be >= 0, "
                f"got {self.max_backoff_steps}"
            )

    def delay_steps(self, retries: int) -> int:
        """Backoff delay (in steps) before retry number ``retries``."""
        if retries < 1 or self.backoff_steps == 0:
            return 0
        return min(self.backoff_steps * 2 ** (retries - 1), self.max_backoff_steps)


@dataclass(frozen=True, slots=True)
class PressurePolicy:
    """Graceful-degradation policy for KV-pool admission pressure.

    Both thresholds compare against the pool's *headroom* — the
    fraction of blocks free or reclaimable at submit time — and both
    default to 0.0, which disables them (headroom is never < 0).

    Args:
        shed_below_free_fraction: when headroom drops below this
            fraction, new admissions are shed: the request is failed
            at the gate with ``finish_reason="shed"`` (its handle's
            ``result()`` raises
            :class:`~repro.errors.RequestFailedError`) instead of
            queueing work the pool cannot hold.
        degrade_below_free_fraction: when headroom drops below this
            fraction (but admission is not shed), a request without an
            explicit per-request ``kv_format`` is admitted at
            ``degraded_format`` instead of the engine default —
            trading precision for residency.  Prefix-signature privacy
            keeps such requests out of the shared prefix cache.
        degraded_format: the lower-bit format degraded admissions use;
            required when degradation is enabled.
    """

    shed_below_free_fraction: float = 0.0
    degrade_below_free_fraction: float = 0.0
    degraded_format: KVFormat | None = None

    def __post_init__(self) -> None:
        for name in ("shed_below_free_fraction", "degrade_below_free_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ModelError(
                    f"PressurePolicy.{name} must lie in [0, 1], got {value}"
                )
        if self.degrade_below_free_fraction > 0.0 and self.degraded_format is None:
            raise ModelError(
                "PressurePolicy.degraded_format is required when "
                "degrade_below_free_fraction > 0"
            )
        if self.degraded_format is not None and not isinstance(
            self.degraded_format, KVFormat
        ):
            raise ModelError(
                "PressurePolicy.degraded_format must be a KVFormat or None, "
                f"got {type(self.degraded_format).__name__}"
            )

    @property
    def active(self) -> bool:
        """Whether any threshold is enabled."""
        return (
            self.shed_below_free_fraction > 0.0
            or self.degrade_below_free_fraction > 0.0
        )
