"""Seeded fault injection: named probes threaded through the stack.

The serving stack is instrumented with *probes* — calls to
:func:`inject` at named sites (:data:`SITES`).  A probe is a no-op
unless the engine has installed a :class:`FaultInjector` for the
current step via :func:`injection_scope`; then the injector matches
the probe against its :class:`~repro.serve.faults.plan.FaultPlan` and
raises a :class:`~repro.serve.faults.plan.TransientFault` or
:class:`~repro.serve.faults.plan.PermanentFault` when a rule fires.

Attribution: a probe carries the request id it is certainly
attributable to — passed explicitly at engine-level sites, taken from
the sequence owner at paged-KV sites, or inherited from the ambient
:func:`request_scope` the engine installs around genuinely per-request
sections.  Probes that run on behalf of several requests at once (a
stacked group compress, a mid-forward pool allocation) stay
*unattributed*: a fault there is batch-level and rolls the whole step
back rather than quarantining an arbitrary batchmate — which is what
keeps the chaos suite's headline invariant (non-faulted requests are
bitwise identical to a fault-free run) provable.

Both context variables make the layer zero-cost when unused: with no
injector installed, :func:`inject` is one ``ContextVar.get`` returning
None.
"""

from __future__ import annotations

import contextlib
import contextvars
from collections.abc import Iterator

import numpy as np

from repro.serve.faults.plan import (
    FaultPlan,
    PermanentFault,
    TransientFault,
)

#: Named injection points threaded through the serving stack.
SITES = (
    "admission",  # Engine.submit, after validation (per request)
    "model.prefill",  # legacy/resume prefill lane, pre-forward (per request)
    "model.chunk",  # chunked-prefill lane, pre-forward (per request)
    "model.decode",  # decode lane, pre-forward (per decode request)
    "codec.encode",  # PagedKVCache.compress (sequence owner)
    "pool.allocate",  # KVPool.take_block (ambient request scope, else batch)
    "paged.gather",  # SequenceKV.gather (sequence owner)
)

_INJECTOR: contextvars.ContextVar["FaultInjector | None"] = contextvars.ContextVar(
    "repro_fault_injector", default=None
)
_REQUEST: contextvars.ContextVar[int | None] = contextvars.ContextVar(
    "repro_fault_request", default=None
)


class FaultInjector:
    """Evaluates a :class:`~repro.serve.faults.plan.FaultPlan` at probes.

    One injector is built per engine and installed around every step
    (and around ``submit`` for the admission site).  Each probabilistic
    rule draws from its own ``default_rng((plan.seed, rule_index))``
    stream, so firing decisions depend only on the plan and the probe
    sequence — deterministic across identical runs.

    Attributes:
        plan: the declarative plan being evaluated.
        fired_total: total faults raised so far.
        fired_by_site: per-site fault counts (only sites that fired).
    """

    __slots__ = ("plan", "fired_total", "fired_by_site", "_rngs", "_fires", "_step")

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.fired_total = 0
        self.fired_by_site: dict[str, int] = {}
        self._rngs = [
            np.random.default_rng((plan.seed, index))
            for index in range(len(plan.rules))
        ]
        self._fires = [0] * len(plan.rules)
        self._step = 0

    def begin_step(self, step: int) -> None:
        """Tell the injector which engine step subsequent probes run in."""
        self._step = step

    def fires(self, rule_index: int) -> int:
        """How many times rule ``rule_index`` has fired."""
        return self._fires[rule_index]

    def probe(self, site: str, request_id: int | None = None) -> None:
        """Evaluate every rule against one probe; raise if one fires."""
        for index, rule in enumerate(self.plan.rules):
            if rule.site != site and rule.site != "*":
                continue
            if rule.max_fires is not None and self._fires[index] >= rule.max_fires:
                continue
            if rule.request_id is not None and request_id != rule.request_id:
                continue
            if rule.step is not None and self._step != rule.step:
                continue
            if rule.probability > 0.0:
                if self._rngs[index].random() >= rule.probability:
                    continue
            self._fires[index] += 1
            self.fired_total += 1
            self.fired_by_site[site] = self.fired_by_site.get(site, 0) + 1
            cls = TransientFault if rule.kind == "transient" else PermanentFault
            target = "batch" if request_id is None else f"request {request_id}"
            raise cls(
                f"injected {rule.kind} fault at {site} "
                f"(rule {index}, step {self._step}, {target})",
                site=site,
                request_id=request_id,
                rule_index=index,
            )


def inject(site: str, request_id: int | None = None) -> None:
    """Fault-injection probe; no-op unless an injector is installed.

    Args:
        site: the injection-point name (one of :data:`SITES`).
        request_id: the request this probe is certainly attributable
            to; when None, the ambient :func:`request_scope` id is
            used, and failing that the probe is unattributed
            (batch-level fault semantics).
    """
    injector = _INJECTOR.get()
    if injector is None:
        return
    if request_id is None:
        request_id = _REQUEST.get()
    injector.probe(site, request_id)


def active_injector() -> FaultInjector | None:
    """The injector installed in the current context, if any."""
    return _INJECTOR.get()


@contextlib.contextmanager
def injection_scope(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` for probes within the ``with`` body."""
    token = _INJECTOR.set(injector)
    try:
        yield injector
    finally:
        _INJECTOR.reset(token)


@contextlib.contextmanager
def request_scope(request_id: int) -> Iterator[None]:
    """Attribute unowned probes within the body to ``request_id``.

    The engine installs this only around sections that genuinely run
    on behalf of a single request (per-chunk cache setup, the legacy
    prefill lane), so scope-derived attribution is always certain.
    """
    token = _REQUEST.set(request_id)
    try:
        yield
    finally:
        _REQUEST.reset(token)
