"""Seeded fault injection and failure-handling policies for serving.

See :mod:`repro.serve.faults.plan` for the declarative plan/policy
objects and :mod:`repro.serve.faults.injector` for the probe layer the
engine threads through the stack.
"""

from repro.serve.faults.injector import (
    SITES,
    FaultInjector,
    active_injector,
    inject,
    injection_scope,
    request_scope,
)
from repro.serve.faults.plan import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    PermanentFault,
    PressurePolicy,
    RetryPolicy,
    TransientFault,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "InjectedFault",
    "PermanentFault",
    "PressurePolicy",
    "RetryPolicy",
    "SITES",
    "TransientFault",
    "active_injector",
    "inject",
    "injection_scope",
    "request_scope",
]
