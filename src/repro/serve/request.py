"""Request lifecycle model for the continuous-batching engine.

A :class:`Request` is the immutable description a client submits — a
prompt plus its per-request :class:`~repro.serve.params.SamplingParams`
recipe; a :class:`RequestState` is the engine's mutable per-request
record (KV caches, generated tokens, timing marks); a
:class:`CompletedRequest` is the frozen result handed back, carrying
both the tokens and the request's latency metrics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ModelError, RequestError
from repro.llm.attention import KVCache
from repro.serve.params import SamplingParams

if TYPE_CHECKING:
    from repro.llm.kv_quant import KVFormat
    from repro.serve.kvpool.paged import SequenceKV


class RequestStatus(enum.Enum):
    """Where a request sits in the engine's lifecycle.

    A preempted request goes back to WAITING with its generated tokens
    and RNG state intact; re-admission replays its cache
    (recompute-on-resume) before decoding continues.  A half-prefilled
    request preempted mid-chunk also returns to WAITING, with its
    partial cache released (``prefill_pos`` reset to zero).

    FINISHED, ABORTED and FAILED are the terminal states: finished
    requests freeze into a :class:`CompletedRequest`; aborted requests
    release their KV residency immediately (the same rollback
    preemption uses) and never produce a result; failed requests are
    quarantined by the engine — permanent fault, retries exhausted,
    deadline expired, or shed at admission — with residency released
    and the original fault stored in ``RequestState.failure``.
    """

    WAITING = "waiting"  # admitted to the queue, no compute yet
    PREFILLING = "prefilling"  # chunked prefill in flight, cache partial
    RUNNING = "running"  # prefilled; decoding one token per step
    FINISHED = "finished"
    ABORTED = "aborted"  # cancelled by the client; residency released
    FAILED = "failed"  # quarantined by the engine; residency released

    @property
    def terminal(self) -> bool:
        return self in (
            RequestStatus.FINISHED,
            RequestStatus.ABORTED,
            RequestStatus.FAILED,
        )


@dataclass(frozen=True, eq=False)
class Request:
    """One client request: a prompt and its decoding recipe.

    Identity semantics (``eq=False``): the ndarray prompt makes field
    equality ill-defined, and ids are only unique per engine.

    ``params`` is the canonical recipe.  The scalar fields
    (``max_new_tokens``, ``temperature``, ``top_k``, ``seed``) are
    retained as a construction convenience and as read mirrors of the
    params — legacy callers building ``Request(..., max_new_tokens=4)``
    get a default recipe around that cap, and scheduler/engine code may
    read either spelling and see the same values.

    Args:
        request_id: engine-assigned, unique within an engine instance.
        prompt: 1-D prompt token ids.
        params: the per-request :class:`SamplingParams`; when omitted,
            one is built from the scalar fields.
    """

    request_id: int
    prompt: np.ndarray
    # Declared non-optional: __post_init__ builds a recipe from the
    # legacy scalars when the caller omits one, so every constructed
    # Request carries a SamplingParams.
    params: SamplingParams = None  # type: ignore[assignment]
    max_new_tokens: int | None = None
    temperature: float = 0.0
    top_k: int = 20
    seed: int = 0

    def __post_init__(self) -> None:
        # Copy: prefill may run many steps after submit, and the caller
        # is free to reuse its buffer in the meantime.
        prompt = np.array(self.prompt).reshape(-1)
        object.__setattr__(self, "prompt", prompt)
        if prompt.shape[0] < 1:
            raise RequestError("prompt must contain at least one token")
        params = self.params
        if params is None:
            if self.max_new_tokens is None:
                raise RequestError(
                    "a Request needs params (or legacy max_new_tokens)"
                )
            params = SamplingParams(
                max_new_tokens=self.max_new_tokens,
                temperature=self.temperature,
                top_k=self.top_k,
                seed=self.seed,
            )
        elif not isinstance(params, SamplingParams):
            raise RequestError(
                f"params must be a SamplingParams, got {type(params).__name__}"
            )
        object.__setattr__(self, "params", params)
        # Mirror the canonical recipe into the legacy scalar fields.
        object.__setattr__(self, "max_new_tokens", params.max_new_tokens)
        object.__setattr__(self, "temperature", params.temperature)
        object.__setattr__(self, "top_k", params.top_k)
        object.__setattr__(self, "seed", params.seed)

    @property
    def prompt_length(self) -> int:
        return int(self.prompt.shape[0])


@dataclass
class RequestState:
    """Mutable engine-side record of one in-flight request.

    Timing marks are recorded in both scheduler steps (deterministic,
    comparable across runs) and wall-clock seconds (what a client
    experiences).
    """

    request: Request
    status: RequestStatus = RequestStatus.WAITING
    caches: list[KVCache] | None = None
    #: Paged-pool handle when the engine runs in kv_pool mode; None for
    #: unpaged caches.
    kv: SequenceKV | None = None
    #: Prompt positions already prefilled (chunked prefill progress).
    #: Strictly between 0 and the prompt length, the request holds a
    #: partial KV cache and is mid-way through a chunked prefill.
    prefill_pos: int = 0
    generated: list[int] = field(default_factory=list)
    # Declared non-optional: __post_init__ seeds a default generator,
    # so decode code never has to narrow it.
    rng: np.random.Generator = None  # type: ignore[assignment]
    preemptions: int = 0
    #: Resolved KV format for this request (the per-request override or
    #: the engine-wide default), set at submit time; None before then.
    kv_format: KVFormat | None = None
    #: Mean stored bits per cached K/V element under ``kv_format`` —
    #: what the per-request traffic model charges.
    kv_bits: float = 16.0
    #: True when ``kv_format`` differs from the pool's engine-wide
    #: default: the request's blocks hold bytes other sequences cannot
    #: share, so it opts out of prefix-cache matching/registration.
    kv_private: bool = False
    #: True once a ``stop_token_ids`` member was emitted; ends the
    #: request before ``max_new_tokens``.
    stopped: bool = False
    #: Why the request ended (``"length"`` / ``"stop"`` / ``"abort"`` /
    #: ``"error"`` / ``"deadline"`` / ``"shed"``); None while in flight.
    finish_reason: str | None = None
    #: Transient-fault retries consumed so far (bounded by
    #: ``RetryPolicy.max_retries``; each retry replays the request
    #: through the bitwise recompute-on-resume path).
    retries: int = 0
    #: First engine step at which a backed-off request may be scheduled
    #: again; 0 means schedulable now.
    retry_at_step: int = 0
    #: The exception that failed (or last faulted) this request; set on
    #: quarantine and on each transient retry, surfaced by
    #: ``RequestHandle.result()`` via RequestFailedError.
    failure: BaseException | None = None
    #: Absolute ``perf_counter`` deadline resolved from
    #: ``SamplingParams.deadline_s`` at submit; None = no deadline.
    deadline: float | None = None

    arrival_step: int = 0
    first_token_step: int | None = None
    finish_step: int | None = None
    arrival_time: float = 0.0
    first_token_time: float | None = None
    finish_time: float | None = None
    #: Wall-clock mark of every emitted token, in emission order; the
    #: gaps between consecutive marks are the request's inter-token
    #: latencies (what the ITL percentiles aggregate).
    token_times: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.rng is None:
            self.rng = np.random.default_rng(self.request.params.seed)

    @property
    def last_token(self) -> int:
        """The token the next decode step feeds to the model."""
        if not self.generated:
            raise ModelError(
                f"request {self.request.request_id} has not been prefilled"
            )
        return self.generated[-1]

    @property
    def context_length(self) -> int:
        """Cached positions so far (prompt plus generated history)."""
        if self.caches is None:
            return 0
        return self.caches[0].length

    @property
    def prefill_tokens(self) -> int:
        """Positions the next admission must compute (schedule cost).

        A fresh request prefills its prompt; a half-prefilled request
        only the part beyond ``prefill_pos``.  A preempted request
        additionally replays each already-emitted token except the
        last (whose KV the next decode step writes), rebuilding its
        cache bitwise before decoding resumes.
        """
        remaining = self.request.prompt_length - self.prefill_pos
        return remaining + max(0, len(self.generated) - 1)

    @property
    def done(self) -> bool:
        """Decoding is over: length cap reached or a stop token emitted."""
        return self.stopped or (
            len(self.generated) >= self.request.params.max_new_tokens
        )

    def tokens(self) -> np.ndarray:
        """Prompt plus continuation, matching ``GenerationResult.tokens``."""
        return np.concatenate(
            [self.request.prompt, np.asarray(self.generated, dtype=np.int64)]
        )


@dataclass(frozen=True)
class RequestMetrics:
    """Latency marks of one finished request.

    Attributes:
        request_id: the request this describes.
        prompt_length / generated_tokens: token counts.
        ttft_steps / ttft_seconds: submit-to-first-token latency.
        latency_steps / latency_seconds: submit-to-finish latency.
        itl_seconds: gap between each consecutive pair of emitted
            tokens (``generated_tokens - 1`` entries) — the raw
            inter-token latencies the p50/p95 summaries aggregate.
        finish_reason: ``"length"`` or ``"stop"`` (aborted requests
            never produce metrics records).
    """

    request_id: int
    prompt_length: int
    generated_tokens: int
    ttft_steps: int
    latency_steps: int
    ttft_seconds: float
    latency_seconds: float
    itl_seconds: tuple[float, ...] = ()
    finish_reason: str = "length"


@dataclass(frozen=True, eq=False)
class CompletedRequest:
    """Final tokens and metrics of one served request.

    Identity semantics (``eq=False``): holds an ndarray; compare
    ``tokens`` with ``np.array_equal`` instead.
    """

    request_id: int
    tokens: np.ndarray
    prompt_length: int
    metrics: RequestMetrics
    finish_reason: str = "length"

    def continuation(self) -> np.ndarray:
        return self.tokens[self.prompt_length :]


def complete(state: RequestState) -> CompletedRequest:
    """Freeze a finished :class:`RequestState` into its result."""
    if state.status is not RequestStatus.FINISHED:
        raise ModelError(
            f"request {state.request.request_id} is {state.status.value}, "
            "not finished"
        )
    assert state.first_token_step is not None
    assert state.finish_step is not None
    assert state.first_token_time is not None
    assert state.finish_time is not None
    reason = state.finish_reason or "length"
    metrics = RequestMetrics(
        request_id=state.request.request_id,
        prompt_length=state.request.prompt_length,
        generated_tokens=len(state.generated),
        ttft_steps=state.first_token_step - state.arrival_step,
        latency_steps=state.finish_step - state.arrival_step,
        ttft_seconds=state.first_token_time - state.arrival_time,
        latency_seconds=state.finish_time - state.arrival_time,
        itl_seconds=tuple(
            later - earlier
            for earlier, later in zip(state.token_times, state.token_times[1:])
        ),
        finish_reason=reason,
    )
    return CompletedRequest(
        request_id=state.request.request_id,
        tokens=state.tokens(),
        prompt_length=state.request.prompt_length,
        metrics=metrics,
        finish_reason=reason,
    )
