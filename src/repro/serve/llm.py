"""The ``LLM`` facade: the unified front door of the serving stack.

One :class:`LLM` wraps one :class:`~repro.serve.engine.Engine` and
exposes the three request lifecycles a serving client needs, all built
on the same engine loop:

* **batch** — :meth:`LLM.generate`: submit a batch of prompts (each
  with its own :class:`~repro.serve.params.SamplingParams`), run the
  engine to idle, return :class:`CompletedRequest` results in input
  order;
* **streaming** — :meth:`LLM.stream`: a generator of
  :class:`~repro.serve.handle.TokenDelta` that steps the engine lazily
  and yields every token the step it is emitted — per-request TTFT is
  the first delta's timestamp, no drain-time reconstruction;
* **incremental** — :meth:`LLM.submit`: one
  :class:`~repro.serve.handle.RequestHandle` per request, for callers
  that interleave submission, token iteration, and
  :meth:`~repro.serve.handle.RequestHandle.abort`.

``Engine`` remains fully public as the internal layer (schedulers,
paged KV pool, step-level control); the facade only narrows how
requests enter and results leave.  The pre-redesign
:func:`serve_batch` survives as a deprecated shim over
:meth:`LLM.generate` with identical outputs.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable, Iterator, Sequence

import numpy as np

from repro.errors import ModelError, RequestError
from repro.llm.transformer import CausalLM
from repro.serve.engine import Engine, EngineConfig
from repro.serve.handle import RequestHandle, TokenDelta
from repro.serve.metrics import EngineMetrics
from repro.serve.params import SamplingParams
from repro.serve.request import CompletedRequest
from repro.serve.telemetry import EngineTelemetry


class LLM:
    """High-level serving interface over one continuous-batching engine.

    Args:
        model: a :class:`~repro.llm.transformer.CausalLM`, or a model
            zoo name (e.g. ``"opt-125m-sim"``) resolved through
            :func:`repro.llm.zoo.get_model`.  Omit when passing a
            pre-built ``engine``.
        config: engine configuration (KV mode, paged pool, chunked
            prefill, scheduler policy); ignored when ``engine`` is
            given.
        engine: adopt an existing engine instead of building one —
            several facades (or facade and raw-engine code) may share
            it; results are never stolen across owners.
    """

    def __init__(
        self,
        model: CausalLM | str | None = None,
        config: EngineConfig | None = None,
        engine: Engine | None = None,
    ) -> None:
        if engine is not None:
            self.engine = engine
        else:
            if model is None:
                raise RequestError("LLM needs a model (or a pre-built engine)")
            if isinstance(model, str):
                from repro.llm.zoo import get_model

                model = get_model(model)
            self.engine = Engine(model, config)
        self.model = self.engine.model

    # -- request entry -----------------------------------------------------

    def submit(
        self,
        prompt_tokens: np.ndarray,
        sampling_params: SamplingParams | None = None,
    ) -> RequestHandle:
        """Enqueue one request; returns its streaming handle."""
        return self.engine.submit(
            prompt_tokens, sampling_params or SamplingParams()
        )

    def _submit_all(
        self,
        prompts: Sequence[np.ndarray],
        sampling_params: SamplingParams | Sequence[SamplingParams] | None,
    ) -> list[RequestHandle]:
        if sampling_params is None:
            sampling_params = SamplingParams()
        if isinstance(sampling_params, SamplingParams):
            per_prompt: Sequence[SamplingParams] = [sampling_params] * len(prompts)
        else:
            per_prompt = list(sampling_params)
            if len(per_prompt) != len(prompts):
                raise RequestError(
                    f"got {len(per_prompt)} SamplingParams for "
                    f"{len(prompts)} prompts; pass one recipe or one per prompt"
                )
        return [
            self.engine.submit(prompt, params)
            for prompt, params in zip(prompts, per_prompt)
        ]

    # -- batch lifecycle ---------------------------------------------------

    def generate(
        self,
        prompts: Sequence[np.ndarray] | np.ndarray,
        sampling_params: SamplingParams | Sequence[SamplingParams] | None = None,
        max_steps: int | None = None,
    ) -> list[CompletedRequest] | CompletedRequest:
        """Serve prompts to completion; results align with input order.

        ``sampling_params`` is one recipe for the whole batch or one
        per prompt (requests always draw from independent per-request
        RNG streams, exactly as sequential
        :func:`repro.llm.generation.generate` calls would).  A single
        1-D ndarray prompt returns a single result; a 2-D ndarray is a
        batch of row prompts (as the deprecated ``serve_batch``
        treated it), returning a list.

        The engine is run to idle, so on a shared engine, requests
        submitted elsewhere finish too — their results stay claimable
        via their own handles or :meth:`Engine.pop_finished`, never
        collected here.
        """
        single = isinstance(prompts, np.ndarray) and prompts.ndim == 1
        if isinstance(prompts, np.ndarray) and prompts.ndim > 1:
            # A row-per-prompt batch must not be flattened into one
            # giant concatenated request.
            batch: Sequence[np.ndarray] = list(prompts)
        else:
            batch = [prompts] if single else prompts
        handles = self._submit_all(batch, sampling_params)
        self.engine.run_until_idle(max_steps=max_steps)
        results = [handle.result() for handle in handles]
        return results[0] if single else results

    # -- streaming lifecycle -----------------------------------------------

    def stream(
        self,
        prompts: Iterable[np.ndarray | RequestHandle],
        sampling_params: SamplingParams | Sequence[SamplingParams] | None = None,
        max_steps: int | None = None,
    ) -> Iterator[TokenDelta]:
        """Yield every token of these requests the step it is emitted.

        Accepts raw prompts (submitted on first iteration) or
        already-submitted :class:`RequestHandle`s, mixed freely.  Steps
        the engine only while one of *these* requests is still in
        flight; deltas belonging to other requests sharing the engine
        are not yielded (their handles buffer them).  A request aborted
        mid-stream simply stops appearing; the stream ends when every
        tracked request is terminal.
        """
        entries = list(prompts)
        raw = [e for e in entries if not isinstance(e, RequestHandle)]
        raw_handles = iter(self._submit_all(raw, sampling_params))
        handles = [
            entry if isinstance(entry, RequestHandle) else next(raw_handles)
            for entry in entries
        ]
        cursors = {handle.request_id: 0 for handle in handles}
        start_step = self.engine._step_index
        while True:
            # Flush every buffered-but-unseen delta of tracked requests.
            for handle in handles:
                fresh = handle.deltas(cursors[handle.request_id])
                cursors[handle.request_id] += len(fresh)
                yield from fresh
            # After a flush, cursors are caught up: a handle is pending
            # iff it is still in flight (terminal handles are fully
            # consumed).
            in_flight = [handle for handle in handles if not handle.terminal]
            if not in_flight:
                return
            # Step (guarded) until an in-flight request progresses — a
            # new delta, or a terminal transition without one (abort).
            # Foreign requests sharing the engine progress in the same
            # steps but are never yielded.
            consumed = self.engine._step_index - start_step
            remaining = None if max_steps is None else max_steps - consumed
            if remaining is not None and remaining < 1:
                raise ModelError(
                    f"stream did not finish within max_steps={max_steps}"
                )
            self.engine.run_until(
                lambda: any(
                    h.delta_count > cursors[h.request_id] or h.terminal
                    for h in in_flight
                ),
                max_steps=remaining,
                what=(
                    f"stream (step budget {max_steps} total, "
                    f"{consumed} already used)"
                ),
            )

    # -- passthroughs ------------------------------------------------------

    def abort(self, request: RequestHandle | int) -> bool:
        """Cancel a request by handle or id (see :meth:`Engine.abort`)."""
        if isinstance(request, RequestHandle):
            request = request.request_id
        return self.engine.abort(request)

    def metrics(self) -> EngineMetrics:
        """Aggregate engine metrics (throughput, latency, traffic)."""
        return self.engine.metrics()

    @property
    def telemetry(self) -> EngineTelemetry:
        """The engine's :class:`~repro.serve.telemetry.EngineTelemetry`
        bundle (counter registry, optional tracer, exporters)."""
        return self.engine.telemetry


def serve_batch(
    model: CausalLM,
    prompts: list[np.ndarray],
    max_new_tokens: int,
    temperature: float = 0.0,
    top_k: int = 20,
    seed: int = 0,
    config: EngineConfig | None = None,
    engine: Engine | None = None,
) -> list[CompletedRequest]:
    """Deprecated: serve a fixed batch of prompts to completion.

    Thin shim over :meth:`LLM.generate` kept for migration — emits a
    :class:`DeprecationWarning` and returns exactly what the facade
    returns (the parity test pins identical outputs).  Each request
    gets the same recipe, as before; per-request recipes, streaming and
    abort need the :class:`LLM` surface.

    Pass a pre-built ``engine`` to keep a handle on it afterwards
    (e.g. for :meth:`Engine.metrics`); ``config`` is ignored then.
    """
    warnings.warn(
        "serve_batch is deprecated; use repro.serve.LLM(...).generate("
        "prompts, SamplingParams(...)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    llm = LLM(model=model, config=config, engine=engine)
    params = SamplingParams(
        max_new_tokens=max_new_tokens,
        temperature=temperature,
        top_k=top_k,
        seed=seed,
    )
    results = llm.generate(list(prompts), params)
    assert isinstance(results, list)
    return results
