"""The complete FP-INT GeMM operator of Fig. 8(d).

Combines the two integer halves of the W4A16 + Anda scheme into the
actual computation the MXU performs:

* activations enter as an :class:`~repro.core.anda.AndaTensor`
  (bit-plane storage, shared exponents),
* weights enter as group-wise INT4 codes with per-group scales/zeros
  (:class:`~repro.quant.weight_quant.QuantizedWeight`),
* within each 64-element activation group the dot product is *pure
  integer* arithmetic (signed mantissas x signed weight codes),
* per-group results are rescaled by ``2^(shared_exp) * weight_scale``
  and accumulated across groups in FP32,
* the output can be re-encoded to Anda by the BPC for the next layer.

The zero-point handling mirrors the hardware trick: asymmetric weights
``(code - zero) * scale`` contribute ``-zero * scale * sum(activations
in group)``, and the per-group activation *sum* is itself an integer
dot product with all-ones weights — so the correction runs on the same
integer datapath.

Numerical contract (tested): bit-identical to dequantizing both
operands and running the float composition, because every intermediate
is exact integer arithmetic until the final FP32 rescale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.anda import ANDA_GROUP_SIZE, AndaTensor
from repro.core.compressor import BitPlaneCompressor
from repro.errors import HardwareError
from repro.quant.weight_quant import QuantizedWeight


@dataclass(frozen=True)
class GemmStats:
    """Operational counts of one Anda GeMM call.

    Attributes:
        integer_macs: integer multiply-accumulates executed.
        groups_reduced: activation groups streamed through the PE array.
        bitplanes_streamed: mantissa planes consumed (cycles x words).
        output_compress_cycles: BPC cycles when re-encoding the output.
    """

    integer_macs: int
    groups_reduced: int
    bitplanes_streamed: int
    output_compress_cycles: int = 0


def _weight_groups(weights: QuantizedWeight, k: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Signed integer codes and per-group (scale, zero) aligned to the
    activation grouping (both group along the reduction axis)."""
    if weights.group_size % ANDA_GROUP_SIZE != 0 and ANDA_GROUP_SIZE % weights.group_size != 0:
        raise HardwareError(
            f"weight group size {weights.group_size} must nest with the "
            f"Anda group size {ANDA_GROUP_SIZE}"
        )
    codes = weights.codes.astype(np.int64)
    if codes.shape[0] < k:
        raise HardwareError(
            f"weight reduction dim {codes.shape[0]} shorter than "
            f"activation dim {k}"
        )
    return codes, weights.scales.astype(np.float64), weights.zeros.astype(np.float64)


def anda_gemm(
    activations: AndaTensor,
    weights: QuantizedWeight,
    compress_output_bits: int | None = None,
) -> tuple[np.ndarray, GemmStats]:
    """FP-INT GeMM: Anda activations x group-wise INT weights.

    Args:
        activations: logical ``(rows, k)`` Anda tensor.
        weights: quantized ``(k, n)`` weight matrix (reduction-axis
            groups).
        compress_output_bits: when set, run the output through the BPC
            and return the decoded (quantized) result — the write-back
            path of Fig. 8(d).

    Returns:
        ``(output, stats)`` where output is float32 ``(rows, n)``.
    """
    if len(activations.shape) != 2:
        raise HardwareError(
            f"anda_gemm expects 2-D activations, got {activations.shape}"
        )
    rows, k = activations.shape
    codes, scales, zeros = _weight_groups(weights, k)
    n = codes.shape[1]

    groups_per_row = activations.layout.groups_per_row
    padded_k = groups_per_row * ANDA_GROUP_SIZE

    signed = activations.signed_mantissa().reshape(
        rows, groups_per_row, ANDA_GROUP_SIZE
    )
    exponents = activations.store.exponents.reshape(rows, groups_per_row)
    act_scale = np.ldexp(1.0, exponents + 1 - activations.mantissa_bits)

    codes_padded = np.zeros((padded_k, n), dtype=np.int64)
    codes_padded[: codes.shape[0]] = codes
    codes_grouped = codes_padded.reshape(groups_per_row, ANDA_GROUP_SIZE, n)

    # Broadcast weight-group parameters onto the Anda grouping: weight
    # group g_w covers Anda groups g_w * (wg / 64) .. ; when the weight
    # groups are *smaller*, average is invalid — instead expand codes'
    # scale per Anda subgroup via repetition.
    wg = weights.group_size
    if wg >= ANDA_GROUP_SIZE:
        repeat = wg // ANDA_GROUP_SIZE
        scale_rows = np.repeat(scales, repeat, axis=0)[:groups_per_row]
        zero_rows = np.repeat(zeros, repeat, axis=0)[:groups_per_row]
        # Integer dot product per (row, anda-group, out-col).
        integer = np.einsum(
            "rgk,gkn->rgn", signed.astype(np.float64), codes_grouped
        )
        # Zero-point correction: zero * sum of group activations.
        act_sums = signed.sum(axis=2).astype(np.float64)
        corrected = (
            integer - act_sums[:, :, None] * zero_rows[None, :, :]
        ) * scale_rows[None, :, :]
        output = (corrected * act_scale[:, :, None]).sum(axis=1)
    else:
        # Sub-64 weight groups: reduce at the finer weight granularity.
        sub = ANDA_GROUP_SIZE // wg
        fine = signed.reshape(rows, groups_per_row * sub, wg)
        codes_fine = codes_padded.reshape(groups_per_row * sub, wg, n)
        n_wgroups = -(-codes.shape[0] // wg)
        scale_rows = np.zeros((groups_per_row * sub, n))
        zero_rows = np.zeros((groups_per_row * sub, n))
        scale_rows[:n_wgroups] = scales
        zero_rows[:n_wgroups] = zeros
        integer = np.einsum("rgk,gkn->rgn", fine.astype(np.float64), codes_fine)
        act_sums = fine.sum(axis=2).astype(np.float64)
        corrected = (
            integer - act_sums[:, :, None] * zero_rows[None, :, :]
        ) * scale_rows[None, :, :]
        act_scale_fine = np.repeat(act_scale, sub, axis=1)
        output = (corrected * act_scale_fine[:, :, None]).sum(axis=1)

    output32 = output.astype(np.float32)
    stats = GemmStats(
        integer_macs=rows * padded_k * n,
        groups_reduced=rows * groups_per_row * n,
        bitplanes_streamed=rows * groups_per_row * activations.mantissa_bits,
    )

    if compress_output_bits is not None:
        compressed, bpc_stats = BitPlaneCompressor().compress(
            output32, compress_output_bits
        )
        stats = GemmStats(
            integer_macs=stats.integer_macs,
            groups_reduced=stats.groups_reduced,
            bitplanes_streamed=stats.bitplanes_streamed,
            output_compress_cycles=bpc_stats.cycles,
        )
        return compressed.decode(), stats
    return output32, stats


def reference_gemm(activations: AndaTensor, weights: QuantizedWeight) -> np.ndarray:
    """Float reference: dequantize both operands, matmul in float64.

    Used by tests to pin down :func:`anda_gemm`'s numerical contract.
    """
    rows, k = activations.shape
    act = activations.group_values().reshape(rows, -1)[:, :k].astype(np.float64)
    wgt = weights.dequantize().astype(np.float64)
    return (act @ wgt).astype(np.float32)
