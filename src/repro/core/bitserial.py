"""Bit-serial Anda processing-unit arithmetic (APU, Fig. 11).

The Anda PE computes the dot product between a 64-element group of Anda
activations and 64 INT weights by streaming the mantissa *bit planes*
MSB-first:

* for each plane, an adder tree reduces the signed weights selected by
  that plane's bits into one partial sum
  (*first-element-then-bit-plane* reduction),
* the accumulator shifts left and adds the partial sum each cycle, so
  after ``M`` planes it holds the exact integer dot product
  ``sum_i sign_i * mantissa_i * w_i``,
* the result is rescaled by the shared exponent and the weight group
  scale, then accumulated across groups in FP32.

The plane-serial routine here mirrors the hardware cycle-for-cycle and
is tested for exact equality with the vectorized integer reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.anda import AndaTensor
from repro.core.bitplane import WORD_BITS, unpack_signs
from repro.errors import HardwareError


@dataclass(frozen=True)
class DotProductResult:
    """Outcome of one bit-serial group dot product.

    Attributes:
        value: rescaled float result of the group.
        integer: exact integer accumulator value after the last plane.
        cycles: planes processed (``M``), the PE's busy cycles for the
            group before the one-cycle rescale/drain.
    """

    value: float
    integer: int
    cycles: int


def plane_partial_sums(
    planes: np.ndarray, sign_word: np.uint64, weights: np.ndarray
) -> np.ndarray:
    """Adder-tree partial sums for every plane of one group.

    Args:
        planes: ``(M,)`` packed 64-bit plane words, MSB plane first.
        sign_word: packed sign bits of the group's 64 elements.
        weights: ``(64,)`` integer weights.

    Returns:
        ``(M,)`` int64 partial sums ``sum_i (+/- w_i) * bit_{i, plane}``.
    """
    weights = np.asarray(weights, dtype=np.int64)
    if weights.shape != (WORD_BITS,):
        raise HardwareError(
            f"group dot product needs {WORD_BITS} weights, got {weights.shape}"
        )
    signs = unpack_signs(np.asarray([sign_word], dtype=np.uint64))[0]
    signed_weights = np.where(signs == 1, -weights, weights)
    positions = np.arange(WORD_BITS, dtype=np.uint64)
    bits = (planes[:, None] >> positions) & np.uint64(1)
    return (bits.astype(np.int64) * signed_weights).sum(axis=1)


def serial_group_dot(
    planes: np.ndarray,
    sign_word: np.uint64,
    shared_exponent: int,
    mantissa_bits: int,
    weights: np.ndarray,
    weight_scale: float = 1.0,
) -> DotProductResult:
    """Cycle-explicit bit-serial dot product of one Anda group.

    Models the shift-accumulate loop of the Anda PE and the final
    exponent rescale of the FP conversion stage.
    """
    partials = plane_partial_sums(np.asarray(planes, dtype=np.uint64), sign_word, weights)
    accumulator = np.int64(0)
    for partial in partials:
        accumulator = (accumulator << 1) + partial
    scale = float(np.ldexp(1.0, int(shared_exponent) + 1 - mantissa_bits))
    return DotProductResult(
        value=float(accumulator) * scale * float(weight_scale),
        integer=int(accumulator),
        cycles=mantissa_bits,
    )


def reference_group_dot(
    signed_mantissa: np.ndarray,
    shared_exponent: int,
    mantissa_bits: int,
    weights: np.ndarray,
    weight_scale: float = 1.0,
) -> float:
    """Vectorized integer reference for :func:`serial_group_dot`."""
    integer = int(
        np.dot(
            np.asarray(signed_mantissa, dtype=np.int64),
            np.asarray(weights, dtype=np.int64),
        )
    )
    scale = float(np.ldexp(1.0, int(shared_exponent) + 1 - mantissa_bits))
    return integer * scale * float(weight_scale)


def anda_matvec(
    activations: AndaTensor,
    weights: np.ndarray,
    weight_scales: np.ndarray | float = 1.0,
    serial: bool = False,
) -> np.ndarray:
    """Full FP-INT mat-vec/GeMM reduction using Anda group arithmetic.

    Args:
        activations: Anda-encoded activation matrix of logical shape
            ``(rows, k)``.
        weights: integer weight matrix of shape ``(k, n)`` (already
            quantized; INT4 values in [-8, 7] for W4A16).
        weight_scales: per-output-column dequantization scales, scalar
            or shape ``(n,)``.  Group-wise weight scales should be folded
            by the caller (see :mod:`repro.quant.weight_quant`).
        serial: if True, run the cycle-explicit plane-serial path for
            every group (slow; used by equivalence tests).

    Returns:
        float32 result of shape ``(rows, n)``: within-group integer dot
        products rescaled and accumulated across groups in FP32, exactly
        as the APU + FP accumulator pipeline does.
    """
    shape = activations.shape
    if len(shape) != 2:
        raise HardwareError(f"anda_matvec expects a 2-D activation tensor, got {shape}")
    rows, k = shape
    weights = np.asarray(weights)
    if weights.shape[0] != k:
        raise HardwareError(
            f"weight reduction dim {weights.shape[0]} != activation dim {k}"
        )
    groups_per_row = activations.layout.groups_per_row
    group = activations.layout.group_size

    signed = activations.signed_mantissa().reshape(rows, groups_per_row, group)
    exponents = activations.store.exponents.reshape(rows, groups_per_row)
    scales = np.ldexp(1.0, exponents + 1 - activations.mantissa_bits)

    padded_k = groups_per_row * group
    w_padded = np.zeros((padded_k, weights.shape[1]), dtype=np.int64)
    w_padded[:k] = weights.astype(np.int64)
    w_grouped = w_padded.reshape(groups_per_row, group, -1)

    if serial:
        out = np.zeros((rows, weights.shape[1]), dtype=np.float64)
        planes = activations.store.mantissa_planes.reshape(
            rows, groups_per_row, activations.mantissa_bits
        )
        sign_words = activations.store.sign_words.reshape(rows, groups_per_row)
        for r in range(rows):
            for g in range(groups_per_row):
                for col in range(weights.shape[1]):
                    result = serial_group_dot(
                        planes[r, g],
                        sign_words[r, g],
                        int(exponents[r, g]),
                        activations.mantissa_bits,
                        w_grouped[g, :, col],
                    )
                    out[r, col] += result.value
    else:
        # einsum over groups: integer dot within group, FP32 across.
        partial = np.einsum("rgk,gkn->rgn", signed.astype(np.float64), w_grouped)
        out = (partial * scales[:, :, None]).sum(axis=1)

    out = out.astype(np.float32)
    return out * np.asarray(weight_scales, dtype=np.float32)
