"""Block-floating-point (BFP) quantization of FP16 tensors.

Implements the conversion of Fig. 4 in the paper: values are grouped,
the largest exponent of each group becomes the shared exponent, every
significand is right-shifted by its exponent difference, and bits beyond
the configured mantissa length are truncated.

The mantissa length ``M`` counts significand bits *including* the
hidden-bit position of the group maximum, matching the paper's
"preserved mantissa bits" axis (FP16 alignment-free precision is
``M = 11``; larger ``M`` buys headroom for shifted elements, smaller
``M`` truncates).

This module is the numerical core for the plain-BFP baselines
(VS-Quant-style 4-bit, FIGNA-style long-mantissa) as well as the parent
of the Anda tensor type, which adds variable-length storage and
bit-plane layout on top.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import fp16
from repro.core.groups import GroupLayout, from_groups, to_groups
from repro.errors import FormatError

#: Inclusive range of mantissa lengths the Anda hardware supports
#: (Table I: 1b .. 16b, bit-serial).
MIN_MANTISSA_BITS = 1
MAX_MANTISSA_BITS = 16

_ROUNDING_MODES = ("truncate", "nearest", "stochastic")


@dataclass(frozen=True)
class BfpConfig:
    """Static parameters of a BFP conversion.

    Attributes:
        mantissa_bits: preserved significand bits ``M`` (hidden bit
            included), 1..16.
        group_size: elements sharing one exponent; ``None`` means one
            group per channel row (the paper's ``GS=#Channels``).
        rounding: ``"truncate"`` (paper semantics, hardware-cheap),
            ``"nearest"`` (round-to-nearest on the kept bits), or
            ``"stochastic"`` (FAST-style unbiased stochastic rounding
            [85], seeded by ``seed`` for reproducibility).
        seed: rng seed for stochastic rounding; ignored otherwise.
    """

    mantissa_bits: int = 8
    group_size: int | None = 64
    rounding: str = "truncate"
    seed: int = 0

    def __post_init__(self) -> None:
        if not MIN_MANTISSA_BITS <= self.mantissa_bits <= MAX_MANTISSA_BITS:
            raise FormatError(
                f"mantissa_bits must be in [{MIN_MANTISSA_BITS}, "
                f"{MAX_MANTISSA_BITS}], got {self.mantissa_bits}"
            )
        if self.group_size is not None and self.group_size < 1:
            raise FormatError(f"group_size must be >= 1, got {self.group_size}")
        if self.rounding not in _ROUNDING_MODES:
            raise FormatError(
                f"rounding must be one of {_ROUNDING_MODES}, got {self.rounding!r}"
            )


@dataclass
class BfpTensor:
    """A tensor quantized to grouped block floating point.

    Structure-of-arrays storage: per-element sign and mantissa magnitude,
    plus one shared exponent per group.  ``shared_exponent`` uses the
    integer-significand convention of :mod:`repro.core.fp16`; a group of
    all zeros stores the :data:`repro.core.fp16.ZERO_EXPONENT` sentinel.

    Attributes:
        sign: ``(n_groups, group_size)`` array in {0, 1}.
        mantissa: ``(n_groups, group_size)`` unsigned magnitudes
            ``< 2**mantissa_bits``.
        shared_exponent: ``(n_groups,)`` unbiased shared exponents.
        config: the :class:`BfpConfig` used to produce this tensor.
        layout: grouping metadata for shape restoration.
    """

    sign: np.ndarray
    mantissa: np.ndarray
    shared_exponent: np.ndarray
    config: BfpConfig
    layout: GroupLayout

    @property
    def shape(self) -> tuple[int, ...]:
        """Logical (unpadded) shape of the represented tensor."""
        return self.layout.shape

    @property
    def n_groups(self) -> int:
        """Number of shared-exponent groups (including padding)."""
        return self.layout.n_groups

    def dequantize(self) -> np.ndarray:
        """Reconstruct the float32 tensor this BFP encoding represents."""
        scale_exp = self.shared_exponent + 1 - self.config.mantissa_bits
        magnitude = np.ldexp(
            self.mantissa.astype(np.float64), scale_exp[:, None]
        )
        signed = np.where(self.sign == 1, -magnitude, magnitude)
        return from_groups(signed, self.layout).astype(np.float32)

    def storage_bits(self) -> int:
        """Element-based storage cost in bits (sign + mantissa + exponents).

        This is the cost of a *element-layout* BFP store; the bit-plane
        layout of :mod:`repro.core.bitplane` has the same payload size
        but word-regular access.
        """
        per_element = 1 + self.config.mantissa_bits
        n_elements = self.layout.n_groups * self.layout.group_size
        exponent_bits = 8 * self.layout.n_groups
        return per_element * n_elements + exponent_bits

    def signed_mantissa(self) -> np.ndarray:
        """Per-element signed integer mantissas, ``(n_groups, group_size)``."""
        return np.where(self.sign == 1, -self.mantissa, self.mantissa)


def _align_and_truncate(
    significand: np.ndarray,
    shift: np.ndarray,
    mantissa_bits: int,
    rounding: str,
    seed: int = 0,
) -> np.ndarray:
    """Shift 11-bit significands right by ``shift`` keeping ``mantissa_bits``.

    Computes ``floor(s * 2**(M - 11) / 2**shift)`` exactly with integer
    shifts (with optional round-to-nearest or FAST-style stochastic
    rounding), which is what the hardware's parallel-to-serial aligner
    produces bit-serially.
    """
    widened = significand.astype(np.int64) << max(mantissa_bits - fp16.SIGNIFICAND_BITS, 0)
    right = shift + max(fp16.SIGNIFICAND_BITS - mantissa_bits, 0)
    # Shifts beyond 62 would be undefined behaviour in C; numpy handles up
    # to 63 for int64, and exponent gaps in FP16 are < 45, so clip safely.
    right = np.minimum(right, 62)
    if rounding == "nearest":
        half = np.where(right > 0, np.int64(1) << np.maximum(right - 1, 0), 0)
        quantized = (widened + half) >> right
        # Rounding can carry out of the mantissa field; saturate like the
        # hardware (a renormalize would change the shared exponent).
        quantized = np.minimum(quantized, (1 << mantissa_bits) - 1)
    elif rounding == "stochastic":
        # Add Uniform[0, 2**right) noise before truncating: each value
        # rounds up with probability equal to its discarded fraction,
        # making the rounding unbiased in expectation (FAST [85]).
        rng = np.random.default_rng(seed)
        span = np.where(right > 0, np.int64(1) << right, 1).astype(np.float64)
        noise = np.floor(rng.random(size=widened.shape) * span).astype(np.int64)
        quantized = (widened + noise) >> right
        quantized = np.minimum(quantized, (1 << mantissa_bits) - 1)
    else:
        quantized = widened >> right
    return quantized


def quantize(values: np.ndarray, config: BfpConfig) -> BfpTensor:
    """Convert a finite tensor to grouped BFP (Fig. 4 of the paper).

    The input is first rounded to FP16 (activations are FP16 in W4A16
    inference), then grouped along the last axis; each group keeps the
    maximum exponent and aligned, truncated mantissas.

    Raises:
        FormatError: on NaN/Inf input or invalid configuration.
    """
    grouped, layout = to_groups(values, config.group_size)
    sign, exponent, significand = fp16.decompose(grouped)
    shared = exponent.max(axis=1)
    shift = np.where(significand > 0, shared[:, None] - exponent, 0)
    mantissa = _align_and_truncate(
        significand, shift, config.mantissa_bits, config.rounding, config.seed
    )
    # Elements whose value truncated to zero keep sign 0 for a canonical
    # encoding (the hardware stores all-zero mantissa planes for them).
    sign = np.where(mantissa == 0, 0, sign)
    return BfpTensor(
        sign=sign.astype(np.int8),
        mantissa=mantissa.astype(np.int32),
        shared_exponent=shared.astype(np.int32),
        config=config,
        layout=layout,
    )


def fake_quantize(values: np.ndarray, config: BfpConfig) -> np.ndarray:
    """Quantize-dequantize helper: the float32 tensor "as the hardware sees it".

    This is the drop-in used by the LLM substrate's activation hooks:
    the GeMM then runs on exactly the values the Anda datapath would
    compute with.
    """
    return quantize(np.asarray(values), config).dequantize()


def quantization_error(values: np.ndarray, config: BfpConfig) -> float:
    """Root-mean-square error introduced by a BFP conversion.

    Convenience metric used by tests and the sensitivity experiments.
    """
    arr = np.asarray(values, dtype=np.float32)
    return float(np.sqrt(np.mean((arr - fake_quantize(arr, config)) ** 2)))
