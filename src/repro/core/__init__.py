"""Core of the Anda reproduction: data formats and the precision search.

Public surface:

* :mod:`repro.core.fp16` — bit-true FP16 field codec.
* :mod:`repro.core.bfp` — grouped block-floating-point quantization.
* :mod:`repro.core.anda` — the Anda variable-length grouped format.
* :mod:`repro.core.bitplane` — transposed bit-plane memory layout.
* :mod:`repro.core.compressor` — runtime bit-plane compressor model.
* :mod:`repro.core.bitserial` — bit-serial APU dot-product arithmetic.
* :mod:`repro.core.bops` — bit-operation cost model.
* :mod:`repro.core.precision` / :mod:`repro.core.search` — the adaptive
  precision combination search (Algorithm 1).
"""

from repro.core.anda import ANDA_GROUP_SIZE, AndaTensor
from repro.core.bfp import BfpConfig, BfpTensor, fake_quantize, quantize
from repro.core.bitplane import BitPlaneStore
from repro.core.bitserial import anda_matvec, serial_group_dot
from repro.core.bops import (
    FP16_INT4_BOPS,
    bops_saving,
    combination_bops,
    effective_mantissa_bits,
    module_mac_weights,
    uniform_bops_saving,
)
from repro.core.compressor import BitPlaneCompressor, CompressorStats
from repro.core.precision import PrecisionCombination, TensorKind
from repro.core.serialize import dumps, image_bytes, loads
from repro.core.search import (
    DEFAULT_MAX_ITERATIONS,
    SearchResult,
    SearchStep,
    adaptive_precision_search,
)

__all__ = [
    "ANDA_GROUP_SIZE",
    "AndaTensor",
    "BfpConfig",
    "BfpTensor",
    "BitPlaneCompressor",
    "BitPlaneStore",
    "CompressorStats",
    "DEFAULT_MAX_ITERATIONS",
    "FP16_INT4_BOPS",
    "PrecisionCombination",
    "SearchResult",
    "SearchStep",
    "TensorKind",
    "adaptive_precision_search",
    "anda_matvec",
    "bops_saving",
    "combination_bops",
    "dumps",
    "effective_mantissa_bits",
    "fake_quantize",
    "image_bytes",
    "loads",
    "module_mac_weights",
    "quantize",
    "serial_group_dot",
    "uniform_bops_saving",
]
