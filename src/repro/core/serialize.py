"""Binary serialization of Anda tensors (the DRAM/disk memory image).

The paper's scheme keeps activations *in the Anda format in memory*
(Fig. 8d); this module defines that image concretely so storage-size
claims are testable on real bytes:

========  =======================================================
section   contents
========  =======================================================
header    magic, version, mantissa bits, rounding, shape, groups
exponent  one int8 per group (the 0.125 MB partition, Fig. 13)
signs     one 64-bit word per group
planes    ``M`` 64-bit words per group, MSB plane first
========  =======================================================

Round trips are bit-exact; the byte count matches
``AndaTensor.storage_bits()`` up to the fixed header.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.anda import ANDA_GROUP_SIZE, AndaTensor
from repro.core.bitplane import BitPlaneStore
from repro.core.groups import GroupLayout
from repro.errors import FormatError

_MAGIC = b"ANDA"
_VERSION = 1
_ROUNDING_CODES = {"truncate": 0, "nearest": 1, "stochastic": 2}
_ROUNDING_NAMES = {code: name for name, code in _ROUNDING_CODES.items()}

#: Header layout: magic, version, mantissa bits, rounding code,
#: ndim, n_groups, pad, row_length  (then ndim uint32 dims).
_HEADER = struct.Struct("<4sBBBBQQQ")


def dumps(tensor: AndaTensor) -> bytes:
    """Serialize an Anda tensor to its binary memory image."""
    header = _HEADER.pack(
        _MAGIC,
        _VERSION,
        tensor.mantissa_bits,
        _ROUNDING_CODES[tensor.rounding],
        len(tensor.layout.shape),
        tensor.layout.n_groups,
        tensor.layout.pad,
        tensor.layout.row_length,
    )
    dims = np.asarray(tensor.layout.shape, dtype="<u4").tobytes()
    exponents = tensor.store.exponents.astype("<i2").tobytes()
    signs = tensor.store.sign_words.astype("<u8").tobytes()
    planes = tensor.store.mantissa_planes.astype("<u8").tobytes()
    return header + dims + exponents + signs + planes


def loads(payload: bytes) -> AndaTensor:
    """Reconstruct an Anda tensor from :func:`dumps` output."""
    if len(payload) < _HEADER.size:
        raise FormatError("payload too short for an Anda header")
    magic, version, mantissa_bits, rounding_code, ndim, n_groups, pad, row_length = (
        _HEADER.unpack_from(payload)
    )
    if magic != _MAGIC:
        raise FormatError("not an Anda image (bad magic)")
    if version != _VERSION:
        raise FormatError(f"unsupported Anda image version {version}")
    if rounding_code not in _ROUNDING_NAMES:
        raise FormatError(f"unknown rounding code {rounding_code}")

    offset = _HEADER.size
    expected = offset + 4 * ndim + n_groups * (2 + 8 + 8 * mantissa_bits)
    if len(payload) != expected:
        raise FormatError(
            f"payload length {len(payload)} != expected {expected}"
        )
    dims = np.frombuffer(payload, dtype="<u4", count=ndim, offset=offset)
    offset += 4 * ndim
    exponents = np.frombuffer(payload, dtype="<i2", count=n_groups, offset=offset)
    offset += 2 * n_groups
    signs = np.frombuffer(payload, dtype="<u8", count=n_groups, offset=offset)
    offset += 8 * n_groups
    planes = np.frombuffer(
        payload, dtype="<u8", count=n_groups * mantissa_bits, offset=offset
    )

    layout = GroupLayout(
        shape=tuple(int(d) for d in dims),
        group_size=ANDA_GROUP_SIZE,
        n_groups=int(n_groups),
        pad=int(pad),
        row_length=int(row_length),
    )
    store = BitPlaneStore(
        sign_words=signs.copy(),
        mantissa_planes=planes.reshape(n_groups, mantissa_bits).copy(),
        exponents=exponents.astype(np.int32),
        mantissa_bits=int(mantissa_bits),
    )
    return AndaTensor(
        store=store,
        layout=layout,
        mantissa_bits=int(mantissa_bits),
        rounding=_ROUNDING_NAMES[rounding_code],
    )


def image_bytes(tensor: AndaTensor) -> int:
    """Size of the serialized image in bytes (header included)."""
    return (
        _HEADER.size
        + 4 * len(tensor.layout.shape)
        + tensor.layout.n_groups * (2 + 8 + 8 * tensor.mantissa_bits)
    )
