"""Bit-true software codec for IEEE-754 binary16 (FP16).

The Anda format (and every block-floating-point variant in this library)
is defined in terms of the *fields* of FP16 numbers: sign, 5-bit biased
exponent and 10-bit stored mantissa with an implicit hidden bit.  This
module exposes those fields exactly, via integer views of ``numpy``
``float16`` arrays, so the format conversions in :mod:`repro.core.bfp`
and :mod:`repro.core.anda` are exact integer arithmetic rather than
float approximations.

Conventions
-----------
Throughout the library an FP16 value is written as::

    value = (-1)**sign * significand * 2**(exponent - 10)

where ``significand`` is the 11-bit integer including the hidden bit
(``1024 + mantissa_field`` for normal numbers, ``mantissa_field`` for
subnormals) and ``exponent`` is the *unbiased* exponent in this
"integer significand" convention (``exp_field - 15`` for normals,
``-14`` for subnormals).  This makes the shared-exponent alignment of
BFP conversion a pair of integer shifts.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError

#: Number of explicitly stored mantissa bits in FP16.
MANTISSA_FIELD_BITS = 10

#: Number of significand bits including the hidden bit.
SIGNIFICAND_BITS = 11

#: Exponent bias of FP16.
EXPONENT_BIAS = 15

#: Exponent-field value reserved for Inf/NaN.
EXPONENT_FIELD_SPECIAL = 31

#: Largest finite FP16 magnitude.
MAX_FINITE = 65504.0

#: Unbiased exponent (integer-significand convention) of subnormals.
SUBNORMAL_EXPONENT = 1 - EXPONENT_BIAS

#: Sentinel unbiased exponent assigned to zero elements so they never
#: win the shared-exponent maximum of a group.
ZERO_EXPONENT = -128


def to_fp16_bits(values: np.ndarray) -> np.ndarray:
    """Round an array to FP16 and return the raw ``uint16`` bit patterns.

    Values beyond the finite FP16 range are clamped to ``±MAX_FINITE``
    (activations in a trained network occasionally overflow FP16 when
    simulated in FP32; real inference kernels saturate the same way).

    Raises:
        FormatError: if ``values`` contains NaN or infinity.
    """
    arr = np.asarray(values, dtype=np.float32)
    if not np.all(np.isfinite(arr)):
        raise FormatError("cannot encode non-finite values as FP16")
    clipped = np.clip(arr, -MAX_FINITE, MAX_FINITE)
    return clipped.astype(np.float16).view(np.uint16)


def decompose_bits(bits: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split raw FP16 bit patterns into (sign, exp_field, mant_field).

    Returns:
        Tuple of integer arrays: sign in {0, 1}, biased exponent field in
        [0, 31], and the 10-bit stored mantissa field.
    """
    bits = np.asarray(bits, dtype=np.uint16)
    sign = ((bits >> 15) & 0x1).astype(np.int64)
    exp_field = ((bits >> MANTISSA_FIELD_BITS) & 0x1F).astype(np.int64)
    mant_field = (bits & 0x3FF).astype(np.int64)
    return sign, exp_field, mant_field


def decompose(values: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decompose arbitrary finite values into FP16 (sign, exponent, significand).

    The returned exponent follows the integer-significand convention of
    this module (see module docstring); the significand includes the
    hidden bit and spans [0, 2**11).  Zero elements get significand 0 and
    the :data:`ZERO_EXPONENT` sentinel.
    """
    sign, exp_field, mant_field = decompose_bits(to_fp16_bits(values))
    if np.any(exp_field == EXPONENT_FIELD_SPECIAL):
        raise FormatError("Inf/NaN bit pattern encountered in FP16 decompose")
    hidden = np.where(exp_field > 0, 1 << MANTISSA_FIELD_BITS, 0)
    significand = hidden | mant_field
    exponent = np.where(exp_field > 0, exp_field - EXPONENT_BIAS, SUBNORMAL_EXPONENT)
    exponent = np.where(significand == 0, ZERO_EXPONENT, exponent)
    return sign, exponent, significand


def compose(sign: np.ndarray, exponent: np.ndarray, significand: np.ndarray) -> np.ndarray:
    """Rebuild float32 values from (sign, exponent, significand) fields.

    Inverse of :func:`decompose` for all finite FP16 values::

        value = (-1)**sign * significand * 2**(exponent - 10)
    """
    sign = np.asarray(sign, dtype=np.int64)
    exponent = np.asarray(exponent, dtype=np.int64)
    significand = np.asarray(significand, dtype=np.int64)
    magnitude = np.ldexp(
        significand.astype(np.float64), exponent - MANTISSA_FIELD_BITS
    )
    return np.where(sign == 1, -magnitude, magnitude).astype(np.float32)


def round_trip(values: np.ndarray) -> np.ndarray:
    """Round values to FP16 precision and return them as float32.

    Equivalent to ``values.astype(float16).astype(float32)`` with the
    library's saturation semantics; used as the FP16 reference baseline
    in accuracy experiments.
    """
    return compose(*decompose(values))


def storage_bits(num_elements: int) -> int:
    """On-chip storage cost, in bits, of ``num_elements`` FP16 values."""
    return 16 * int(num_elements)
