"""The Anda activation data format (Sec. III of the paper).

An :class:`AndaTensor` is a variable-length grouped BFP tensor:

* groups of 64 values share one exponent (the paper's chosen group
  size — the sweet spot of Fig. 5 and the hardware word width),
* each element stores a sign bit and an ``M``-bit mantissa, where ``M``
  is chosen *per tensor type* by the adaptive precision search,
* storage is bit-plane based (:mod:`repro.core.bitplane`), so an
  ``M``-bit tensor occupies ``1 + M`` words per group plus one shared
  exponent — memory cost scales linearly with the chosen precision.

Unlike FIGNA-style dynamic conversion, the Anda scheme keeps activations
*in this format in memory* (Fig. 8d): encode once at producer side (the
runtime bit-plane compressor), decode never — the bit-serial PE consumes
planes directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import fp16
from repro.core.bfp import BfpConfig, BfpTensor, quantize
from repro.core.bitplane import WORD_BITS, BitPlaneStore
from repro.core.groups import GroupLayout, from_groups
from repro.errors import FormatError

#: The Anda group size: fixed at the 64-element hardware word width.
ANDA_GROUP_SIZE = WORD_BITS


@dataclass
class AndaTensor:
    """A tensor held in the Anda variable-length grouped format.

    Attributes:
        store: bit-plane packed payload (signs, planes, exponents).
        layout: grouping metadata (original shape, padding).
        mantissa_bits: the tensor-wide mantissa length ``M``.
        rounding: rounding mode used during encode.
    """

    store: BitPlaneStore
    layout: GroupLayout
    mantissa_bits: int
    rounding: str = "truncate"

    # -- construction -------------------------------------------------

    @classmethod
    def from_float(
        cls,
        values: np.ndarray,
        mantissa_bits: int,
        rounding: str = "truncate",
    ) -> "AndaTensor":
        """Encode a finite float tensor into the Anda format.

        The tensor is grouped along its last axis in runs of 64
        channels.  Raises :class:`~repro.errors.FormatError` for
        non-finite inputs or out-of-range mantissa lengths.
        """
        bfp = quantize(
            np.asarray(values),
            BfpConfig(
                mantissa_bits=mantissa_bits,
                group_size=ANDA_GROUP_SIZE,
                rounding=rounding,
            ),
        )
        return cls.from_bfp(bfp)

    @classmethod
    def from_bfp(cls, bfp: BfpTensor) -> "AndaTensor":
        """Re-package an existing 64-element-group BFP tensor bit-plane-wise."""
        if bfp.layout.group_size != ANDA_GROUP_SIZE:
            raise FormatError(
                f"Anda tensors use group size {ANDA_GROUP_SIZE}, got "
                f"{bfp.layout.group_size}"
            )
        store = BitPlaneStore.from_fields(
            bfp.sign, bfp.mantissa, bfp.shared_exponent, bfp.config.mantissa_bits
        )
        return cls(
            store=store,
            layout=bfp.layout,
            mantissa_bits=bfp.config.mantissa_bits,
            rounding=bfp.config.rounding,
        )

    # -- views ---------------------------------------------------------

    def to_bfp(self) -> BfpTensor:
        """Unpack back to structure-of-arrays BFP fields."""
        sign, mantissa, exponents = self.store.unpack()
        return BfpTensor(
            sign=sign,
            mantissa=mantissa,
            shared_exponent=exponents,
            config=BfpConfig(
                mantissa_bits=self.mantissa_bits,
                group_size=ANDA_GROUP_SIZE,
                rounding=self.rounding,
            ),
            layout=self.layout,
        )

    def decode(self) -> np.ndarray:
        """Reconstruct the float32 tensor the format represents."""
        return self.to_bfp().dequantize()

    # -- properties ----------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.layout.shape

    @property
    def n_groups(self) -> int:
        return self.layout.n_groups

    def storage_bits(self) -> int:
        """Memory footprint in bits, bit-plane layout included."""
        return self.store.storage_bits()

    def compression_ratio(self) -> float:
        """FP16 footprint divided by Anda footprint for this tensor.

        Padding elements are charged to Anda (the hardware stores whole
        groups), making the ratio slightly conservative for ragged rows.
        """
        n_logical = int(np.prod(self.layout.shape))
        return fp16.storage_bits(n_logical) / self.storage_bits()

    def signed_mantissa(self) -> np.ndarray:
        """Signed integer mantissas ``(n_groups, 64)`` for dot-product use."""
        sign, mantissa, _ = self.store.unpack()
        return np.where(sign == 1, -mantissa, mantissa)

    def group_values(self) -> np.ndarray:
        """Decoded float32 values kept in grouped ``(n_groups, 64)`` shape."""
        bfp = self.to_bfp()
        scale_exp = bfp.shared_exponent + 1 - self.mantissa_bits
        magnitude = np.ldexp(bfp.mantissa.astype(np.float64), scale_exp[:, None])
        return np.where(bfp.sign == 1, -magnitude, magnitude).astype(np.float32)


def _fake_quantize_reference(
    values: np.ndarray, mantissa_bits: int, rounding: str
) -> np.ndarray:
    """The field-decomposition quantize-dequantize pipeline.

    Numerically identical to ``AndaTensor.from_float(...).decode()``
    but skips the bit-plane packing.  This is the oracle the vectorized
    path below is pinned against — exact integer arithmetic over FP16
    fields, one numpy op per conversion stage.
    """
    config = BfpConfig(
        mantissa_bits=mantissa_bits, group_size=ANDA_GROUP_SIZE, rounding=rounding
    )
    bfp = quantize(np.asarray(values), config)
    scale_exp = bfp.shared_exponent + 1 - mantissa_bits
    magnitude = np.ldexp(bfp.mantissa.astype(np.float64), scale_exp[:, None])
    signed = np.where(bfp.sign == 1, -magnitude, magnitude)
    return from_groups(signed, bfp.layout).astype(np.float32)


#: Memoized scratch rows for ragged channel counts, keyed by padded 2-D
#: shape.  Distinct channel counts can pad to the same shape, so both
#: the data region and the pad tail are rewritten every call (the tail
#: must be zero — it participates in the group max).  Bounded so
#: pathological shape churn cannot grow it without limit.
_PAD_SCRATCH: dict[tuple[int, int], np.ndarray] = {}
_PAD_SCRATCH_LIMIT = 16


def _fake_quantize_rows_vectorized(rows: np.ndarray, mantissa_bits: int) -> np.ndarray:
    """Fused truncate-mode codec over ``(rows, channels)`` float rows.

    Bitwise identical to :func:`_fake_quantize_reference` (pinned by the
    hypothesis parity suite) but collapses its ~35 numpy dispatches to
    ~15 by staying in the float domain:

    * after FP16 rounding, the shared exponent of a group is just
      ``frexp(max |v|) - 1``, clamped to the subnormal convention;
    * aligning and truncating an 11-bit significand to ``M`` kept bits
      is ``trunc(|v| * 2**(M - 1 - shared))`` — exact, because FP16
      values scaled by powers of two carry at most 11 significant bits
      and every intermediate stays inside float32's exact range;
    * dequantization is the inverse ``ldexp``; adding ``+0.0`` restores
      the canonical positive zero the reference's sign-canonicalization
      produces for truncated-to-zero negatives.

    The recurring decode shape — the stacked K+V single-position batch —
    hits the no-pad branch (head dims are multiples of the 64-wide
    group), so the group decomposition is a plain reshape; ragged rows
    reuse a memoized zero-padded scratch instead of ``np.pad``-ing a
    fresh array per call.
    """
    # float32 first, exactly like fp16.to_fp16_bits: float64 inputs
    # double-round through float32, and values overflowing float32
    # become non-finite and raise, matching the reference path bitwise.
    rows = np.asarray(rows, dtype=np.float32)
    if not np.all(np.isfinite(rows)):
        raise FormatError("cannot encode non-finite values as FP16")
    halves = np.clip(rows, -fp16.MAX_FINITE, fp16.MAX_FINITE).astype(np.float16)
    n_rows, cols = rows.shape
    pad = (-cols) % ANDA_GROUP_SIZE
    if pad:
        key = (n_rows, cols + pad)
        padded = _PAD_SCRATCH.get(key)
        if padded is None:
            if len(_PAD_SCRATCH) >= _PAD_SCRATCH_LIMIT:
                _PAD_SCRATCH.clear()
            padded = np.zeros(key, dtype=np.float32)
            _PAD_SCRATCH[key] = padded
        padded[:, :cols] = halves
        padded[:, cols:] = 0.0
        flat = padded
    else:
        flat = halves.astype(np.float32)
    grouped = flat.reshape(-1, ANDA_GROUP_SIZE)
    peak = np.abs(grouped).max(axis=1)
    # frexp exponent of the group max, shifted into the unbiased
    # integer-significand convention; a subnormal max clamps to the
    # fixed subnormal exponent (all-zero groups land there too, where
    # the value is irrelevant — every mantissa truncates to zero).
    shared = np.maximum(np.frexp(peak)[1] - 1, fp16.SUBNORMAL_EXPONENT)
    up = (mantissa_bits - 1) - shared
    quantized = np.trunc(np.ldexp(grouped, up[:, None]))
    out = np.ldexp(quantized, -up[:, None]) + np.float32(0.0)
    if pad:
        return np.ascontiguousarray(out.reshape(n_rows, cols + pad)[:, :cols])
    return out.reshape(n_rows, cols)


def fake_quantize(
    values: np.ndarray, mantissa_bits: int, rounding: str = "truncate"
) -> np.ndarray:
    """Quantize-dequantize a tensor through the Anda format.

    Fast path used by the LLM activation hooks and the serving KV
    codec: numerically identical to
    ``AndaTensor.from_float(...).decode()`` but skips the bit-plane
    packing, and routes truncate-mode conversions (the hardware default
    and the serving codec's mode) through the fused vectorized pipeline
    (validated bitwise-equivalent by tests).
    """
    values = np.asarray(values)
    if rounding == "truncate" and values.ndim >= 1 and values.shape[-1] > 0:
        # Validate config eagerly so bad mantissa lengths raise the
        # same FormatError the reference path raises.
        BfpConfig(
            mantissa_bits=mantissa_bits,
            group_size=ANDA_GROUP_SIZE,
            rounding=rounding,
        )
        flat = values.reshape(-1, values.shape[-1])
        return _fake_quantize_rows_vectorized(flat, mantissa_bits).reshape(
            values.shape
        )
    return _fake_quantize_reference(values, mantissa_bits, rounding)


def fake_quantize_batch(
    values: np.ndarray, mantissa_bits: int, rounding: str = "truncate"
) -> np.ndarray:
    """Batch-axis Anda fake quantization for ``(..., channels)`` stacks.

    The serving engine's batched decode path pushes ``(batch, time,
    channels)`` activation stacks through the format in one call.
    Grouping runs along the last axis only (groups never span rows —
    see :func:`repro.core.groups.to_groups`), so the result is
    row-for-row identical to fake-quantizing each leading-axis slice
    independently; a property the engine's token-parity guarantee
    relies on and the tests pin down.
    """
    values = np.asarray(values)
    flat = values.reshape(-1, values.shape[-1])
    return fake_quantize(flat, mantissa_bits, rounding=rounding).reshape(values.shape)


def fake_quantize_batch_reference(
    values: np.ndarray, mantissa_bits: int, rounding: str = "truncate"
) -> np.ndarray:
    """Pre-vectorization :func:`fake_quantize_batch`, kept as the oracle.

    The parity tests and ``benchmarks/bench_decode_hotpath.py``'s codec
    scenario compare the vectorized codec against this bitwise —
    including the ``.astype(float16)`` stored bytes the KV caches
    persist, which are the serving stack's parity bedrock.
    """
    values = np.asarray(values)
    flat = values.reshape(-1, values.shape[-1])
    return _fake_quantize_reference(flat, mantissa_bits, rounding).reshape(
        values.shape
    )
