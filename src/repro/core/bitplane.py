"""Bit-plane (transposed) data layout for variable-length mantissas.

Implements the memory organization of Fig. 10: within a group of 64
Anda values, bits of equal significance across the 64 elements are
packed into one 64-bit memory word (a *bit plane*).  A group with an
``M``-bit mantissa then occupies

* 1 sign word (64 bits),
* ``M`` mantissa planes (64 bits each, most-significant plane first),
* one shared exponent (8 bits, stored in a separate exponent array).

Variable mantissa length changes only the *depth* (number of words) of
a group, never the word width — which is exactly why the hardware's
address generation stays regular (Sec. IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError

#: Hardware word width: one bit plane covers this many elements.
WORD_BITS = 64


def _check_group_shape(mantissa: np.ndarray) -> None:
    if mantissa.ndim != 2 or mantissa.shape[1] != WORD_BITS:
        raise FormatError(
            f"bit-plane packing expects (n_groups, {WORD_BITS}) mantissas, "
            f"got shape {mantissa.shape}"
        )


def pack_planes(mantissa: np.ndarray, mantissa_bits: int) -> np.ndarray:
    """Pack ``(n_groups, 64)`` mantissas into ``(n_groups, M)`` plane words.

    Plane ``p`` (``p = 0`` first) holds bit ``M - 1 - p`` of every
    element, element ``i`` in bit position ``i`` of the word — the MSB
    plane is emitted first, matching the order the bit-serial PE consumes
    planes in.
    """
    _check_group_shape(mantissa)
    mant = mantissa.astype(np.uint64)
    if np.any(mantissa < 0) or np.any(mant >> np.uint64(mantissa_bits)):
        raise FormatError(f"mantissa values exceed {mantissa_bits} bits")
    positions = np.arange(WORD_BITS, dtype=np.uint64)
    planes = np.empty((mant.shape[0], mantissa_bits), dtype=np.uint64)
    for plane in range(mantissa_bits):
        bit_index = np.uint64(mantissa_bits - 1 - plane)
        bits = (mant >> bit_index) & np.uint64(1)
        planes[:, plane] = (bits << positions).sum(axis=1, dtype=np.uint64)
    return planes


def unpack_planes(planes: np.ndarray, mantissa_bits: int) -> np.ndarray:
    """Invert :func:`pack_planes`, returning ``(n_groups, 64)`` mantissas."""
    planes = np.asarray(planes, dtype=np.uint64)
    if planes.ndim != 2 or planes.shape[1] != mantissa_bits:
        raise FormatError(
            f"expected (n_groups, {mantissa_bits}) planes, got {planes.shape}"
        )
    positions = np.arange(WORD_BITS, dtype=np.uint64)
    mantissa = np.zeros((planes.shape[0], WORD_BITS), dtype=np.int64)
    for plane in range(mantissa_bits):
        bits = (planes[:, plane, None] >> positions) & np.uint64(1)
        mantissa = (mantissa << 1) | bits.astype(np.int64)
    return mantissa


def pack_signs(sign: np.ndarray) -> np.ndarray:
    """Pack ``(n_groups, 64)`` sign bits into one word per group."""
    _check_group_shape(sign)
    positions = np.arange(WORD_BITS, dtype=np.uint64)
    bits = (np.asarray(sign, dtype=np.uint64) & np.uint64(1)) << positions
    return bits.sum(axis=1, dtype=np.uint64)


def unpack_signs(words: np.ndarray) -> np.ndarray:
    """Invert :func:`pack_signs` into an ``(n_groups, 64)`` 0/1 array."""
    positions = np.arange(WORD_BITS, dtype=np.uint64)
    words = np.asarray(words, dtype=np.uint64)
    return ((words[:, None] >> positions) & np.uint64(1)).astype(np.int8)


@dataclass
class BitPlaneStore:
    """An on-chip-buffer image of a bit-plane laid-out Anda tensor.

    Attributes:
        sign_words: ``(n_groups,)`` packed sign words.
        mantissa_planes: ``(n_groups, M)`` packed plane words, MSB first.
        exponents: ``(n_groups,)`` shared exponents (int32, the
            integer-significand convention of :mod:`repro.core.fp16`).
        mantissa_bits: plane count ``M``.
    """

    sign_words: np.ndarray
    mantissa_planes: np.ndarray
    exponents: np.ndarray
    mantissa_bits: int

    @classmethod
    def from_fields(
        cls,
        sign: np.ndarray,
        mantissa: np.ndarray,
        exponents: np.ndarray,
        mantissa_bits: int,
    ) -> "BitPlaneStore":
        """Pack structure-of-arrays BFP fields into bit-plane words."""
        return cls(
            sign_words=pack_signs(sign),
            mantissa_planes=pack_planes(mantissa, mantissa_bits),
            exponents=np.asarray(exponents, dtype=np.int32),
            mantissa_bits=mantissa_bits,
        )

    def unpack(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (sign, mantissa, exponents) structure-of-arrays fields."""
        return (
            unpack_signs(self.sign_words),
            unpack_planes(self.mantissa_planes, self.mantissa_bits),
            self.exponents,
        )

    @property
    def n_groups(self) -> int:
        return int(self.sign_words.shape[0])

    def storage_bits(self) -> int:
        """Total buffer footprint in bits (sign + planes + 8b exponents)."""
        plane_words = int(self.mantissa_planes.shape[0] * self.mantissa_planes.shape[1])
        return WORD_BITS * (self.n_groups + plane_words) + 8 * self.n_groups

    def words_per_group(self) -> int:
        """Memory-address depth of one group: sign word + M plane words."""
        return 1 + self.mantissa_bits
