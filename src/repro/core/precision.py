"""Tensor-type taxonomy and precision combinations.

The paper narrows the activation-precision search space to the four
FP-INT GeMM activation tensor types of a Transformer block (Sec. II-A,
Fig. 3):

* ``QKV`` — the input of the query/key/value projections,
* ``O``   — the input of the attention output projection,
* ``U``   — the input of the feed-forward up (and gate) projection,
* ``D``   — the input of the feed-forward down projection.

A *precision combination* assigns one Anda mantissa length to each type:
the 4-tuple ``[M_qkv, M_o, M_u, M_d]`` that Algorithm 1 searches over.
"""

from __future__ import annotations

import enum
from collections.abc import Iterator, Mapping
from typing import NamedTuple

from repro.core.bfp import MAX_MANTISSA_BITS, MIN_MANTISSA_BITS
from repro.errors import FormatError


class TensorKind(enum.Enum):
    """The four FP-INT GeMM activation tensor types of a weight-only
    quantized Transformer block."""

    QKV = "qkv"
    O = "o"  # noqa: E741 - matches the paper's A_o naming
    U = "u"
    D = "d"

    @classmethod
    def ordered(cls) -> tuple["TensorKind", ...]:
        """Kinds in the paper's canonical ``[qkv, o, u, d]`` order."""
        return (cls.QKV, cls.O, cls.U, cls.D)


class PrecisionCombination(NamedTuple):
    """Mantissa lengths ``[M_qkv, M_o, M_u, M_d]`` for one model.

    Immutable and hashable so the search can keep a visited set.
    """

    qkv: int
    o: int
    u: int
    d: int

    def __getitem__(self, key):  # type: ignore[override]
        if isinstance(key, TensorKind):
            return getattr(self, key.value)
        return tuple.__getitem__(self, key)

    def validate(self) -> "PrecisionCombination":
        """Check every entry lies in the Anda-representable 1..16 range."""
        for kind, bits in zip(TensorKind.ordered(), self):
            if not MIN_MANTISSA_BITS <= bits <= MAX_MANTISSA_BITS:
                raise FormatError(
                    f"mantissa length for {kind.value} must be in "
                    f"[{MIN_MANTISSA_BITS}, {MAX_MANTISSA_BITS}], got {bits}"
                )
        return self

    @classmethod
    def uniform(cls, bits: int) -> "PrecisionCombination":
        """The equal-precision combination ``[bits, bits, bits, bits]``."""
        return cls(bits, bits, bits, bits).validate()

    @classmethod
    def from_mapping(cls, mapping: Mapping[TensorKind, int]) -> "PrecisionCombination":
        """Build from a ``{TensorKind: bits}`` mapping."""
        return cls(*(mapping[kind] for kind in TensorKind.ordered())).validate()

    def as_mapping(self) -> dict[TensorKind, int]:
        """Return ``{TensorKind: bits}`` for iteration by kind."""
        return dict(zip(TensorKind.ordered(), self))

    def relaxations(self) -> Iterator["PrecisionCombination"]:
        """Yield the neighbours Algorithm 1 generates from a new best.

        Each neighbour decreases exactly one tensor type's mantissa
        length by one bit, skipping moves that would leave the valid
        range (Sec. III-C, Step 3).
        """
        for index, bits in enumerate(self):
            if bits - 1 >= MIN_MANTISSA_BITS:
                relaxed = list(self)
                relaxed[index] = bits - 1
                yield PrecisionCombination(*relaxed)

    def max_bits(self) -> int:
        """Longest mantissa in the combination (sizing worst-case storage)."""
        return max(self)

    def __str__(self) -> str:
        return f"[{self.qkv}, {self.o}, {self.u}, {self.d}]"
