"""Bit-operation (BOPs) cost model for FP-INT GeMMs.

The paper estimates computational cost as the number of *bit operations*
of the required multiplications: one ``M``-bit by ``W``-bit multiply
costs ``M * W`` BOPs, and one FP16-INT4 multiply-accumulate is scored at
64 BOPs (Sec. V-A), i.e. a 16-bit mantissa path.  FIGNA's 13-bit
effective mantissa then yields the paper's 1.23x saving (64 / 52) and
VS-Quant's 4-bit mantissa its 4.0x saving, which this module reproduces
exactly.

A model's cost is a weighted sum over the four activation tensor types:
the weights are the per-type MAC counts of its FP-INT GeMMs (``qkv``
covers three projections, ``u`` covers both up and gate for gated FFNs).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.core.precision import PrecisionCombination, TensorKind
from repro.errors import FormatError

#: BOPs charged to one FP16 x INT4 multiply (the paper's baseline unit).
FP16_INT4_BOPS = 64

#: Weight bit-width of the W4A16 deployment scheme.
DEFAULT_WEIGHT_BITS = 4


def module_mac_weights(
    d_model: int, ffn_dim: int, gated_ffn: bool
) -> dict[TensorKind, int]:
    """Per-token MAC counts of the four FP-INT GeMM types of one block.

    Args:
        d_model: hidden size.
        ffn_dim: feed-forward intermediate size.
        gated_ffn: True for LLaMA-style SwiGLU (the up projection is
            doubled by the gate projection).

    Returns:
        ``{TensorKind: macs_per_token}`` — only the *ratios* matter for
        BOPs savings, so layer count and token count cancel.
    """
    up_mult = 2 if gated_ffn else 1
    return {
        TensorKind.QKV: 3 * d_model * d_model,
        TensorKind.O: d_model * d_model,
        TensorKind.U: up_mult * d_model * ffn_dim,
        TensorKind.D: ffn_dim * d_model,
    }


def combination_bops(
    combination: PrecisionCombination,
    mac_weights: Mapping[TensorKind, int],
    weight_bits: int = DEFAULT_WEIGHT_BITS,
) -> int:
    """Total BOPs of one forward pass under a precision combination."""
    if weight_bits < 1:
        raise FormatError(f"weight_bits must be positive, got {weight_bits}")
    return sum(
        combination[kind] * weight_bits * macs for kind, macs in mac_weights.items()
    )


def baseline_bops(
    mac_weights: Mapping[TensorKind, int],
) -> int:
    """BOPs of the FP16-activation baseline (64 BOPs per MAC)."""
    return FP16_INT4_BOPS * sum(mac_weights.values())


def bops_saving(
    combination: PrecisionCombination,
    mac_weights: Mapping[TensorKind, int],
    weight_bits: int = DEFAULT_WEIGHT_BITS,
) -> float:
    """BOPs reduction factor vs the FP16 baseline (the green numbers of
    Table II).  ``1.0`` means no saving; bigger is better."""
    return baseline_bops(mac_weights) / combination_bops(
        combination, mac_weights, weight_bits
    )


def uniform_bops_saving(mantissa_bits: int) -> float:
    """Saving of a uniform mantissa length, independent of MAC weights.

    Reproduces the paper's single-format baselines: 13 bits -> 1.23x
    (FIGNA), 4 bits -> 4.0x (VS-Quant).
    """
    return FP16_INT4_BOPS / (mantissa_bits * DEFAULT_WEIGHT_BITS)


def effective_mantissa_bits(
    combination: PrecisionCombination,
    mac_weights: Mapping[TensorKind, int],
) -> float:
    """MAC-weighted average mantissa length of a combination.

    This is the single number the hardware model needs: system speedup
    scales with the average number of bit planes streamed per MAC.
    """
    total = sum(mac_weights.values())
    if total <= 0:
        raise FormatError("mac_weights must have positive total")
    return (
        sum(combination[kind] * macs for kind, macs in mac_weights.items()) / total
    )
